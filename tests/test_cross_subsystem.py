"""Cross-subsystem differential tests.

Each test here pins a relation *between* independently implemented
engines, so a bug in any one of them surfaces as a disagreement:

* CEC verdicts: SAT miter == BDD canonical == miter-based test generation;
* BDD single-fix candidates ⊆ BSAT solutions (all-vector rectification is
  stronger than test-set rectification);
* the three cover engines agree on real path-tracing candidate sets;
* the certified bound verdict matches BSAT's solution existence.
"""

import pytest

from repro.bdd import minimal_covers_bdd, single_fix_candidates
from repro.circuits import random_circuit
from repro.diagnosis import (
    basic_sat_diagnose,
    basic_sim_diagnose,
    certify_correction_bound,
    minimal_covers_bnb,
    minimal_covers_sat,
    sc_diagnose,
)
from repro.faults import random_gate_changes
from repro.testgen import are_equivalent, distinguishing_tests
from repro.verify import check_equivalence


def _workload(seed, p=1, n_gates=22):
    golden = random_circuit(n_inputs=5, n_outputs=3, n_gates=n_gates, seed=seed)
    inj = random_gate_changes(golden, p=p, seed=seed + 100)
    return golden, inj


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_equivalence_verdicts_agree_everywhere(seed):
    golden, inj = _workload(seed)
    sat = check_equivalence(golden, inj.faulty, method="sat").equivalent
    bdd = check_equivalence(golden, inj.faulty, method="bdd").equivalent
    miter = are_equivalent(golden, inj.faulty)
    assert sat == bdd == miter


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_bdd_fix_candidates_subset_of_bsat(seed):
    """All-vector rectification implies test-set rectification (never the
    reverse), so the BDD candidate set must embed into BSAT's solutions."""
    golden, inj = _workload(seed)
    tests = distinguishing_tests(golden, inj.faulty, m=4)
    if tests.m == 0:
        pytest.skip("undetectable injection")
    bsat = basic_sat_diagnose(inj.faulty, tests, k=1)
    bsat_gates = {next(iter(s)) for s in bsat.solutions}
    bdd_gates = {r.gate for r in single_fix_candidates(golden, inj.faulty)}
    assert bdd_gates <= bsat_gates
    assert inj.sites[0] in bdd_gates  # the true site is always fixable


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_cover_engines_agree_on_real_candidate_sets(seed):
    """SAT / branch-and-bound / BDD covers coincide on PT output."""
    golden, inj = _workload(seed, p=2, n_gates=30)
    tests = distinguishing_tests(golden, inj.faulty, m=6)
    if tests.m < 2:
        pytest.skip("not enough failing tests")
    sim = basic_sim_diagnose(inj.faulty, tests)
    sets = sim.candidate_sets
    via_sat, complete = minimal_covers_sat(sets, k=2)
    assert complete
    via_bnb = minimal_covers_bnb(sets, k=2)
    via_bdd = minimal_covers_bdd(sets, k=2)
    assert set(via_sat) == set(via_bnb) == set(via_bdd)
    # And sc_diagnose (the COV wrapper) reports the same solution set.
    cov = sc_diagnose(inj.faulty, tests, k=2, sim_result=sim)
    assert set(cov.solutions) == set(via_bnb)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_certified_bound_matches_bsat(seed):
    golden, inj = _workload(seed)
    tests = distinguishing_tests(golden, inj.faulty, m=4)
    if tests.m == 0:
        pytest.skip("undetectable injection")
    bsat = basic_sat_diagnose(inj.faulty, tests, k=1)
    verdict = certify_correction_bound(inj.faulty, tests, k=1)
    assert verdict.has_correction == bool(bsat.solutions)
    if not verdict.has_correction:
        assert verdict.verified is True


@pytest.mark.parametrize("seed", [5, 6])
def test_structural_suspects_cover_bsat_singletons(seed):
    """Without restructuring, BSAT's singleton solutions that really changed
    behaviour lie in the structural suspect set or match another signal."""
    from repro.diagnosis import structural_diagnose

    golden, inj = _workload(seed)
    tests = distinguishing_tests(golden, inj.faulty, m=4)
    if tests.m == 0:
        pytest.skip("undetectable injection")
    diag = structural_diagnose(golden, inj.faulty, seed=seed)
    # The actual error site must be accounted for: flagged or re-matched.
    site = inj.sites[0]
    assert site in diag.suspects or site in diag.matched
