"""Stress and invariant tests for the CDCL solver.

Beyond the functional brute-force cross-checks in test_solver.py, these
exercise the machinery that only triggers under load: learnt-clause
deletion, repeated incremental enumeration, restarts, and the interaction
of assumptions with learned units.
"""

import itertools
import random

import pytest

from repro.sat import CNF, Solver, enumerate_solutions, totalizer


def random_ksat(rng, n_vars, n_clauses, width=3):
    return [
        [
            rng.choice([1, -1]) * rng.randint(1, n_vars)
            for _ in range(width)
        ]
        for _ in range(n_clauses)
    ]


def test_learnt_reduction_preserves_correctness():
    """Run a long sequence of solves on a hard-ish instance so learnt
    deletion fires, then verify the final models against the clauses."""
    rng = random.Random(99)
    n = 60
    solver = Solver()
    solver.ensure_vars(n)
    clauses = random_ksat(rng, n, 240)
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    if not ok:
        return
    for _trial in range(30):
        assumptions = [
            rng.choice([1, -1]) * rng.randint(1, n) for _ in range(4)
        ]
        result = solver.solve(assumptions)
        if result:
            model = {v: solver.value(v) for v in range(1, n + 1)}
            for clause in clauses:
                assert any(
                    model[abs(l)] is None or model[abs(l)] == (l > 0)
                    for l in clause
                )


def test_enumeration_of_full_space_is_exhaustive():
    """Exact blocking over 10 variables must yield 2^10 distinct models."""
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(10)]
    solver = cnf.to_solver()
    seen = set(enumerate_solutions(solver, lits, block="exact"))
    assert len(seen) == 1024


def test_interleaved_bounds_and_blocking():
    """Mixing bound assumptions with accumulated blocking clauses must
    never resurrect a blocked solution."""
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(6)]
    cnf.add_clause(lits)  # at least one
    outs = totalizer(cnf, lits, 4)
    solver = cnf.to_solver()
    seen: set[frozenset] = set()
    for bound in (1, 2, 3, 4):
        for sol in enumerate_solutions(
            solver, lits, assumptions=[-outs[bound]], block="superset"
        ):
            assert sol not in seen
            assert not any(prev <= sol for prev in seen)
            assert 0 < len(sol) <= bound
            seen.add(sol)
    # minimal covers of one clause = the 6 singletons
    assert seen == {frozenset({l}) for l in lits}


def test_solver_determinism():
    """Same clauses, same order -> identical models and statistics."""
    def build_and_solve():
        rng = random.Random(5)
        solver = Solver()
        solver.ensure_vars(30)
        for clause in random_ksat(rng, 30, 100):
            solver.add_clause(clause)
        result = solver.solve()
        model = (
            tuple(solver.value(v) for v in range(1, 31)) if result else None
        )
        return result, model, dict(solver.stats)

    a = build_and_solve()
    b = build_and_solve()
    assert a == b


def test_many_assumption_rounds_reuse_learning():
    """Conflict counts across repeated UNSAT assumption probes must not
    blow up — learned clauses make later probes cheaper or equal."""
    solver = Solver()
    n = 8
    var = {}
    for p in range(n):
        for h in range(n - 1):
            var[p, h] = solver.new_var()
    for p in range(n):
        solver.add_clause([var[p, h] for h in range(n - 1)])
    for h in range(n - 1):
        for p1 in range(n):
            for p2 in range(p1 + 1, n):
                solver.add_clause([-var[p1, h], -var[p2, h]])
    assert solver.solve() is False
    conflicts_first = solver.stats["conflicts"]
    assert solver.solve() is False  # solver is now trivially UNSAT
    assert solver.stats["conflicts"] == conflicts_first


def test_assumptions_do_not_leak_between_solves():
    solver = Solver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a, b])
    assert solver.solve([-a]) is True
    assert solver.value(b) is True
    # without the assumption, -a must not persist
    assert solver.solve([-b]) is True
    assert solver.value(a) is True
    assert solver.solve() is True


def test_wide_clauses():
    """Clauses much wider than the watch window."""
    solver = Solver()
    lits = [solver.new_var() for _ in range(50)]
    solver.add_clause(lits)
    assert solver.solve([-l for l in lits[:-1]]) is True
    assert solver.value(lits[-1]) is True
    assert solver.solve([-l for l in lits]) is False


@pytest.mark.parametrize("seed", range(5))
def test_unsat_core_is_genuinely_unsat(seed):
    """Re-solving with only the reported core must still be UNSAT."""
    rng = random.Random(seed)
    n = 12
    solver = Solver()
    solver.ensure_vars(n)
    clauses = random_ksat(rng, n, 50)
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    if not ok:
        return
    assumptions = list(
        dict.fromkeys(
            rng.choice([1, -1]) * rng.randint(1, n) for _ in range(8)
        )
    )
    if solver.solve(assumptions) is not False:
        return
    core = solver.core()
    # An empty core means the formula alone is UNSAT — legitimate.
    assert set(core) <= set(assumptions)
    # fresh solver: clauses + core alone are UNSAT
    fresh = Solver()
    fresh.ensure_vars(n)
    for clause in clauses:
        fresh.add_clause(clause)
    assert fresh.solve(core) is False
