"""The compiled (arena-jit) solver as a *backend*: unit surface plus
pinned diagnosis-workload parity.

``repro.sat.compiled`` runs its kernels as plain Python when numba is
absent — identical semantics, just slower — so everything here holds in
every environment; only registration under the ``arena-jit`` name is
gated on the import (covered in ``test_backends.py``).  The diagnosis
parity tests temp-register the solver under a scratch name and drive
the full ``DiagnosisSession`` strategy stack through it, asserting the
solution sets are bit-identical to the interpreted arena.
"""

import pytest

from repro.circuits import library
from repro.diagnosis import DiagnosisSession, diagnose
from repro.sat.backends import SAT_BACKENDS, register_backend
from repro.sat.compiled import CompiledSolver, warm_up
from repro.serve import signature_seed

from tests.serve._devices import make_device

BACKEND = "compiled-under-test"


def _canon(solutions):
    """Order-insensitive canonical form: backends agree on the solution
    *set*; discovery order tracks each solver's decision heuristic."""
    return sorted(tuple(sorted(s)) for s in solutions)


@pytest.fixture
def compiled_backend():
    """Temp-register the compiled solver so ``solver_backend=`` paths
    route to it; always restore the registry."""
    register_backend(BACKEND, "compiled kernels (test registration)")(
        CompiledSolver
    )
    try:
        yield BACKEND
    finally:
        SAT_BACKENDS.pop(BACKEND, None)


# ----------------------------------------------------------------------
# solver surface
# ----------------------------------------------------------------------
def test_basic_solve_and_model():
    s = CompiledSolver()
    a, b, c = s.new_var(), s.new_var(), s.new_var()
    assert s.add_clause([a, b])
    assert s.add_clause([-a, c])
    assert s.solve() is True
    model = {v: s.value(v) for v in (a, b, c)}
    assert any(model[v] for v in (a, b))
    if model[a]:
        assert model[c]


def test_root_contradiction_surfaces_at_solve():
    """Unlike the arena solver, add_clause stays True on a root-level
    contradiction; solve() reports the UNSAT."""
    s = CompiledSolver()
    a = s.new_var()
    assert s.add_clause([a])
    assert s.add_clause([-a])
    assert s.solve() is False
    assert s.solve() is False  # stable across repeated calls


def test_empty_clause_rejected():
    s = CompiledSolver()
    s.new_var()
    assert s.add_clause([]) is False
    assert s.solve() is False


def test_tautology_and_duplicates_normalized():
    s = CompiledSolver()
    a, b = s.new_var(), s.new_var()
    assert s.add_clause([a, -a])  # tautology: dropped, stays SAT
    assert s.add_clause([b, b, b])
    assert s.solve() is True
    assert s.value(b) is True


def test_duplicate_assumptions_core():
    s = CompiledSolver()
    a, b = s.new_var(), s.new_var()
    s.add_clause([a, b])
    s.add_clause([-a, b])
    assert s.solve([a, a, -b]) is False
    core = s.core()
    assert set(core) <= {a, -b}
    # the core alone must already be contradictory with the clauses
    fresh = CompiledSolver()
    fresh.ensure_vars(2)
    fresh.add_clause([a, b])
    fresh.add_clause([-a, b])
    assert fresh.solve(core) is False


def test_conflict_limit_returns_none():
    s = CompiledSolver()
    n_p, n_h = 7, 6
    var = {}
    for p in range(n_p):
        for h in range(n_h):
            var[p, h] = s.new_var()
    for p in range(n_p):
        s.add_clause([var[p, h] for h in range(n_h)])
    for h in range(n_h):
        for p1 in range(n_p):
            for p2 in range(p1 + 1, n_p):
                s.add_clause([-var[p1, h], -var[p2, h]])
    assert s.solve(conflict_limit=1) is None
    assert s.solve() is False  # and solvable to completion afterwards


def test_stats_accumulate_across_solves():
    s = CompiledSolver()
    a, b = s.new_var(), s.new_var()
    s.add_clause([a, b])
    assert s.solve() is True
    first = dict(s.stats)
    assert set(first) >= {
        "conflicts",
        "decisions",
        "propagations",
        "restarts",
        "learned",
    }
    assert s.solve([-a]) is True
    assert s.stats["decisions"] >= first["decisions"]


def test_start_proof_not_supported():
    with pytest.raises(NotImplementedError):
        CompiledSolver().start_proof()


def test_warm_up_idempotent():
    warm_up()
    warm_up()  # second call is a no-op (flag short-circuits)


def test_phase_saving_and_activity_persist():
    """Re-solving after growth reuses the persisted polarity/activity
    buffers — same instance stays solvable and consistent."""
    s = CompiledSolver()
    lits = [s.new_var() for _ in range(6)]
    for i in range(5):
        s.add_clause([lits[i], lits[i + 1]])
    for _ in range(4):
        assert s.solve() is True
    s.add_clause([-lits[0]])
    assert s.solve() is True
    assert s.value(lits[0]) is False or s.value(lits[1]) is True


# ----------------------------------------------------------------------
# pinned diagnosis workloads through the backend registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("design,seed", [("c17", 3), ("fig5a", 2)])
def test_pinned_diagnosis_parity(compiled_backend, design, seed):
    """The full session strategy stack (master encoding, auto-k sweep,
    enumeration) through the compiled backend must reproduce the arena
    solution sets bit-identically."""
    device = make_device("d0", design=design, seed=seed, k=2)
    circuit = library.get_circuit(device.design)

    def solve(backend):
        session = DiagnosisSession(
            circuit,
            device.tests,
            seed=signature_seed(device.signature()),
            solver_backend=backend,
        )
        return diagnose(session, k=2, strategy="bsat-auto-k")

    reference = solve(None)
    compiled = solve(compiled_backend)
    assert _canon(compiled.solutions) == _canon(reference.solutions)
    assert compiled.complete == reference.complete


def test_session_override_per_query(compiled_backend):
    """``solver_backend=`` at the session level routes every instance
    checker through the compiled solver without touching defaults."""
    device = make_device("d1", seed=7, k=2)
    circuit = library.get_circuit(device.design)
    session = DiagnosisSession(
        circuit, device.tests, solver_backend=compiled_backend
    )
    assert session.solver_backend == compiled_backend
    result = diagnose(session, k=2, strategy="bsat-auto-k")
    reference = diagnose(
        DiagnosisSession(circuit, device.tests), k=2, strategy="bsat-auto-k"
    )
    assert _canon(result.solutions) == _canon(reference.solutions)
