"""Tests for the cardinality encodings (pairwise, sequential, totalizer)."""

import math
from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import (
    CNF,
    at_least_one,
    at_most_k_pairwise,
    at_most_k_sequential,
    enumerate_solutions,
    totalizer,
)


def count_models(cnf, lits, assumptions=()):
    solver = cnf.to_solver()
    return sum(
        1
        for _ in enumerate_solutions(
            solver, lits, assumptions=assumptions, block="exact"
        )
    )


def expected_models(n, k):
    return sum(math.comb(n, j) for j in range(k + 1))


GRID = [(4, 0), (4, 2), (5, 1), (5, 4), (6, 3), (3, 3)]


@pytest.mark.parametrize("n,k", GRID)
def test_pairwise_model_count(n, k):
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(n)]
    at_most_k_pairwise(cnf, lits, k)
    assert count_models(cnf, lits) == expected_models(n, k)


@pytest.mark.parametrize("n,k", GRID)
def test_sequential_model_count(n, k):
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(n)]
    at_most_k_sequential(cnf, lits, k)
    assert count_models(cnf, lits) == expected_models(n, k)


@pytest.mark.parametrize("n,k", GRID)
def test_totalizer_model_count(n, k):
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(n)]
    outs = totalizer(cnf, lits, k)
    assumptions = [-outs[k]] if k < len(outs) else []
    assert count_models(cnf, lits, assumptions) == expected_models(n, k)


def test_totalizer_incremental_bounds():
    """One totalizer encoding serves every bound <= max via assumptions."""
    n, k_max = 6, 4
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(n)]
    outs = totalizer(cnf, lits, k_max)
    for bound in range(k_max + 1):
        assert count_models(cnf, lits, [-outs[bound]]) == expected_models(
            n, bound
        )


def test_totalizer_outputs_imply_counts():
    """out[j] must be true whenever more than j inputs are true."""
    n, k = 5, 3
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(n)]
    outs = totalizer(cnf, lits, k)
    solver = cnf.to_solver()
    for bits in product([0, 1], repeat=n):
        assumptions = [l if b else -l for l, b in zip(lits, bits)]
        assert solver.solve(assumptions) is True
        count = sum(bits)
        for j, out in enumerate(outs):
            if count >= j + 1:
                assert solver.value(out) is True


def test_k_zero_forces_all_false():
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(4)]
    at_most_k_sequential(cnf, lits, 0)
    solver = cnf.to_solver()
    assert solver.solve() is True
    assert all(solver.value(l) is False for l in lits)


def test_k_at_least_n_is_free():
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(3)]
    at_most_k_pairwise(cnf, lits, 3)
    at_most_k_sequential(cnf, lits, 5)
    assert cnf.num_clauses == 0


def test_negative_k_rejected():
    cnf = CNF()
    lits = [cnf.new_var()]
    with pytest.raises(ValueError):
        at_most_k_pairwise(cnf, lits, -1)
    with pytest.raises(ValueError):
        at_most_k_sequential(cnf, lits, -1)
    with pytest.raises(ValueError):
        totalizer(cnf, lits, -1)


def test_at_least_one():
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(3)]
    at_least_one(cnf, lits)
    solver = cnf.to_solver()
    assert solver.solve([-lits[0], -lits[1], -lits[2]]) is False
    with pytest.raises(ValueError):
        at_least_one(cnf, [])


@given(st.integers(1, 7), st.integers(0, 7), st.integers(0, 2**20))
@settings(max_examples=30, deadline=None)
def test_encodings_agree(n, k, seed):
    """All three encodings accept exactly the same projected models."""
    import random

    rng = random.Random(seed)
    bits = [rng.randint(0, 1) for _ in range(n)]
    results = []
    for encoding in ("pairwise", "seq", "tot"):
        cnf = CNF()
        lits = [cnf.new_var() for _ in range(n)]
        assumptions = [l if b else -l for l, b in zip(lits, bits)]
        if encoding == "pairwise":
            at_most_k_pairwise(cnf, lits, k)
        elif encoding == "seq":
            at_most_k_sequential(cnf, lits, k)
        else:
            outs = totalizer(cnf, lits, k)
            if k < len(outs):
                assumptions.append(-outs[k])
        results.append(cnf.to_solver().solve(assumptions))
    assert results[0] == results[1] == results[2] == (sum(bits) <= k)
