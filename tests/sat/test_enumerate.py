"""Tests for all-solutions enumeration with blocking clauses."""

import math
from itertools import combinations

import pytest

from repro.sat import CNF, Solver, enumerate_solutions, totalizer


def fresh_solver(n):
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(n)]
    return cnf, lits


def test_exact_blocking_counts_all_models():
    cnf, lits = fresh_solver(3)
    solver = cnf.to_solver()
    models = list(enumerate_solutions(solver, lits, block="exact"))
    assert len(models) == 8
    assert len(set(models)) == 8


def test_superset_blocking_yields_minimal_sets():
    """With clause (a | b | c), superset blocking under increasing bounds
    yields exactly the three singletons."""
    cnf, lits = fresh_solver(3)
    cnf.add_clause(lits)
    outs = totalizer(cnf, lits, 2)
    solver = cnf.to_solver()
    sols = []
    for bound in (1, 2):
        sols.extend(
            enumerate_solutions(
                solver, lits, assumptions=[-outs[bound]], block="superset"
            )
        )
    assert sorted(sorted(s) for s in sols) == [
        [lits[0]],
        [lits[1]],
        [lits[2]],
    ]


def test_superset_blocking_excludes_empty_successors():
    """Once the empty set is a solution, enumeration stops (everything is a
    superset of it)."""
    cnf, lits = fresh_solver(2)
    solver = cnf.to_solver()
    sols = list(enumerate_solutions(solver, lits, block="superset"))
    assert sols == [frozenset()]


def test_limit():
    cnf, lits = fresh_solver(4)
    solver = cnf.to_solver()
    sols = list(enumerate_solutions(solver, lits, block="exact", limit=5))
    assert len(sols) == 5


def test_on_solution_callback():
    cnf, lits = fresh_solver(2)
    seen = []
    solver = cnf.to_solver()
    list(
        enumerate_solutions(
            solver, lits, block="exact", on_solution=seen.append
        )
    )
    assert len(seen) == 4


def test_invalid_block_mode():
    cnf, lits = fresh_solver(1)
    with pytest.raises(ValueError):
        list(enumerate_solutions(cnf.to_solver(), lits, block="huh"))


def test_conflict_limit_raises_timeout():
    # PHP(7,6): unsat and needs many conflicts; the enumeration must raise
    # TimeoutError instead of silently returning "complete".
    solver = Solver()
    var = {}
    for p in range(7):
        for h in range(6):
            var[p, h] = solver.new_var()
    for p in range(7):
        solver.add_clause([var[p, h] for h in range(6)])
    for h in range(6):
        for p1 in range(7):
            for p2 in range(p1 + 1, 7):
                solver.add_clause([-var[p1, h], -var[p2, h]])
    projection = [var[0, h] for h in range(6)]
    with pytest.raises(TimeoutError):
        list(
            enumerate_solutions(solver, projection, conflict_limit=3)
        )


def test_enumeration_with_constraints_and_bounds():
    """Covers interplay: constraint clauses + totalizer bound + superset
    blocking gives minimal covers."""
    cnf = CNF()
    a, b, c, d = (cnf.new_var() for _ in range(4))
    cnf.add_clause([a, b])
    cnf.add_clause([c, d])
    outs = totalizer(cnf, [a, b, c, d], 2)
    solver = cnf.to_solver()
    sols = []
    for bound in (1, 2):
        sols.extend(
            enumerate_solutions(
                solver,
                [a, b, c, d],
                assumptions=[-outs[bound]],
                block="superset",
            )
        )
    expected = {
        frozenset({a, c}),
        frozenset({a, d}),
        frozenset({b, c}),
        frozenset({b, d}),
    }
    assert set(sols) == expected
