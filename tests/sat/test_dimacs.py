"""Tests for DIMACS I/O."""

import pytest

from repro.sat import CNF, dump_dimacs, load_dimacs, parse_dimacs
from repro.sat.dimacs import DimacsFormatError


def test_parse_basic():
    cnf = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")
    assert cnf.num_vars == 3
    assert list(cnf) == [(1, -2), (2, 3)]


def test_parse_comments_and_percent():
    cnf = parse_dimacs("c hello\np cnf 2 1\n% weird suffix\n1 2 0\n")
    assert list(cnf) == [(1, 2)]


def test_parse_multiline_clause():
    cnf = parse_dimacs("p cnf 3 1\n1\n-2\n3 0\n")
    assert list(cnf) == [(1, -2, 3)]


def test_parse_without_header_grows_vars():
    cnf = parse_dimacs("1 -5 0\n")
    assert cnf.num_vars == 5


def test_parse_trailing_clause_without_zero():
    cnf = parse_dimacs("p cnf 2 1\n1 2\n")
    assert list(cnf) == [(1, 2)]


def test_parse_bad_header():
    with pytest.raises(DimacsFormatError):
        parse_dimacs("p dnf 2 1\n1 0\n")


def test_parse_bad_literal():
    with pytest.raises(DimacsFormatError):
        parse_dimacs("p cnf 2 1\none 0\n")


def test_roundtrip(tmp_path):
    cnf = CNF()
    a = cnf.new_var("sel")
    b = cnf.new_var()
    cnf.add_clause([a, -b])
    cnf.add_clause([-a])
    text = dump_dimacs(cnf, tmp_path / "f.cnf")
    assert "c var 1 = sel" in text
    again = load_dimacs(tmp_path / "f.cnf")
    assert again.num_vars == cnf.num_vars
    assert list(again) == list(cnf)


def test_roundtrip_solver_equivalent():
    cnf = CNF()
    vars_ = [cnf.new_var() for _ in range(4)]
    cnf.add_clause([vars_[0], vars_[1]])
    cnf.add_clause([-vars_[0], vars_[2]])
    cnf.add_clause([-vars_[2], -vars_[3]])
    again = parse_dimacs(dump_dimacs(cnf))
    assert again.to_solver().solve() == cnf.to_solver().solve()


# ----------------------------------------------------------------------
# group-oriented DIMACS (GCNF)
# ----------------------------------------------------------------------
from repro.sat import GroupedCNF, dump_gcnf, load_gcnf, parse_gcnf


def test_gcnf_parse_basic():
    gcnf = parse_gcnf(
        "c weak fault model\n"
        "p gcnf 3 4 2\n"
        "{0} 1 2 0\n"
        "{0} -1 3 0\n"
        "{1} -2 0\n"
        "{2} 2 -3 0\n"
    )
    assert gcnf.num_vars == 3
    assert gcnf.num_groups == 2
    assert gcnf.num_clauses == 4
    assert gcnf.background == [(1, 2), (-1, 3)]
    assert gcnf.groups == [[(-2,)], [(2, -3)]]


def test_gcnf_roundtrip(tmp_path):
    gcnf = GroupedCNF()
    gcnf.add_clause(0, [1, -2])
    gcnf.add_clause(2, [3])
    gcnf.add_clause(1, [-1, 2, -3])
    text = dump_gcnf(gcnf, tmp_path / "f.gcnf")
    assert text.startswith("p gcnf 3 3 2\n")
    again = load_gcnf(tmp_path / "f.gcnf")
    assert again.num_vars == gcnf.num_vars
    assert again.background == gcnf.background
    assert again.groups == gcnf.groups
    # An empty declared group survives the round trip too.
    gcnf.groups.append([])
    again = parse_gcnf(dump_gcnf(gcnf))
    assert again.num_groups == 3
    assert again.groups[2] == []


def test_gcnf_malformed_header():
    with pytest.raises(DimacsFormatError):
        parse_gcnf("p gcnf 3 1\n{0} 1 0\n")  # missing group count
    with pytest.raises(DimacsFormatError):
        parse_gcnf("p cnf 3 1 1\n{0} 1 0\n")  # wrong format token
    with pytest.raises(DimacsFormatError):
        parse_gcnf("p gcnf 3 1 -1\n{0} 1 0\n")  # negative group count
    with pytest.raises(DimacsFormatError):
        parse_gcnf("{0} 1 0\n")  # no header at all


def test_gcnf_malformed_clauses():
    with pytest.raises(DimacsFormatError):
        parse_gcnf("p gcnf 2 1 1\n1 2 0\n")  # missing {g} prefix
    with pytest.raises(DimacsFormatError):
        parse_gcnf("p gcnf 2 1 1\n{1 1 2 0\n")  # unterminated prefix
    with pytest.raises(DimacsFormatError):
        parse_gcnf("p gcnf 2 1 1\n{x} 1 0\n")  # non-numeric group
    with pytest.raises(DimacsFormatError):
        parse_gcnf("p gcnf 2 1 1\n{2} 1 0\n")  # above declared count
    with pytest.raises(DimacsFormatError):
        parse_gcnf("p gcnf 2 1 1\n{1} 1 2\n")  # clause without 0


def test_gcnf_add_clause_validation():
    gcnf = GroupedCNF()
    with pytest.raises(ValueError):
        gcnf.add_clause(-1, [1])
    with pytest.raises(ValueError):
        gcnf.add_clause(1, [1, 0])
    gcnf.add_clause(3, [5])
    assert gcnf.num_groups == 3
    assert gcnf.num_vars == 5
