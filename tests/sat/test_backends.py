"""Differential suite for the SAT backend registry.

Three layers:

* registry mechanics — names, summaries, creation, unknown-backend and
  duplicate-registration errors, ``CNF.to_solver(backend=)`` routing;
* hypothesis differential — random small CNFs solved by the arena,
  legacy and compiled (arena-jit) backends must agree with each other
  *and* with brute force on SAT/UNSAT, produce satisfying models, and
  report failed-assumption cores that are genuinely unsatisfiable
  subsets of the assumptions.  The compiled kernels run as plain Python
  when numba is absent — same semantics, so the differential holds in
  every environment;
* incremental machinery — the arena solver's trail-reuse enumeration and
  minimal-backjump clause insertion must enumerate exactly the legacy
  solution sets under interleaved bounds/blocking, and the incremental
  totalizer must be clause-equivalent to a from-scratch encoding after
  any sequence of ``extend`` calls.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import (
    CNF,
    DEFAULT_BACKEND,
    IncrementalTotalizer,
    LegacySolver,
    SAT_BACKENDS,
    Solver,
    available_backends,
    backend_summary,
    create_solver,
    enumerate_solutions,
    register_backend,
    totalizer,
)
from repro.sat.compiled import CompiledSolver


def brute_force_sat(n_vars, clauses):
    for bits in itertools.product([False, True], repeat=n_vars):
        if all(
            any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def load(cls, n_vars, clauses):
    solver = cls()
    solver.ensure_vars(n_vars)
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    return solver, ok


def model_satisfies(solver, n_vars, clauses):
    model = {v: solver.value(v) for v in range(1, n_vars + 1)}
    return all(
        any(
            model[abs(lit)] is None or model[abs(lit)] == (lit > 0)
            for lit in clause
        )
        for clause in clauses
    )


# ----------------------------------------------------------------------
# registry mechanics
# ----------------------------------------------------------------------
def test_registry_contents():
    names = available_backends()
    assert names[0] == DEFAULT_BACKEND == "arena"
    assert "legacy" in names
    for name in names:
        assert backend_summary(name)
    assert isinstance(create_solver(), Solver)
    assert isinstance(create_solver("arena"), Solver)
    assert isinstance(create_solver("legacy"), LegacySolver)


def test_external_backend_gated_on_import():
    from repro.sat import external_backend_available

    try:
        import pysat.solvers  # noqa: F401
    except ImportError:
        assert not external_backend_available()
        assert "pysat" not in available_backends()
    else:  # pragma: no cover - exercised only with python-sat installed
        assert external_backend_available()
        solver = create_solver("pysat")
        a = solver.new_var()
        assert solver.add_clause([a])
        assert solver.solve() is True
        assert solver.value(a) in (True, None)
        assert solver.solve([-a]) is False
        assert set(solver.core()) <= {-a}
        assert set(solver.stats) >= {"conflicts", "decisions"}


def test_compiled_backend_gated_on_import():
    """``arena-jit`` registers only when numba imports; otherwise it is
    listed as unavailable with the reason and *selection degrades* to
    the interpreted arena instead of raising."""
    from repro.sat.backends import (
        BACKEND_FALLBACKS,
        compiled_backend_available,
        resolve_backend,
        unavailable_backends,
    )
    from repro.sat.compiled import NUMBA_AVAILABLE

    assert BACKEND_FALLBACKS["arena-jit"] == "arena"
    if NUMBA_AVAILABLE:  # pragma: no cover - exercised in the numba lane
        assert compiled_backend_available()
        assert "arena-jit" in available_backends()
        assert resolve_backend("arena-jit") == "arena-jit"
        solver = create_solver("arena-jit")
        assert isinstance(solver, CompiledSolver)
        a = solver.new_var()
        assert solver.add_clause([a])
        assert solver.solve() is True
        assert solver.solve([-a]) is False
        assert set(solver.core()) <= {-a}
    else:
        assert not compiled_backend_available()
        assert "arena-jit" not in available_backends()
        reason = unavailable_backends()["arena-jit"]
        assert "numba" in reason
        assert "arena" in reason  # the fallback is named in the reason
        # graceful degradation: every selection path falls back to the
        # interpreted arena instead of raising
        assert resolve_backend("arena-jit") == "arena"
        assert isinstance(create_solver("arena-jit"), Solver)
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        solver = cnf.to_solver(backend="arena-jit")
        assert isinstance(solver, Solver)
        assert solver.solve() is True


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown solver backend"):
        create_solver("no-such-backend")
    with pytest.raises(ValueError, match="unknown solver backend"):
        CNF().to_solver(backend="no-such-backend")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="registered twice"):
        register_backend("arena", "dup")(Solver)
    assert type(SAT_BACKENDS["arena"][0]()) is Solver


def test_to_solver_backend_routing():
    cnf = CNF()
    a = cnf.new_var()
    cnf.add_clause([a])
    assert isinstance(cnf.to_solver(backend="legacy"), LegacySolver)
    assert isinstance(cnf.to_solver(), Solver)
    with pytest.raises(ValueError, match="either a solver or a backend"):
        cnf.to_solver(Solver(), backend="legacy")


# ----------------------------------------------------------------------
# hypothesis differential: arena vs legacy vs brute force
# ----------------------------------------------------------------------
@st.composite
def random_instance(draw):
    n_vars = draw(st.integers(1, 8))
    n_clauses = draw(st.integers(1, 35))
    clauses = [
        draw(
            st.lists(
                st.integers(1, n_vars).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=4,
            )
        )
        for _ in range(n_clauses)
    ]
    assumptions = draw(
        st.lists(
            st.integers(1, n_vars).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            max_size=4,
            unique_by=abs,
        )
    )
    return n_vars, clauses, assumptions


@pytest.mark.slow
@given(random_instance())
@settings(max_examples=120, deadline=None)
def test_backends_agree_with_brute_force(instance):
    n_vars, clauses, assumptions = instance
    arena, ok_a = load(Solver, n_vars, clauses)
    legacy, ok_l = load(LegacySolver, n_vars, clauses)
    # The compiled solver reports root contradictions at solve() rather
    # than from add_clause, so its leg compares solve *outcomes* only.
    compiled, _ = load(CompiledSolver, n_vars, clauses)
    assert ok_a == ok_l
    result_a = arena.solve() if ok_a else False
    result_l = legacy.solve() if ok_l else False
    expected = brute_force_sat(n_vars, clauses)
    assert result_a == result_l == expected
    assert compiled.solve() == expected
    if result_a:
        assert model_satisfies(arena, n_vars, clauses)
        assert model_satisfies(legacy, n_vars, clauses)
        assert model_satisfies(compiled, n_vars, clauses)
    # ... and under assumptions
    result_a = arena.solve(assumptions) if ok_a else False
    result_l = legacy.solve(assumptions) if ok_l else False
    expected = brute_force_sat(
        n_vars, clauses + [[a] for a in assumptions]
    )
    assert result_a == result_l == expected
    assert compiled.solve(assumptions) == expected
    if result_a:
        assert model_satisfies(arena, n_vars, clauses)
        assert model_satisfies(compiled, n_vars, clauses)
        for a in assumptions:
            assert arena.value(abs(a)) in (None, a > 0)
            assert compiled.value(abs(a)) in (None, a > 0)


@pytest.mark.slow
@given(random_instance())
@settings(max_examples=80, deadline=None)
def test_failed_assumption_cores_sound(instance):
    n_vars, clauses, assumptions = instance
    for cls in (Solver, LegacySolver, CompiledSolver):
        solver, ok = load(cls, n_vars, clauses)
        if not ok or solver.solve(assumptions) is not False:
            continue
        core = solver.core()
        assert set(core) <= set(assumptions)
        # clauses + core alone must already be UNSAT
        fresh, _ = load(cls, n_vars, clauses)
        assert fresh.solve(core) is False


@pytest.mark.slow
@given(random_instance())
@settings(max_examples=60, deadline=None)
def test_interleaved_growth_agrees(instance):
    """Clauses added between solves (deep-insertion path on the arena
    solver) must keep both backends in agreement."""
    n_vars, clauses, assumptions = instance
    arena = Solver()
    legacy = LegacySolver()
    compiled = CompiledSolver()
    for s in (arena, legacy, compiled):
        s.ensure_vars(n_vars)
    added: list[list[int]] = []
    ok_a = ok_l = True
    for i, clause in enumerate(clauses):
        added.append(clause)
        ok_a = arena.add_clause(clause) and ok_a
        ok_l = legacy.add_clause(clause) and ok_l
        compiled.add_clause(clause)
        if i % 3 == 2:
            r_a = arena.solve(assumptions) if ok_a else False
            r_l = legacy.solve(assumptions) if ok_l else False
            r_c = compiled.solve(assumptions)
            assert bool(r_a) == bool(r_l) == bool(r_c)
            if r_a:
                assert model_satisfies(arena, n_vars, added)
                assert model_satisfies(compiled, n_vars, added)


@st.composite
def binary_heavy_churn_instance(draw):
    """Mostly-binary clauses (the implicit-adjacency hot path) plus a
    sequence of assumption lists that share prefixes (the
    longest-common-prefix trail-reuse path)."""
    n_vars = draw(st.integers(2, 8))
    n_clauses = draw(st.integers(2, 30))
    literal = st.integers(1, n_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = [
        draw(
            st.lists(
                literal,
                min_size=1,
                # ~4 of 5 clauses are binary: the implicit watch path
                max_size=2 if draw(st.integers(0, 4)) else 4,
            )
        )
        for _ in range(n_clauses)
    ]
    base = draw(st.lists(literal, max_size=4, unique_by=abs))
    rounds = []
    for _ in range(draw(st.integers(2, 5))):
        # churn: keep a prefix of the previous assumptions, then append
        # a fresh suffix — successive solves share decision levels
        keep = base[: draw(st.integers(0, len(base)))]
        suffix = draw(
            st.lists(
                literal,
                max_size=3,
                unique_by=abs,
            )
        )
        seen = {abs(a) for a in keep}
        rounds.append(
            keep + [a for a in suffix if abs(a) not in seen]
        )
        base = rounds[-1]
    return n_vars, clauses, rounds


@pytest.mark.slow
@given(binary_heavy_churn_instance())
@settings(max_examples=120, deadline=None)
def test_assumption_prefix_churn_binary_heavy(instance):
    """Arena (binary implicit watches + prefix trail reuse + UNSAT trail
    retention) vs legacy vs brute force under churned assumption
    prefixes, with clause growth interleaved between solves."""
    n_vars, clauses, rounds = instance
    arena, ok_a = load(Solver, n_vars, clauses)
    legacy, ok_l = load(LegacySolver, n_vars, clauses)
    compiled, _ = load(CompiledSolver, n_vars, clauses)
    assert ok_a == ok_l
    grown = list(clauses)
    for i, assumptions in enumerate(rounds):
        result_a = arena.solve(assumptions) if ok_a else False
        result_l = legacy.solve(assumptions) if ok_l else False
        result_c = compiled.solve(assumptions)
        expected = brute_force_sat(
            n_vars, grown + [[a] for a in assumptions]
        )
        assert result_a == result_l == result_c == expected, (
            i,
            assumptions,
        )
        if result_a:
            assert model_satisfies(arena, n_vars, grown)
            assert model_satisfies(compiled, n_vars, grown)
            for a in assumptions:
                assert arena.value(abs(a)) in (None, a > 0)
        if result_c is False:
            core_c = compiled.core()
            assert set(core_c) <= set(assumptions)
            assert not brute_force_sat(
                n_vars, grown + [[a] for a in core_c]
            )
        if result_a is False and ok_a:
            # the failed-assumption core must be a genuinely
            # unsatisfiable subset even with the trail kept alive
            # (when ok_a is False solve() was never called, so core()
            # legitimately still reports the previous call's core)
            core = arena.core()
            assert set(core) <= set(assumptions)
            assert not brute_force_sat(
                n_vars, grown + [[a] for a in core]
            )
        # interleave growth: a binary clause lands on the deep-insertion
        # path while the reused trail is alive
        if i < len(rounds) - 1 and len(grown) < 34:
            extra = [
                ((i % n_vars) + 1) * (1 if i % 2 else -1),
                ((i * 3 % n_vars) + 1) * (-1 if i % 3 else 1),
            ]
            grown.append(extra)
            ok_a = arena.add_clause(extra) and ok_a
            ok_l = legacy.add_clause(extra) and ok_l
            compiled.add_clause(extra)
            assert ok_a == ok_l


# ----------------------------------------------------------------------
# enumeration equivalence (trail reuse + scoped blocking)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
def test_enumeration_sets_match_legacy(seed):
    rng = random.Random(seed)
    n = rng.randint(4, 9)
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(n)]
    for _ in range(rng.randint(1, 5)):
        clause = [
            rng.choice([1, -1]) * rng.choice(lits)
            for _ in range(rng.randint(1, 3))
        ]
        cnf.add_clause(clause)
    outs = totalizer(cnf, lits, 3)
    results = {}
    for backend in ("arena", "legacy"):
        solver = cnf.to_solver(backend=backend)
        sols = []
        for bound in (1, 2, 3):
            sols.extend(
                enumerate_solutions(
                    solver,
                    lits,
                    assumptions=[-outs[bound]],
                    block="superset",
                )
            )
        results[backend] = set(map(frozenset, sols))
        # superset-freeness
        for a in results[backend]:
            for b in results[backend]:
                assert not (a < b)
    assert results["arena"] == results["legacy"]


def test_enumeration_stats_deltas():
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(4)]
    solver = cnf.to_solver()
    deltas: list[dict] = []
    sols = list(
        enumerate_solutions(
            solver, lits, block="exact", stats_deltas=deltas
        )
    )
    assert len(sols) == 16
    assert len(deltas) == len(sols)
    for delta in deltas:
        assert set(delta) == {
            "restarts",
            "learned",
            "conflicts",
            "decisions",
            "propagations",
        }
        assert all(v >= 0 for v in delta.values())
    # the deltas must sum to (at most) the solver's accumulated totals
    assert sum(d["decisions"] for d in deltas) <= solver.stats["decisions"]


def test_enumeration_with_activation_scope():
    """block_extra + activation assumption: blocks retract with the
    scope, so a second scoped enumeration sees the full space again."""
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(3)]
    cnf.add_clause(lits)
    solver = cnf.to_solver()
    rounds = []
    for _ in range(2):
        act = cnf.new_var()
        solver.ensure_vars(act)
        sols = list(
            enumerate_solutions(
                solver,
                lits,
                assumptions=[act],
                block="exact",
                block_extra=[-act],
            )
        )
        solver.add_clause([-act])  # close the scope
        rounds.append(set(map(frozenset, sols)))
    assert rounds[0] == rounds[1]
    assert len(rounds[0]) == 7  # all assignments but the empty one


# ----------------------------------------------------------------------
# incremental totalizer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n,steps", [(5, (1, 3)), (7, (0, 2, 5)), (4, (2, 4))])
def test_incremental_totalizer_matches_fresh_encoding(n, steps):
    """Extending the bound step by step must accept/reject exactly the
    same assignments as a from-scratch totalizer at the final bound."""
    grown_cnf = CNF()
    grown_lits = [grown_cnf.new_var() for _ in range(n)]
    tot = IncrementalTotalizer(grown_cnf, grown_lits, steps[0])
    for bound in steps[1:]:
        tot.extend(bound)
    fresh_cnf = CNF()
    fresh_lits = [fresh_cnf.new_var() for _ in range(n)]
    fresh_outs = totalizer(fresh_cnf, fresh_lits, steps[-1])
    assert len(tot.outputs) == len(fresh_outs)
    for true_count in range(n + 1):
        for bound in range(steps[-1] + 1):
            expect = true_count <= bound
            for cnf, lits, outs in (
                (grown_cnf, grown_lits, tot.outputs),
                (fresh_cnf, fresh_lits, fresh_outs),
            ):
                solver = cnf.to_solver()
                forced = [
                    l if i < true_count else -l
                    for i, l in enumerate(lits)
                ]
                assumptions = forced + (
                    [-outs[bound]] if bound < len(outs) else []
                )
                assert bool(solver.solve(assumptions)) == expect, (
                    true_count,
                    bound,
                )


def test_incremental_totalizer_extends_live_solver():
    """Clauses added by extend() must reach a bound solver in place."""
    cnf = CNF()
    lits = [cnf.new_var() for _ in range(5)]
    tot = IncrementalTotalizer(cnf, lits, 1)
    solver = cnf.to_solver()
    tot.bind_solver(solver)
    tot.extend(4)
    # four true inputs must violate "at most 3" on the live solver
    assumptions = [l for l in lits[:4]] + [-tot.outputs[3]]
    assert solver.solve(assumptions) is False
    assert solver.solve([l for l in lits[:3]] + [-tot.outputs[3]]) is True


def test_incremental_totalizer_validation_and_edges():
    cnf = CNF()
    with pytest.raises(ValueError):
        IncrementalTotalizer(cnf, [], -1)
    empty = IncrementalTotalizer(cnf, [], 2)
    assert empty.outputs == []
    assert empty.bound_assumptions(5) == []
    empty.extend(7)  # no-op
    with pytest.raises(ValueError):
        empty.bound_assumptions(-1)
    single = IncrementalTotalizer(cnf, [cnf.new_var()], 0)
    assert len(single.outputs) == 1
    # shrinking is a no-op, not an error
    single.extend(0)


def test_clause_lits_debug_helper():
    s = Solver()
    a, b = s.new_var(), s.new_var()
    s.add_clause([a, -b])
    ref = s._clauses[0]
    assert sorted(s.clause_lits(ref), key=abs) == [a, -b]
