"""Tests for DRAT proof logging and the RUP checker."""

from itertools import combinations, product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import CNF, Solver
from repro.sat.proof import (
    ProofLog,
    ProofStep,
    check_drat,
    check_rup,
    solve_with_proof,
)


def _pigeonhole_cnf(holes):
    """PHP(holes+1, holes): classic small UNSAT family."""
    cnf = CNF()
    pigeons = holes + 1
    var = {
        (p, h): cnf.new_var(f"p{p}h{h}")
        for p in range(pigeons)
        for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1, p2 in combinations(range(pigeons), 2):
            cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


def _brute_force_sat(clauses, n_vars):
    for bits in product((0, 1), repeat=n_vars):
        if all(
            any(bits[abs(l) - 1] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


# ----------------------------------------------------------------------
# RUP primitive
# ----------------------------------------------------------------------


def test_rup_basic_resolution():
    assert check_rup([[1, 2], [-1, 2]], [2])
    assert not check_rup([[1, 2]], [1])


def test_rup_empty_clause():
    assert check_rup([[1], [-1]], [])
    assert not check_rup([[1]], [])


def test_rup_tautological_clause_trivially_holds():
    assert check_rup([[1]], [2, -2])


def test_rup_chain_propagation():
    clauses = [[1], [-1, 2], [-2, 3]]
    assert check_rup(clauses, [3])
    assert not check_rup(clauses, [-3])


# ----------------------------------------------------------------------
# proof log container
# ----------------------------------------------------------------------


def test_drat_text_round_trip():
    log = ProofLog()
    log.add([1, -2])
    log.delete([1, -2])
    log.add([])
    text = log.to_drat_text()
    parsed = ProofLog.from_drat_text(text)
    assert parsed.steps == log.steps
    assert parsed.ends_with_empty_clause


def test_drat_parse_rejects_missing_terminator():
    with pytest.raises(ValueError, match="end in 0"):
        ProofLog.from_drat_text("1 2\n")


def test_drat_parse_skips_comments():
    log = ProofLog.from_drat_text("c a comment\n1 0\n")
    assert log.steps == (ProofStep(delete=False, lits=(1,)),)


# ----------------------------------------------------------------------
# end-to-end: solver-produced proofs verify
# ----------------------------------------------------------------------


def test_trivial_unsat_certified():
    cnf = CNF()
    a = cnf.new_var()
    cnf.add_clauses([[a], [-a]])
    sat, proof = solve_with_proof(cnf)
    assert not sat
    assert proof.ends_with_empty_clause
    assert check_drat(cnf.clauses, proof)


@pytest.mark.parametrize("holes", [2, 3, 4])
def test_pigeonhole_proofs_verify(holes):
    cnf = _pigeonhole_cnf(holes)
    sat, proof = solve_with_proof(cnf)
    assert not sat
    assert check_drat(cnf.clauses, proof)


def test_sat_formula_has_no_empty_clause():
    cnf = CNF()
    a, b = cnf.new_var(), cnf.new_var()
    cnf.add_clauses([[a, b], [-a, b]])
    sat, proof = solve_with_proof(cnf)
    assert sat
    assert not proof.ends_with_empty_clause
    # Without the empty-clause requirement the (possibly empty) prefix of
    # learnt clauses must still be RUP-valid.
    assert check_drat(cnf.clauses, proof, require_empty=False)


def test_tampered_proof_rejected():
    cnf = _pigeonhole_cnf(3)
    _sat, proof = solve_with_proof(cnf)
    assert check_drat(cnf.clauses, proof)
    # Drop all added clauses except the final empty clause: RUP must fail.
    broken = ProofLog()
    broken.add([])
    assert not check_drat(cnf.clauses, broken)


def test_foreign_clause_rejected():
    cnf = CNF()
    a, b = cnf.new_var(), cnf.new_var()
    cnf.add_clauses([[a, b]])
    bogus = ProofLog()
    bogus.add([a])  # not RUP from (a ∨ b)
    assert not check_drat(cnf.clauses, bogus, require_empty=False)


def test_deleting_unknown_clause_rejected():
    cnf = CNF()
    a = cnf.new_var()
    cnf.add_clauses([[a]])
    log = ProofLog()
    log.delete([-a])
    assert not check_drat(cnf.clauses, log, require_empty=False)


def test_deletion_respected_by_checker():
    # Formula: the four binary clauses over a, b (UNSAT).  A proof that
    # derives [b], deletes it, then claims [] must be rejected — but is
    # accepted when [b] and [-b] survive.
    clauses = [[1, 2], [-1, 2], [1, -2], [-1, -2]]
    good = ProofLog()
    good.add([2])
    good.add([])
    assert check_drat(clauses, good)
    bad = ProofLog()
    bad.add([2])
    bad.delete([2])
    bad.add([])
    assert not check_drat(clauses, bad)


def test_unsat_from_clause_addition_logged():
    solver = Solver()
    proof = solver.start_proof()
    a = solver.new_var()
    solver.add_clause([a])
    assert not solver.add_clause([-a])
    assert proof.ends_with_empty_clause
    assert check_drat([[a], [-a]], proof)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_random_unsat_formulas_certify(data):
    n_vars = data.draw(st.integers(min_value=3, max_value=6))
    n_clauses = data.draw(st.integers(min_value=8, max_value=24))
    clauses = []
    for _ in range(n_clauses):
        width = data.draw(st.integers(min_value=1, max_value=3))
        clause = sorted(
            {
                data.draw(st.integers(min_value=1, max_value=n_vars))
                * (1 if data.draw(st.booleans()) else -1)
                for _ in range(width)
            }
        )
        clauses.append(clause)
    cnf = CNF()
    for _ in range(n_vars):
        cnf.new_var()
    cnf.add_clauses(clauses)
    sat, proof = solve_with_proof(cnf)
    assert sat == _brute_force_sat(clauses, n_vars)
    if not sat:
        assert check_drat(cnf.clauses, proof)


def test_proof_survives_clause_deletion_in_solver():
    # A formula large enough to trigger learnt-clause reduction is hard to
    # arrange deterministically; instead check that deletions recorded by
    # the solver (if any) never break verification on a mid-size instance.
    cnf = _pigeonhole_cnf(5)
    sat, proof = solve_with_proof(cnf)
    assert not sat
    assert check_drat(cnf.clauses, proof)


# ----------------------------------------------------------------------
# learnt binaries through the implicit binary watch structure
# ----------------------------------------------------------------------
def _xor_chain_cnf(n):
    """x_1, x_1 ⊕ x_2, ..., x_{n-1} ⊕ x_n, ¬x_n as 2-CNF: UNSAT, and
    every learnt clause on the way is binary or unit — the refutation
    exercises exactly the implicit binary adjacency (learnt binaries are
    routed there, never into the pair watch lists)."""
    cnf = CNF()
    xs = [cnf.new_var(f"x{i}") for i in range(n)]
    cnf.add_clause([xs[0]])
    for a, b in zip(xs, xs[1:]):
        cnf.add_clause([-a, b])
    cnf.add_clause([-xs[-1]])
    return cnf


def test_binary_only_refutation_certifies():
    cnf = _xor_chain_cnf(12)
    sat, proof = solve_with_proof(cnf)
    assert not sat
    assert proof.ends_with_empty_clause
    assert check_drat(cnf.clauses, proof)


def test_learnt_binary_clauses_logged_and_checkable():
    """A formula whose conflicts learn *binary* clauses: the learnt
    binaries live in the implicit watch structure, and the DRAT log must
    still replay through the independent checker."""
    cnf = _pigeonhole_cnf(3)  # PHP(4, 3) refutations learn binaries
    solver = Solver()
    proof = solver.start_proof()
    cnf.to_solver(solver)
    assert solver.solve() is False
    binary_steps = [
        s for s in proof if not s.delete and len(s.lits) == 2
    ]
    assert binary_steps  # binary learning actually happened
    # Learnt binaries must be registered in the implicit adjacency of
    # both their literals and in *no* (ref, blocker) pair watch list.
    learnt_binary_refs = [
        ref for ref in solver._learnts if solver._arena[ref - 2] == 2
    ]
    assert learnt_binary_refs
    pair_watched = {
        ws[i] for ws in solver._watches for i in range(0, len(ws), 2)
    }
    for ref in learnt_binary_refs:
        l0, l1 = solver._arena[ref], solver._arena[ref + 1]
        assert ref in solver._bin_watches[l0][1::2]
        assert ref in solver._bin_watches[l1][1::2]
        assert ref not in pair_watched
    assert check_drat(cnf.clauses, proof)


def test_certify_correction_bound_with_binary_learning():
    """certify_correction_bound end-to-end: the refutation of "no k=1
    correction" runs over the mux CNF (binary-heavy after this PR's
    implicit watch routing) and must still produce a checkable proof."""
    from repro.circuits import library
    from repro.diagnosis import certify_correction_bound
    from repro.experiments import make_workload

    w = make_workload(library.ripple_carry_adder(3), p=2, m_max=6, seed=7)
    verdict = certify_correction_bound(w.faulty, w.tests, k=0, check=True)
    assert not verdict.has_correction
    assert verdict.verified is True
    assert verdict.proof is not None and verdict.proof.ends_with_empty_clause
