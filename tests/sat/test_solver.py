"""Tests for the CDCL solver, including brute-force cross-validation."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Solver
from repro.sat.solver import _luby


def brute_force_sat(n_vars, clauses):
    for bits in itertools.product([False, True], repeat=n_vars):
        if all(
            any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def model_satisfies(solver, n_vars, clauses):
    model = {v: solver.value(v) for v in range(1, n_vars + 1)}
    return all(
        any(
            model[abs(lit)] is None or model[abs(lit)] == (lit > 0)
            for lit in clause
        )
        for clause in clauses
    )


@st.composite
def random_instance(draw):
    n_vars = draw(st.integers(1, 9))
    n_clauses = draw(st.integers(1, 40))
    clauses = [
        draw(
            st.lists(
                st.integers(1, n_vars).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=4,
            )
        )
        for _ in range(n_clauses)
    ]
    return n_vars, clauses


@pytest.mark.slow
@given(random_instance())
@settings(max_examples=150, deadline=None)
def test_agrees_with_brute_force(instance):
    n_vars, clauses = instance
    solver = Solver()
    solver.ensure_vars(n_vars)
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    result = solver.solve() if ok else False
    assert result == brute_force_sat(n_vars, clauses)
    if result:
        assert model_satisfies(solver, n_vars, clauses)


def test_empty_formula_is_sat():
    assert Solver().solve() is True


def test_empty_clause_is_unsat():
    s = Solver()
    assert s.add_clause([]) is False
    assert s.solve() is False


def test_unit_contradiction():
    s = Solver()
    s.new_var()
    assert s.add_clause([1])
    assert s.add_clause([-1]) is False
    assert s.solve() is False


def test_tautology_dropped():
    s = Solver()
    s.ensure_vars(2)
    assert s.add_clause([1, -1])
    assert s.num_clauses == 0
    assert s.solve() is True


def test_duplicate_literals_merged():
    s = Solver()
    s.ensure_vars(2)
    s.add_clause([1, 1, 2])
    assert s.solve()


def test_model_requires_sat():
    s = Solver()
    s.new_var()
    s.add_clause([1])
    with pytest.raises(RuntimeError):
        s.model()
    s.solve()
    assert s.model() == [1]


@pytest.mark.parametrize(
    "pigeons,holes,expected", [(3, 3, True), (4, 3, False), (6, 5, False)]
)
def test_pigeonhole(pigeons, holes, expected):
    s = Solver()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[p, h] = s.new_var()
    for p in range(pigeons):
        s.add_clause([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([-var[p1, h], -var[p2, h]])
    assert s.solve() == expected


class TestAssumptions:
    def test_sat_under_assumptions(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve([-a]) is True
        assert s.value(b) is True
        # solver state reusable
        assert s.solve([-b]) is True
        assert s.value(a) is True
        assert s.solve([-a, -b]) is False

    def test_core_is_subset_of_assumptions(self):
        s = Solver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([-a, b])
        s.add_clause([-b, c])
        assert s.solve([a, -c]) is False
        core = s.core()
        assert core
        assert set(core) <= {a, -c}

    def test_core_with_irrelevant_assumptions(self):
        s = Solver()
        a, b, c, d = (s.new_var() for _ in range(4))
        s.add_clause([-a, b])
        assert s.solve([d, a, -b, c]) is False
        core = s.core()
        assert set(core) <= {a, -b}

    def test_contradictory_assumptions(self):
        s = Solver()
        a = s.new_var()
        s.new_var()
        assert s.solve([a, -a]) is False
        assert set(s.core()) == {a, -a}

    def test_root_level_conflict_core(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve([-a]) is False
        assert s.core() == [-a]


class TestIncremental:
    def test_add_clauses_between_solves(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve() is True
        s.add_clause([-a])
        assert s.solve() is True
        assert s.value(b) is True
        s.add_clause([-b])
        assert s.solve() is False

    def test_learned_clauses_survive(self):
        s = Solver()
        n = 8
        for _ in range(n):
            s.new_var()
        # xor-ish chain that forces search
        for i in range(1, n - 1):
            s.add_clause([i, i + 1, -(i + 2)])
            s.add_clause([-i, -(i + 1), -(i + 2)])
        assert s.solve() is True
        conflicts_before = s.stats["conflicts"]
        assert s.solve() is True  # re-solve is cheap / still correct
        assert s.stats["conflicts"] >= conflicts_before

    def test_new_vars_after_solve(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve()
        b = s.new_var()
        s.add_clause([-b])
        assert s.solve()
        assert s.value(a) is True and s.value(b) is False


class TestHeuristicHooks:
    def test_phase_hint_respected_on_free_variable(self):
        s = Solver()
        a = s.new_var()
        s.new_var()
        s.set_phase(a, True)
        assert s.solve() is True
        assert s.value(a) is True
        s2 = Solver()
        a2 = s2.new_var()
        s2.set_phase(a2, False)
        assert s2.solve() is True
        assert s2.value(a2) is False

    def test_bump_activity_prioritizes_variable(self):
        s = Solver()
        lits = [s.new_var() for _ in range(10)]
        s.add_clause(lits)
        s.bump_activity(lits[7], 100.0)
        s.set_phase(lits[7], True)
        assert s.solve() is True
        assert s.value(lits[7]) is True


def test_conflict_limit_returns_none():
    s = Solver()
    var = {}
    # PHP(8,7) is hard enough to exceed a tiny conflict budget
    for p in range(8):
        for h in range(7):
            var[p, h] = s.new_var()
    for p in range(8):
        s.add_clause([var[p, h] for h in range(7)])
    for h in range(7):
        for p1 in range(8):
            for p2 in range(p1 + 1, 8):
                s.add_clause([-var[p1, h], -var[p2, h]])
    assert s.solve(conflict_limit=5) is None
    # and the solver is still usable afterwards
    assert s.solve() is False


def test_luby_sequence():
    assert [_luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
    ]


def test_stats_populated():
    s = Solver()
    a, b = s.new_var(), s.new_var()
    s.add_clause([a, b])
    s.solve()
    assert s.stats["propagations"] >= 0
    assert s.stats["decisions"] >= 1
