"""Tests for the circuit-to-CNF encoder."""

import random
from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, GateType, random_circuit
from repro.circuits.gates import eval_gate
from repro.sat import CNF, Solver, encode_circuit, encode_gate, encode_mux
from repro.sim import simulate

ENCODABLE = [
    GateType.BUF,
    GateType.NOT,
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


@pytest.mark.parametrize("gtype", ENCODABLE)
@pytest.mark.parametrize("arity", [1, 2, 3, 4])
def test_gate_encoding_matches_eval(gtype, arity):
    if gtype in (GateType.BUF, GateType.NOT) and arity != 1:
        pytest.skip("single-input gate")
    if gtype not in (GateType.BUF, GateType.NOT) and arity == 1:
        pytest.skip("multi-input gate")
    cnf = CNF()
    ins = [cnf.new_var() for _ in range(arity)]
    out = cnf.new_var()
    encode_gate(cnf, gtype, out, ins)
    solver = cnf.to_solver()
    for bits in product([0, 1], repeat=arity):
        assumptions = [v if b else -v for v, b in zip(ins, bits)]
        assert solver.solve(assumptions) is True
        assert solver.value(out) == bool(eval_gate(gtype, list(bits)))


def test_constant_encodings():
    cnf = CNF()
    z, o = cnf.new_var(), cnf.new_var()
    encode_gate(cnf, GateType.CONST0, z, [])
    encode_gate(cnf, GateType.CONST1, o, [])
    solver = cnf.to_solver()
    assert solver.solve() is True
    assert solver.value(z) is False and solver.value(o) is True


def test_dff_rejected():
    cnf = CNF()
    a, b = cnf.new_var(), cnf.new_var()
    with pytest.raises(ValueError):
        encode_gate(cnf, GateType.DFF, b, [a])


def test_mux_truth_table():
    cnf = CNF()
    out, sel, c, orig = (cnf.new_var() for _ in range(4))
    encode_mux(cnf, out, sel, c, orig)
    solver = cnf.to_solver()
    for s, cv, ov in product([0, 1], repeat=3):
        assumptions = [
            sel if s else -sel,
            c if cv else -c,
            orig if ov else -orig,
        ]
        assert solver.solve(assumptions) is True
        expected = cv if s else ov
        assert solver.value(out) == bool(expected)


@given(st.integers(0, 5000), st.integers(0, 2**32))
@settings(max_examples=30, deadline=None)
def test_circuit_encoding_agrees_with_simulation(seed, vec_seed):
    circuit = random_circuit(
        n_inputs=5, n_outputs=2, n_gates=20, seed=seed
    )
    cnf = CNF()
    var_of = encode_circuit(cnf, circuit)
    solver = cnf.to_solver()
    rng = random.Random(vec_seed)
    vec = {pi: rng.getrandbits(1) for pi in circuit.inputs}
    assumptions = [
        var_of[pi] if vec[pi] else -var_of[pi] for pi in circuit.inputs
    ]
    assert solver.solve(assumptions) is True
    expected = simulate(circuit, vec)
    for sig in circuit.nodes:
        value = solver.value(var_of[sig])
        assert value is None or value == bool(expected[sig])


def test_encoding_is_functionally_complete():
    """Constraining outputs must determine feasible input sets (no spurious
    models): encode a parity tree and check both polarities."""
    from repro.circuits.library import parity_tree

    circuit = parity_tree(4)
    cnf = CNF()
    var_of = encode_circuit(cnf, circuit)
    out_var = var_of[circuit.outputs[0]]
    solver = cnf.to_solver()
    for target in (True, False):
        assert solver.solve([out_var if target else -out_var]) is True
        bits = [
            int(bool(solver.value(var_of[pi]))) for pi in circuit.inputs
        ]
        assert (sum(bits) % 2 == 1) == target


def test_shared_input_vars():
    circuit = random_circuit(n_inputs=4, n_outputs=2, n_gates=10, seed=1)
    cnf = CNF()
    first = encode_circuit(cnf, circuit, prefix="a:")
    second = encode_circuit(
        cnf,
        circuit,
        prefix="b:",
        input_vars={pi: first[pi] for pi in circuit.inputs},
    )
    # Same circuit on shared inputs: outputs must match in every model.
    solver = cnf.to_solver()
    for out in circuit.outputs:
        a, b = first[out], second[out]
        assert solver.solve([a, -b]) is False
        assert solver.solve([-a, b]) is False


def test_sequential_circuit_rejected(s27):
    with pytest.raises(ValueError, match="combinational"):
        encode_circuit(CNF(), s27)


def test_named_variables_registered():
    circuit = random_circuit(n_inputs=3, n_outputs=1, n_gates=5, seed=2)
    cnf = CNF()
    var_of = encode_circuit(cnf, circuit, prefix="t0:")
    for sig, var in var_of.items():
        assert cnf.name_of(var) == f"t0:{sig}"
        assert cnf.var(f"t0:{sig}") == var
