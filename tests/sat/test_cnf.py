"""Tests for the CNF container."""

import pytest

from repro.sat import CNF


def test_new_var_sequence():
    cnf = CNF()
    assert cnf.new_var() == 1
    assert cnf.new_var() == 2
    assert cnf.num_vars == 2


def test_named_vars():
    cnf = CNF()
    a = cnf.new_var("a")
    assert cnf.var("a") == a
    assert cnf.name_of(a) == "a"
    assert cnf.name_of(cnf.new_var()) is None
    with pytest.raises(KeyError):
        cnf.var("missing")
    with pytest.raises(ValueError):
        cnf.new_var("a")


def test_new_vars_bulk():
    cnf = CNF()
    vars_ = cnf.new_vars(3, prefix="s")
    assert vars_ == [1, 2, 3]
    assert cnf.var("s0") == 1 and cnf.var("s2") == 3


def test_add_clause_validation():
    cnf = CNF()
    cnf.new_var()
    with pytest.raises(ValueError):
        cnf.add_clause([0])
    with pytest.raises(ValueError):
        cnf.add_clause([2])  # var 2 not allocated
    cnf.add_clause([1, -1])
    assert cnf.num_clauses == 1


def test_iteration_and_clauses():
    cnf = CNF()
    a, b = cnf.new_var(), cnf.new_var()
    cnf.add_clauses([[a], [-a, b]])
    assert list(cnf) == [(a,), (-a, b)]


def test_to_solver_roundtrip():
    cnf = CNF()
    a, b = cnf.new_var(), cnf.new_var()
    cnf.add_clause([a])
    cnf.add_clause([-a, b])
    solver = cnf.to_solver()
    assert solver.solve() is True
    assert solver.value(a) is True and solver.value(b) is True


def test_to_solver_reuses_given_solver():
    from repro.sat import Solver

    cnf = CNF()
    a = cnf.new_var()
    cnf.add_clause([a])
    solver = Solver()
    out = cnf.to_solver(solver)
    assert out is solver
    assert solver.solve() and solver.value(a) is True
