"""Tests for full-scan conversion (DFF -> PPI/PPO)."""

from repro.circuits import random_sequential_circuit, to_combinational
from repro.sim import simulate


def test_combinational_passthrough(c17):
    result = to_combinational(c17)
    assert result.circuit.structurally_equal(c17)
    assert result.ppi_of == {}
    assert result.ppo_of == {}


def test_s27_scan_shape(s27):
    result = to_combinational(s27)
    scan = result.circuit
    assert scan.is_combinational
    assert set(result.ppi_of) == {"G5", "G6", "G7"}
    # DFF outputs become PPIs, DFF inputs become PPOs.
    assert set(scan.inputs) == set(s27.inputs) | {"G5", "G6", "G7"}
    assert set(result.ppo_of.values()) <= set(scan.outputs)
    scan.validate()


def test_scan_preserves_combinational_logic(s27):
    """One frame of sequential simulation == scan simulation with the same
    present state on the PPIs."""
    result = to_combinational(s27)
    scan = result.circuit
    import itertools

    for bits in itertools.product([0, 1], repeat=7):
        pi_vals = dict(zip(("G0", "G1", "G2", "G3"), bits[:4]))
        state = dict(zip(("G5", "G6", "G7"), bits[4:]))
        seq_vals = simulate(s27, pi_vals, state=state)
        scan_vals = simulate(scan, {**pi_vals, **state})
        for out in s27.outputs:
            assert seq_vals[out] == scan_vals[out]
        for dff, d_sig in result.ppo_of.items():
            assert seq_vals[d_sig] == scan_vals[d_sig]


def test_scan_random_sequential():
    seq = random_sequential_circuit(
        n_inputs=4, n_outputs=2, n_gates=20, n_dffs=3, seed=17
    )
    result = to_combinational(seq)
    scan = result.circuit
    scan.validate()
    assert scan.is_combinational
    assert len(scan.inputs) == len(seq.inputs) + 3


def test_scan_does_not_duplicate_output_ppos():
    """A DFF fed directly by a primary output must not double-declare it."""
    from repro.circuits import Circuit, GateType

    c = Circuit("loop")
    c.add_input("a")
    c.add_gate("g", GateType.NOT, ["a"])
    c.add_gate("q", GateType.DFF, ["g"])
    c.add_gate("h", GateType.AND, ["q", "a"])
    c.add_output("g")  # g is both PO and DFF input
    c.add_output("h")
    result = to_combinational(c)
    assert sorted(result.circuit.outputs) == ["g", "h"]
