"""Tests for the .bench parser/writer."""

import pytest

from repro.circuits import (
    BenchFormatError,
    GateType,
    dump,
    parse_bench,
)
from repro.circuits.library import c17, s27
from repro.circuits.generator import random_circuit


def test_parse_minimal():
    c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
    assert c.inputs == ("a",)
    assert c.outputs == ("y",)
    assert c.node("y").gtype is GateType.NOT


def test_parse_comments_and_blank_lines():
    text = """
    # a comment
    INPUT(a)   # trailing comment

    OUTPUT(y)
    y = BUFF(a)
    """
    c = parse_bench(text)
    assert c.node("y").gtype is GateType.BUF  # BUFF alias


def test_parse_case_insensitive_types():
    c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = nand(a, b)\n")
    assert c.node("y").gtype is GateType.NAND


def test_parse_multi_input_gate():
    c = parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = OR(a, b, c)\n"
    )
    assert c.node("y").fanins == ("a", "b", "c")


def test_parse_rejects_unknown_type():
    with pytest.raises(BenchFormatError, match="unknown gate type"):
        parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")


def test_parse_rejects_garbage_line():
    with pytest.raises(BenchFormatError, match="line 1"):
        parse_bench("this is not bench\n")


def test_parse_rejects_dangling_output():
    with pytest.raises(BenchFormatError):
        parse_bench("INPUT(a)\nOUTPUT(ghost)\n")


def test_parse_rejects_duplicate_definition():
    with pytest.raises(BenchFormatError):
        parse_bench("INPUT(a)\nOUTPUT(a)\na = NOT(a)\n")


def test_roundtrip_c17():
    original = c17()
    text = dump(original)
    again = parse_bench(text, name="c17")
    assert again.structurally_equal(original)


def test_roundtrip_s27_sequential():
    original = s27()
    again = parse_bench(dump(original), name="s27")
    assert again.structurally_equal(original)
    assert len(again.dffs) == 3


def test_roundtrip_random_circuits():
    for seed in range(5):
        original = random_circuit(
            n_inputs=5, n_outputs=3, n_gates=25, seed=seed
        )
        again = parse_bench(dump(original), name=original.name)
        assert again.structurally_equal(original)


def test_dump_writes_file(tmp_path):
    path = tmp_path / "c17.bench"
    dump(c17(), path)
    from repro.circuits import load

    assert load(path).structurally_equal(c17())
    assert load(path).name == "c17"
