"""Unit tests for the Circuit netlist model."""

import pytest

from repro.circuits import Circuit, CircuitError, GateType
from repro.circuits.netlist import subcircuit_names


def build_half_adder():
    c = Circuit("ha")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("sum", GateType.XOR, ["a", "b"])
    c.add_gate("carry", GateType.AND, ["a", "b"])
    c.add_output("sum")
    c.add_output("carry")
    return c


def test_basic_construction():
    c = build_half_adder()
    c.validate()
    assert c.inputs == ("a", "b")
    assert c.outputs == ("sum", "carry")
    assert c.num_gates == 2
    assert len(c) == 4


def test_duplicate_signal_rejected():
    c = Circuit()
    c.add_input("a")
    with pytest.raises(CircuitError):
        c.add_input("a")
    with pytest.raises(CircuitError):
        c.add_gate("a", GateType.NOT, ["a"])


def test_duplicate_output_rejected():
    c = build_half_adder()
    with pytest.raises(CircuitError):
        c.add_output("sum")


def test_unknown_fanin_caught_by_validate():
    c = Circuit()
    c.add_input("a")
    c.add_gate("g", GateType.AND, ["a", "ghost"])
    c.add_output("g")
    with pytest.raises(CircuitError):
        c.validate()


def test_forward_references_allowed():
    c = Circuit()
    c.add_input("a")
    c.add_gate("g1", GateType.NOT, ["g2"])  # g2 defined later
    c.add_gate("g2", GateType.NOT, ["a"])
    c.add_output("g1")
    c.validate()
    assert c.topological_order().index("g2") < c.topological_order().index("g1")


def test_combinational_cycle_detected():
    c = Circuit()
    c.add_input("a")
    c.add_gate("x", GateType.AND, ["a", "y"])
    c.add_gate("y", GateType.AND, ["a", "x"])
    c.add_output("x")
    with pytest.raises(CircuitError, match="cycle"):
        c.validate()


def test_dff_breaks_cycles():
    c = Circuit()
    c.add_input("a")
    c.add_gate("q", GateType.DFF, ["d"])
    c.add_gate("d", GateType.XOR, ["a", "q"])
    c.add_output("d")
    c.validate()  # no cycle: DFF is a sequential element
    assert c.is_sequential
    assert not c.is_combinational


def test_arity_validation():
    with pytest.raises(CircuitError):
        Circuit().add_gate("g", GateType.NOT, ["a", "b"])
    with pytest.raises(CircuitError):
        Circuit().add_gate("g", GateType.AND, [])


def test_input_shape_validation():
    c = Circuit()
    with pytest.raises(CircuitError):
        c.add_gate("g", GateType.INPUT)


def test_replace_gate():
    c = build_half_adder()
    c.replace_gate("carry", gtype=GateType.OR)
    assert c.node("carry").gtype is GateType.OR
    assert c.node("carry").fanins == ("a", "b")
    with pytest.raises(CircuitError):
        c.replace_gate("a", gtype=GateType.NOT)


def test_replace_gate_invalidates_caches():
    c = build_half_adder()
    topo_before = c.topological_order()
    fanouts_before = c.fanouts()
    c.replace_gate("sum", fanins=["a", "a"])
    assert c.fanouts()["b"] == ("carry",)
    assert fanouts_before["b"] == ("sum", "carry")
    assert c.topological_order()  # recomputable


def test_copy_is_independent():
    c = build_half_adder()
    d = c.copy()
    d.replace_gate("sum", gtype=GateType.XNOR)
    assert c.node("sum").gtype is GateType.XOR
    assert d.node("sum").gtype is GateType.XNOR
    assert not c.structurally_equal(d)
    assert c.structurally_equal(c.copy())


def test_stats():
    stats = build_half_adder().stats()
    assert stats["inputs"] == 2
    assert stats["outputs"] == 2
    assert stats["gates"] == 2
    assert stats["type_XOR"] == 1


def test_subcircuit_names():
    c = build_half_adder()
    assert subcircuit_names(c, ["sum"]) == {"sum", "a", "b"}
    assert subcircuit_names(c, ["a"]) == {"a"}


def test_node_lookup_errors():
    c = build_half_adder()
    with pytest.raises(CircuitError):
        c.node("nope")
    assert "sum" in c
    assert "nope" not in c


def test_gates_excludes_inputs_and_dffs(s27):
    gate_names = set(s27.gate_names)
    assert "G5" not in gate_names  # DFF
    assert "G0" not in gate_names  # input
    assert "G11" in gate_names
    assert s27.num_gates == 10
    assert len(s27.dffs) == 3
