"""Tests for equivalence-preserving netlist rewrites."""

import pytest

from repro.circuits import (
    Circuit,
    GateType,
    de_morgan_rewrite,
    decompose_wide_gates,
    random_circuit,
)
from repro.circuits.library import c17, mux_tree
from repro.verify import check_equivalence


def test_de_morgan_preserves_function(c17):
    rewritten = de_morgan_rewrite(c17, seed=0)
    assert check_equivalence(c17, rewritten, method="sat").equivalent


def test_de_morgan_rewrites_types(c17):
    rewritten = de_morgan_rewrite(c17, fraction=1.0, seed=0)
    # c17 is all NANDs; every one becomes an OR over fresh inverters.
    for name in c17.gate_names:
        assert rewritten.node(name).gtype is GateType.OR
    assert rewritten.num_gates > c17.num_gates


def test_de_morgan_fraction_zero_is_identity(c17):
    rewritten = de_morgan_rewrite(c17, fraction=0.0, seed=0)
    assert rewritten.structurally_equal(c17.copy(name=rewritten.name))


def test_de_morgan_fraction_validated(c17):
    with pytest.raises(ValueError, match="fraction"):
        de_morgan_rewrite(c17, fraction=1.5)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_de_morgan_on_random_circuits(seed):
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=seed)
    rewritten = de_morgan_rewrite(circuit, fraction=0.5, seed=seed)
    assert check_equivalence(circuit, rewritten, method="sat").equivalent


def test_decompose_splits_wide_gates():
    mux = mux_tree(2)  # contains a 4-input OR and 3-input ANDs
    decomposed = decompose_wide_gates(mux, max_fanin=2, seed=0)
    assert all(len(g.fanins) <= 2 for g in decomposed.gates)
    assert decomposed.num_gates > mux.num_gates
    assert check_equivalence(mux, decomposed, method="sat").equivalent


def test_decompose_keeps_output_names():
    mux = mux_tree(2)
    decomposed = decompose_wide_gates(mux, seed=1)
    assert decomposed.outputs == mux.outputs
    for out in mux.outputs:
        assert out in decomposed


def test_decompose_handles_inverting_roots():
    c = Circuit("wide_nor")
    for pi in ("a", "b", "c", "d"):
        c.add_input(pi)
    c.add_gate("z", GateType.NOR, ["a", "b", "c", "d"])
    c.add_output("z")
    c.validate()
    decomposed = decompose_wide_gates(c, seed=0)
    assert decomposed.node("z").gtype is GateType.NOR
    assert len(decomposed.node("z").fanins) == 2
    assert check_equivalence(c, decomposed, method="sat").equivalent


def test_decompose_xor_chains():
    c = Circuit("wide_xnor")
    for pi in ("a", "b", "c", "d", "e"):
        c.add_input(pi)
    c.add_gate("z", GateType.XNOR, ["a", "b", "c", "d", "e"])
    c.add_output("z")
    c.validate()
    decomposed = decompose_wide_gates(c, seed=0)
    assert check_equivalence(c, decomposed, method="sat").equivalent


def test_decompose_max_fanin_validated(c17):
    with pytest.raises(ValueError, match="max_fanin"):
        decompose_wide_gates(c17, max_fanin=1)


def test_rewrites_compose():
    mux = mux_tree(2)
    both = de_morgan_rewrite(decompose_wide_gates(mux, seed=3), seed=3)
    assert check_equivalence(mux, both, method="sat").equivalent
