"""Unit tests for gate evaluation over all three domains."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.circuits.gates import (
    CONTROLLING_VALUE,
    FUNCTIONAL_TYPES,
    GateType,
    X,
    eval_gate,
    eval_gate_ternary,
    eval_gate_words,
)

MULTI = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


def ref_eval(gtype, ins):
    """Independent reference implementation."""
    if gtype is GateType.AND:
        return int(all(ins))
    if gtype is GateType.NAND:
        return 1 - int(all(ins))
    if gtype is GateType.OR:
        return int(any(ins))
    if gtype is GateType.NOR:
        return 1 - int(any(ins))
    if gtype is GateType.XOR:
        return sum(ins) % 2
    if gtype is GateType.XNOR:
        return 1 - sum(ins) % 2
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return 1 - ins[0]
    raise AssertionError(gtype)


@pytest.mark.parametrize("gtype", MULTI)
@pytest.mark.parametrize("arity", [2, 3, 4])
def test_eval_gate_matches_reference(gtype, arity):
    for ins in itertools.product([0, 1], repeat=arity):
        assert eval_gate(gtype, list(ins)) == ref_eval(gtype, ins)


@pytest.mark.parametrize("gtype", [GateType.BUF, GateType.NOT])
def test_single_input_gates(gtype):
    for v in (0, 1):
        assert eval_gate(gtype, [v]) == ref_eval(gtype, [v])


def test_constants():
    assert eval_gate(GateType.CONST0, []) == 0
    assert eval_gate(GateType.CONST1, []) == 1


def test_input_has_no_function():
    with pytest.raises(ValueError):
        eval_gate(GateType.INPUT, [])


def test_empty_fanin_rejected():
    with pytest.raises(ValueError):
        eval_gate(GateType.AND, [])


def test_dff_acts_as_buffer_combinationally():
    assert eval_gate(GateType.DFF, [1]) == 1
    assert eval_gate(GateType.DFF, [0]) == 0


@pytest.mark.parametrize("gtype", MULTI)
def test_words_agree_with_scalar(gtype):
    mask = 0xFF
    for a in range(4):
        for b in range(4):
            word = eval_gate_words(gtype, [a, b], mask)
            for bit in range(8):
                scalar = eval_gate(gtype, [(a >> bit) & 1, (b >> bit) & 1])
                assert (word >> bit) & 1 == scalar


@given(
    st.sampled_from(MULTI),
    st.lists(st.integers(0, 1), min_size=2, max_size=5),
)
def test_ternary_agrees_on_binary_values(gtype, ins):
    assert eval_gate_ternary(gtype, ins) == eval_gate(gtype, ins)


def test_ternary_controlling_dominates_x():
    assert eval_gate_ternary(GateType.AND, [0, X]) == 0
    assert eval_gate_ternary(GateType.NAND, [0, X]) == 1
    assert eval_gate_ternary(GateType.OR, [1, X]) == 1
    assert eval_gate_ternary(GateType.NOR, [1, X]) == 0


def test_ternary_x_propagates_when_undetermined():
    assert eval_gate_ternary(GateType.AND, [1, X]) == X
    assert eval_gate_ternary(GateType.OR, [0, X]) == X
    assert eval_gate_ternary(GateType.XOR, [1, X]) == X
    assert eval_gate_ternary(GateType.NOT, [X]) == X


def test_controlling_values_table():
    # An input at the controlling value must determine the output.
    for gtype, ctrl in CONTROLLING_VALUE.items():
        if ctrl is None or gtype not in MULTI:
            continue
        out_with_0 = eval_gate(gtype, [ctrl, 0])
        out_with_1 = eval_gate(gtype, [ctrl, 1])
        assert out_with_0 == out_with_1


def test_functional_types_is_consistent():
    assert GateType.INPUT not in FUNCTIONAL_TYPES
    assert GateType.DFF not in FUNCTIONAL_TYPES
    assert GateType.AND in FUNCTIONAL_TYPES
