"""Tests for the structural Verilog reader/writer."""

import pytest

from repro.circuits import (
    GateType,
    VerilogFormatError,
    dump_verilog,
    library,
    parse_verilog,
    random_circuit,
)
from repro.testgen import are_equivalent

C17_VERILOG = """
// ISCAS85 c17 in structural verilog
module c17 (G1, G2, G3, G6, G7, G22, G23);
  input G1, G2, G3, G6, G7;
  output G22, G23;
  wire G10, G11, G16, G19;
  nand n1 (G10, G1, G3);
  nand n2 (G11, G3, G6);
  nand n3 (G16, G2, G11);
  nand n4 (G19, G11, G7);
  nand n5 (G22, G10, G16);
  nand n6 (G23, G16, G19);
endmodule
"""


def test_parse_c17():
    circuit = parse_verilog(C17_VERILOG)
    assert circuit.name == "c17"
    assert circuit.num_gates == 6
    assert are_equivalent(circuit, library.c17())


def test_block_comments_and_instance_names_optional():
    src = """
    module m (a, y); /* block
       comment */ input a; output y;
    not (y, a);
    endmodule
    """
    circuit = parse_verilog(src)
    assert circuit.node("y").gtype is GateType.NOT


def test_dff_primitive():
    src = """
    module seq (clkless, q);
      input clkless; output q;
      wire d;
      dff f1 (q, d);
      xor x1 (d, clkless, q);
    endmodule
    """
    circuit = parse_verilog(src)
    assert circuit.is_sequential
    assert circuit.node("q").gtype is GateType.DFF


def test_rejects_behavioural_code():
    with pytest.raises(VerilogFormatError, match="unsupported construct"):
        parse_verilog(
            "module m (a); input a; always @(a) x = a; endmodule"
        )


def test_rejects_vectors():
    with pytest.raises(VerilogFormatError, match="vector"):
        parse_verilog(
            "module m (a, y); input [3:0] a; output y; "
            "and g (y, a); endmodule"
        )


def test_rejects_missing_module():
    with pytest.raises(VerilogFormatError, match="no structural module"):
        parse_verilog("wire x;")


def test_rejects_undriven_output():
    with pytest.raises(VerilogFormatError):
        parse_verilog("module m (a, y); input a; output y; endmodule")


def test_roundtrip_library_circuits():
    for name in ("c17", "maj3", "s27"):
        original = library.get_circuit(name)
        text = dump_verilog(original)
        again = parse_verilog(text)
        assert again.structurally_equal(original) or are_equivalent_seqsafe(
            original, again
        )


def are_equivalent_seqsafe(a, b):
    from repro.circuits import to_combinational

    return are_equivalent(
        to_combinational(a).circuit, to_combinational(b).circuit
    )


def test_roundtrip_random_circuits():
    for seed in range(4):
        original = random_circuit(
            n_inputs=5, n_outputs=3, n_gates=20, seed=seed
        )
        again = parse_verilog(dump_verilog(original))
        assert are_equivalent(original, again)


def test_load_and_dump_files(tmp_path):
    from repro.circuits import load_verilog

    path = tmp_path / "c17.v"
    path.write_text(C17_VERILOG)
    circuit = load_verilog(path)
    assert circuit.num_gates == 6
    out = tmp_path / "round.v"
    dump_verilog(circuit, out)
    assert are_equivalent(load_verilog(out), circuit)


def test_bench_and_verilog_agree():
    """Same circuit through both serializers stays equivalent."""
    from repro.circuits import dump, parse_bench

    circuit = random_circuit(n_inputs=6, n_outputs=2, n_gates=25, seed=11)
    via_bench = parse_bench(dump(circuit))
    via_verilog = parse_verilog(dump_verilog(circuit))
    assert are_equivalent(via_bench, via_verilog)
