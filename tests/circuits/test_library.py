"""Tests for the embedded circuit library (incl. paper Figure 5 witnesses)."""

import itertools

import pytest

from repro.circuits import library
from repro.sim import simulate


def test_c17_shape(c17):
    assert len(c17.inputs) == 5
    assert len(c17.outputs) == 2
    assert c17.num_gates == 6
    assert all(g.gtype.value == "NAND" for g in c17.gates)


def test_s27_shape(s27):
    assert len(s27.inputs) == 4
    assert s27.outputs == ("G17",)
    assert len(s27.dffs) == 3
    assert s27.num_gates == 10


def test_registry_roundtrip():
    for name in library.available_circuits():
        c = library.get_circuit(name)
        c.validate()
        assert c.name == name or c.name.startswith(name)


def test_registry_unknown_name():
    with pytest.raises(KeyError, match="unknown circuit"):
        library.get_circuit("s99999")


def test_fig5a_semantics(fig5a_circuit):
    vec, out, correct = library.FIG5A_TEST
    values = simulate(fig5a_circuit, vec)
    assert values[out] == 1 - correct  # the test fails
    # {A} and {D} rectify; {B} and {C} alone cannot.
    assert simulate(fig5a_circuit, vec, forced={"A": 1})[out] == correct
    assert simulate(fig5a_circuit, vec, forced={"D": 1})[out] == correct
    for g in ("B", "C"):
        for v in (0, 1):
            assert simulate(fig5a_circuit, vec, forced={g: v})[out] != correct


def test_fig5b_semantics(fig5b_circuit):
    vec, out, correct = library.FIG5B_TEST
    values = simulate(fig5b_circuit, vec)
    assert values[out] == 1 - correct
    # {A, B} rectifies but neither {A} nor {B} alone does.
    assert (
        simulate(fig5b_circuit, vec, forced={"A": 1, "B": 1})[out] == correct
    )
    for forced in ({"A": 0}, {"A": 1}, {"B": 0}, {"B": 1}):
        assert simulate(fig5b_circuit, vec, forced=forced)[out] != correct


def test_ripple_carry_adder_exhaustive():
    rca = library.ripple_carry_adder(3)
    for a, b, cin in itertools.product(range(8), range(8), range(2)):
        vec = {f"a{i}": (a >> i) & 1 for i in range(3)}
        vec |= {f"b{i}": (b >> i) & 1 for i in range(3)}
        vec["cin"] = cin
        vals = simulate(rca, vec)
        got = sum(vals[f"s{i}"] << i for i in range(3)) + (vals["c2"] << 3)
        assert got == a + b + cin


def test_parity_tree():
    par = library.parity_tree(5)
    for bits in itertools.product([0, 1], repeat=5):
        vec = {f"x{i}": bits[i] for i in range(5)}
        assert simulate(par, vec)[par.outputs[0]] == sum(bits) % 2


def test_majority():
    maj = library.majority()
    for bits in itertools.product([0, 1], repeat=3):
        vec = dict(zip("abc", bits))
        assert simulate(maj, vec)["out"] == int(sum(bits) >= 2)


def test_mux_tree():
    mux = library.mux_tree(2)
    for sel in range(4):
        for data in range(16):
            vec = {f"d{i}": (data >> i) & 1 for i in range(4)}
            vec |= {f"s{i}": (sel >> i) & 1 for i in range(2)}
            assert simulate(mux, vec)["out"] == (data >> sel) & 1


def test_equality_comparator():
    eq = library.equality_comparator(3)
    for a, b in itertools.product(range(8), repeat=2):
        vec = {f"a{i}": (a >> i) & 1 for i in range(3)}
        vec |= {f"b{i}": (b >> i) & 1 for i in range(3)}
        assert simulate(eq, vec)["out"] == int(a == b)


def test_standin_sizes_ordered():
    small = library.sim1423()
    mid = library.sim6669()
    large = library.sim38417()
    assert small.num_gates < mid.num_gates < large.num_gates
    # Same relative ordering as the real s1423 < s6669 < s38417.


def test_parametric_validation():
    with pytest.raises(ValueError):
        library.ripple_carry_adder(0)
    with pytest.raises(ValueError):
        library.parity_tree(1)
    with pytest.raises(ValueError):
        library.mux_tree(0)
