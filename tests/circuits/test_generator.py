"""Tests for the synthetic circuit generator."""

import pytest

from repro.circuits import GeneratorConfig, random_circuit, random_sequential_circuit
from repro.circuits.bench import dump, parse_bench


def test_determinism():
    a = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=5)
    b = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=5)
    assert a.structurally_equal(b)


def test_different_seeds_differ():
    a = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=5)
    b = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=6)
    assert not a.structurally_equal(b)


@pytest.mark.parametrize("n_gates", [5, 40, 200])
def test_shape_constraints(n_gates):
    c = random_circuit(n_inputs=8, n_outputs=4, n_gates=n_gates, seed=1)
    c.validate()
    assert len(c.inputs) == 8
    assert len(c.outputs) == 4
    assert c.num_gates >= n_gates  # funneling may add a few
    assert c.is_combinational


def test_no_dead_logic():
    c = random_circuit(n_inputs=8, n_outputs=4, n_gates=50, seed=2)
    fanouts = c.fanouts()
    outputs = set(c.outputs)
    dead = [
        n for n in c.nodes if not fanouts[n] and n not in outputs
    ]
    assert dead == []


def test_max_fanin_respected():
    c = random_circuit(
        GeneratorConfig(n_inputs=6, n_outputs=2, n_gates=60, max_fanin=3, seed=3)
    )
    for gate in c.gates:
        assert len(gate.fanins) <= 3


def test_config_and_kwargs_are_exclusive():
    with pytest.raises(TypeError):
        random_circuit(GeneratorConfig(), n_gates=5)


def test_config_validation():
    with pytest.raises(ValueError):
        GeneratorConfig(n_inputs=0)
    with pytest.raises(ValueError):
        GeneratorConfig(n_gates=2, n_outputs=5)
    with pytest.raises(ValueError):
        GeneratorConfig(locality=0.0)


def test_generated_circuits_roundtrip_bench():
    c = random_circuit(n_inputs=5, n_outputs=2, n_gates=20, seed=9)
    assert parse_bench(dump(c), name=c.name).structurally_equal(c)


def test_sequential_generator():
    c = random_sequential_circuit(
        n_inputs=4, n_outputs=2, n_gates=25, n_dffs=3, seed=4
    )
    c.validate()
    assert c.is_sequential
    assert len(c.dffs) == 3
    assert len(c.inputs) == 4
    assert len(c.outputs) == 2


def test_sequential_generator_deterministic():
    a = random_sequential_circuit(seed=8)
    b = random_sequential_circuit(seed=8)
    assert a.structurally_equal(b)
