"""Tests for structural analysis: levels, cones, dominators, distances."""

import pytest

from repro.circuits import Circuit, GateType, random_circuit
from repro.circuits.structure import (
    depth,
    dominated_region,
    dominator_gates,
    dominator_chain,
    fanin_cone,
    fanout_cone,
    immediate_dominators,
    levels,
    undirected_distance_to_nearest,
)


def chain_circuit():
    """a -> g1 -> g2 -> g3 (output)."""
    c = Circuit("chain")
    c.add_input("a")
    c.add_gate("g1", GateType.NOT, ["a"])
    c.add_gate("g2", GateType.NOT, ["g1"])
    c.add_gate("g3", GateType.NOT, ["g2"])
    c.add_output("g3")
    c.validate()
    return c


def diamond_circuit():
    """a -> (b, c) -> d (output): reconvergent fanout."""
    c = Circuit("diamond")
    c.add_input("a")
    c.add_gate("b", GateType.NOT, ["a"])
    c.add_gate("c", GateType.BUF, ["a"])
    c.add_gate("d", GateType.AND, ["b", "c"])
    c.add_output("d")
    c.validate()
    return c


def test_levels_chain():
    lv = levels(chain_circuit())
    assert lv == {"a": 0, "g1": 1, "g2": 2, "g3": 3}
    assert depth(chain_circuit()) == 3


def test_levels_dff_is_source():
    c = Circuit()
    c.add_input("a")
    c.add_gate("q", GateType.DFF, ["d"])
    c.add_gate("d", GateType.AND, ["a", "q"])
    c.add_output("d")
    lv = levels(c)
    assert lv["q"] == 0
    assert lv["d"] == 1


def test_cones():
    c = diamond_circuit()
    assert fanin_cone(c, "d") == {"a", "b", "c", "d"}
    assert fanin_cone(c, "d", include_self=False) == {"a", "b", "c"}
    assert fanout_cone(c, "a") == {"a", "b", "c", "d"}
    assert fanout_cone(c, "b") == {"b", "d"}


def test_distances_chain():
    c = chain_circuit()
    d = undirected_distance_to_nearest(c, ["g2"])
    assert d["g2"] == 0
    assert d["g1"] == 1 and d["g3"] == 1
    assert d["a"] == 2


def test_distances_multiple_targets():
    c = chain_circuit()
    d = undirected_distance_to_nearest(c, ["g1", "g3"])
    assert d["g1"] == 0 and d["g3"] == 0
    assert d["g2"] == 1
    assert d["a"] == 1


def test_distances_unknown_target_raises():
    with pytest.raises(Exception):
        undirected_distance_to_nearest(chain_circuit(), ["ghost"])


def test_immediate_dominators_chain():
    c = chain_circuit()
    idom = immediate_dominators(c)
    assert idom["g1"] == "g2"
    assert idom["g2"] == "g3"
    assert idom["g3"] is None  # only the virtual sink dominates the output
    assert dominator_chain(c, "a") == ["g1", "g2", "g3"]


def test_immediate_dominators_diamond():
    c = diamond_circuit()
    idom = immediate_dominators(c)
    # Both branch gates are dominated by the reconvergence gate d, and so
    # is the stem a (its only output path family re-merges at d).
    assert idom["b"] == "d"
    assert idom["c"] == "d"
    assert idom["a"] == "d"


def test_dominator_gates_and_regions():
    c = diamond_circuit()
    heads = dominator_gates(c)
    assert heads == {"d"}
    region = dominated_region(c, "d")
    assert region == {"a", "b", "c"}


def test_multi_output_breaks_domination():
    c = Circuit()
    c.add_input("a")
    c.add_gate("g1", GateType.NOT, ["a"])
    c.add_gate("o1", GateType.BUF, ["g1"])
    c.add_gate("o2", GateType.BUF, ["g1"])
    c.add_output("o1")
    c.add_output("o2")
    idom = immediate_dominators(c)
    assert idom["g1"] is None  # reaches outputs via two disjoint paths


def test_dominators_on_random_circuits_are_sound():
    """Every path from g to any output must pass through each dominator."""
    import networkx as nx
    from repro.circuits.structure import gate_graph

    for seed in range(3):
        c = random_circuit(n_inputs=4, n_outputs=2, n_gates=18, seed=seed)
        graph = gate_graph(c)
        idom = immediate_dominators(c)
        for g, dom in idom.items():
            if dom is None:
                continue
            pruned = graph.copy()
            pruned.remove_node(dom)
            reachable = (
                nx.descendants(pruned, g) | {g} if g in pruned else set()
            )
            assert not any(o in reachable for o in c.outputs), (
                f"{g} reaches an output avoiding its dominator {dom}"
            )
