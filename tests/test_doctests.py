"""Run the doctest examples embedded in the library's docstrings.

Keeps the inline examples in the public API honest — they are part of the
documentation deliverable and must execute as written.  Modules are
resolved through ``importlib`` because some packages re-export a function
under the same name as its defining submodule (e.g.
``repro.testgen.podem``), which shadows plain attribute access.
"""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.bdd.circuit",
    "repro.bdd.cover",
    "repro.bdd.manager",
    "repro.circuits.bench",
    "repro.circuits.gates",
    "repro.circuits.generator",
    "repro.circuits.rewrite",
    "repro.circuits.scan",
    "repro.diagnosis.core",
    "repro.diagnosis.resynthesis",
    "repro.diagnosis.structural",
    "repro.faults.collapse",
    "repro.sat.cardinality",
    "repro.sat.proof",
    "repro.sat.solver",
    "repro.sat.types",
    "repro.sim.batchevent",
    "repro.sim.deductive",
    "repro.sim.deductive_numpy",
    "repro.sim.event",
    "repro.sim.logicsim",
    "repro.sim.parallel",
    "repro.sim.threevalued",
    "repro.testgen.dcalc",
    "repro.testgen.podem",
    "repro.testgen.scoap",
    "repro.verify.cec",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{name}: no doctests found"
    assert result.failed == 0, f"{name}: {result.failed} doctest failures"
