"""Smoke tests for the public package surface."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.circuits",
    "repro.sim",
    "repro.sat",
    "repro.bdd",
    "repro.faults",
    "repro.testgen",
    "repro.diagnosis",
    "repro.experiments",
    "repro.verify",
]


def test_version():
    assert repro.__version__ == "1.1.0"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_importable(name):
    mod = importlib.import_module(name)
    assert mod is not None


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.{symbol} missing"


def test_table1_matrix_renders():
    from repro.diagnosis import APPROACH_PROPERTIES, format_table1

    text = format_table1()
    for approach in APPROACH_PROPERTIES:
        assert approach in text
    assert "O(|I| * m)" in text


def test_quickstart_from_docstring():
    """The module docstring's quickstart must actually run."""
    from repro.experiments import (
        format_cell_summary,
        make_workload,
        run_cell,
    )

    w = make_workload("sim1423", p=1, m_max=4, seed=1)
    summary = format_cell_summary(run_cell(w, m=4, solution_limit=20))
    assert "BSAT" in summary
