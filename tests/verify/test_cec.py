"""Tests for the unified combinational equivalence checker."""

import pytest

from repro.circuits import Circuit, GateType, random_circuit
from repro.faults import GateChangeError, apply_error, random_gate_changes
from repro.sim import failing_outputs
from repro.verify import check_equivalence


def _distributivity_pair():
    a = Circuit("lhs")
    for pi in "xyz":
        a.add_input(pi)
    a.add_gate("or1", GateType.OR, ["y", "z"])
    a.add_gate("out", GateType.AND, ["x", "or1"])
    a.add_output("out")
    a.validate()
    b = Circuit("rhs")
    for pi in "xyz":
        b.add_input(pi)
    b.add_gate("t1", GateType.AND, ["x", "y"])
    b.add_gate("t2", GateType.AND, ["x", "z"])
    b.add_gate("out", GateType.OR, ["t1", "t2"])
    b.add_output("out")
    b.validate()
    return a, b


@pytest.mark.parametrize("method", ["auto", "sat", "bdd"])
def test_equivalent_circuits_proven(method, c17):
    result = check_equivalence(c17, c17.copy(), method=method)
    assert result.equivalent is True
    assert result.conclusive
    assert result.counterexample is None
    assert "equivalent" in result.summary()


@pytest.mark.parametrize("method", ["auto", "sat", "bdd", "random"])
def test_inequivalence_found_with_real_cex(method, maj3):
    impl = apply_error(maj3, GateChangeError("ab", GateType.AND, GateType.OR))
    result = check_equivalence(maj3, impl, method=method)
    assert result.equivalent is False
    assert result.failing_output in maj3.outputs
    assert result.failing_output in failing_outputs(
        maj3, impl, result.counterexample
    )
    assert "NOT equivalent" in result.summary()


def test_restructured_logic_equivalent():
    a, b = _distributivity_pair()
    assert check_equivalence(a, b, method="sat").equivalent
    assert check_equivalence(a, b, method="bdd").equivalent


def test_random_method_is_inconclusive_on_equivalence(c17):
    result = check_equivalence(c17, c17.copy(), method="random")
    assert result.equivalent is None
    assert not result.conclusive
    assert "inconclusive" in result.summary()


def test_auto_uses_random_falsifier_first(maj3):
    impl = apply_error(maj3, GateChangeError("out", GateType.OR, GateType.AND))
    result = check_equivalence(maj3, impl, method="auto")
    # The error flips many vectors, so the random phase must catch it.
    assert result.method == "random"
    assert result.equivalent is False


def test_auto_settles_with_sat(c17):
    result = check_equivalence(c17, c17.copy(), method="auto")
    assert result.method == "auto(random+sat)"
    assert result.equivalent is True


def test_unknown_method_rejected(c17):
    with pytest.raises(ValueError, match="unknown CEC method"):
        check_equivalence(c17, c17.copy(), method="magic")


def test_interface_mismatch_rejected(c17, maj3):
    with pytest.raises(ValueError, match="inputs"):
        check_equivalence(c17, maj3)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_methods_agree_on_random_workloads(seed):
    golden = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=seed)
    inj = random_gate_changes(golden, p=1, seed=seed, ensure_detectable=False)
    verdicts = {
        m: check_equivalence(golden, inj.faulty, method=m).equivalent
        for m in ("sat", "bdd")
    }
    assert verdicts["sat"] == verdicts["bdd"]
    auto = check_equivalence(golden, inj.faulty, method="auto").equivalent
    assert auto == verdicts["sat"]
