"""Direct tests for the free-input time-frame expansion."""

import pytest

from repro.circuits import Circuit, GateType
from repro.circuits.library import s27
from repro.sat import CNF
from repro.sim import simulate_sequence
from repro.verify import unroll


def _shift_register():
    c = Circuit("shift2")
    c.add_input("d")
    c.add_gate("q0", GateType.DFF, ["d"])
    c.add_gate("q1", GateType.DFF, ["q0"])
    c.add_output("q1")
    c.validate()
    return c


def _solve_with_inputs(cnf, unrolling, circuit, vectors):
    """Pin the unrolled inputs to ``vectors`` and return a model getter."""
    solver = cnf.to_solver()
    assumptions = []
    for frame, vector in enumerate(vectors):
        for pi, value in vector.items():
            var = unrolling.var_of[(frame, pi)]
            assumptions.append(var if value else -var)
    assert solver.solve(assumptions=assumptions)
    return solver


@pytest.mark.parametrize("n_frames", [1, 2, 4])
def test_unrolling_matches_sequential_simulation(n_frames):
    circuit = _shift_register()
    cnf = CNF()
    unrolling = unroll(cnf, circuit, n_frames)
    vectors = [{"d": (f + 1) % 2} for f in range(n_frames)]
    solver = _solve_with_inputs(cnf, unrolling, circuit, vectors)
    frames = simulate_sequence(circuit, vectors)
    for frame in range(n_frames):
        for signal in ("q0", "q1"):
            var = unrolling.var_of[(frame, signal)]
            assert int(bool(solver.value(var))) == frames[frame][signal]


def test_unrolling_matches_s27(s27):
    cnf = CNF()
    unrolling = unroll(cnf, s27, 3)
    vectors = [
        {"G0": 1, "G1": 0, "G2": 1, "G3": 0},
        {"G0": 0, "G1": 1, "G2": 0, "G3": 1},
        {"G0": 1, "G1": 1, "G2": 1, "G3": 1},
    ]
    solver = _solve_with_inputs(cnf, unrolling, s27, vectors)
    frames = simulate_sequence(s27, vectors)
    for frame in range(3):
        var = unrolling.var_of[(frame, "G17")]
        assert int(bool(solver.value(var))) == frames[frame]["G17"]


def test_initial_state_one_respected():
    circuit = _shift_register()
    cnf = CNF()
    unrolling = unroll(cnf, circuit, 1, initial_state=1)
    solver = _solve_with_inputs(cnf, unrolling, circuit, [{"d": 0}])
    assert solver.value(unrolling.var_of[(0, "q0")]) is True
    assert solver.value(unrolling.var_of[(0, "q1")]) is True


def test_shared_inputs_tie_two_machines():
    circuit = _shift_register()
    cnf = CNF()
    a = unroll(cnf, circuit, 2, prefix="a:")
    shared = {
        (f, pi): a.var_of[(f, pi)]
        for f in range(2)
        for pi in circuit.inputs
    }
    b = unroll(cnf, circuit, 2, prefix="b:", shared_inputs=shared)
    # Same machine over the same inputs: the outputs can never differ.
    d = cnf.new_var("diff")
    out_a = a.output_var(1, "q1")
    out_b = b.output_var(1, "q1")
    cnf.add_clause([-d, out_a, out_b])
    cnf.add_clause([-d, -out_a, -out_b])
    cnf.add_clause([d])
    solver = cnf.to_solver()
    assert solver.solve() is False


def test_parameter_validation():
    circuit = _shift_register()
    with pytest.raises(ValueError, match="n_frames"):
        unroll(CNF(), circuit, 0)
    with pytest.raises(ValueError, match="initial_state"):
        unroll(CNF(), circuit, 1, initial_state=2)


def test_helper_accessors():
    circuit = _shift_register()
    cnf = CNF()
    unrolling = unroll(cnf, circuit, 2)
    assert unrolling.n_frames == 2
    inputs = unrolling.input_vars(0, circuit.inputs)
    assert set(inputs) == {"d"}
    assert unrolling.output_var(1, "q1") == unrolling.var_of[(1, "q1")]
