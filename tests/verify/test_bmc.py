"""Tests for bounded model checking and its diagnosis bridge."""

import pytest

from repro.circuits import Circuit, GateType
from repro.circuits.library import s27
from repro.diagnosis import seq_sat_diagnose
from repro.faults import GateChangeError, apply_error
from repro.sim import simulate_sequence
from repro.verify import (
    bmc_assertion,
    bmc_equivalence,
    trace_to_sequence_tests,
)


def _delay2_monitor():
    """Monitor goes bad at frame 2 at the earliest (two DFF delays)."""
    c = Circuit("delay2")
    c.add_input("en")
    c.add_gate("d1", GateType.DFF, ["en"])
    c.add_gate("d2", GateType.DFF, ["d1"])
    c.add_gate("bad", GateType.AND, ["d2", "en"])
    c.add_output("bad")
    c.validate()
    return c


def _dff_pair(invert_impl):
    golden = Circuit("g")
    golden.add_input("a")
    golden.add_gate("d", GateType.DFF, ["a"])
    golden.add_gate("out", GateType.BUF, ["d"])
    golden.add_output("out")
    golden.validate()
    impl = Circuit("i")
    impl.add_input("a")
    if invert_impl:
        impl.add_gate("n", GateType.NOT, ["a"])
        impl.add_gate("d", GateType.DFF, ["n"])
    else:
        impl.add_gate("d", GateType.DFF, ["a"])
    impl.add_gate("out", GateType.BUF, ["d"])
    impl.add_output("out")
    impl.validate()
    return golden, impl


# ----------------------------------------------------------------------
# assertion BMC
# ----------------------------------------------------------------------


def test_violation_found_at_exact_depth():
    c = _delay2_monitor()
    result = bmc_assertion(c, "bad", bound=5)
    assert result.violated
    assert result.frame == 2  # the shortest witness
    assert result.n_frames == 3


def test_trace_actually_violates():
    c = _delay2_monitor()
    result = bmc_assertion(c, "bad", bound=5)
    frames = simulate_sequence(c, result.trace)
    assert frames[result.frame]["bad"] == 1


def test_bound_too_small_reports_no_violation():
    c = _delay2_monitor()
    result = bmc_assertion(c, "bad", bound=2)
    assert not result.violated
    assert result.trace == ()
    assert "bounded claim" in result.summary()


def test_bad_value_zero_supported():
    c = _delay2_monitor()
    # "bad == 0" is reachable immediately (reset state).
    result = bmc_assertion(c, "bad", bound=3, bad_value=0)
    assert result.violated and result.frame == 0


def test_unreachable_monitor_never_violates():
    c = Circuit("safe")
    c.add_input("a")
    c.add_gate("n", GateType.NOT, ["a"])
    c.add_gate("never", GateType.AND, ["a", "n"])
    c.add_gate("d", GateType.DFF, ["never"])
    c.add_gate("bad", GateType.BUF, ["d"])
    c.add_output("bad")
    c.validate()
    assert not bmc_assertion(c, "bad", bound=6).violated


def test_initial_state_one():
    c = Circuit("init1")
    c.add_input("a")
    c.add_gate("d", GateType.DFF, ["a"])
    c.add_gate("bad", GateType.BUF, ["d"])
    c.add_output("bad")
    c.validate()
    assert bmc_assertion(c, "bad", bound=1, initial_state=1).violated
    assert not bmc_assertion(c, "bad", bound=1, initial_state=0).violated


def test_monitor_must_be_output(c17):
    with pytest.raises(ValueError, match="primary output"):
        bmc_assertion(c17, "G10", bound=2)


def test_bound_validation():
    c = _delay2_monitor()
    with pytest.raises(ValueError, match="bound"):
        bmc_assertion(c, "bad", bound=0)


# ----------------------------------------------------------------------
# equivalence BMC
# ----------------------------------------------------------------------


def test_identical_machines_equivalent(s27):
    assert not bmc_equivalence(s27, s27.copy(), bound=4).violated


def test_state_update_bug_found_at_frame_one():
    golden, impl = _dff_pair(invert_impl=True)
    result = bmc_equivalence(golden, impl, bound=4)
    assert result.violated
    assert result.frame == 1  # frame 0 agrees (shared reset state)
    assert result.output == "out"
    good = simulate_sequence(golden, result.trace)
    bad = simulate_sequence(impl, result.trace)
    assert good[result.frame]["out"] != bad[result.frame]["out"]


def test_equal_machines_with_different_structure():
    golden, impl = _dff_pair(invert_impl=False)
    assert not bmc_equivalence(golden, impl, bound=4).violated


def test_s27_gate_change_distinguished(s27):
    faulty = apply_error(
        s27, GateChangeError("G10", GateType.NOR, GateType.NAND)
    )
    result = bmc_equivalence(s27, faulty, bound=6)
    assert result.violated
    good = simulate_sequence(s27, result.trace)
    bad = simulate_sequence(faulty, result.trace)
    assert good[result.frame][result.output] != bad[result.frame][result.output]


def test_equivalence_interface_check(s27, c17):
    with pytest.raises(ValueError, match="inputs"):
        bmc_equivalence(s27, c17, bound=2)


# ----------------------------------------------------------------------
# bridge to sequential diagnosis
# ----------------------------------------------------------------------


def test_trace_feeds_sequential_diagnosis(s27):
    faulty = apply_error(
        s27, GateChangeError("G10", GateType.NOR, GateType.NAND)
    )
    result = bmc_equivalence(s27, faulty, bound=6)
    tests = trace_to_sequence_tests(s27, faulty, result.trace)
    assert tests
    assert any(t.frame == result.frame and t.output == result.output for t in tests)
    diag = seq_sat_diagnose(faulty, tests, k=1)
    assert any("G10" in sol for sol in diag.solutions)


def test_trace_of_equivalent_machines_yields_no_tests(s27):
    vectors = ({"G0": 0, "G1": 1, "G2": 0, "G3": 1},) * 3
    assert trace_to_sequence_tests(s27, s27.copy(), vectors) == []
