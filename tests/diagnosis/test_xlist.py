"""Tests for X-list (forward X-injection) diagnosis."""

from repro.circuits.library import FIG5A_TEST, FIG5B_TEST
from repro.diagnosis import (
    basic_sat_diagnose,
    basic_sim_diagnose,
    is_valid_correction,
    xlist_candidates,
    xlist_diagnose,
)
from repro.testgen import Test, TestSet


def make_tests(fixture_test):
    vec, out, val = fixture_test
    return TestSet((Test(vec, out, val),))


def test_xlist_candidates_fig5a(fig5a_circuit):
    tests = make_tests(FIG5A_TEST)
    result = xlist_candidates(fig5a_circuit, tests)
    # A and D can change the output (valid single fixes); B and C cannot
    # individually: X at B reaches D only through one input — AND(X, 0)=0,
    # so the X is blocked by the other zero branch.
    assert result.candidate_sets[0] == {"A", "D"}


def test_xlist_candidates_fig5b(fig5b_circuit):
    tests = make_tests(FIG5B_TEST)
    result = xlist_candidates(fig5b_circuit, tests)
    cands = result.candidate_sets[0]
    # Unlike path tracing, X-injection sees that B alone cannot help
    # (E = AND(D=0, X) = 0) but A, C, D, E can all reach the output.
    assert "B" not in cands
    assert {"C", "D", "E"} <= cands


def test_xlist_supersets_of_validity(tiny_workload):
    """X-reachability is a necessary condition: every valid single-gate
    correction must be an X-list candidate for every test."""
    w = tiny_workload
    from repro.diagnosis import all_valid_corrections

    singles = [
        s for s in all_valid_corrections(w.faulty, w.tests, k=1)
    ]
    xl = xlist_candidates(w.faulty, w.tests)
    for sol in singles:
        (gate,) = sol
        for cs in xl.candidate_sets:
            assert gate in cs


def test_xlist_diagnose_verified_subset_of_bsat(tiny_workload):
    w = tiny_workload
    sat = basic_sat_diagnose(w.faulty, w.tests, k=2)
    xl = xlist_diagnose(w.faulty, w.tests, k=2, verify=True)
    assert set(xl.solutions) <= set(sat.solutions)
    for sol in xl.solutions:
        assert is_valid_correction(w.faulty, w.tests, sol)


def test_xlist_unverified_contains_verified(tiny_workload):
    w = tiny_workload
    verified = xlist_diagnose(w.faulty, w.tests, k=1, verify=True)
    unverified = xlist_diagnose(w.faulty, w.tests, k=1, verify=False)
    assert set(verified.solutions) <= set(unverified.solutions)
    assert unverified.approach == "XLIST"
    assert verified.approach == "XLIST+v"


def test_xlist_prunes_more_than_pathtrace(fig5b_circuit):
    """On Fig 5(b), the X-list candidate set is strictly smaller than the
    path-tracing 'all' cone plus off-path gates — it performs a weak
    effect analysis for free."""
    tests = make_tests(FIG5B_TEST)
    pt = basic_sim_diagnose(fig5b_circuit, tests, policy="all")
    xl = xlist_candidates(fig5b_circuit, tests)
    # PT (any policy) marks B's side only through controlling analysis;
    # the point: neither contains B... but the X-list also rules nothing
    # valid out (necessary condition).
    assert xl.candidate_sets[0] <= set(fig5b_circuit.gate_names)
    assert "B" not in xl.candidate_sets[0]


def test_xlist_suspect_restriction(tiny_workload):
    w = tiny_workload
    pool = list(w.faulty.gate_names)[:5]
    result = xlist_candidates(w.faulty, w.tests, suspects=pool)
    for cs in result.candidate_sets:
        assert cs <= set(pool)
