"""Tests for the advanced SAT-based diagnosis heuristics."""

import pytest

from repro.circuits import Circuit, GateType
from repro.diagnosis import (
    basic_sat_diagnose,
    dominator_representatives,
    dominator_sat_diagnose,
    is_valid_correction,
    partitioned_sat_diagnose,
    select_zero_sat_diagnose,
)


def test_select_zero_same_solutions(tiny_workload):
    w = tiny_workload
    plain = basic_sat_diagnose(w.faulty, w.tests, k=2)
    fast = select_zero_sat_diagnose(w.faulty, w.tests, k=2)
    assert set(plain.solutions) == set(fast.solutions)
    assert fast.approach == "BSAT+sc0"


def test_select_zero_reduces_decisions(medium_workload):
    """The paper: the s=0 -> c=0 clauses 'prevent up to |I| decisions'."""
    w = medium_workload
    plain = basic_sat_diagnose(w.faulty, w.tests.prefix(4), k=1)
    fast = select_zero_sat_diagnose(w.faulty, w.tests.prefix(4), k=1)
    assert (
        fast.extras["solver_stats"]["decisions"]
        < plain.extras["solver_stats"]["decisions"]
    )


def test_dominator_representatives_chain():
    c = Circuit("chain")
    c.add_input("a")
    c.add_gate("g1", GateType.NOT, ["a"])
    c.add_gate("g2", GateType.NOT, ["g1"])
    c.add_gate("g3", GateType.NOT, ["g2"])
    c.add_output("g3")
    rep = dominator_representatives(c)
    assert rep == {"g1": "g2", "g2": "g3", "g3": "g3"}


def test_dominator_diagnosis_single_error_exact(tiny_workload):
    """For single errors the two-pass dominator approach is exact."""
    w = tiny_workload
    full = basic_sat_diagnose(w.faulty, w.tests, k=1)
    dom = dominator_sat_diagnose(w.faulty, w.tests, k=1)
    assert set(dom.solutions) == set(full.solutions)
    assert dom.extras["pass1_suspects"] <= len(w.faulty.gate_names)


def test_dominator_pass1_smaller(medium_workload):
    w = medium_workload
    dom = dominator_sat_diagnose(w.faulty, w.tests.prefix(4), k=1)
    assert dom.extras["pass1_suspects"] < len(w.faulty.gate_names)


def test_dominator_solutions_always_valid(double_error_workload):
    w = double_error_workload
    dom = dominator_sat_diagnose(w.faulty, w.tests, k=2)
    for sol in dom.solutions:
        assert is_valid_correction(w.faulty, w.tests, sol)


def test_partitioned_single_error_exact(medium_workload):
    w = medium_workload
    full = basic_sat_diagnose(w.faulty, w.tests, k=1)
    part = partitioned_sat_diagnose(w.faulty, w.tests, k=1, chunk=4)
    assert set(part.solutions) == set(full.solutions)
    assert part.extras["stages"] >= 2
    assert part.extras["final_suspects"] <= len(w.faulty.gate_names)


def test_partitioned_solutions_valid_for_full_set(double_error_workload):
    w = double_error_workload
    part = partitioned_sat_diagnose(w.faulty, w.tests, k=2, chunk=3)
    for sol in part.solutions:
        assert is_valid_correction(w.faulty, w.tests, sol)


def test_partitioned_single_chunk_equals_bsat(tiny_workload):
    w = tiny_workload
    full = basic_sat_diagnose(w.faulty, w.tests, k=2)
    part = partitioned_sat_diagnose(
        w.faulty, w.tests, k=2, chunk=len(w.tests)
    )
    assert set(part.solutions) == set(full.solutions)


def test_partitioned_subset_of_bsat(double_error_workload):
    """Partitioning may lose multi-error solutions but never invents any."""
    w = double_error_workload
    full = basic_sat_diagnose(w.faulty, w.tests, k=2)
    part = partitioned_sat_diagnose(w.faulty, w.tests, k=2, chunk=3)
    assert set(part.solutions) <= set(full.solutions)
