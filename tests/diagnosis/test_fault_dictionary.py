"""Tests for the precomputed fault dictionary."""

import pytest

from repro.circuits import random_circuit
from repro.diagnosis import FaultDictionary, diagnose_stuck_at
from repro.faults import StuckAtFault, apply_error
from repro.sim import response
from repro.testgen import generate_tests


def _patterns_for(circuit, seed=1):
    return [dict(p) for p in generate_tests(circuit, seed=seed).patterns]


def _device_log(circuit, patterns):
    return [
        dict(zip(circuit.outputs, response(circuit, p))) for p in patterns
    ]


def test_good_die_passes(c17):
    patterns = _patterns_for(c17)
    fd = FaultDictionary(c17, patterns)
    assert fd.passes(_device_log(c17, patterns))


def test_defective_die_fails_and_matches(c17):
    patterns = _patterns_for(c17)
    fd = FaultDictionary(c17, patterns)
    defect = StuckAtFault("G16", 0)
    chip = apply_error(c17, defect)
    log = _device_log(chip, patterns)
    assert not fd.passes(log)
    matches = fd.match(log)
    assert matches[0].exact
    # The true defect (or an equivalent fault) explains perfectly.
    exact = {m.fault for m in matches if m.exact}
    assert defect in exact


def test_matches_equal_per_device_diagnosis(c17):
    """The dictionary must rank exactly like the per-device simulation."""
    patterns = _patterns_for(c17)
    fd = FaultDictionary(c17, patterns)
    chip = apply_error(c17, StuckAtFault("G10", 1))
    log = _device_log(chip, patterns)
    via_dict = fd.match(log)
    via_sim = diagnose_stuck_at(c17, patterns, log).extras["matches"]
    assert via_dict == via_sim


def test_many_devices_one_dictionary(c17):
    patterns = _patterns_for(c17)
    fd = FaultDictionary(c17, patterns)
    for signal, value in (("G10", 0), ("G11", 1), ("G22", 0)):
        defect = StuckAtFault(signal, value)
        log = _device_log(apply_error(c17, defect), patterns)
        top = fd.match(log, max_candidates=5)
        assert any(m.fault == defect for m in top if m.exact)


def test_restricted_fault_list(c17):
    patterns = _patterns_for(c17)
    only = [StuckAtFault("G10", 0), StuckAtFault("G10", 1)]
    fd = FaultDictionary(c17, patterns, faults=only)
    assert fd.n_faults == 2
    log = _device_log(apply_error(c17, StuckAtFault("G10", 0)), patterns)
    assert fd.match(log)[0].fault == StuckAtFault("G10", 0)


def test_response_length_checked(c17):
    patterns = _patterns_for(c17)
    fd = FaultDictionary(c17, patterns)
    with pytest.raises(ValueError, match="responses"):
        fd.match([])
    with pytest.raises(ValueError, match="responses"):
        fd.passes([])


def test_empty_patterns_rejected(c17):
    with pytest.raises(ValueError, match="pattern"):
        FaultDictionary(c17, [])


def test_batch_and_serial_dictionaries_identical():
    """The batch-built dictionary must be indistinguishable from the serial
    one: same signatures, same rankings, same pass/fail verdicts."""
    circuit = random_circuit(n_inputs=7, n_outputs=4, n_gates=40, seed=13)
    patterns = _patterns_for(circuit, seed=3)
    fd_batch = FaultDictionary(circuit, patterns, engine="batch")
    fd_serial = FaultDictionary(circuit, patterns, engine="serial")
    assert fd_batch.engine == "batch" and fd_serial.engine == "serial"
    assert fd_batch.signatures() == fd_serial.signatures()
    for signal, value in ((circuit.gate_names[5], 0), (circuit.gate_names[30], 1)):
        log = _device_log(apply_error(circuit, StuckAtFault(signal, value)), patterns)
        assert fd_batch.match(log) == fd_serial.match(log)
        assert fd_batch.passes(log) == fd_serial.passes(log)
    good_log = _device_log(circuit, patterns)
    assert fd_batch.passes(good_log) and fd_serial.passes(good_log)


def test_unknown_engine_rejected(c17):
    patterns = _patterns_for(c17)
    with pytest.raises(ValueError, match="engine"):
        FaultDictionary(c17, patterns, engine="quantum")


def test_works_on_random_circuit():
    circuit = random_circuit(n_inputs=8, n_outputs=6, n_gates=50, seed=31)
    patterns = _patterns_for(circuit, seed=2)
    fd = FaultDictionary(circuit, patterns)
    defect = StuckAtFault(circuit.gate_names[20], 1)
    log = _device_log(apply_error(circuit, defect), patterns)
    matches = fd.match(log)
    # The defect must be at (or tied at) the top of the ranking.
    best = matches[0].mismatch_bits
    assert any(
        m.fault == defect and m.mismatch_bits == best for m in matches
    )
