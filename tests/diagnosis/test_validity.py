"""Tests for valid-correction / essential-candidate checking (Defs. 3-4)."""

import pytest

from repro.circuits.library import FIG5A_TEST, FIG5B_TEST
from repro.diagnosis import (
    all_valid_corrections,
    has_only_essential_candidates,
    is_valid_correction,
    rectifiable_by_forcing,
)
from repro.diagnosis.validity import _rectifiable_sat
from repro.testgen import Test, TestSet


@pytest.fixture
def fig5a_tests():
    vec, out, val = FIG5A_TEST
    return TestSet((Test(vec, out, val),))


@pytest.fixture
def fig5b_tests():
    vec, out, val = FIG5B_TEST
    return TestSet((Test(vec, out, val),))


def test_fig5a_validity(fig5a_circuit, fig5a_tests):
    assert is_valid_correction(fig5a_circuit, fig5a_tests, {"A"})
    assert is_valid_correction(fig5a_circuit, fig5a_tests, {"D"})
    assert not is_valid_correction(fig5a_circuit, fig5a_tests, {"B"})
    assert not is_valid_correction(fig5a_circuit, fig5a_tests, {"C"})
    assert is_valid_correction(fig5a_circuit, fig5a_tests, {"B", "C"})


def test_fig5b_validity(fig5b_circuit, fig5b_tests):
    assert not is_valid_correction(fig5b_circuit, fig5b_tests, {"A"})
    assert not is_valid_correction(fig5b_circuit, fig5b_tests, {"B"})
    assert is_valid_correction(fig5b_circuit, fig5b_tests, {"A", "B"})


def test_essential_candidates(fig5b_circuit, fig5b_tests):
    assert has_only_essential_candidates(fig5b_circuit, fig5b_tests, {"A", "B"})
    # {E, A}: {E} alone is valid, so A is inessential.
    assert not has_only_essential_candidates(
        fig5b_circuit, fig5b_tests, {"E", "A"}
    )
    # invalid corrections are not "essential" either
    assert not has_only_essential_candidates(fig5b_circuit, fig5b_tests, {"B"})


def test_empty_correction_requires_passing(maj3):
    passing = Test({"a": 1, "b": 1, "c": 0}, "out", 1)  # circuit says 1
    failing = Test({"a": 1, "b": 1, "c": 0}, "out", 0)  # demand 0: fails
    assert rectifiable_by_forcing(maj3, passing, ())
    assert not rectifiable_by_forcing(maj3, failing, ())


def test_sim_and_sat_checkers_agree(fig5a_circuit, fig5a_tests):
    from itertools import combinations

    gates = fig5a_circuit.gate_names
    test = fig5a_tests[0]
    for size in (1, 2):
        for subset in combinations(gates, size):
            sim = rectifiable_by_forcing(fig5a_circuit, test, subset)
            sat = _rectifiable_sat(fig5a_circuit, test, subset, False)
            assert sim == sat, subset


def test_constrain_all_outputs_stricter(tiny_workload):
    """All-outputs validity implies single-output validity but not vice
    versa (other outputs may break)."""
    from repro.testgen import random_failing_tests

    w = tiny_workload
    tests = random_failing_tests(
        w.golden, w.faulty, m=4, seed=77, attach_expected=True
    )
    corrections = all_valid_corrections(w.faulty, tests, k=1)
    for c in corrections:
        if is_valid_correction(
            w.faulty, tests, c, constrain_all_outputs=True
        ):
            assert is_valid_correction(w.faulty, tests, c)


def test_constrain_all_outputs_requires_expected(maj3):
    t = Test({"a": 1, "b": 1, "c": 0}, "out", 0)
    with pytest.raises(ValueError, match="expected_outputs"):
        rectifiable_by_forcing(maj3, t, ("ab",), constrain_all_outputs=True)


def test_all_valid_corrections_essential_filtering(
    fig5b_circuit, fig5b_tests
):
    essential = all_valid_corrections(fig5b_circuit, fig5b_tests, k=2)
    everything = all_valid_corrections(
        fig5b_circuit, fig5b_tests, k=2, essential_only=False
    )
    assert set(essential) <= set(everything)
    # essential results contain no correction that is a superset of another
    for a in essential:
        for b in essential:
            assert not (a < b)
    # non-essential enumeration contains e.g. {E, A}
    assert frozenset({"E", "A"}) in set(everything)
    assert frozenset({"E", "A"}) not in set(essential)


def test_validity_monotone(fig5a_circuit, fig5a_tests):
    """Adding gates to a valid correction keeps it valid."""
    assert is_valid_correction(fig5a_circuit, fig5a_tests, {"A"})
    assert is_valid_correction(fig5a_circuit, fig5a_tests, {"A", "B"})
    assert is_valid_correction(fig5a_circuit, fig5a_tests, {"A", "B", "C", "D"})


def test_injected_error_sites_form_valid_correction(double_error_workload):
    """The ground-truth error sites always rectify the tests they caused."""
    w = double_error_workload
    assert is_valid_correction(w.faulty, w.tests, set(w.sites))


def test_batched_singleton_screen_matches_oracle():
    """valid_single_gate_corrections must equal the per-gate
    is_valid_correction oracle, in pool order, for both output modes."""
    import random

    from repro.circuits import random_circuit
    from repro.diagnosis.validity import valid_single_gate_corrections
    from repro.faults import random_gate_changes
    from repro.testgen import random_failing_tests

    checked = 0
    for seed in range(6):
        circuit = random_circuit(n_inputs=5, n_outputs=3, n_gates=18, seed=200 + seed)
        injection = random_gate_changes(circuit, p=1, seed=seed)
        try:
            tests = random_failing_tests(
                circuit, injection.faulty, m=4, seed=seed, attach_expected=True
            )
        except RuntimeError:
            continue
        pool = list(circuit.gate_names)
        assert valid_single_gate_corrections(injection.faulty, tests, pool) == [
            g for g in pool if is_valid_correction(injection.faulty, tests, (g,))
        ]
        assert valid_single_gate_corrections(
            injection.faulty, tests, pool, constrain_all_outputs=True
        ) == [
            g
            for g in pool
            if is_valid_correction(
                injection.faulty, tests, (g,), constrain_all_outputs=True
            )
        ]
        checked += 1
    assert checked >= 3


def test_batched_singleton_screen_edge_cases(fig5a_circuit, fig5a_tests):
    from repro.diagnosis.validity import valid_single_gate_corrections

    # Empty pool and empty test-set are vacuous.
    assert valid_single_gate_corrections(fig5a_circuit, fig5a_tests, []) == []
    assert valid_single_gate_corrections(fig5a_circuit, [], ["A", "B"]) == ["A", "B"]
    # TestSet.vectors() feeds the screen: order follows the test-set.
    assert fig5a_tests.vectors() == [dict(t.vector) for t in fig5a_tests]


def test_batched_screen_rejects_partial_expected_outputs(rca4):
    """constrain_all_outputs with a partial expected_outputs must raise
    (like the per-gate oracle), not silently assume missing outputs are 0."""
    from repro.diagnosis.validity import valid_single_gate_corrections

    vector = {pi: 0 for pi in rca4.inputs}
    out = rca4.outputs[0]
    partial = Test(vector, out, 1, expected_outputs={out: 1})
    with pytest.raises(KeyError):
        valid_single_gate_corrections(
            rca4, [partial], list(rca4.gate_names), constrain_all_outputs=True
        )


def test_singleton_screen_event_engine_matches_batch():
    """engine="event" (fanout-cone updates on the batched event simulator)
    must return exactly the batch sweep's result, in pool order."""
    import random

    from repro.circuits import random_circuit
    from repro.diagnosis.validity import valid_single_gate_corrections
    from repro.faults import random_gate_changes
    from repro.testgen import random_failing_tests

    checked = 0
    for seed in range(6):
        circuit = random_circuit(n_inputs=5, n_outputs=3, n_gates=20, seed=400 + seed)
        injection = random_gate_changes(circuit, p=1, seed=seed)
        try:
            tests = random_failing_tests(
                circuit, injection.faulty, m=5, seed=seed, attach_expected=True
            )
        except RuntimeError:
            continue
        pool = list(circuit.gate_names)
        for constrain in (False, True):
            batch = valid_single_gate_corrections(
                injection.faulty, tests, pool, constrain_all_outputs=constrain
            )
            event = valid_single_gate_corrections(
                injection.faulty,
                tests,
                pool,
                constrain_all_outputs=constrain,
                engine="event",
            )
            assert event == batch, (seed, constrain)
        checked += 1
    assert checked >= 3


def test_singleton_screen_rejects_unknown_engine(fig5a_circuit, fig5a_tests):
    from repro.diagnosis.validity import valid_single_gate_corrections

    with pytest.raises(ValueError, match="engine"):
        valid_single_gate_corrections(
            fig5a_circuit, fig5a_tests, ["A"], engine="nope"
        )


def test_singleton_screen_unknown_gate_same_error_both_engines(maj3):
    """Both engines must reject a pool gate that is not a circuit signal
    with the same ValueError (the batch sweep's message)."""
    from repro.diagnosis.validity import valid_single_gate_corrections

    vector = {pi: 0 for pi in maj3.inputs}
    test = Test(vector, maj3.outputs[0], 1)
    for engine in ("batch", "event"):
        with pytest.raises(ValueError, match="not a signal"):
            valid_single_gate_corrections(
                maj3, [test], ["no_such_gate"], engine=engine
            )
