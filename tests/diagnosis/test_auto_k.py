"""Tests for automatic error-cardinality determination (auto-k BSAT)."""

import pytest

from repro.circuits.library import FIG5B_TEST
from repro.diagnosis import auto_k_sat_diagnose, basic_sat_diagnose
from repro.testgen import Test, TestSet


def test_auto_k_finds_minimal_cardinality(tiny_workload):
    """Single-error workload: auto-k must settle at k=1."""
    w = tiny_workload
    result = auto_k_sat_diagnose(w.faulty, w.tests, k_max=3)
    assert result.extras["k_found"] == 1
    reference = basic_sat_diagnose(w.faulty, w.tests, k=1)
    assert set(result.solutions) == set(reference.solutions)


def test_auto_k_on_fig5b(fig5b_circuit):
    """Fig 5(b) has size-1 corrections ({C},{D},{E}): k_found == 1."""
    vec, out, val = FIG5B_TEST
    tests = TestSet((Test(vec, out, val),))
    result = auto_k_sat_diagnose(fig5b_circuit, tests, k_max=2)
    assert result.extras["k_found"] == 1
    assert frozenset({"C"}) in set(result.solutions)


def test_auto_k_requires_larger_k(fig5b_circuit):
    """Restricted to suspects {A, B}, no size-1 correction exists: auto-k
    must move to k=2 and find {A, B}."""
    vec, out, val = FIG5B_TEST
    tests = TestSet((Test(vec, out, val),))
    result = auto_k_sat_diagnose(
        fig5b_circuit, tests, k_max=3, suspects=["A", "B"]
    )
    assert result.extras["k_found"] == 2
    assert set(result.solutions) == {frozenset({"A", "B"})}


def test_auto_k_exhausted(fig5a_circuit):
    """Suspects that can never rectify: k_found is None, no solutions."""
    from repro.circuits.library import FIG5A_TEST

    vec, out, val = FIG5A_TEST
    tests = TestSet((Test(vec, out, val),))
    result = auto_k_sat_diagnose(
        fig5a_circuit, tests, k_max=1, suspects=["B"]
    )
    assert result.extras["k_found"] is None
    assert result.solutions == ()


def test_auto_k_validation(tiny_workload):
    with pytest.raises(ValueError):
        auto_k_sat_diagnose(tiny_workload.faulty, tiny_workload.tests, k_max=0)
