"""Tests for correction resynthesis (diagnose -> repair -> verify)."""

import pytest

from repro.circuits import GateType, library, random_circuit
from repro.diagnosis import (
    basic_sat_diagnose,
    consistent_gate_types,
    correction_constraints,
    repair_and_verify,
    resynthesize,
)
from repro.faults import GateChangeError, apply_error
from repro.testgen import are_equivalent, distinguishing_tests


def test_consistent_gate_types_xor():
    pairs = [((0, 0), 0), ((1, 1), 0), ((0, 1), 1), ((1, 0), 1)]
    assert consistent_gate_types(2, pairs) == [GateType.XOR]


def test_consistent_gate_types_partial_constraints():
    # only (1,1)->1 observed: AND, OR and XNOR all fit
    types = consistent_gate_types(2, [((1, 1), 1)])
    assert GateType.AND in types and GateType.OR in types
    assert GateType.XOR not in types


def test_consistent_gate_types_single_input():
    assert consistent_gate_types(1, [((0,), 1), ((1,), 0)]) == [GateType.NOT]
    assert consistent_gate_types(1, [((0,), 0), ((1,), 1)]) == [GateType.BUF]


def test_consistent_gate_types_arity_mismatch():
    with pytest.raises(ValueError):
        consistent_gate_types(2, [((0,), 1)])


def test_resynthesize_replaces_types(maj3):
    fixed = resynthesize(maj3, {"ab": GateType.OR})
    assert fixed.node("ab").gtype is GateType.OR
    assert maj3.node("ab").gtype is GateType.AND
    assert fixed.name.endswith("_repaired")


def test_correction_constraints_shape():
    golden = library.ripple_carry_adder(2)
    faulty = apply_error(
        golden, GateChangeError("s1", GateType.XOR, GateType.OR)
    )
    tests = distinguishing_tests(golden, faulty, m=6)
    result = basic_sat_diagnose(faulty, tests, k=1, collect_corrections=True)
    sol = next(s for s in result.solutions if "s1" in s)
    constraints = correction_constraints(
        faulty, tests, result.extras["corrections"][sol]
    )
    assert "s1" in constraints
    for fanins, out in constraints["s1"]:
        assert len(fanins) == 2
        assert out in (0, 1)


def test_repair_and_verify_adder_typo():
    """The flagship flow: an OR-for-XOR typo is found, retyped and proven
    equivalent to the golden adder."""
    golden = library.ripple_carry_adder(3)
    faulty = apply_error(
        golden, GateChangeError("s1", GateType.XOR, GateType.OR)
    )
    tests = distinguishing_tests(golden, faulty, m=10)
    repairs = repair_and_verify(faulty, tests, k=1, golden=golden)
    assert repairs
    exact = [r for r in repairs if r.equivalent_to_golden]
    assert exact, "some repair must be fully equivalent to the golden model"
    hit = next(r for r in exact if "s1" in r.solution)
    assert hit.replacements["s1"] is GateType.XOR
    assert hit.passes_tests
    assert are_equivalent(golden, hit.repaired)


def test_repair_passes_tests_even_without_golden():
    golden = random_circuit(n_inputs=6, n_outputs=3, n_gates=25, seed=88)
    from repro.faults import random_gate_changes

    injection = random_gate_changes(golden, p=1, seed=2)
    tests = distinguishing_tests(golden, injection.faulty, m=8)
    repairs = repair_and_verify(injection.faulty, tests, k=1)
    for r in repairs:
        assert r.equivalent_to_golden is None
        assert r.passes_tests  # resynthesis is exact w.r.t. the test-set


def test_repairs_subset_of_solutions():
    golden = library.ripple_carry_adder(2)
    faulty = apply_error(
        golden, GateChangeError("g1", GateType.AND, GateType.OR)
    )
    tests = distinguishing_tests(golden, faulty, m=6)
    result = basic_sat_diagnose(faulty, tests, k=1)
    repairs = repair_and_verify(faulty, tests, k=1, golden=golden)
    solution_set = set(result.solutions)
    for r in repairs:
        assert r.solution in solution_set
