"""Cross-approach integration tests: the paper's Table 1 claims, executable.

Each approach pair is compared on shared workloads; the relationships the
paper proves or observes must hold:

* BSAT == exhaustive oracle (completeness, Lemma 3);
* COV(sat) == COV(bnb);
* advanced-sim (full pool) == BSAT;
* X-list verified ⊆ BSAT;
* hybrid variants == BSAT;
* runtimes: BSIM < COV-All and BSIM < BSAT-All on non-trivial workloads.
"""

import pytest

from repro.circuits import random_circuit
from repro.diagnosis import (
    all_valid_corrections,
    basic_sat_diagnose,
    basic_sim_diagnose,
    dominator_sat_diagnose,
    enumerate_sim_corrections,
    is_valid_correction,
    pt_guided_sat_diagnose,
    sc_diagnose,
    xlist_diagnose,
)
from repro.experiments import make_workload


@pytest.fixture(scope="module", params=[0, 1, 2])
def workload(request):
    seed = request.param
    circuit = random_circuit(
        n_inputs=6, n_outputs=3, n_gates=22, seed=500 + seed
    )
    return make_workload(circuit, p=1, m_max=6, seed=seed, allow_fewer=True)


def test_bsat_is_complete_oracle(workload):
    sat = basic_sat_diagnose(workload.faulty, workload.tests, k=2)
    oracle = all_valid_corrections(workload.faulty, workload.tests, k=2)
    assert set(sat.solutions) == set(oracle)


def test_cov_engines_agree(workload):
    a = sc_diagnose(workload.faulty, workload.tests, k=2, method="sat")
    b = sc_diagnose(workload.faulty, workload.tests, k=2, method="bnb")
    assert set(a.solutions) == set(b.solutions)


def test_sim_full_pool_equals_bsat(workload):
    sat = basic_sat_diagnose(workload.faulty, workload.tests, k=2)
    sim = enumerate_sim_corrections(
        workload.faulty, workload.tests, k=2,
        pool=workload.faulty.gate_names,
    )
    assert set(sim.solutions) == set(sat.solutions)


def test_xlist_verified_subset(workload):
    sat = basic_sat_diagnose(workload.faulty, workload.tests, k=2)
    xl = xlist_diagnose(workload.faulty, workload.tests, k=2, verify=True)
    assert set(xl.solutions) <= set(sat.solutions)


def test_hybrid_guided_equals_bsat(workload):
    sat = basic_sat_diagnose(workload.faulty, workload.tests, k=2)
    hybrid = pt_guided_sat_diagnose(workload.faulty, workload.tests, k=2)
    assert set(hybrid.solutions) == set(sat.solutions)


def test_dominator_single_error_equals_bsat(workload):
    sat = basic_sat_diagnose(workload.faulty, workload.tests, k=1)
    dom = dominator_sat_diagnose(workload.faulty, workload.tests, k=1)
    assert set(dom.solutions) == set(sat.solutions)


def test_every_bsat_solution_is_valid_and_every_invalid_cov_is_not(workload):
    sat = basic_sat_diagnose(workload.faulty, workload.tests, k=2)
    cov = sc_diagnose(workload.faulty, workload.tests, k=2)
    for sol in sat.solutions:
        assert is_valid_correction(workload.faulty, workload.tests, sol)
    # Remark 1 of the paper: COV solutions need not be valid; when one is
    # valid and minimal it must also appear in BSAT's output.
    sat_set = set(sat.solutions)
    for sol in cov.solutions:
        if sol in sat_set:
            assert is_valid_correction(workload.faulty, workload.tests, sol)


def test_runtime_ordering(medium_workload):
    """BSIM must be much faster than the solution-enumerating approaches
    (Table 2's headline)."""
    w = medium_workload
    sim = basic_sim_diagnose(w.faulty, w.tests)
    cov = sc_diagnose(w.faulty, w.tests, k=2)
    sat = basic_sat_diagnose(w.faulty, w.tests, k=2, solution_limit=50)
    assert sim.runtime <= cov.t_all + cov.t_build + 0.5
    assert sim.runtime < sat.t_all + sat.t_build
