"""Tests for the greedy-stochastic and implicit-hitting-set search loops.

The acceptance contract: on multi-fault workloads both loops return only
observation-consistent (valid) candidates; IHS additionally returns
exactly the minimum-cardinality corrections (cross-checked against the
complete BSAT enumeration); and the shared-session race harness
validates and times them side by side.
"""

import pytest

from repro.circuits import Circuit, GateType, random_circuit
from repro.diagnosis import (
    DiagnosisSession,
    basic_sat_diagnose,
    greedy_stochastic_diagnose,
    ihs_diagnose,
    is_valid_correction,
)
from repro.experiments import make_workload, run_candidate_search
from repro.testgen.testset import Test, TestSet


@pytest.fixture(scope="module", params=[2, 29, 35])
def multi_fault_workload(request):
    """p=2 instances whose minimum correction cardinality is 2."""
    seed = request.param
    circuit = random_circuit(
        n_inputs=8, n_outputs=4, n_gates=60, seed=700 + seed
    )
    return make_workload(circuit, p=2, m_max=10, seed=seed, allow_fewer=True)


# ----------------------------------------------------------------------
# greedy stochastic (SAFARI)
# ----------------------------------------------------------------------
def test_greedy_returns_valid_candidates(multi_fault_workload):
    w = multi_fault_workload
    result = greedy_stochastic_diagnose(w.faulty, w.tests, seed=1)
    assert result.approach == "SAFARI"
    assert result.solutions, "greedy search must find a candidate"
    for sol in result.solutions:
        assert is_valid_correction(w.faulty, w.tests, sol), sol


def test_greedy_deterministic_per_seed(double_error_workload):
    w = double_error_workload
    a = greedy_stochastic_diagnose(w.faulty, w.tests, seed=7)
    b = greedy_stochastic_diagnose(w.faulty, w.tests, seed=7)
    assert a.solutions == b.solutions


def test_greedy_k_filter_and_max_solutions(multi_fault_workload):
    w = multi_fault_workload
    bounded = greedy_stochastic_diagnose(w.faulty, w.tests, k=2, seed=1)
    assert all(len(sol) <= 2 for sol in bounded.solutions)
    capped = greedy_stochastic_diagnose(
        w.faulty, w.tests, seed=1, max_solutions=1
    )
    assert len(capped.solutions) <= 1


def test_greedy_solutions_subset_minimal_when_deep(double_error_workload):
    w = double_error_workload
    result = greedy_stochastic_diagnose(w.faulty, w.tests, seed=3)
    for sol in result.solutions:
        for g in sol:
            smaller = set(sol) - {g}
            if smaller:
                assert not is_valid_correction(w.faulty, w.tests, smaller), (
                    sol,
                    g,
                )


def test_greedy_pool_restriction(double_error_workload):
    w = double_error_workload
    session = DiagnosisSession(w.faulty, w.tests)
    singles = session.space().singletons()
    if not singles:
        pytest.skip("workload has no single-gate correction")
    result = greedy_stochastic_diagnose(
        w.faulty, w.tests, pool=singles, seed=0, session=session
    )
    for sol in result.solutions:
        assert sol <= set(singles)


def test_greedy_inconsistent_pool_returns_empty():
    # Second output has its own isolated cone; restricting the pool to it
    # cannot fix a failure at the first output.
    c = Circuit("iso")
    for pi in ("a", "b", "c"):
        c.add_input(pi)
    c.add_gate("o1", GateType.AND, ["a", "b"])
    c.add_gate("o2", GateType.BUF, ["c"])
    c.add_output("o1")
    c.add_output("o2")
    tests = TestSet((Test({"a": 1, "b": 1, "c": 0}, "o1", 0),))
    result = greedy_stochastic_diagnose(c, tests, pool=["o2"], seed=0)
    assert result.solutions == ()
    assert result.extras["pool_consistent"] is False


# ----------------------------------------------------------------------
# implicit hitting sets
# ----------------------------------------------------------------------
def test_ihs_minimum_cardinality_matches_bsat(multi_fault_workload):
    w = multi_fault_workload
    result = ihs_diagnose(w.faulty, w.tests)
    assert result.approach == "IHS"
    assert result.solutions and result.complete
    assert result.k == 2  # these instances need two-gate corrections
    for sol in result.solutions:
        assert len(sol) <= result.k
        assert is_valid_correction(w.faulty, w.tests, sol), sol
    oracle = basic_sat_diagnose(w.faulty, w.tests, k=result.k)
    assert set(result.solutions) == set(oracle.solutions)


def test_ihs_single_error(tiny_workload):
    w = tiny_workload
    result = ihs_diagnose(w.faulty, w.tests)
    assert result.k == 1
    oracle = basic_sat_diagnose(w.faulty, w.tests, k=1)
    assert set(result.solutions) == set(oracle.solutions)


def test_ihs_solution_limit(multi_fault_workload):
    w = multi_fault_workload
    result = ihs_diagnose(w.faulty, w.tests, solution_limit=2)
    assert len(result.solutions) == 2
    assert not result.complete
    for sol in result.solutions:
        assert is_valid_correction(w.faulty, w.tests, sol)


def test_ihs_k_too_small_yields_empty(multi_fault_workload):
    w = multi_fault_workload
    result = ihs_diagnose(w.faulty, w.tests, k=1)
    assert result.solutions == ()


def test_ihs_infeasible_pool():
    c = Circuit("iso")
    for pi in ("a", "b", "c"):
        c.add_input(pi)
    c.add_gate("o1", GateType.AND, ["a", "b"])
    c.add_gate("o2", GateType.BUF, ["c"])
    c.add_output("o1")
    c.add_output("o2")
    tests = TestSet((Test({"a": 1, "b": 1, "c": 0}, "o1", 0),))
    result = ihs_diagnose(c, tests, pool=["o2"])
    assert result.solutions == ()
    with pytest.raises(ValueError):
        ihs_diagnose(c, tests, pool=[])
    with pytest.raises(ValueError):
        ihs_diagnose(c, tests, k=0)


def test_ihs_uses_sat_cores(multi_fault_workload):
    w = multi_fault_workload
    result = ihs_diagnose(w.faulty, w.tests)
    # multi-fault instances cannot be settled by seed conflicts alone
    assert result.extras["sat_cores"] > 0
    assert result.extras["conflicts"] >= result.extras["sat_cores"]


# ----------------------------------------------------------------------
# shared-session race harness
# ----------------------------------------------------------------------
def test_run_candidate_search_validates(multi_fault_workload):
    w = multi_fault_workload
    race = run_candidate_search(w)
    assert set(race) == {"greedy-stochastic", "ihs", "bsat"}
    for leg in race.values():
        assert leg.n_invalid == 0
        assert leg.n_valid == leg.result.n_solutions
        row = leg.row()
        assert row["strategy"] == leg.strategy
        assert row["n_valid"] == leg.n_valid
    assert race["bsat"].result.n_solutions > 0
    # The searches find candidates the enumeration confirms.
    assert set(race["ihs"].result.solutions) <= set(
        race["bsat"].result.solutions
    )


def test_run_candidate_search_strategy_options(double_error_workload):
    w = double_error_workload
    race = run_candidate_search(
        w,
        strategies=("greedy-stochastic",),
        strategy_options={"greedy-stochastic": {"retries": 4, "seed": 2}},
    )
    leg = race["greedy-stochastic"]
    assert leg.result.extras["climbs"] <= 4
    assert leg.n_invalid == 0


@pytest.mark.parametrize("builder,p,m,seed", [
    ("rca4", 2, 6, 7),
    ("mux2", 2, 6, 3),
    ("parity4", 2, 6, 1),
])
def test_search_loops_valid_on_library_workloads(builder, p, m, seed):
    """Acceptance: valid candidates on all multi-fault library workloads."""
    from repro.circuits import library

    circuit = {
        "rca4": lambda: library.ripple_carry_adder(4),
        "mux2": lambda: library.mux_tree(2),
        "parity4": lambda: library.parity_tree(4),
    }[builder]()
    w = make_workload(circuit, p=p, m_max=m, seed=seed, allow_fewer=True)
    session = DiagnosisSession(w.faulty, w.tests)
    greedy = greedy_stochastic_diagnose(
        w.faulty, w.tests, seed=0, session=session
    )
    ihs = ihs_diagnose(w.faulty, w.tests, session=session)
    assert greedy.solutions and ihs.solutions
    for sol in (*greedy.solutions, *ihs.solutions):
        assert is_valid_correction(w.faulty, w.tests, sol), (builder, sol)
