"""Tests for the model-agnostic SystemDescription layer (PR 6).

Covers: the grouped-CNF and fault-spectrum instantiations end to end
through the model-agnostic strategies, the strategy-kind enforcement in
``diagnose``, the circuit-only guard rails on generic sessions, and the
session-threaded greedy seeding.
"""

import pytest

from repro.diagnosis import (
    ALL_SYSTEM_KINDS,
    DIAGNOSIS_STRATEGIES,
    CircuitSystem,
    DiagnosisSession,
    GroupedCNFSystem,
    SpectrumSystem,
    diagnose,
    greedy_stochastic_diagnose,
    strategy_kinds,
)
from repro.experiments import make_workload
from repro.sat.dimacs import GroupedCNF

MODEL_AGNOSTIC = [
    name
    for name in DIAGNOSIS_STRATEGIES
    if set(strategy_kinds(name)) >= set(ALL_SYSTEM_KINDS)
]


def _canon(solutions):
    return sorted(tuple(sorted(s)) for s in solutions)


@pytest.fixture()
def contradiction_gcnf():
    """g1: (x1), g2: (-x1), g3: (x2 v x3) — retract g1 or g2."""
    gcnf = GroupedCNF()
    gcnf.add_clause(1, [1])
    gcnf.add_clause(2, [-1])
    gcnf.add_clause(3, [2, 3])
    return gcnf


@pytest.fixture()
def spectrum():
    return SpectrumSystem.from_dict(
        {
            "components": ["a", "b", "c"],
            "rows": [
                {"covered": ["a", "b"], "passed": False},
                {"covered": ["b", "c"], "passed": False},
                {"covered": ["c"], "passed": True},
            ],
        }
    )


# ----------------------------------------------------------------------
# session plumbing
# ----------------------------------------------------------------------
def test_circuit_session_kind(tiny_workload):
    session = DiagnosisSession(tiny_workload.faulty, tiny_workload.tests)
    assert session.kind == "circuit"
    assert isinstance(session.system, CircuitSystem)
    assert session.system.components == tiny_workload.faulty.gate_names


def test_gcnf_session_basics(contradiction_gcnf):
    system = GroupedCNFSystem(contradiction_gcnf, observations=[()])
    session = DiagnosisSession(system)
    assert session.kind == "gcnf"
    assert session.circuit is None and session.tests is None
    assert session.system.components == ("g1", "g2", "g3")
    assert session.m == 1
    assert not session.consistent(())
    assert session.consistent(("g1",)) and session.consistent(("g2",))
    assert not session.consistent(("g3",))
    core = session.observation_core((), 0)
    assert core and core <= {"g1", "g2"}


def test_gcnf_session_rejects_circuit_arguments(contradiction_gcnf):
    system = GroupedCNFSystem(contradiction_gcnf, observations=[()])
    with pytest.raises(ValueError):
        DiagnosisSession(system, tests="not-none")


def test_generic_session_guards_circuit_operations(contradiction_gcnf):
    system = GroupedCNFSystem(contradiction_gcnf, observations=[()])
    session = DiagnosisSession(system)
    with pytest.raises(ValueError, match="requires a circuit"):
        session.sim(0)
    with pytest.raises(ValueError, match="requires a circuit"):
        session.rectify_solver(0, ["g1"])
    with pytest.raises(ValueError, match="requires a circuit"):
        session.fanin_gates("x")


def test_gcnf_validation():
    gcnf = GroupedCNF()
    with pytest.raises(ValueError):
        GroupedCNFSystem(gcnf, observations=[()])  # no groups
    gcnf.add_clause(1, [1])
    with pytest.raises(ValueError):
        GroupedCNFSystem(gcnf, observations=[])  # no observations
    with pytest.raises(ValueError):
        GroupedCNFSystem(gcnf, observations=[(2,)])  # literal out of range
    with pytest.raises(ValueError):
        GroupedCNFSystem(gcnf, observations=[()], component_names=["a", "b"])


def test_spectrum_validation():
    with pytest.raises(ValueError):
        SpectrumSystem([], [])
    with pytest.raises(ValueError):
        SpectrumSystem(["a"], [])
    with pytest.raises(ValueError):
        SpectrumSystem(["a"], [(["b"], False)])  # unknown coverage


def test_space_validates_against_system(contradiction_gcnf):
    system = GroupedCNFSystem(contradiction_gcnf, observations=[()])
    session = DiagnosisSession(system)
    with pytest.raises(ValueError, match="not a component"):
        session.space(["g1", "nope"])


# ----------------------------------------------------------------------
# strategies across system kinds
# ----------------------------------------------------------------------
def test_gcnf_strategies_agree(contradiction_gcnf):
    system = GroupedCNFSystem(contradiction_gcnf, observations=[()])
    session = DiagnosisSession(system)
    expected = [("g1",), ("g2",)]
    for strategy in MODEL_AGNOSTIC:
        if strategy == "single-fix":
            continue  # separate shape (screen of singletons)
        result = diagnose(session, k=2, strategy=strategy)
        assert _canon(result.solutions) == expected, strategy


def test_spectrum_strategies_agree(spectrum):
    session = DiagnosisSession(spectrum)
    bsat = diagnose(session, k=3, strategy="bsat")
    assert _canon(bsat.solutions) == [("a", "c"), ("b",)]
    for strategy in ("hsdag", "fastdiag"):
        result = diagnose(session, k=3, strategy=strategy)
        assert _canon(result.solutions) == _canon(bsat.solutions), strategy
    ihs = diagnose(session, k=3, strategy="ihs")
    assert _canon(ihs.solutions) == [("b",)]  # minimum cardinality only
    greedy = diagnose(session, k=3, strategy="greedy-stochastic")
    assert set(greedy.solutions) <= set(bsat.solutions)


def test_gcnf_with_multiple_observations():
    # g1 forces x1; the two observations disagree about x1, so every
    # diagnosis must retract g1; g2 contradicts observation 2 directly.
    gcnf = GroupedCNF()
    gcnf.add_clause(1, [1])
    gcnf.add_clause(2, [2])
    system = GroupedCNFSystem(gcnf, observations=[(1,), (-1, -2)])
    session = DiagnosisSession(system)
    result = diagnose(session, k=2, strategy="hsdag")
    assert _canon(result.solutions) == [("g1", "g2")]
    assert session.failing_word() == 0b10


def test_kind_enforcement(contradiction_gcnf):
    system = GroupedCNFSystem(contradiction_gcnf, observations=[()])
    session = DiagnosisSession(system)
    with pytest.raises(ValueError, match="supports system kinds"):
        diagnose(session, k=1, strategy="cov")
    with pytest.raises(ValueError, match="supports system kinds"):
        diagnose(session, k=1, strategy="pt-guided")


def test_model_agnostic_strategies_still_do_circuits(tiny_workload):
    session = DiagnosisSession(tiny_workload.faulty, tiny_workload.tests)
    reference = diagnose(session, k=2, strategy="bsat")
    for strategy in ("hsdag", "fastdiag"):
        result = diagnose(session, k=2, strategy=strategy)
        assert set(result.solutions) == set(reference.solutions), strategy


# ----------------------------------------------------------------------
# greedy seeding through the session
# ----------------------------------------------------------------------
def test_greedy_seed_defaults_to_session_seed():
    w = make_workload("c17", p=2, m_max=6, seed=7)
    seeded = DiagnosisSession(w.faulty, w.tests, seed=5)
    explicit = DiagnosisSession(w.faulty, w.tests)
    implicit_result = greedy_stochastic_diagnose(
        None, None, session=seeded, retries=8
    )
    explicit_result = greedy_stochastic_diagnose(
        None, None, session=explicit, seed=5, retries=8
    )
    assert implicit_result.solutions == explicit_result.solutions


def test_greedy_reproducible_per_kind(spectrum, contradiction_gcnf):
    for system_factory in (
        lambda: DiagnosisSession(
            SpectrumSystem(spectrum.components, spectrum.rows)
        ),
        lambda: DiagnosisSession(
            GroupedCNFSystem(contradiction_gcnf, observations=[()])
        ),
    ):
        a = greedy_stochastic_diagnose(
            None, None, session=system_factory(), retries=8
        )
        b = greedy_stochastic_diagnose(
            None, None, session=system_factory(), retries=8
        )
        assert a.solutions == b.solutions


def test_greedy_requires_circuit_or_session():
    with pytest.raises(ValueError, match="requires a circuit"):
        greedy_stochastic_diagnose(None, None)
