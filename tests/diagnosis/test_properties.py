"""Cross-cutting property-based tests of the diagnosis stack.

Hypothesis generates random circuits, injections and test-sets; the
invariants checked here are the paper's structural relationships that must
hold on *every* workload, not just the curated fixtures.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

#: Hypothesis-heavy module: excluded from the CI fast lane (-m "not slow").
pytestmark = pytest.mark.slow

from repro.circuits import random_circuit
from repro.diagnosis import (
    basic_sat_diagnose,
    basic_sim_diagnose,
    is_valid_correction,
    sc_diagnose,
    solution_quality,
)
from repro.experiments import make_workload


def build_workload(seed, p=1):
    circuit = random_circuit(
        n_inputs=5 + seed % 3,
        n_outputs=2 + seed % 2,
        n_gates=15 + seed % 10,
        seed=seed,
    )
    try:
        return make_workload(
            circuit, p=p, m_max=4, seed=seed, allow_fewer=True
        )
    except RuntimeError:
        return None


common_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much],
)


@given(st.integers(0, 10_000))
@common_settings
def test_pt_candidates_contain_the_traced_output_gate(seed):
    w = build_workload(seed)
    if w is None:
        return
    result = basic_sim_diagnose(w.faulty, w.tests)
    for test, cand in zip(w.tests, result.candidate_sets):
        gate = w.faulty.node(test.output)
        if gate.is_functional:
            assert test.output in cand


@given(st.integers(0, 10_000))
@common_settings
def test_more_tests_never_shrink_the_union(seed):
    w = build_workload(seed)
    if w is None or w.tests.m < 2:
        return
    small = basic_sim_diagnose(w.faulty, w.tests.prefix(w.tests.m - 1))
    full = basic_sim_diagnose(w.faulty, w.tests)
    assert small.union <= full.union


@given(st.integers(0, 10_000))
@common_settings
def test_bsat_solutions_grow_with_k(seed):
    """Every k-solution remains a solution at k+1 (the enumeration is
    cumulative), and all are valid."""
    w = build_workload(seed)
    if w is None:
        return
    k1 = basic_sat_diagnose(w.faulty, w.tests, k=1)
    k2 = basic_sat_diagnose(w.faulty, w.tests, k=2)
    assert set(k1.solutions) <= set(k2.solutions)
    for sol in k2.solutions:
        assert is_valid_correction(w.faulty, w.tests, sol)


@given(st.integers(0, 10_000))
@common_settings
def test_cov_solutions_hit_every_candidate_set(seed):
    w = build_workload(seed)
    if w is None:
        return
    sim = basic_sim_diagnose(w.faulty, w.tests)
    cov = sc_diagnose(w.faulty, w.tests, k=2, sim_result=sim)
    for sol in cov.solutions:
        assert all(sol & cs for cs in sim.candidate_sets)
        # irredundancy (condition (b))
        for g in sol:
            reduced = sol - {g}
            assert not all(reduced & cs for cs in sim.candidate_sets)


@given(st.integers(0, 10_000))
@common_settings
def test_single_error_site_in_some_bsat_solution(seed):
    """With p=1 and k=1, BSAT must rediscover the actual error site (the
    site itself is always a valid single-gate correction for the tests it
    caused)."""
    w = build_workload(seed, p=1)
    if w is None:
        return
    result = basic_sat_diagnose(w.faulty, w.tests, k=1)
    assert any(w.sites[0] in sol for sol in result.solutions)


@given(st.integers(0, 10_000))
@common_settings
def test_solution_distance_zero_for_site_hits(seed):
    w = build_workload(seed, p=1)
    if w is None:
        return
    result = basic_sat_diagnose(w.faulty, w.tests, k=1)
    hits = [s for s in result.solutions if w.sites[0] in s]
    if hits:
        quality = solution_quality(w.faulty, hits, w.sites)
        assert quality.min_avg == 0.0
