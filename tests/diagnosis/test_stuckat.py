"""Tests for production-test stuck-at diagnosis."""

import random

import pytest

from repro.circuits import library, random_circuit
from repro.diagnosis import (
    diagnose_stuck_at,
    full_fault_list,
)
from repro.faults import StuckAtFault, apply_error
from repro.sim import output_values


def observed_responses(circuit, patterns):
    return [output_values(circuit, p) for p in patterns]


def all_patterns(circuit):
    import itertools

    return [
        dict(zip(circuit.inputs, bits))
        for bits in itertools.product([0, 1], repeat=len(circuit.inputs))
    ]


def test_full_fault_list_size(maj3):
    faults = full_fault_list(maj3)
    # 5 gates + 3 inputs, two polarities each
    assert len(faults) == 2 * (5 + 3)
    no_inputs = full_fault_list(maj3, include_inputs=False)
    assert len(no_inputs) == 10


def test_exact_diagnosis_of_injected_fault(maj3):
    dut = apply_error(maj3, StuckAtFault("ab", 1))
    patterns = all_patterns(maj3)
    observed = observed_responses(dut, patterns)
    result = diagnose_stuck_at(maj3, patterns, observed)
    assert frozenset({"ab"}) in set(result.solutions)
    top = result.extras["matches"][0]
    assert top.exact
    # the exact match must name the right polarity
    exact_faults = {
        (m.fault.signal, m.fault.value)
        for m in result.extras["matches"]
        if m.exact
    }
    assert ("ab", 1) in exact_faults


def test_diagnosis_on_random_circuit():
    rng = random.Random(0)
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=25, seed=5)
    gate = circuit.gates[7].name
    dut = apply_error(circuit, StuckAtFault(gate, 0))
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(48)
    ]
    observed = observed_responses(dut, patterns)
    result = diagnose_stuck_at(circuit, patterns, observed)
    assert frozenset({gate}) in set(result.solutions)


def test_healthy_device_matches_no_excited_fault(maj3):
    """A passing DUT: any fault reported as exact must be undetectable by
    the applied patterns (signature identical to fault-free)."""
    patterns = all_patterns(maj3)
    observed = observed_responses(maj3, patterns)  # fault-free responses
    result = diagnose_stuck_at(maj3, patterns, observed)
    from repro.sim import stuck_at_response, response

    for sol in result.solutions:
        (signal,) = sol
        for value in (0, 1):
            matches = [
                m
                for m in result.extras["matches"]
                if m.fault.signal == signal and m.fault.value == value
            ]
            if matches and matches[0].exact:
                for p in patterns:
                    assert stuck_at_response(
                        maj3, p, signal, value
                    ) == response(maj3, p)


def test_ranking_orders_by_mismatch(maj3):
    dut = apply_error(maj3, StuckAtFault("out", 1))
    patterns = all_patterns(maj3)
    observed = observed_responses(dut, patterns)
    result = diagnose_stuck_at(maj3, patterns, observed)
    mismatches = [m.mismatch_bits for m in result.extras["matches"]]
    assert mismatches == sorted(mismatches)


def test_max_candidates(maj3):
    dut = apply_error(maj3, StuckAtFault("ab", 0))
    patterns = all_patterns(maj3)
    observed = observed_responses(dut, patterns)
    result = diagnose_stuck_at(
        maj3, patterns, observed, max_candidates=3
    )
    assert len(result.extras["matches"]) == 3


def test_input_validation(maj3):
    with pytest.raises(ValueError):
        diagnose_stuck_at(maj3, [], [])
    with pytest.raises(ValueError):
        diagnose_stuck_at(maj3, [{"a": 0, "b": 0, "c": 0}], [])


def test_batch_and_serial_diagnosis_identical():
    """Regression: the default batched engine must reproduce the serial
    ranking bit-for-bit (solutions, order, mismatch counts)."""
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=35, seed=41)
    dut = apply_error(circuit, StuckAtFault(circuit.gates[12].name, 0))
    rng = random.Random(41)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(96)
    ]
    observed = observed_responses(dut, patterns)
    batch = diagnose_stuck_at(circuit, patterns, observed, engine="batch")
    serial = diagnose_stuck_at(circuit, patterns, observed, engine="serial")
    auto = diagnose_stuck_at(circuit, patterns, observed)
    assert batch.extras["matches"] == serial.extras["matches"]
    assert batch.solutions == serial.solutions
    assert auto.extras["engine"] == "batch"
    with pytest.raises(ValueError, match="engine"):
        diagnose_stuck_at(circuit, patterns, observed, engine="nope")


def test_gate_change_often_explained_only_approximately():
    """A gate-change error is generally NOT a stuck-at; the ranking should
    still produce a best-effort candidate near the real site."""
    from repro.faults import random_gate_changes

    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=9)
    injection = random_gate_changes(circuit, p=1, seed=1)
    rng = random.Random(1)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(64)
    ]
    observed = observed_responses(injection.faulty, patterns)
    result = diagnose_stuck_at(circuit, patterns, observed)
    best = result.extras["matches"][0]
    assert best.mismatch_bits >= 0  # ranking exists; exactness not required


def test_bsat_finds_stuck_at_defect_site():
    """Integration regression: the BSAT suspect set must include gates
    replaced by constants, so the defect site is always diagnosable."""
    from repro.diagnosis import basic_sat_diagnose
    from repro.testgen import TestSet, tests_from_vectors

    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=31)
    # choose an excitable defect
    rng = random.Random(3)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(64)
    ]
    for gate in circuit.gates:
        for value in (0, 1):
            dut = apply_error(circuit, StuckAtFault(gate.name, value))
            triples = tests_from_vectors(circuit, dut, patterns)
            if triples:
                tests = TestSet(tuple(triples[:4]))
                result = basic_sat_diagnose(dut, tests, k=1)
                assert any(gate.name in sol for sol in result.solutions), (
                    gate.name,
                    value,
                )
                return
    raise AssertionError("no excitable stuck-at found")
