"""Tests for sequential diagnosis via time-frame expansion."""

import pytest

from repro.circuits import Circuit, GateType, random_sequential_circuit
from repro.diagnosis import (
    SequenceTest,
    failing_sequences,
    seq_sat_diagnose,
)
from repro.faults import GateChangeError, apply_error, random_gate_changes
from repro.sim import simulate_sequence


def tff_pair():
    """T-flip-flop whose XOR was wrongly built as XNOR."""
    golden = Circuit("tff")
    golden.add_input("t")
    golden.add_gate("q", GateType.DFF, ["d"])
    golden.add_gate("d", GateType.XOR, ["t", "q"])
    golden.add_gate("out", GateType.BUF, ["q"])
    golden.add_output("out")
    faulty = apply_error(
        golden, GateChangeError("d", GateType.XOR, GateType.XNOR)
    )
    return golden, faulty


def test_sequence_test_validation():
    with pytest.raises(ValueError):
        SequenceTest((({"t": 0}),), "out", 3, 1)
    with pytest.raises(ValueError):
        SequenceTest(({"t": 0},), "out", 0, 2)


def test_failing_sequences_expose_error():
    golden, faulty = tff_pair()
    seqs = failing_sequences(golden, faulty, m=4, n_frames=3, seed=1)
    assert seqs
    for s in seqs:
        good = simulate_sequence(golden, s.vectors)
        bad = simulate_sequence(faulty, s.vectors)
        assert good[s.frame][s.output] == s.value
        assert bad[s.frame][s.output] != s.value


def test_seq_diagnosis_finds_error_site():
    golden, faulty = tff_pair()
    seqs = failing_sequences(golden, faulty, m=4, n_frames=3, seed=2)
    result = seq_sat_diagnose(faulty, seqs, k=1)
    assert any("d" in sol for sol in result.solutions)
    assert result.approach == "seqSAT"


def test_seq_diagnosis_solutions_rectify():
    """Every solution must admit per-frame values fixing all sequences —
    verified by checking the SAT model against sequential simulation on a
    re-solve with the selects pinned."""
    golden, faulty = tff_pair()
    seqs = failing_sequences(golden, faulty, m=3, n_frames=3, seed=3)
    result = seq_sat_diagnose(faulty, seqs, k=1)
    for sol in result.solutions:
        # A solution with gates freed must be able to fix each sequence:
        # brute-force over forced per-frame values for single-gate sols.
        (gate,) = sol
        from itertools import product

        for s in seqs:
            fixed = False
            for combo in product((0, 1), repeat=s.n_frames):
                forced = [{gate: v} for v in combo]
                frames = simulate_sequence(
                    faulty, s.vectors, forced_per_frame=forced
                )
                if frames[s.frame][s.output] == s.value:
                    fixed = True
                    break
            assert fixed, (sol, s)


def test_seq_diagnosis_on_random_sequential():
    golden = random_sequential_circuit(
        n_inputs=4, n_outputs=2, n_gates=18, n_dffs=2, seed=21
    )
    inj = random_gate_changes(golden, p=1, seed=4, ensure_detectable=False)
    seqs = failing_sequences(golden, inj.faulty, m=4, n_frames=4, seed=5)
    if not seqs:
        pytest.skip("injection not excitable in 4 frames")
    result = seq_sat_diagnose(inj.faulty, seqs, k=1)
    assert result.solutions, "diagnosis must find at least the real site"
    assert any(inj.sites[0] in sol for sol in result.solutions)


def test_seq_diagnosis_requires_tests():
    golden, faulty = tff_pair()
    with pytest.raises(ValueError):
        seq_sat_diagnose(faulty, [], k=1)
    with pytest.raises(ValueError):
        seq_sat_diagnose(faulty, [SequenceTest(({"t": 0},), "out", 0, 1)], k=0)


def test_seq_suspect_restriction():
    golden, faulty = tff_pair()
    seqs = failing_sequences(golden, faulty, m=2, n_frames=3, seed=6)
    result = seq_sat_diagnose(faulty, seqs, k=1, suspects=["out"])
    # 'out' is a buffer after the state: correcting it per frame can fix
    # the observed output (value forced per frame), so a solution exists.
    for sol in result.solutions:
        assert sol <= {"out"}


def test_sequence_test_n_frames():
    t = SequenceTest(({"t": 0}, {"t": 1}), "out", 1, 0)
    assert t.n_frames == 2


def test_failing_sequences_respects_max_tries():
    golden, faulty = tff_pair()
    none_found = failing_sequences(
        golden, faulty, m=4, n_frames=3, seed=1, max_tries=0
    )
    assert none_found == []


def test_failing_sequences_deduplicates_vectors():
    golden, faulty = tff_pair()
    # One input over one frame admits only two distinct sequences, so no
    # amount of tries can return more than two tests.
    seqs = failing_sequences(
        golden, faulty, m=10, n_frames=1, seed=0, max_tries=500
    )
    keys = {tuple(sorted(v.items()) for v in s.vectors) for s in seqs}
    assert len(keys) == len(seqs) <= 2


def test_seq_diagnosis_solution_limit_truncates():
    golden, faulty = tff_pair()
    seqs = failing_sequences(golden, faulty, m=4, n_frames=3, seed=2)
    full = seq_sat_diagnose(faulty, seqs, k=2)
    if full.n_solutions < 2:
        pytest.skip("need at least two solutions to observe truncation")
    capped = seq_sat_diagnose(faulty, seqs, k=2, solution_limit=1)
    assert capped.n_solutions == 1
    assert not capped.complete
    assert capped.solutions[0] in set(full.solutions)


def test_seq_diagnosis_zero_budget_flags_incomplete():
    golden, faulty = tff_pair()
    seqs = failing_sequences(golden, faulty, m=2, n_frames=3, seed=2)
    result = seq_sat_diagnose(faulty, seqs, k=1, solution_limit=0)
    assert result.n_solutions == 0
    assert not result.complete


def test_encode_unrolled_initial_state():
    from repro.diagnosis.sequential import _encode_unrolled_test
    from repro.sat.cnf import CNF

    golden, _ = tff_pair()
    # With initial state 1 and t=0 the T-flip-flop holds q=1, so out=1.
    test = SequenceTest(({"t": 0},), "out", 0, 1)
    cnf = CNF()
    var_of = _encode_unrolled_test(
        cnf, golden, test, 0, select_of={}, initial_state=1
    )
    solver = cnf.to_solver()
    assert solver.solve()
    assert solver.value(var_of[(0, "q")]) is True


def test_seq_diagnosis_timing_and_extras():
    golden, faulty = tff_pair()
    seqs = failing_sequences(golden, faulty, m=2, n_frames=3, seed=7)
    result = seq_sat_diagnose(faulty, seqs, k=1)
    assert result.t_build >= 0 and result.t_all >= 0
    assert result.extras["n_vars"] > 0
    assert result.extras["n_clauses"] > 0
