"""Executable versions of the paper's Lemmas 1-4 and Theorems 1-2.

These tests ARE the paper's Section 3: each lemma is checked on the
Figure 5 witness circuits and (for the universally quantified ones) as a
property over random workloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import random_circuit
from repro.circuits.library import FIG5A_TEST, FIG5B_TEST
from repro.diagnosis import (
    all_valid_corrections,
    basic_sat_diagnose,
    has_only_essential_candidates,
    is_valid_correction,
    sc_diagnose,
)
from repro.experiments import make_workload
from repro.testgen import Test, TestSet


@pytest.fixture
def fig5a_tests():
    vec, out, val = FIG5A_TEST
    return TestSet((Test(vec, out, val),))


@pytest.fixture
def fig5b_tests():
    vec, out, val = FIG5B_TEST
    return TestSet((Test(vec, out, val),))


class TestLemma1:
    """Each solution of the SAT instance F is a valid correction."""

    def test_fig5a(self, fig5a_circuit, fig5a_tests):
        result = basic_sat_diagnose(fig5a_circuit, fig5a_tests, k=2)
        assert result.solutions
        for sol in result.solutions:
            assert is_valid_correction(fig5a_circuit, fig5a_tests, sol)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_workloads(self, seed):
        circuit = random_circuit(
            n_inputs=5, n_outputs=3, n_gates=16, seed=900 + seed
        )
        w = make_workload(circuit, p=1, m_max=4, seed=seed, allow_fewer=True)
        result = basic_sat_diagnose(w.faulty, w.tests, k=2)
        for sol in result.solutions:
            assert is_valid_correction(w.faulty, w.tests, sol)


class TestLemma2:
    """COV produces solutions that are not valid corrections."""

    def test_fig5a_witness(self, fig5a_circuit, fig5a_tests):
        result = sc_diagnose(fig5a_circuit, fig5a_tests, k=1)
        sols = set(result.solutions)
        # PT marks {A, B, D} (or {A, C, D}); the middle buffer is a cover
        # but not a correction.
        assert frozenset({"B"}) in sols or frozenset({"C"}) in sols
        invalid = [
            s
            for s in sols
            if not is_valid_correction(fig5a_circuit, fig5a_tests, s)
        ]
        assert invalid


class TestLemma3:
    """BSAT returns ALL valid corrections with only essential candidates
    up to size k."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_fig5b_complete(self, fig5b_circuit, fig5b_tests, k):
        result = basic_sat_diagnose(fig5b_circuit, fig5b_tests, k=k)
        reference = all_valid_corrections(fig5b_circuit, fig5b_tests, k=k)
        assert set(result.solutions) == set(reference)

    def test_only_essential(self, fig5b_circuit, fig5b_tests):
        result = basic_sat_diagnose(fig5b_circuit, fig5b_tests, k=2)
        for sol in result.solutions:
            assert has_only_essential_candidates(
                fig5b_circuit, fig5b_tests, sol
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_workloads_match_oracle(self, seed):
        circuit = random_circuit(
            n_inputs=5, n_outputs=3, n_gates=15, seed=700 + seed
        )
        w = make_workload(circuit, p=1, m_max=4, seed=seed, allow_fewer=True)
        result = basic_sat_diagnose(w.faulty, w.tests, k=2)
        reference = all_valid_corrections(w.faulty, w.tests, k=2)
        assert set(result.solutions) == set(reference)


class TestLemma4:
    """There are valid corrections (size <= k) that COV never returns."""

    def test_fig5b_witness(self, fig5b_circuit, fig5b_tests):
        ab = frozenset({"A", "B"})
        assert is_valid_correction(fig5b_circuit, fig5b_tests, ab)
        assert has_only_essential_candidates(fig5b_circuit, fig5b_tests, ab)
        cov = sc_diagnose(fig5b_circuit, fig5b_tests, k=2)
        assert ab not in set(cov.solutions)
        sat = basic_sat_diagnose(fig5b_circuit, fig5b_tests, k=2)
        assert ab in set(sat.solutions)


class TestTheorem1:
    """SCDiagnose computes solutions BasicSATDiagnose does not."""

    def test_fig5a(self, fig5a_circuit, fig5a_tests):
        cov = set(sc_diagnose(fig5a_circuit, fig5a_tests, k=1).solutions)
        sat = set(basic_sat_diagnose(fig5a_circuit, fig5a_tests, k=1).solutions)
        assert cov - sat


class TestTheorem2:
    """BasicSATDiagnose computes solutions SCDiagnose does not."""

    def test_fig5b(self, fig5b_circuit, fig5b_tests):
        cov = set(sc_diagnose(fig5b_circuit, fig5b_tests, k=2).solutions)
        sat = set(basic_sat_diagnose(fig5b_circuit, fig5b_tests, k=2).solutions)
        assert sat - cov


@given(st.integers(0, 300))
@settings(max_examples=10, deadline=None)
def test_lemma1_and_3_property(seed):
    """Hypothesis sweep: BSAT == exhaustive oracle and all solutions valid,
    on small random single-error workloads."""
    circuit = random_circuit(n_inputs=4, n_outputs=2, n_gates=12, seed=seed)
    try:
        w = make_workload(circuit, p=1, m_max=3, seed=seed, allow_fewer=True)
    except RuntimeError:
        return  # undetectable injection for every redraw: skip the example
    result = basic_sat_diagnose(w.faulty, w.tests, k=2)
    reference = all_valid_corrections(w.faulty, w.tests, k=2)
    assert set(result.solutions) == set(reference)
    for sol in result.solutions:
        assert is_valid_correction(w.faulty, w.tests, sol)
