"""Differential pins for the hsdag / fastdiag cross-check strategies.

Both new strategies must report exactly the ``bsat`` reference set (all
subset-minimal valid corrections within ``k``) — on random grouped CNFs
(hypothesis) against a brute-force subset oracle, and on the pinned
circuit workloads against the established enumeration.  ``ihs`` is
pinned to the minimum-cardinality slice of the same set.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.diagnosis import (
    DiagnosisSession,
    GroupedCNFSystem,
    diagnose,
    fastdiag_diagnose,
    hsdag_diagnose,
)
from repro.experiments import make_workload
from repro.sat.dimacs import GroupedCNF

pytestmark = pytest.mark.slow


def _canon(solutions):
    return sorted(tuple(sorted(s)) for s in solutions)


def _brute_force_minimal(session, k):
    """All subset-minimal consistent candidates of size <= k, by direct
    enumeration with the exact oracle.  Monotonicity makes checking the
    immediate subsets sufficient."""
    components = session.system.components
    minimal = []
    for size in range(0, k + 1):
        for combo in itertools.combinations(sorted(components), size):
            if not session.consistent(combo):
                continue
            if size and any(
                session.consistent(sub)
                for sub in itertools.combinations(combo, size - 1)
            ):
                continue
            minimal.append(frozenset(combo))
    return minimal


@st.composite
def gcnf_systems(draw):
    num_vars = draw(st.integers(min_value=2, max_value=4))
    lit = st.builds(
        lambda v, s: v if s else -v,
        st.integers(min_value=1, max_value=num_vars),
        st.booleans(),
    )
    clause = st.lists(lit, min_size=1, max_size=2).map(tuple)
    gcnf = GroupedCNF(num_vars=num_vars)
    for bg_clause in draw(st.lists(clause, max_size=2)):
        gcnf.add_clause(0, bg_clause)
    num_groups = draw(st.integers(min_value=1, max_value=4))
    for g in range(1, num_groups + 1):
        for cl in draw(st.lists(clause, min_size=1, max_size=2)):
            gcnf.add_clause(g, cl)
    while gcnf.num_groups < num_groups:
        gcnf.groups.append([])
    observations = draw(
        st.lists(
            st.lists(lit, max_size=2).map(tuple), min_size=1, max_size=2
        )
    )
    return GroupedCNFSystem(gcnf, observations)


def test_consistent_system_yields_only_the_empty_candidate():
    """When ∅ is itself consistent it is the *unique* subset-minimal
    diagnosis — every singleton remains satisfiable (dropping a group
    cannot break satisfiability), so before bsat probed cardinality 0
    first, solver ordering could surface a spurious singleton alongside
    ``()``.  Both pins are found-in-the-wild counterexamples: one with a
    clause-less group whose selector floats free, one where every group
    is non-empty."""
    free = GroupedCNF(num_vars=3)
    free.add_clause(0, (-3, 2))
    free.add_clause(0, (3, 2))
    free.add_clause(2, (3, -2))  # auto-creates g1 with no clauses
    session = DiagnosisSession(GroupedCNFSystem(free, [(-1,)]))
    for strategy in ("bsat", "hsdag", "fastdiag"):
        result = diagnose(session, k=1, strategy=strategy)
        assert _canon(result.solutions) == [()], strategy

    dense = GroupedCNF(num_vars=4)
    dense.add_clause(0, (-2, 1))
    dense.add_clause(1, (-4,))
    dense.add_clause(2, (-4, -3))
    dense.add_clause(2, (1, 2))
    dense.add_clause(3, (2, -4))
    dense.add_clause(3, (2, -1))
    session = DiagnosisSession(GroupedCNFSystem(dense, [()]))
    for strategy in ("bsat", "hsdag", "fastdiag"):
        result = diagnose(session, k=2, strategy=strategy)
        assert _canon(result.solutions) == [()], strategy


@settings(max_examples=60, deadline=None)
@given(system=gcnf_systems(), k=st.integers(min_value=1, max_value=3))
def test_random_gcnf_matches_brute_force(system, k):
    session = DiagnosisSession(system)
    k = min(k, len(system.components))
    oracle = _canon(_brute_force_minimal(session, k))
    bsat = diagnose(session, k=k, strategy="bsat")
    hsdag = diagnose(session, k=k, strategy="hsdag")
    fastdiag = diagnose(session, k=k, strategy="fastdiag")
    assert _canon(bsat.solutions) == oracle
    assert _canon(hsdag.solutions) == oracle
    assert _canon(fastdiag.solutions) == oracle
    if oracle and session.failing_word():
        ihs = diagnose(session, k=k, strategy="ihs")
        min_card = min(len(s) for s in oracle)
        assert _canon(ihs.solutions) == [
            s for s in oracle if len(s) == min_card
        ]


#: (circuit, p errors, m tests, workload seed) — the three pinned
#: circuit workloads for the cross-strategy differential.
PINNED_WORKLOADS = [
    ("c17", 1, 4, 11),
    ("fig5a", 2, 6, 7),
    ("maj3", 2, 6, 3),
]


@pytest.mark.parametrize("circuit,p,m,seed", PINNED_WORKLOADS)
def test_pinned_circuits_match_bsat(circuit, p, m, seed):
    w = make_workload(circuit, p=p, m_max=m, seed=seed, allow_fewer=True)
    session = DiagnosisSession(w.faulty, w.tests)
    bsat = diagnose(session, k=2, strategy="bsat")
    assert bsat.solutions, "pinned workload must be diagnosable at k=2"
    hsdag = diagnose(session, k=2, strategy="hsdag")
    fastdiag = diagnose(session, k=2, strategy="fastdiag")
    assert _canon(hsdag.solutions) == _canon(bsat.solutions)
    assert _canon(fastdiag.solutions) == _canon(bsat.solutions)
    ihs = diagnose(session, k=2, strategy="ihs")
    min_card = min(len(s) for s in bsat.solutions)
    assert _canon(ihs.solutions) == _canon(
        s for s in bsat.solutions if len(s) == min_card
    )


@pytest.mark.parametrize("fn", [hsdag_diagnose, fastdiag_diagnose])
def test_direct_entrypoints_validate(fn):
    with pytest.raises(ValueError, match="requires a circuit"):
        fn(None, None)


def test_solution_limit_truncates():
    w = make_workload("c17", p=1, m_max=4, seed=11)
    session = DiagnosisSession(w.faulty, w.tests)
    full = diagnose(session, k=2, strategy="hsdag")
    assert len(full.solutions) > 1
    for strategy in ("hsdag", "fastdiag"):
        result = diagnose(
            session, k=2, strategy=strategy, solution_limit=1
        )
        assert len(result.solutions) == 1
        assert not result.complete
