"""Tests for the structural (signature-correspondence) diagnosis baseline."""

import pytest

from repro.circuits import GateType, decompose_wide_gates, random_circuit
from repro.circuits.library import mux_tree
from repro.diagnosis import (
    structural_diagnose,
    suspects_within_error_cones,
)
from repro.diagnosis.structural import signature_map
from repro.faults import GateChangeError, apply_error, random_gate_changes


def test_error_site_becomes_source(maj3):
    impl = apply_error(maj3, GateChangeError("bc", GateType.AND, GateType.NOR))
    diag = structural_diagnose(maj3, impl, seed=3)
    assert "bc" in diag.suspects
    assert "bc" in diag.sources


def test_no_error_no_suspects(maj3):
    diag = structural_diagnose(maj3, maj3.copy(), seed=0)
    assert diag.suspects == ()
    assert diag.sources == ()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_suspects_confined_to_error_cones(seed):
    golden = random_circuit(n_inputs=6, n_outputs=3, n_gates=40, seed=seed)
    inj = random_gate_changes(golden, p=2, seed=seed)
    diag = structural_diagnose(golden, inj.faulty, seed=seed)
    assert suspects_within_error_cones(diag, inj.faulty, inj.sites)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_detectable_error_site_is_suspect(seed):
    golden = random_circuit(n_inputs=6, n_outputs=3, n_gates=40, seed=seed)
    inj = random_gate_changes(golden, p=1, seed=seed + 50)
    diag = structural_diagnose(golden, inj.faulty, seed=seed)
    site = inj.sites[0]
    # The changed gate computes a new function; unless it collides with an
    # existing signal (or the change is undetectable) it must be flagged.
    sig_spec = signature_map(
        golden,
        [
            {pi: (seed * 37 + j * 11 + i) % 2 for i, pi in enumerate(golden.inputs)}
            for j in range(8)
        ],
    )
    if site in diag.matched and diag.matched[site] != site:
        pass  # collided with another spec signal: acceptable for signatures
    else:
        assert site in diag.suspects


def test_inversion_matching_absorbs_moved_inverters(maj3):
    # Rebuild maj3 with "o1" replaced by its complement plus a NOT —
    # functionally identical outputs, internally inverted signal.
    from repro.circuits import Circuit

    impl = Circuit("maj3_inv")
    for pi in ("a", "b", "c"):
        impl.add_input(pi)
    impl.add_gate("ab", GateType.AND, ["a", "b"])
    impl.add_gate("bc", GateType.AND, ["b", "c"])
    impl.add_gate("ac", GateType.AND, ["a", "c"])
    impl.add_gate("o1", GateType.NOR, ["ab", "bc"])  # complement of spec o1
    impl.add_gate("o1_fix", GateType.NOT, ["o1"])
    impl.add_gate("out", GateType.OR, ["o1_fix", "ac"])
    impl.add_output("out")
    impl.validate()
    with_inv = structural_diagnose(maj3, impl, match_inverted=True, seed=1)
    without = structural_diagnose(maj3, impl, match_inverted=False, seed=1)
    assert "o1" not in with_inv.suspects
    assert "o1" in without.suspects


def test_restructuring_creates_false_positives():
    """The intro's criticism: synthesis breaks the similarity assumption."""
    spec = mux_tree(2)
    impl = decompose_wide_gates(spec, max_fanin=2, seed=7)
    diag = structural_diagnose(spec, impl, seed=0)
    # No error was injected, yet fresh decomposition signals are flagged.
    assert diag.suspect_count > 0
    assert all(s not in spec for s in diag.suspects)


def test_restructured_suspects_escape_error_cones():
    spec = mux_tree(2)
    restructured = decompose_wide_gates(spec, max_fanin=2, seed=7)
    inj = random_gate_changes(restructured, p=1, seed=4)
    diag = structural_diagnose(spec, inj.faulty, seed=0)
    assert inj.sites[0] in diag.suspects or inj.sites[0] in diag.matched
    # False positives outside the real error cone appear.
    assert not suspects_within_error_cones(diag, inj.faulty, inj.sites)


def test_interface_mismatch_rejected(maj3, c17):
    with pytest.raises(ValueError, match="inputs"):
        structural_diagnose(maj3, c17)


def test_pattern_count_validated(maj3):
    with pytest.raises(ValueError, match="n_patterns"):
        structural_diagnose(maj3, maj3.copy(), n_patterns=0)


def test_signature_map_matches_scalar_simulation(c17):
    from repro.sim import simulate

    patterns = [
        {pi: (i >> j) & 1 for j, pi in enumerate(c17.inputs)}
        for i in range(8)
    ]
    sigs = signature_map(c17, patterns)
    for j, pattern in enumerate(patterns):
        vals = simulate(c17, pattern)
        for name, word in sigs.items():
            assert (word >> j) & 1 == vals[name], (name, j)
