"""Tests for advanced simulation-based diagnosis (effect analysis search)."""

from repro.circuits.library import FIG5B_TEST
from repro.diagnosis import (
    basic_sat_diagnose,
    enumerate_sim_corrections,
    has_only_essential_candidates,
    incremental_sim_diagnose,
    is_valid_correction,
)
from repro.testgen import Test, TestSet


def test_exhaustive_pool_equals_bsat(tiny_workload):
    """With the full gate pool, the sim-based search is an oracle for BSAT."""
    w = tiny_workload
    sat = basic_sat_diagnose(w.faulty, w.tests, k=2)
    sim = enumerate_sim_corrections(
        w.faulty, w.tests, k=2, pool=w.faulty.gate_names
    )
    assert set(sim.solutions) == set(sat.solutions)


def test_pt_pool_reproduces_lemma4_gap(fig5b_circuit):
    """Restricted to the PT pool, the advanced sim approach misses {A,B} —
    exactly the incompleteness the paper attributes to COV-like pruning."""
    vec, out, val = FIG5B_TEST
    tests = TestSet((Test(vec, out, val),))
    sat = basic_sat_diagnose(fig5b_circuit, tests, k=2)
    sim = enumerate_sim_corrections(fig5b_circuit, tests, k=2)  # PT pool
    ab = frozenset({"A", "B"})
    assert ab in set(sat.solutions)
    assert ab not in set(sim.solutions)
    assert set(sim.solutions) < set(sat.solutions)


def test_all_solutions_valid_and_essential(double_error_workload):
    w = double_error_workload
    sim = enumerate_sim_corrections(w.faulty, w.tests, k=2)
    assert sim.solutions  # something must be found (error sites are in pool
    # or their region is)
    for sol in sim.solutions:
        assert is_valid_correction(w.faulty, w.tests, sol)
        assert has_only_essential_candidates(w.faulty, w.tests, sol)


def test_incremental_solutions_valid(double_error_workload):
    w = double_error_workload
    inc = incremental_sim_diagnose(w.faulty, w.tests, k=2)
    assert inc.solutions
    for sol in inc.solutions:
        assert is_valid_correction(w.faulty, w.tests, sol)


def test_incremental_subset_of_bsat(tiny_workload):
    w = tiny_workload
    sat = basic_sat_diagnose(w.faulty, w.tests, k=2)
    inc = incremental_sim_diagnose(w.faulty, w.tests, k=2)
    assert set(inc.solutions) <= set(sat.solutions)


def test_incremental_max_solutions(double_error_workload):
    w = double_error_workload
    inc = incremental_sim_diagnose(w.faulty, w.tests, k=2, max_solutions=1)
    assert len(inc.solutions) <= 1
    assert not inc.complete


def test_solutions_are_minimal(double_error_workload):
    w = double_error_workload
    inc = incremental_sim_diagnose(w.faulty, w.tests, k=2)
    for a in inc.solutions:
        for b in inc.solutions:
            assert not (a < b)


def test_pool_size_reported(tiny_workload):
    w = tiny_workload
    sim = enumerate_sim_corrections(w.faulty, w.tests, k=1)
    assert sim.extras["pool_size"] > 0
    assert sim.extras["sim_result"] is not None
