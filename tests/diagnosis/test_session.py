"""Tests for the DiagnosisSession candidate-space core.

Three layers: unit tests of the session/space caches and oracles,
cross-engine agreement of the two candidate-scoring backends, and the
compatibility-wrapper regression — every legacy diagnosis entry point
must return bit-identical solutions to its pre-refactor behaviour on the
pinned library-circuit workloads (``pinned_wrappers.json`` was generated
by running the pre-refactor code).
"""

import json
from pathlib import Path

import pytest

from repro.circuits import library, random_circuit
from repro.diagnosis import (
    DIAGNOSIS_STRATEGIES,
    DiagnosisSession,
    Observation,
    auto_k_sat_diagnose,
    available_strategies,
    basic_sat_diagnose,
    basic_sim_diagnose,
    diagnose,
    dominator_sat_diagnose,
    enumerate_sim_corrections,
    incremental_sim_diagnose,
    is_valid_correction,
    partitioned_sat_diagnose,
    pt_guided_sat_diagnose,
    repair_correction_sat,
    sc_diagnose,
    select_zero_sat_diagnose,
    xlist_diagnose,
)
from repro.diagnosis.validity import valid_single_gate_corrections
from repro.experiments import make_workload
from repro.sim import simulate
from repro.testgen.testset import Test, TestSet

PINNED = json.loads(
    (Path(__file__).parent / "pinned_wrappers.json").read_text()
)


def _canon(solutions):
    return sorted(tuple(sorted(s)) for s in solutions)


# ----------------------------------------------------------------------
# Observation
# ----------------------------------------------------------------------
def test_observation_roundtrip():
    t = Test({"a": 1, "b": 0}, "o", 1, expected_outputs={"o": 1})
    obs = Observation.from_test(t)
    assert obs.observed_value == 0
    back = obs.to_test()
    assert back.vector == t.vector
    assert back.output == t.output and back.value == t.value
    assert back.expected_outputs == t.expected_outputs


# ----------------------------------------------------------------------
# session basics
# ----------------------------------------------------------------------
def test_session_validation(tiny_workload, s27):
    w = tiny_workload
    with pytest.raises(ValueError):
        DiagnosisSession(w.faulty, TestSet(()))
    with pytest.raises(ValueError):
        DiagnosisSession(s27, w.tests)  # sequential circuit
    with pytest.raises(ValueError):
        DiagnosisSession(w.faulty, w.tests, constrain_all_outputs=True)
    session = DiagnosisSession(w.faulty, w.tests)
    with pytest.raises(IndexError):
        session.observation_values(session.m)
    with pytest.raises(ValueError):
        session.space(("not-a-gate",))


def test_session_responses_match_scalar_simulation(tiny_workload):
    w = tiny_workload
    session = DiagnosisSession(w.faulty, w.tests)
    responses = session.responses()
    for j, test in enumerate(w.tests):
        values = simulate(w.faulty, test.vector)
        for out in w.faulty.outputs:
            assert ((responses[out] >> j) & 1) == values[out]
        assert session.observation_values(j) == values


def test_failing_word_all_tests_fail(double_error_workload):
    w = double_error_workload
    session = DiagnosisSession(w.faulty, w.tests)
    assert session.failing_word() == session.all_mask


def test_score_and_consistent_match_exact_oracle(double_error_workload):
    import random

    w = double_error_workload
    session = DiagnosisSession(w.faulty, w.tests)
    rng = random.Random(5)
    gates = list(w.faulty.gate_names)
    for _ in range(12):
        subset = rng.sample(gates, rng.randint(1, 3))
        expected = is_valid_correction(w.faulty, w.tests, subset)
        assert session.consistent(subset) == expected
        score = session.score(subset)
        assert 0 <= score <= session.m
        assert (score == session.m) == expected
    # memoized: the same candidate hits the cache
    subset = frozenset(gates[:2])
    assert session.rect_word(subset) == session.rect_word(subset)


def test_what_if_restores_state(tiny_workload):
    w = tiny_workload
    session = DiagnosisSession(w.faulty, w.tests)
    before = session.sim.output_lanes().copy()
    gate = w.faulty.gate_names[0]
    session.what_if({gate: 1})
    after = session.sim.output_lanes()
    assert (before == after).all()


def test_sim_result_matches_basic_sim_diagnose(double_error_workload):
    w = double_error_workload
    session = DiagnosisSession(w.faulty, w.tests)
    for policy in ("first", "lowest", "highest", "random", "all"):
        direct = basic_sim_diagnose(w.faulty, w.tests, policy=policy)
        cached = session.sim_result(policy=policy)
        assert cached.candidate_sets == direct.candidate_sets
        assert cached.marks == direct.marks
        # cached: same object on repeat call
        assert session.sim_result(policy=policy) is cached


# ----------------------------------------------------------------------
# candidate space: the two scoring engines agree
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [301, 302, 303])
def test_space_engines_agree(seed):
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=seed)
    w = make_workload(circuit, p=1, m_max=5, seed=seed, allow_fewer=True)
    session = DiagnosisSession(w.faulty, w.tests)
    space = session.space()
    batch = space.singleton_rect_words(engine="batch")
    event = session.space(tuple(space.pool)).singleton_rect_words(
        engine="event"
    )
    assert batch == event
    for j in range(session.m):
        assert space.rectifying_gates(j) == space.fault_list_candidates(j)


def test_space_singletons_match_legacy_checker(double_error_workload):
    w = double_error_workload
    session = DiagnosisSession(w.faulty, w.tests)
    pool = list(w.faulty.gate_names)
    assert session.space(pool).singletons() == valid_single_gate_corrections(
        w.faulty, w.tests, pool
    )


def test_refine_narrows_pool(double_error_workload):
    w = double_error_workload
    session = DiagnosisSession(w.faulty, w.tests)
    sub = list(w.faulty.gate_names[:5])
    space = session.refine(sub)
    assert space.pool == tuple(sub)
    assert session.space(tuple(sub)) is space  # cached
    marks = space.marks()
    assert set(marks) == set(sub)


def test_cone_conflict_is_sound(double_error_workload):
    w = double_error_workload
    session = DiagnosisSession(w.faulty, w.tests)
    space = session.space()
    sat = basic_sat_diagnose(w.faulty, w.tests, k=2)
    for j in range(session.m):
        cone = space.cone_conflict(j)
        for sol in sat.solutions:
            assert sol & cone, (j, sol)


def test_rectify_solver_agrees_with_oracle(double_error_workload):
    import random

    w = double_error_workload
    session = DiagnosisSession(w.faulty, w.tests)
    pool = list(w.faulty.gate_names)
    rng = random.Random(9)
    for j in range(min(3, session.m)):
        solver, select_of = session.rectify_solver(j, pool)
        # cached per (observation, pool)
        assert session.rectify_solver(j, pool)[0] is solver
        for _ in range(4):
            h = rng.sample(pool, rng.randint(1, 3))
            assumptions = [-select_of[g] for g in pool if g not in h]
            sat = bool(solver.solve(assumptions=assumptions))
            expected = bool(session.rect_word(h) & (1 << j))
            assert sat == expected, (j, h)


# ----------------------------------------------------------------------
# strategy registry
# ----------------------------------------------------------------------
def test_registry_contents():
    names = available_strategies()
    for expected in (
        "bsat",
        "cov",
        "adv-sim",
        "inc-sim",
        "pt-guided",
        "greedy-stochastic",
        "ihs",
        "single-fix",
    ):
        assert expected in names
    for name in names:
        info = DIAGNOSIS_STRATEGIES[name]
        assert callable(info.fn) and info.summary
        assert info.kinds and all(isinstance(k, str) for k in info.kinds)


def test_diagnose_dispatch(tiny_workload):
    w = tiny_workload
    direct = basic_sat_diagnose(w.faulty, w.tests, k=2)
    via_pair = diagnose(w.faulty, w.tests, k=2, strategy="bsat")
    session = DiagnosisSession(w.faulty, w.tests)
    via_session = diagnose(session, k=2, strategy="bsat")
    assert set(direct.solutions) == set(via_pair.solutions)
    assert set(direct.solutions) == set(via_session.solutions)
    with pytest.raises(ValueError):
        diagnose(w.faulty, w.tests, strategy="no-such-strategy")
    with pytest.raises(ValueError):
        diagnose(session, w.tests, strategy="bsat")
    with pytest.raises(ValueError):
        diagnose(w.faulty, None, strategy="bsat")


def test_single_fix_strategy_matches_oracle(tiny_workload):
    w = tiny_workload
    result = diagnose(w.faulty, w.tests, strategy="single-fix")
    expected = valid_single_gate_corrections(
        w.faulty, w.tests, list(w.faulty.gate_names)
    )
    assert _canon(result.solutions) == _canon([{g} for g in expected])


def test_register_twice_rejected():
    from repro.diagnosis import register_strategy

    with pytest.raises(ValueError):
        register_strategy("bsat", "duplicate")(lambda s, k: None)


# ----------------------------------------------------------------------
# compatibility wrappers: bit-identical to pre-refactor behaviour
# ----------------------------------------------------------------------
def _pinned_workload(name):
    circuit = {
        "c17": library.c17,
        "rca4": lambda: library.ripple_carry_adder(4),
        "mux2": lambda: library.mux_tree(2),
    }[name]()
    p, m, seed = {"c17": (1, 4, 11), "rca4": (2, 6, 7), "mux2": (2, 6, 3)}[
        name
    ]
    return make_workload(circuit, p=p, m_max=m, seed=seed, allow_fewer=True)


@pytest.fixture(scope="module", params=sorted(PINNED))
def pinned_case(request):
    return request.param, _pinned_workload(request.param), PINNED[request.param]


def test_pinned_workload_reproduces(pinned_case):
    name, w, expected = pinned_case
    assert sorted(w.sites) == expected["sites"]
    assert len(w.tests) == expected["m"]


def test_wrappers_bit_identical_to_pre_refactor(pinned_case):
    name, w, expected = pinned_case
    k = max(2, w.p)
    session = DiagnosisSession(w.faulty, w.tests)
    gmax = sorted(basic_sim_diagnose(w.faulty, w.tests).gmax)
    assert gmax == expected["bsim_gmax"]
    runs = {
        "bsat": lambda s: basic_sat_diagnose(
            w.faulty, w.tests, k=k, session=s
        ),
        "autok": lambda s: auto_k_sat_diagnose(w.faulty, w.tests, k_max=k),
        "cov": lambda s: sc_diagnose(w.faulty, w.tests, k=k, session=s),
        "advsim": lambda s: enumerate_sim_corrections(
            w.faulty, w.tests, k=k, session=s
        ),
        "incsim": lambda s: incremental_sim_diagnose(
            w.faulty, w.tests, k=k, session=s
        ),
        "ptsat": lambda s: pt_guided_sat_diagnose(
            w.faulty, w.tests, k=k, session=s
        ),
        "sz": lambda s: select_zero_sat_diagnose(w.faulty, w.tests, k=k),
        "dom": lambda s: dominator_sat_diagnose(w.faulty, w.tests, k=k),
        "part": lambda s: partitioned_sat_diagnose(
            w.faulty, w.tests, k=k, chunk=3
        ),
        "xlist": lambda s: xlist_diagnose(w.faulty, w.tests, k=1),
        "repair": lambda s: repair_correction_sat(
            w.faulty,
            w.tests,
            initial=expected["bsim_gmax"][:1] or list(w.sites)[:1],
            k=k,
            session=s,
        ),
    }
    for key, run in runs.items():
        got = _canon(run(session).solutions)
        assert got == [tuple(sol) for sol in expected[key]], (name, key)
        # and identically without a session (standalone wrapper path)
        got_standalone = _canon(run(None).solutions)
        assert got_standalone == got, (name, key)


def test_diagnose_default_k_lets_search_loops_self_determine():
    """Regression: diagnose() must not force k=1 onto the search loops."""
    circuit = random_circuit(n_inputs=8, n_outputs=4, n_gates=60, seed=702)
    w = make_workload(circuit, p=2, m_max=10, seed=2, allow_fewer=True)
    session = DiagnosisSession(w.faulty, w.tests)
    ihs = diagnose(session, strategy="ihs")
    assert ihs.solutions and ihs.k == 2
    greedy = diagnose(session, strategy="greedy-stochastic")
    assert greedy.solutions
    assert any(len(sol) == 2 for sol in greedy.solutions)


def test_session_mismatched_constraint_flag_not_silently_applied():
    """Regression: a caller's constrain_all_outputs must win over the
    session's flag when the two disagree."""
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=25, seed=302)
    w = make_workload(circuit, p=1, m_max=4, seed=6, attach_expected=True)
    session = DiagnosisSession(w.faulty, w.tests)  # single-output flag
    strict_direct = basic_sat_diagnose(
        w.faulty, w.tests, k=2, constrain_all_outputs=True
    )
    strict_via_session = basic_sat_diagnose(
        w.faulty, w.tests, k=2, constrain_all_outputs=True, session=session
    )
    assert set(strict_via_session.solutions) == set(strict_direct.solutions)
    loose = basic_sat_diagnose(w.faulty, w.tests, k=2, session=session)
    # the strict semantics must actually constrain (subset of the loose)
    assert set(strict_direct.solutions) <= set(loose.solutions)
