"""Tests for the Table 3 quality metrics."""

import math

from repro.diagnosis import (
    basic_sim_diagnose,
    bsim_quality,
    distance_map,
    hit_rate,
    solution_quality,
)


def test_distance_map(maj3):
    d = distance_map(maj3, ["ab"])
    assert d["ab"] == 0
    assert d["a"] == 1 and d["b"] == 1 and d["o1"] == 1
    assert d["out"] == 2
    assert d["c"] == 3  # ab - b - bc - c (or via a/ac)


def test_bsim_quality_fields(tiny_workload):
    w = tiny_workload
    sim = basic_sim_diagnose(w.faulty, w.tests)
    q = bsim_quality(w.faulty, sim, w.sites)
    assert q.union_size == len(sim.union)
    assert q.gmax_size == len(sim.gmax)
    assert q.gmax_min <= q.gmax_avg <= q.gmax_max
    assert q.avg_all >= 0


def test_bsim_error_in_gmax_flag(maj3):
    from repro.diagnosis.base import SimDiagnosisResult

    sim = SimDiagnosisResult(
        candidate_sets=(frozenset({"ab", "o1"}),),
        marks={"ab": 1, "o1": 1},
    )
    q_hit = bsim_quality(maj3, sim, ["ab"])
    assert q_hit.error_in_gmax
    q_miss = bsim_quality(maj3, sim, ["bc"])
    assert not q_miss.error_in_gmax


def test_solution_quality_aggregation(maj3):
    sols = [frozenset({"ab"}), frozenset({"out"}), frozenset({"ab", "out"})]
    q = solution_quality(maj3, sols, ["ab"])
    assert q.n_solutions == 3
    # per-solution averages: 0, 2, 1
    assert q.min_avg == 0
    assert q.max_avg == 2
    assert math.isclose(q.avg_avg, 1.0)


def test_solution_quality_empty(maj3):
    q = solution_quality(maj3, [], ["ab"])
    assert q.n_solutions == 0
    assert q.is_empty
    assert math.isnan(q.avg_avg)


def test_hit_rate(maj3):
    sols = [frozenset({"ab"}), frozenset({"out"})]
    assert hit_rate(sols, ["ab"]) == 0.5
    assert hit_rate(sols, ["bc"]) == 0.0
    assert math.isnan(hit_rate([], ["ab"]))


def test_distance_zero_iff_exact_hit(double_error_workload):
    w = double_error_workload
    d = distance_map(w.faulty, w.sites)
    for site in w.sites:
        assert d[site] == 0
    zero_gates = [g for g, v in d.items() if v == 0]
    assert sorted(zero_gates) == sorted(w.sites)


def test_bsim_quality_empty_result(maj3):
    from repro.diagnosis.base import SimDiagnosisResult

    empty = SimDiagnosisResult(candidate_sets=(), marks={})
    q = bsim_quality(maj3, empty, ["ab"])
    assert q.union_size == 0 and q.gmax_size == 0
    assert math.isnan(q.avg_all)
    assert math.isnan(q.gmax_min) and math.isnan(q.gmax_max)
    assert math.isnan(q.gmax_avg)
    assert not q.error_in_gmax


def test_solution_quality_skips_empty_corrections(maj3):
    q = solution_quality(maj3, [frozenset()], ["ab"])
    assert q.n_solutions == 1
    assert math.isnan(q.avg_avg)


def test_distance_map_multiple_sites(maj3):
    d = distance_map(maj3, ["ab", "bc"])
    assert d["ab"] == 0 and d["bc"] == 0
    assert d["b"] == 1  # adjacent to both
    assert d["o1"] == 1


def test_hit_rate_multi_gate_solutions(maj3):
    sols = [frozenset({"ab", "out"}), frozenset({"o1"})]
    assert hit_rate(sols, ["out"]) == 0.5
    assert hit_rate(sols, ["out", "o1"]) == 1.0


def test_quality_on_search_loop_output(double_error_workload):
    """Table-3 metrics apply to the new search loops' results too."""
    from repro.diagnosis import greedy_stochastic_diagnose

    w = double_error_workload
    result = greedy_stochastic_diagnose(w.faulty, w.tests, seed=1)
    q = solution_quality(w.faulty, result.solutions, w.sites)
    assert q.n_solutions == len(result.solutions)
    if result.solutions:
        assert q.min_avg <= q.avg_avg <= q.max_avg
