"""Tests for certified diagnosis verdicts (DRAT-backed bounds)."""

import pytest

from repro.circuits import Circuit, GateType
from repro.diagnosis import basic_sat_diagnose, certify_correction_bound
from repro.faults import GateChangeError, inject_errors
from repro.sim import failing_outputs
from repro.testgen import Test, TestSet


def _two_island_workload():
    """Two disjoint output cones, one error in each: k=1 has no correction."""
    golden = Circuit("islands")
    for pi in ("a", "b", "c", "d"):
        golden.add_input(pi)
    golden.add_gate("g1", GateType.AND, ["a", "b"])
    golden.add_gate("g2", GateType.OR, ["c", "d"])
    golden.add_output("g1")
    golden.add_output("g2")
    golden.validate()
    errors = [
        GateChangeError("g1", GateType.AND, GateType.NOR),
        GateChangeError("g2", GateType.OR, GateType.XNOR),
    ]
    inj = inject_errors(golden, errors)
    # One failing test per island.
    vec1 = {"a": 1, "b": 1, "c": 0, "d": 0}
    vec2 = {"a": 0, "b": 0, "c": 1, "d": 0}
    assert "g1" in failing_outputs(golden, inj.faulty, vec1)
    assert "g2" in failing_outputs(golden, inj.faulty, vec2)
    tests = TestSet(
        (
            Test(vector=vec1, output="g1", value=1),
            Test(vector=vec2, output="g2", value=1),
        )
    )
    return inj, tests


def test_no_single_fix_certified():
    inj, tests = _two_island_workload()
    verdict = certify_correction_bound(inj.faulty, tests, k=1)
    assert not verdict.has_correction
    assert verdict.proof is not None
    assert verdict.verified is True
    assert verdict.proof_steps >= 1
    assert "VERIFIED" in verdict.summary()


def test_two_fix_exists():
    inj, tests = _two_island_workload()
    verdict = certify_correction_bound(inj.faulty, tests, k=2)
    assert verdict.has_correction
    assert verdict.proof is None
    assert "correction exists" in verdict.summary()


def test_k_zero_is_always_refuted():
    inj, tests = _two_island_workload()
    verdict = certify_correction_bound(inj.faulty, tests, k=0)
    assert not verdict.has_correction
    assert verdict.verified is True


def test_verdict_agrees_with_bsat(tiny_workload):
    w = tiny_workload
    result = basic_sat_diagnose(w.faulty, w.tests, k=1)
    verdict = certify_correction_bound(w.faulty, w.tests, k=1)
    assert verdict.has_correction == bool(result.solutions)


def test_check_can_be_skipped():
    inj, tests = _two_island_workload()
    verdict = certify_correction_bound(inj.faulty, tests, k=1, check=False)
    assert not verdict.has_correction
    assert verdict.verified is None
    assert verdict.check_time == 0.0
    assert "unchecked" in verdict.summary()


def test_negative_k_rejected(tiny_workload):
    with pytest.raises(ValueError, match="non-negative"):
        certify_correction_bound(
            tiny_workload.faulty, tiny_workload.tests, k=-1
        )
