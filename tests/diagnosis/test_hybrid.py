"""Tests for the hybrid diagnosis approaches (paper §6)."""

import pytest

from repro.diagnosis import (
    basic_sat_diagnose,
    is_valid_correction,
    pt_guided_sat_diagnose,
    repair_correction_sat,
    sc_diagnose,
    structural_neighbourhood,
)


def test_pt_guided_same_solutions(tiny_workload):
    """Guidance only reorders the search; the solution set is unchanged."""
    w = tiny_workload
    plain = basic_sat_diagnose(w.faulty, w.tests, k=2)
    guided = pt_guided_sat_diagnose(w.faulty, w.tests, k=2)
    assert set(plain.solutions) == set(guided.solutions)
    assert guided.approach == "HYBRID/pt-guided"
    assert "guidance_time" in guided.extras


def test_pt_guided_same_solutions_medium(medium_workload):
    w = medium_workload
    plain = basic_sat_diagnose(w.faulty, w.tests.prefix(8), k=2)
    guided = pt_guided_sat_diagnose(w.faulty, w.tests.prefix(8), k=2)
    assert set(plain.solutions) == set(guided.solutions)


def test_structural_neighbourhood(maj3):
    assert structural_neighbourhood(maj3, ["ab"], 0) == {"ab"}
    n1 = structural_neighbourhood(maj3, ["ab"], 1)
    assert n1 == {"ab", "o1"}  # a, b are inputs, not gates
    n2 = structural_neighbourhood(maj3, ["ab"], 2)
    assert {"ab", "o1", "out", "ac", "bc"} <= n2 | {"ac", "bc"}
    # radius grows monotonically
    assert n1 <= n2


def test_repair_finds_valid_near_initial(medium_workload):
    """Start from a COV solution (maybe invalid) and repair it."""
    w = medium_workload
    tests = w.tests.prefix(8)
    cov = sc_diagnose(w.faulty, tests, k=2)
    assert cov.solutions
    initial = cov.solutions[0]
    repaired = repair_correction_sat(w.faulty, tests, initial)
    assert repaired.solutions
    for sol in repaired.solutions:
        assert is_valid_correction(w.faulty, tests, sol)
    assert repaired.extras["radius"] is not None


def test_repair_of_already_valid_is_radius_zero(tiny_workload):
    w = tiny_workload
    sat = basic_sat_diagnose(w.faulty, w.tests, k=1)
    valid = sat.solutions[0]
    repaired = repair_correction_sat(w.faulty, w.tests, valid)
    assert repaired.extras["radius"] == 0
    assert valid in set(repaired.solutions)


def test_repair_solutions_subset_of_bsat(medium_workload):
    """The repaired corrections are genuine BSAT solutions (restricted
    search cannot invent anything)."""
    w = medium_workload
    tests = w.tests.prefix(4)
    cov = sc_diagnose(w.faulty, tests, k=1)
    initial = cov.solutions[0]
    repaired = repair_correction_sat(w.faulty, tests, initial, k=2)
    full = basic_sat_diagnose(w.faulty, tests, k=2)
    assert set(repaired.solutions) <= set(full.solutions)


def test_repair_empty_initial_rejected(tiny_workload):
    with pytest.raises(ValueError):
        repair_correction_sat(
            tiny_workload.faulty, tiny_workload.tests, frozenset()
        )


def test_repair_searches_smaller_space(medium_workload):
    w = medium_workload
    tests = w.tests.prefix(4)
    cov = sc_diagnose(w.faulty, tests, k=1)
    repaired = repair_correction_sat(w.faulty, tests, cov.solutions[0])
    if repaired.extras.get("radius") is not None:
        assert repaired.extras["suspects"] < len(w.faulty.gate_names)


def test_hybrid_calls_share_session_caches(double_error_workload):
    """Satellite of the session refactor: repeated hybrid calls on one
    session must reuse the cached path-tracing result instead of
    re-simulating the implementation per call."""
    from repro.diagnosis import DiagnosisSession

    w = double_error_workload
    session = DiagnosisSession(w.faulty, w.tests)
    first = pt_guided_sat_diagnose(w.faulty, w.tests, k=2, session=session)
    second = pt_guided_sat_diagnose(w.faulty, w.tests, k=2, session=session)
    # identity, not equality: the second call got the memoized object
    assert first.extras["sim_result"] is session.sim_result()
    assert second.extras["sim_result"] is first.extras["sim_result"]
    assert set(first.solutions) == set(second.solutions)


def test_repair_uses_shared_session(double_error_workload):
    from repro.diagnosis import DiagnosisSession, basic_sat_diagnose

    w = double_error_workload
    session = DiagnosisSession(w.faulty, w.tests)
    oracle = basic_sat_diagnose(w.faulty, w.tests, k=2)
    if not oracle.solutions:
        pytest.skip("workload admits no correction of size <= 2")
    initial = sorted(oracle.solutions[0])
    repaired = repair_correction_sat(
        w.faulty, w.tests, initial=initial, k=2, session=session
    )
    assert repaired.solutions
    assert set(repaired.solutions) <= set(oracle.solutions)
