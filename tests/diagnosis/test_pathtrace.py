"""Tests for path tracing and BasicSimDiagnose (BSIM)."""

import pytest

from repro.circuits import Circuit, GateType
from repro.circuits.library import FIG5A_TEST, FIG5B_TEST
from repro.diagnosis import basic_sim_diagnose, path_trace, POLICIES
from repro.sim import simulate
from repro.testgen import Test, TestSet


def test_fig5a_trace(fig5a_circuit):
    vec, out, _ = FIG5A_TEST
    values = simulate(fig5a_circuit, vec)
    cand = path_trace(fig5a_circuit, values, out, policy="first")
    # D has two controlling inputs (B=0, C=0); exactly one branch is taken.
    assert cand in ({"A", "B", "D"}, {"A", "C", "D"})


def test_fig5a_trace_all_policy(fig5a_circuit):
    vec, out, _ = FIG5A_TEST
    values = simulate(fig5a_circuit, vec)
    cand = path_trace(fig5a_circuit, values, out, policy="all")
    assert cand == {"A", "B", "C", "D"}


def test_fig5b_trace(fig5b_circuit):
    vec, out, _ = FIG5B_TEST
    values = simulate(fig5b_circuit, vec)
    cand = path_trace(fig5b_circuit, values, out)
    assert cand == {"A", "C", "D", "E"}  # B is off the sensitized path


def test_no_controlling_inputs_marks_all():
    """XOR gates have no controlling value: both fanins get marked."""
    c = Circuit()
    c.add_input("a")
    c.add_input("b")
    c.add_gate("ga", GateType.BUF, ["a"])
    c.add_gate("gb", GateType.BUF, ["b"])
    c.add_gate("y", GateType.XOR, ["ga", "gb"])
    c.add_output("y")
    values = simulate(c, {"a": 0, "b": 1})
    assert path_trace(c, values, "y") == {"y", "ga", "gb"}


def test_and_gate_with_all_noncontrolling_marks_all():
    c = Circuit()
    c.add_input("a")
    c.add_input("b")
    c.add_gate("ga", GateType.BUF, ["a"])
    c.add_gate("gb", GateType.BUF, ["b"])
    c.add_gate("y", GateType.AND, ["ga", "gb"])
    c.add_output("y")
    # all inputs 1 (non-controlling for AND): mark both
    values = simulate(c, {"a": 1, "b": 1})
    assert path_trace(c, values, "y") == {"y", "ga", "gb"}
    # one controlling input (0): mark only that branch
    values = simulate(c, {"a": 0, "b": 1})
    assert path_trace(c, values, "y") == {"y", "ga"}


def test_stops_at_primary_inputs(maj3):
    values = simulate(maj3, {"a": 1, "b": 1, "c": 1})
    cand = path_trace(maj3, values, "out")
    assert cand <= set(maj3.gate_names)


def test_policy_validation(maj3):
    values = simulate(maj3, {"a": 0, "b": 0, "c": 0})
    with pytest.raises(ValueError):
        path_trace(maj3, values, "out", policy="bogus")


@pytest.mark.parametrize("policy", POLICIES)
def test_policies_produce_subsets_of_all(small_random, policy):
    import random

    rng = random.Random(3)
    vec = {pi: rng.getrandbits(1) for pi in small_random.inputs}
    values = simulate(small_random, vec)
    out = small_random.outputs[0]
    all_cand = path_trace(small_random, values, out, policy="all")
    cand = path_trace(small_random, values, out, policy=policy)
    assert cand <= all_cand
    assert values[out] in (0, 1)
    assert out in cand  # the traced output gate is always a candidate


def test_basic_sim_diagnose_counts(tiny_workload):
    w = tiny_workload
    result = basic_sim_diagnose(w.faulty, w.tests)
    assert result.m == w.tests.m
    assert len(result.candidate_sets) == w.tests.m
    # marks are consistent with candidate sets
    for g, count in result.marks.items():
        assert count == sum(1 for cs in result.candidate_sets if g in cs)
    assert result.union == frozenset().union(*result.candidate_sets)
    top = max(result.marks.values())
    assert result.gmax == {
        g for g, c in result.marks.items() if c == top
    }


def test_single_error_site_always_marked(tiny_workload):
    """For a single error, the actual site is in every candidate set —
    the intersection property of §2.2."""
    w = tiny_workload
    assert w.p == 1
    site = w.sites[0]
    result = basic_sim_diagnose(w.faulty, w.tests, policy="all")
    for cs in result.candidate_sets:
        assert site in cs


def test_multi_error_pigeonhole(double_error_workload):
    """At least one actual error site is marked by more than m/p tests
    (the pigeonhole bound of §2.2) — with the conservative 'all' policy."""
    w = double_error_workload
    result = basic_sim_diagnose(w.faulty, w.tests, policy="all")
    m, p = w.tests.m, w.p
    assert any(result.marks.get(e, 0) > m / p for e in w.sites)


def test_runtime_recorded(tiny_workload):
    result = basic_sim_diagnose(tiny_workload.faulty, tiny_workload.tests)
    assert result.runtime >= 0
