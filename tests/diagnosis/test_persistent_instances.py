"""Persistent incremental diagnosis instances: parity and pinning.

The acceptance contract of the arena/persistence overhaul: the session's
persistent, activation-scoped, incrementally-extended SAT instances must
produce **exactly the same solution sets** as freshly rebuilt instances
(per k, per suspects, across repeated queries), and the pinned
``bsat``/``auto-k``/``ihs`` outputs must stay bit-identical to their
pre-overhaul values under the default backend.
"""

import json
from pathlib import Path

import pytest

from repro.circuits import library, random_circuit
from repro.diagnosis import (
    DIAGNOSIS_STRATEGIES,
    DiagnosisSession,
    auto_k_sat_diagnose,
    basic_sat_diagnose,
    build_diagnosis_instance,
    diagnose,
    ihs_diagnose,
)
from repro.experiments import make_workload

PINNED = json.loads(
    (Path(__file__).parent / "pinned_wrappers.json").read_text()
)


def _canon(solutions):
    return sorted(tuple(sorted(s)) for s in solutions)


def _workload(seed, n_gates=30, p=2, m=6):
    circuit = random_circuit(
        n_inputs=6, n_outputs=3, n_gates=n_gates, seed=seed
    )
    return make_workload(circuit, p=p, m_max=m, seed=seed, allow_fewer=True)


# ----------------------------------------------------------------------
# persistent vs rebuilt parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [301, 412, 503])
def test_incremental_path_matches_rebuilt_instances(seed):
    """The per-k incremental path (one persistent instance, extend_k,
    scoped enumeration) returns the same solution sets as rebuilding the
    instance per query — for every k, in any query order."""
    w = _workload(seed)
    session = DiagnosisSession(w.faulty, w.tests)
    for k in (1, 2, 3, 2, 1):  # non-monotone on purpose: extend + revisit
        persistent = basic_sat_diagnose(
            w.faulty, w.tests, k=k, session=session
        )
        rebuilt = basic_sat_diagnose(w.faulty, w.tests, k=k)
        assert _canon(persistent.solutions) == _canon(rebuilt.solutions), k
        assert persistent.complete and rebuilt.complete


@pytest.mark.parametrize("seed", [301, 412])
def test_repeated_query_served_from_memo(seed):
    w = _workload(seed)
    session = DiagnosisSession(w.faulty, w.tests)
    first = basic_sat_diagnose(w.faulty, w.tests, k=2, session=session)
    again = basic_sat_diagnose(w.faulty, w.tests, k=2, session=session)
    assert first.solutions == again.solutions
    assert "cached" not in first.extras
    assert again.extras.get("cached") is True
    # corrections are collected eagerly on the persistent path, so the
    # collect_corrections repeat is also a memo hit
    with_corr = basic_sat_diagnose(
        w.faulty, w.tests, k=2, session=session, collect_corrections=True
    )
    assert with_corr.extras.get("cached") is True
    assert set(with_corr.extras["corrections"]) == set(first.solutions)


def test_extend_k_grows_bound_in_place():
    w = _workload(301)
    session = DiagnosisSession(w.faulty, w.tests)
    inst1 = session.instance(1)
    n_outputs_before = len(inst1.bound_outputs)
    solver_before = inst1.solver
    inst2 = session.instance(3)
    assert inst2 is inst1  # same persistent instance
    assert inst1.solver is solver_before  # no rebuild
    assert len(inst1.bound_outputs) > n_outputs_before
    # extended bound agrees with a fresh k=3 build
    fresh = build_diagnosis_instance(w.faulty, w.tests, k_max=3)
    got = basic_sat_diagnose(w.faulty, w.tests, k=3, session=session)
    ref = basic_sat_diagnose(w.faulty, w.tests, k=3, instance=fresh)
    assert _canon(got.solutions) == _canon(ref.solutions)


def test_instance_cache_keys():
    w = _workload(301)
    session = DiagnosisSession(w.faulty, w.tests)
    base = session.instance(2)
    assert session.instance(2) is base
    # None and the default backend's explicit name share one entry
    assert session.instance(2, solver_backend="arena") is base
    sub = tuple(w.faulty.gate_names[:5])
    narrowed = session.instance(2, suspects=sub)
    assert narrowed is not base
    assert narrowed.suspects == sub
    # select_zero_clauses does not change solution sets (the master's
    # c-free mux subsumes the pruning), so both flag values must map to
    # the *same* cached view — one entry, asserted by object identity.
    assert session.instance(2, select_zero_clauses=True) is base
    assert (
        session.instance(2, suspects=sub, select_zero_clauses=True)
        is narrowed
    )
    assert session.instance(2, solver_backend="legacy") is not base


def test_auto_k_on_session_matches_standalone():
    w = _workload(412)
    session = DiagnosisSession(w.faulty, w.tests)
    on_session = auto_k_sat_diagnose(
        w.faulty, w.tests, k_max=3, session=session
    )
    standalone = auto_k_sat_diagnose(w.faulty, w.tests, k_max=3)
    assert _canon(on_session.solutions) == _canon(standalone.solutions)
    assert on_session.k == standalone.k
    assert on_session.extras["k_found"] == standalone.extras["k_found"]
    # and a bsat follow-up on the same session still sees the full space
    follow = basic_sat_diagnose(
        w.faulty, w.tests, k=on_session.k, session=session
    )
    assert _canon(follow.solutions) == _canon(on_session.solutions)


def test_session_with_foreign_tests_not_misrouted():
    """basic_sat_diagnose must not use the session instance when handed
    tests that are not the session's own (partitioned chunks)."""
    w = _workload(503)
    session = DiagnosisSession(w.faulty, w.tests)
    from repro.testgen.testset import TestSet

    chunk = TestSet(tuple(w.tests)[:2])
    via_session = basic_sat_diagnose(
        w.faulty, chunk, k=2, session=session
    )
    direct = basic_sat_diagnose(w.faulty, chunk, k=2)
    assert _canon(via_session.solutions) == _canon(direct.solutions)


def test_ihs_persistent_hitter_across_calls():
    w = _workload(412)
    session = DiagnosisSession(w.faulty, w.tests)
    first = ihs_diagnose(w.faulty, w.tests, session=session)
    second = ihs_diagnose(w.faulty, w.tests, session=session)
    assert _canon(first.solutions) == _canon(second.solutions)
    assert first.k == second.k
    # conflicts are facts: the persisted set only grows, so the second
    # call starts from everything the first call proved
    assert second.extras["conflicts"] >= first.extras["conflicts"]
    assert second.extras["rounds"] <= first.extras["rounds"] + 2
    # and the answer still matches BSAT's minimum-cardinality slice
    bsat = basic_sat_diagnose(
        w.faulty, w.tests, k=first.k, session=session
    )
    minimum = [s for s in bsat.solutions if len(s) == first.k]
    assert _canon(first.solutions) == _canon(minimum)


# ----------------------------------------------------------------------
# backend threading through the strategy registry
# ----------------------------------------------------------------------
def test_all_strategies_accept_solver_backend():
    w = make_workload(library.c17(), p=1, m_max=4, seed=11)
    options_by_strategy = {"repair": {"initial": [w.faulty.gate_names[0]]}}
    for name in sorted(DIAGNOSIS_STRATEGIES):
        results = {}
        for backend in (None, "legacy"):
            session = DiagnosisSession(
                w.faulty, w.tests, solver_backend=backend
            )
            options = dict(options_by_strategy.get(name, {}))
            if backend is not None:
                options["solver_backend"] = backend
            results[backend] = diagnose(
                session, k=2, strategy=name, **options
            )
        # same solution sets whichever backend solves the instances
        assert _canon(results[None].solutions) == _canon(
            results["legacy"].solutions
        ), name


# ----------------------------------------------------------------------
# pinned regression: bit-identical to pre-overhaul outputs
# ----------------------------------------------------------------------
def _pinned_workload(name):
    circuit = {
        "c17": library.c17,
        "rca4": lambda: library.ripple_carry_adder(4),
        "mux2": lambda: library.mux_tree(2),
    }[name]()
    p, m, seed = {"c17": (1, 4, 11), "rca4": (2, 6, 7), "mux2": (2, 6, 3)}[
        name
    ]
    return make_workload(circuit, p=p, m_max=m, seed=seed, allow_fewer=True)


@pytest.mark.parametrize("name", sorted(PINNED))
def test_bsat_autok_ihs_pinned_under_default_backend(name):
    w = _pinned_workload(name)
    expected = PINNED[name]
    k = max(2, w.p)
    session = DiagnosisSession(w.faulty, w.tests)
    bsat = basic_sat_diagnose(w.faulty, w.tests, k=k, session=session)
    assert _canon(bsat.solutions) == [tuple(s) for s in expected["bsat"]]
    autok = auto_k_sat_diagnose(
        w.faulty, w.tests, k_max=k, session=session
    )
    assert _canon(autok.solutions) == [tuple(s) for s in expected["autok"]]
    ihs = ihs_diagnose(w.faulty, w.tests, session=session)
    assert _canon(ihs.solutions) == [tuple(s) for s in expected["ihs"]]
    assert ihs.k == expected["ihs_k"]


# ----------------------------------------------------------------------
# master encoding and suspect-pool views
# ----------------------------------------------------------------------
def test_views_share_one_master_solver():
    w = _workload(301)
    session = DiagnosisSession(w.faulty, w.tests)
    full = session.instance(2)
    sub = tuple(w.faulty.gate_names[:5])
    view = session.instance(2, suspects=sub)
    assert view.solver is full.solver  # one persistent solver
    assert view.cnf is full.cnf
    assert view.totalizer is full.totalizer
    assert view.suspects == sub
    # pins cover exactly the non-suspects
    assert len(view.pin_assumptions) == len(
        w.faulty.gate_names
    ) - len(sub)
    assert full.base_assumptions() == []


@pytest.mark.parametrize("seed", [301, 412, 503])
def test_master_views_match_fresh_pool_instances(seed):
    """Pool-churn parity: a master view must enumerate exactly the
    solution sets of a freshly built per-pool instance, on the arena
    *and* the legacy backend."""
    import random

    w = _workload(seed)
    rng = random.Random(seed)
    gates = list(w.faulty.gate_names)
    sessions = {
        backend: DiagnosisSession(w.faulty, w.tests, solver_backend=backend)
        for backend in (None, "legacy")
    }
    for _ in range(6):
        pool = sorted(rng.sample(gates, rng.randint(2, len(gates))))
        fresh = basic_sat_diagnose(w.faulty, w.tests, k=2, suspects=pool)
        expected = _canon(fresh.solutions)
        for backend, session in sessions.items():
            via_view = basic_sat_diagnose(
                w.faulty, w.tests, k=2, suspects=pool, session=session
            )
            assert _canon(via_view.solutions) == expected, (backend, pool)
        # every reported solution is a valid correction (witness check
        # through the independent simulation oracle)
        for sol in expected:
            assert sessions[None].consistent(sol)


def test_master_corrections_are_model_witnesses():
    """The c-free master reads corrections off the effective signals;
    selected gates must report a 0/1/-1 (don't-care) value per test."""
    w = _workload(412)
    session = DiagnosisSession(w.faulty, w.tests)
    result = basic_sat_diagnose(
        w.faulty, w.tests, k=2, session=session, collect_corrections=True
    )
    corrections = result.extras["corrections"]
    assert set(corrections) == set(result.solutions)
    for sol, per_gate in corrections.items():
        assert set(per_gate) == set(sol)
        for values in per_gate.values():
            assert len(values) == len(w.tests)
            assert all(v in (-1, 0, 1) for v in values)
