"""Tests for set-covering diagnosis (COV / SCDiagnose)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.diagnosis import minimal_covers_bnb, minimal_covers_sat, sc_diagnose


def fs(*items):
    return frozenset(items)


PAPER_EXAMPLE = [fs("A", "B", "F", "G"), fs("C", "D", "E", "F", "G"),
                 fs("B", "C", "E", "H")]


def test_paper_example_solutions():
    """Example 1 of the paper: {B, D} is a k=2 solution."""
    covers = minimal_covers_bnb(PAPER_EXAMPLE, k=2)
    assert fs("B", "D") in covers
    # every cover hits every set and is irredundant
    for cover in covers:
        assert all(cover & s for s in PAPER_EXAMPLE)
        for g in cover:
            reduced = cover - {g}
            assert not all(reduced & s for s in PAPER_EXAMPLE)


def test_paper_example_k3_contains_adh():
    """{A, D, H} is another solution (at k=3)."""
    covers = minimal_covers_bnb(PAPER_EXAMPLE, k=3)
    assert fs("A", "D", "H") in covers


def test_singletons():
    covers = minimal_covers_bnb([fs("F", "G"), fs("F")], k=2)
    assert covers == [fs("F")]


def test_empty_input():
    assert minimal_covers_bnb([], k=2) == [frozenset()]
    sat, complete = minimal_covers_sat([], k=2)
    assert sat == [frozenset()] and complete


def test_uncoverable_empty_set():
    assert minimal_covers_bnb([fs("A"), fs()], k=2) == []
    sat, _ = minimal_covers_sat([fs("A"), fs()], k=2)
    assert sat == []


def test_k_too_small():
    sets = [fs("A"), fs("B"), fs("C")]
    assert minimal_covers_bnb(sets, k=2) == []
    sat, _ = minimal_covers_sat(sets, k=2)
    assert sat == []


@given(
    st.lists(
        st.sets(st.sampled_from("ABCDEFGH"), min_size=1, max_size=5),
        min_size=1,
        max_size=6,
    ),
    st.integers(1, 3),
)
@settings(max_examples=60, deadline=None)
def test_sat_and_bnb_agree(sets, k):
    sets = [frozenset(s) for s in sets]
    bnb = set(minimal_covers_bnb(sets, k))
    sat, complete = minimal_covers_sat(sets, k)
    assert complete
    assert set(sat) == bnb


@given(
    st.lists(
        st.sets(st.sampled_from("ABCDEF"), min_size=1, max_size=4),
        min_size=1,
        max_size=5,
    ),
    st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_covers_are_minimal_and_complete(sets, k):
    """Against a brute-force enumeration of ALL minimal covers <= k."""
    from itertools import combinations

    sets = [frozenset(s) for s in sets]
    universe = sorted(set().union(*sets)) if sets else []
    brute = []
    for size in range(0, k + 1):
        for subset in combinations(universe, size):
            cand = frozenset(subset)
            if not all(cand & s for s in sets):
                continue
            if any(
                all((cand - {g}) & s for s in sets) for g in cand
            ):
                continue  # not irredundant
            brute.append(cand)
    assert set(minimal_covers_bnb(sets, k)) == set(brute)


def test_sc_diagnose_methods_agree(tiny_workload):
    w = tiny_workload
    a = sc_diagnose(w.faulty, w.tests, k=2, method="sat")
    b = sc_diagnose(w.faulty, w.tests, k=2, method="bnb")
    assert set(a.solutions) == set(b.solutions)
    assert a.approach == b.approach == "COV"


def test_sc_diagnose_solution_limit(tiny_workload):
    w = tiny_workload
    full = sc_diagnose(w.faulty, w.tests, k=2)
    if full.n_solutions > 1:
        limited = sc_diagnose(w.faulty, w.tests, k=2, solution_limit=1)
        assert limited.n_solutions == 1
        assert not limited.complete


def test_sc_diagnose_reuses_sim_result(tiny_workload):
    from repro.diagnosis import basic_sim_diagnose

    w = tiny_workload
    sim = basic_sim_diagnose(w.faulty, w.tests)
    res = sc_diagnose(w.faulty, w.tests, k=2, sim_result=sim)
    assert res.extras["sim_result"] is sim


def test_sc_diagnose_rejects_bad_method(tiny_workload):
    with pytest.raises(ValueError):
        sc_diagnose(tiny_workload.faulty, tiny_workload.tests, 1, method="x")


def test_every_cover_hits_every_candidate_set(double_error_workload):
    from repro.diagnosis import basic_sim_diagnose

    w = double_error_workload
    sim = basic_sim_diagnose(w.faulty, w.tests)
    res = sc_diagnose(w.faulty, w.tests, k=2, sim_result=sim)
    for sol in res.solutions:
        for cs in sim.candidate_sets:
            assert sol & cs, "condition (a) of SCDiagnose violated"
