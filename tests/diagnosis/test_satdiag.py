"""Tests for SAT-based diagnosis (BSAT) construction and enumeration."""

import pytest

from repro.circuits.library import FIG5A_TEST
from repro.diagnosis import (
    basic_sat_diagnose,
    build_diagnosis_instance,
    is_valid_correction,
)
from repro.sim import simulate
from repro.testgen import Test, TestSet


@pytest.fixture
def fig5a_tests():
    vec, out, val = FIG5A_TEST
    return TestSet((Test(vec, out, val),))


def test_instance_shapes(fig5a_circuit, fig5a_tests):
    inst = build_diagnosis_instance(fig5a_circuit, fig5a_tests, k_max=2)
    assert set(inst.select_of) == set(fig5a_circuit.gate_names)
    assert len(inst.correction_of) == len(fig5a_tests) * len(
        fig5a_circuit.gate_names
    )
    # every signal of every copy has a variable
    for i in range(len(fig5a_tests)):
        for sig in fig5a_circuit.nodes:
            assert (i, sig) in inst.signal_of


def test_suspect_restriction(fig5a_circuit, fig5a_tests):
    inst = build_diagnosis_instance(
        fig5a_circuit, fig5a_tests, k_max=1, suspects=["A", "D"]
    )
    assert set(inst.select_of) == {"A", "D"}
    result = basic_sat_diagnose(
        fig5a_circuit, fig5a_tests, k=1, suspects=["B", "C"]
    )
    # B and C alone cannot rectify, but together they can — not at k=1.
    assert result.solutions == ()
    result2 = basic_sat_diagnose(
        fig5a_circuit, fig5a_tests, k=2, suspects=["B", "C"]
    )
    assert set(result2.solutions) == {frozenset({"B", "C"})}


def test_invalid_suspect_rejected(fig5a_circuit, fig5a_tests):
    with pytest.raises(ValueError):
        build_diagnosis_instance(
            fig5a_circuit, fig5a_tests, k_max=1, suspects=["i1"]
        )


def test_k_validation(fig5a_circuit, fig5a_tests):
    with pytest.raises(ValueError):
        basic_sat_diagnose(fig5a_circuit, fig5a_tests, k=0)


def test_missing_input_in_vector(fig5a_circuit):
    bad = TestSet((Test({"i1": 1}, "D", 1),))
    with pytest.raises(ValueError, match="primary input"):
        build_diagnosis_instance(fig5a_circuit, bad, k_max=1)


def test_sequential_circuit_rejected(s27, fig5a_tests):
    with pytest.raises(ValueError, match="combinational"):
        build_diagnosis_instance(s27, fig5a_tests, k_max=1)


def test_correction_values_witness(fig5a_circuit, fig5a_tests):
    """The injected c values must actually rectify the test when forced."""
    result = basic_sat_diagnose(
        fig5a_circuit, fig5a_tests, k=2, collect_corrections=True
    )
    corrections = result.extras["corrections"]
    vec, out, val = FIG5A_TEST
    for sol, per_gate in corrections.items():
        for i, test in enumerate(fig5a_tests):
            forced = {}
            for g, vals in per_gate.items():
                if vals[i] != -1:
                    forced[g] = vals[i]
            values = simulate(fig5a_circuit, test.vector, forced=forced)
            assert values[test.output] == test.value, (sol, forced)


def test_solution_limit(double_error_workload):
    w = double_error_workload
    limited = basic_sat_diagnose(w.faulty, w.tests, k=2, solution_limit=3)
    assert limited.n_solutions <= 3
    if limited.n_solutions == 3:
        assert not limited.complete


def test_solutions_sorted_by_size(double_error_workload):
    """Incremental bound: all size-1 solutions precede size-2 ones."""
    w = double_error_workload
    result = basic_sat_diagnose(w.faulty, w.tests, k=2)
    sizes = [len(s) for s in result.solutions]
    assert sizes == sorted(sizes)


def test_no_duplicate_solutions(double_error_workload):
    w = double_error_workload
    result = basic_sat_diagnose(w.faulty, w.tests, k=2)
    assert len(set(result.solutions)) == result.n_solutions
    # superset-freeness (essential candidates only)
    for a in result.solutions:
        for b in result.solutions:
            assert not (a < b)


def test_select_zero_clauses_preserve_solutions(tiny_workload):
    w = tiny_workload
    plain = basic_sat_diagnose(w.faulty, w.tests, k=2)
    pruned = basic_sat_diagnose(
        w.faulty, w.tests, k=2, select_zero_clauses=True
    )
    assert set(plain.solutions) == set(pruned.solutions)


def test_constrain_all_outputs_subset(tiny_workload):
    """All-outputs solutions are a subset of single-output solutions."""
    from repro.testgen import random_failing_tests

    w = tiny_workload
    tests = random_failing_tests(
        w.golden, w.faulty, m=4, seed=55, attach_expected=True
    )
    loose = basic_sat_diagnose(w.faulty, tests, k=2)
    strict = basic_sat_diagnose(
        w.faulty, tests, k=2, constrain_all_outputs=True
    )
    for sol in strict.solutions:
        # a strict solution must be valid in the loose sense, hence it is
        # either a loose solution or the superset of one
        assert any(l <= sol for l in loose.solutions)


def test_constrain_all_outputs_requires_expected(tiny_workload):
    w = tiny_workload
    with pytest.raises(ValueError, match="expected_outputs"):
        basic_sat_diagnose(
            w.faulty, w.tests, k=1, constrain_all_outputs=True
        )


def test_stats_exposed(tiny_workload):
    w = tiny_workload
    result = basic_sat_diagnose(w.faulty, w.tests, k=1)
    assert "solver_stats" in result.extras
    assert result.extras["n_vars"] > 0
    assert result.t_build > 0
    assert result.t_all >= 0


def test_error_sites_recoverable(tiny_workload):
    """With k >= p, some solution contains (or is near) the actual site —
    for p=1 the site itself must appear in at least one solution."""
    w = tiny_workload
    result = basic_sat_diagnose(w.faulty, w.tests, k=1)
    assert any(w.sites[0] in sol for sol in result.solutions)
