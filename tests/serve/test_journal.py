"""The durable result journal: WAL roundtrip, torn tails, resume."""

import json

import pytest

from repro.serve import (
    DiagnosisService,
    ResultJournal,
    read_journal,
    signature_key,
)
from repro.serve.service import DeviceResult

from tests.serve._devices import make_device


def _result(device_id="d0", status="ok", answer=("G10",)):
    return DeviceResult(
        device_id=device_id,
        design="c17",
        status=status,
        answer=answer,
        cardinality=len(answer) if answer is not None else None,
        solutions=(frozenset(answer),) if answer is not None else (),
        winner="bsat",
    )


# ----------------------------------------------------------------------
# WAL roundtrip
# ----------------------------------------------------------------------
def test_roundtrip_accepted_and_resolved(tmp_path):
    path = tmp_path / "serve.wal"
    with ResultJournal(path) as journal:
        journal.accepted("d0", "c17", "sig-0")
        journal.resolved("sig-0", _result())
    replay = read_journal(path)
    assert replay.records == 2
    assert replay.bad_records == 0
    assert not replay.truncated
    assert replay.accepted == {"sig-0"}
    record = replay.resolved["sig-0"]
    assert record["status"] == "ok"
    assert record["answer"] == ["G10"]
    assert record["solutions"] == [["G10"]]
    assert record["winner"] == "bsat"


def test_resolved_solutions_decode_bit_identically(tmp_path):
    path = tmp_path / "serve.wal"
    result = _result(answer=("G3", "G7"))
    result.solutions = (frozenset(("G3", "G7")), frozenset(("G9",)))
    with ResultJournal(path) as journal:
        journal.resolved("sig-0", result)
    from repro.serve.journal import _decode_solutions

    record = read_journal(path).resolved["sig-0"]
    assert _decode_solutions(record["solutions"]) == result.solutions


def test_append_after_close_raises(tmp_path):
    journal = ResultJournal(tmp_path / "serve.wal")
    journal.close()
    with pytest.raises(RuntimeError):
        journal.accepted("d0", "c17", "sig-0")


# ----------------------------------------------------------------------
# crash-mid-record tolerance
# ----------------------------------------------------------------------
def test_torn_tail_is_skipped_not_fatal(tmp_path):
    path = tmp_path / "serve.wal"
    with ResultJournal(path) as journal:
        journal.resolved("sig-0", _result())
    with open(path, "ab") as fh:
        fh.write(b'{"type":"resolved","sig":"sig-1","status"')
    replay = read_journal(path)
    assert replay.truncated
    assert replay.bad_records == 0
    assert set(replay.resolved) == {"sig-0"}
    # A later run appending past the torn tail would start with a
    # newline-terminated record; re-reading stays convergent.
    assert read_journal(path).resolved == replay.resolved


def test_corrupted_record_rejected_by_crc(tmp_path):
    path = tmp_path / "serve.wal"
    with ResultJournal(path) as journal:
        journal.resolved("sig-0", _result())
        journal.resolved("sig-1", _result("d1"))
    lines = path.read_bytes().splitlines()
    # Flip the answer inside record 0 without touching its CRC.
    doctored = lines[0].replace(b'"G10"', b'"G11"')
    assert doctored != lines[0]
    path.write_bytes(b"\n".join([doctored, lines[1]]) + b"\n")
    replay = read_journal(path)
    assert replay.bad_records == 1
    assert set(replay.resolved) == {"sig-1"}


def test_unknown_record_type_counted_bad(tmp_path):
    path = tmp_path / "serve.wal"
    record = {"type": "mystery", "sig": "sig-0"}
    from repro.serve.journal import _payload_crc

    record["crc"] = _payload_crc(record)
    path.write_text(json.dumps(record) + "\n")
    replay = read_journal(path)
    assert replay.bad_records == 1
    assert replay.records == 0


def test_missing_file_is_empty_replay(tmp_path):
    replay = read_journal(tmp_path / "never-written.wal")
    assert replay.records == 0
    assert not replay.resolved and not replay.truncated


# ----------------------------------------------------------------------
# fsync batching
# ----------------------------------------------------------------------
def test_group_commit_batches_appends(tmp_path):
    path = tmp_path / "serve.wal"
    journal = ResultJournal(path, batch_size=1000, flush_interval=30.0)
    try:
        for i in range(10):
            journal.accepted(f"d{i}", "c17", f"sig-{i}")
        journal.flush()
        stats = dict(journal.stats)
    finally:
        journal.close()
    assert stats["appended"] == 10
    assert stats["synced_records"] == 10
    # One explicit commit covered all ten appends — no fsync per record.
    assert stats["commits"] == 1


# ----------------------------------------------------------------------
# service integration: journal + resume
# ----------------------------------------------------------------------
def test_service_journals_and_resumes_exactly_once(tmp_path):
    path = tmp_path / "serve.wal"
    devices = [make_device(f"d{i}", seed=3 + i, k=2) for i in range(3)]

    with ResultJournal(path) as journal:
        first = DiagnosisService(
            n_shards=2, timeout=30.0, journal=journal
        ).run(devices)
    assert all(r.status == "ok" for r in first)
    assert not any(r.journal_replayed for r in first)

    replay = read_journal(path)
    assert len(replay.resolved) == len(
        {d.signature() for d in devices}
    )
    for d in devices:
        assert signature_key(d.signature()) in replay.accepted

    with ResultJournal(path) as journal:
        service = DiagnosisService(
            n_shards=2,
            timeout=30.0,
            journal=journal,
            resume_from=replay,
        )
        second = service.run(devices)
    assert all(r.journal_replayed for r in second)
    assert service.stats()["journal_replayed"] == len(devices)
    for r1, r2 in zip(first, second):
        # Bit-identical replay: the journal stores the answer, not a
        # summary of it.
        assert r2.answer == r1.answer
        assert tuple(r2.solutions) == tuple(r1.solutions)
        assert r2.winner == r1.winner
        assert r2.cardinality == r1.cardinality
    # Replayed results are not re-journaled: the WAL does not grow with
    # resolved duplicates on every resume.
    assert len(read_journal(path).resolved) == len(replay.resolved)


def test_resume_reruns_accepted_but_unresolved_devices(tmp_path):
    path = tmp_path / "serve.wal"
    device = make_device("d0", seed=3, k=2)
    key = signature_key(device.signature())
    with ResultJournal(path) as journal:
        journal.accepted("d0", "c17", key)
    replay = read_journal(path)
    assert replay.replayable(key) is None

    with ResultJournal(path) as journal:
        service = DiagnosisService(
            n_shards=1, timeout=30.0, journal=journal, resume_from=replay
        )
        (result,) = service.run([device])
    assert result.status == "ok"
    assert not result.journal_replayed
    assert service.stats()["journal_replayed"] == 0
    # The re-run's resolution landed in the journal this time.
    assert read_journal(path).replayable(key) is not None


def test_timeout_records_are_not_replayed(tmp_path):
    path = tmp_path / "serve.wal"
    device = make_device("d0", seed=3, k=2)
    key = signature_key(device.signature())
    with ResultJournal(path) as journal:
        journal.resolved(
            key,
            _result(status="timeout", answer=None),
        )
    replay = read_journal(path)
    assert key in replay.resolved
    # timeout/error resolutions re-run on resume — a restart is a fresh
    # chance; only answer-bearing statuses replay.
    assert replay.replayable(key) is None

    service = DiagnosisService(n_shards=1, timeout=30.0, resume_from=replay)
    (result,) = service.run([device])
    assert result.status == "ok"
    assert not result.journal_replayed
