"""Device intake: hardened parsing and failure signatures."""

import json

import pytest

from repro.circuits import library
from repro.serve import (
    parse_device,
    parse_device_line,
    read_device_stream,
    signature_seed,
)

from tests.serve._devices import device_json, make_device


VALID = {
    "id": "lot1-die3",
    "design": "c17",
    "tests": [{"vector": {"1": 0, "2": 1, "3": 0, "6": 1, "7": 0},
               "output": "22", "value": 1}],
}


def test_parse_valid_device():
    device = parse_device(VALID)
    assert device.device_id == "lot1-die3"
    assert device.design == "c17"
    assert device.tests.m == 1
    assert device.k is None


@pytest.mark.parametrize(
    "mutate, needle",
    [
        (lambda d: d.pop("id"), "'id'"),
        (lambda d: d.pop("design"), "'design'"),
        (lambda d: d.pop("tests"), "'tests'"),
        (lambda d: d.update(id=7), "device.id"),
        (lambda d: d.update(design=""), "device.design"),
        (lambda d: d.update(k=0), "device.k"),
        (lambda d: d.update(k=True), "device.k"),
        (lambda d: d.update(tests=[]), "device.tests"),
        (lambda d: d.update(tests="oops"), "device.tests"),
        (lambda d: d["tests"][0].pop("output"), "device.tests[0]"),
        (lambda d: d["tests"][0].pop("value"), "device.tests[0]"),
        (lambda d: d["tests"][0].update(value=2), "device.tests[0].value"),
        (lambda d: d["tests"][0].pop("vector"), "device.tests[0]"),
        (
            lambda d: d["tests"][0]["vector"].update({"1": "x"}),
            "device.tests[0].vector['1']",
        ),
    ],
)
def test_malformed_device_names_offending_field(mutate, needle):
    data = json.loads(json.dumps(VALID))
    mutate(data)
    with pytest.raises(ValueError, match="device") as excinfo:
        parse_device(data)
    assert needle in str(excinfo.value)


def test_bits_form_needs_input_order():
    data = json.loads(json.dumps(VALID))
    data["tests"][0] = {"bits": "01010", "output": "22", "value": 1}
    with pytest.raises(ValueError, match="input order"):
        parse_device(data)
    inputs = library.c17().inputs
    device = parse_device(data, inputs_of=lambda name: inputs)
    assert device.tests[0].vector == dict(zip(inputs, (0, 1, 0, 1, 0)))


def test_bits_form_length_mismatch():
    data = json.loads(json.dumps(VALID))
    data["tests"][0] = {"bits": "010", "output": "22", "value": 1}
    with pytest.raises(ValueError, match="3 bits for 5 primary inputs"):
        parse_device(data, inputs_of=lambda name: library.c17().inputs)


def test_parse_device_line_reports_line_number():
    with pytest.raises(ValueError, match="line 4: invalid JSON"):
        parse_device_line("{nope", 4)
    with pytest.raises(ValueError, match="line 9: device is missing"):
        parse_device_line('{"id": "x"}', 9)


def test_read_device_stream_skips_blanks_and_comments():
    lines = [
        "# tester log header",
        "",
        json.dumps(device_json(make_device("d0"))),
        "   ",
        json.dumps(device_json(make_device("d1", seed=5))),
    ]
    devices = list(read_device_stream(lines))
    assert [d.device_id for d in devices] == ["d0", "d1"]


def test_read_device_stream_strict_raises_on_malformed_line():
    lines = [
        json.dumps(device_json(make_device("d0"))),
        '{"id": "torn',
    ]
    with pytest.raises(ValueError, match="line 2: invalid JSON"):
        list(read_device_stream(lines))


def test_read_device_stream_skips_and_counts_malformed_midstream():
    # One bad line mid-stream must cost exactly that line — counted,
    # reported with its line number — while every device behind it in
    # the queue still parses.
    lines = [
        "# tester log header",
        json.dumps(device_json(make_device("d0"))),
        '{"id": "torn-record", "design": "c17", "tests": [{"vec',
        json.dumps(device_json(make_device("d1", seed=5))),
        '{"id": "no-tests", "design": "c17"}',
        json.dumps(device_json(make_device("d2", seed=7))),
    ]
    errors = []
    devices = list(
        read_device_stream(
            lines, on_error=lambda n, msg: errors.append((n, msg))
        )
    )
    assert [d.device_id for d in devices] == ["d0", "d1", "d2"]
    assert [n for n, _ in errors] == [3, 5]
    assert "line 3: invalid JSON" in errors[0][1]
    assert "line 5: device is missing the 'tests' field" in errors[1][1]


def test_signature_identity_and_seed():
    a = make_device("a", seed=3)
    b = make_device("b", seed=3)  # same workload, different device id
    c = make_device("c", seed=5)
    assert a.signature() == b.signature()
    assert a.signature() != c.signature()
    assert signature_seed(a.signature()) == signature_seed(b.signature())
    # The seed derives from the signature, not the device identity.
    assert signature_seed(a.signature()) != signature_seed(c.signature())


def test_signature_captures_k():
    a = make_device("a", seed=3, k=1)
    b = make_device("b", seed=3, k=2)
    assert a.signature() != b.signature()
