"""Process-pool service: design sharding, kills, cancels, journal.

Every test here spawns real worker processes (~0.5s each), so the
suite stays deliberately lean: one pool per scenario, small fleets,
the heavy mid-solve-cancel device only where the test needs a solve
long enough to cancel.
"""

import threading
import time

import pytest

from repro.serve import (
    ChaosInjector,
    DiagnosisService,
    ProcessDiagnosisService,
    ResultJournal,
    check_invariants,
    read_journal,
)

from tests.serve._devices import make_device


def _fleet():
    """Two designs (crc32-routed to different workers at 2), one
    duplicated signature to exercise the worker-local memo."""
    return [
        make_device("d0", design="c17", seed=3),
        make_device("d1", design="sim1423", seed=1, k=2),
        make_device("d2", design="c17", seed=5),
        make_device("d3", design="c17", seed=3),  # same signature as d0
    ]


def test_exactly_once_order_and_memo():
    devices = _fleet()
    with ProcessDiagnosisService(n_workers=2, timeout=60.0) as pool:
        results = pool.run(devices)
        stats = pool.stats()
    assert [r.device_id for r in results] == ["d0", "d1", "d2", "d3"]
    assert all(r.status == "ok" for r in results)
    by_id = {r.device_id: r for r in results}
    # The duplicate signature is served from the owning worker's memo
    # with the identical answer — the memo contract stays process-local.
    assert by_id["d3"].cached is True
    assert by_id["d3"].answer == by_id["d0"].answer
    # Same design -> same owning worker (design sharding, not devices).
    assert by_id["d3"].worker == by_id["d0"].worker == by_id["d2"].worker
    assert by_id["d1"].worker != by_id["d0"].worker
    assert stats["devices"] == 4
    assert stats["signature_hits"] == 1
    assert stats["failures"] == 0
    assert stats["worker_deaths"] == 0


def test_merged_stats_sum_per_worker_snapshots():
    devices = _fleet()
    with ProcessDiagnosisService(n_workers=2, timeout=60.0) as pool:
        pool.run(devices)
        stats = pool.stats()
    snapshots = [
        block["service"]
        for block in stats["workers"].values()
        if block["service"]
    ]
    # Parent totals are exactly the per-worker sums — the merge is
    # lossless for every counter an operator reads off thread mode.
    assert sum(s["devices"] for s in snapshots) == stats["devices"] == 4
    assert sum(s["timeouts"] for s in snapshots) == stats["timeouts"]
    assert sum(s["retries"] for s in snapshots) == stats["retries"]
    assert sum(s["memo_stores"] for s in snapshots) == stats["memo_stores"]
    assert (
        sum(s["signature_hits"] for s in snapshots)
        == stats["signature_hits"]
        == 1
    )
    worker_wins: dict[str, int] = {}
    for s in snapshots:
        for name, count in s["race_winners"].items():
            worker_wins[name] = worker_wins.get(name, 0) + count
    assert worker_wins == stats["worker_race_winners"]
    # The parent counts winners per resolution it accepted; clean run =
    # every worker-side win surfaced exactly once.
    assert sum(stats["race_winners"].values()) == 4
    assert sum(worker_wins.values()) == 4
    # --stats surfaces: per-worker processed and queue high-water.
    assert sum(b["processed"] for b in stats["workers"].values()) == 4
    assert set(stats["queue_high_water"]) == set(stats["workers"])
    assert all(v >= 0 for v in stats["queue_high_water"].values())


def test_bsat_only_bit_identical_to_thread_mode():
    devices = [
        make_device("b0", design="c17", seed=3, k=2),
        make_device("b1", design="sim1423", seed=1, k=2),
        make_device("b2", design="sim1423", seed=2, k=2),
    ]
    thread = DiagnosisService(
        n_shards=2, strategies=("bsat",), policy="complete", timeout=60.0
    )
    expected = {r.device_id: r for r in thread.run(devices)}
    with ProcessDiagnosisService(
        n_workers=2, strategies=("bsat",), policy="complete", timeout=60.0
    ) as pool:
        results = pool.run(devices)
    for result in results:
        assert result.status == "ok"
        reference = expected[result.device_id]
        assert result.answer == reference.answer
        assert tuple(result.solutions) == tuple(reference.solutions)


def test_worker_death_reroutes_to_survivors():
    devices = _fleet()
    killed: list[int] = []

    def kill_first(worker_index: int, device_id: str) -> bool:
        if not killed:
            killed.append(worker_index)
            return True
        return False

    with ProcessDiagnosisService(
        n_workers=2, timeout=60.0, worker_kill_hook=kill_first
    ) as pool:
        results = pool.run(devices)
        stats = pool.stats()
    assert killed, "kill hook never fired"
    assert all(r.status == "ok" for r in results), [
        (r.device_id, r.status, r.error) for r in results
    ]
    assert stats["worker_deaths"] == 1
    assert stats["reroutes"] >= 1
    assert stats["workers"][f"worker{killed[0]}"]["alive"] is False
    assert len(results) == len(devices)


def test_kill_worker_chaos_exactly_once_and_replay(tmp_path):
    devices = _fleet()
    path = tmp_path / "procs.wal"
    injector = ChaosInjector(
        seed=0, kinds=("kill_worker",), max_per_kind=1, horizon=4
    )
    journal = ResultJournal(path)
    with ProcessDiagnosisService(
        n_workers=2,
        timeout=60.0,
        journal=journal,
        worker_kill_hook=injector.worker_kill_hook,
    ) as pool:
        results = pool.run(devices)
        problems = check_invariants(
            devices, results, service=pool, journal_path=path
        )
    journal.close()
    assert injector.fired("kill_worker") == 1
    assert problems == []
    assert all(r.status == "ok" for r in results)
    # Resume through a *fresh* pool at a different worker count: the
    # parent-owned WAL is topology-agnostic and replays bit-identically
    # without re-diagnosing a single device.
    with ProcessDiagnosisService(
        n_workers=1, timeout=60.0, resume_from=read_journal(path)
    ) as resumed:
        replayed = resumed.run(devices)
        assert resumed.stats()["journal_replayed"] == len(devices)
    for original, again in zip(results, replayed):
        assert again.journal_replayed is True
        assert again.answer == original.answer
        assert tuple(again.solutions) == tuple(original.solutions)


def test_cancel_device_mid_solve_abandons_without_killing_worker():
    # A complete bsat enumeration long enough (~0.6s) to cancel midway.
    heavy = make_device("heavy", design="sim6669", seed=5, k=2)
    quick = make_device("after", design="sim6669", seed=1, k=2)
    with ProcessDiagnosisService(
        n_workers=1, strategies=("bsat",), policy="complete", timeout=60.0
    ) as pool:
        canceller = threading.Timer(
            0.15, lambda: pool.cancel_device("heavy")
        )
        canceller.start()
        t0 = time.monotonic()
        (result,) = pool.run([heavy])
        elapsed = time.monotonic() - t0
        canceller.cancel()
        assert result.status == "timeout"
        assert "externally cancelled" in result.error
        assert elapsed < 30.0  # resolved by the cancel, not the deadline
        assert pool.stats()["cancels_sent"] == 1
        # The worker survives the cancel and keeps serving.
        (after,) = pool.run([quick])
        assert after.status == "ok"


def test_journal_resume_without_chaos(tmp_path):
    devices = _fleet()
    path = tmp_path / "clean.wal"
    journal = ResultJournal(path)
    with ProcessDiagnosisService(
        n_workers=2, timeout=60.0, journal=journal
    ) as pool:
        results = pool.run(devices)
    journal.close()
    with ProcessDiagnosisService(
        n_workers=2, timeout=60.0, resume_from=read_journal(path)
    ) as resumed:
        replayed = resumed.run(devices)
        stats = resumed.stats()
    assert all(r.journal_replayed for r in replayed)
    assert stats["journal_replayed"] == len(devices)
    assert [r.answer for r in replayed] == [r.answer for r in results]


def test_invalid_configuration_rejected_before_spawn():
    with pytest.raises(ValueError, match="n_workers"):
        ProcessDiagnosisService(n_workers=0)
    with pytest.raises(ValueError, match="unknown strategy"):
        ProcessDiagnosisService(strategies=("bsat", "nope"))
    with pytest.raises(ValueError, match="policy"):
        ProcessDiagnosisService(policy="sometimes")
    with pytest.raises(ValueError, match="at least one strategy"):
        ProcessDiagnosisService(strategies=())


def test_duplicate_device_ids_rejected():
    with ProcessDiagnosisService(n_workers=1, timeout=60.0) as pool:
        with pytest.raises(ValueError, match="duplicate device id"):
            pool.run(
                [make_device("x", seed=3), make_device("x", seed=5)]
            )
        # The rejection leaves the pool serviceable.
        (result,) = pool.run([make_device("x", seed=3)])
        assert result.status == "ok"
