"""Shared helpers: mint failing-device reports from workloads.

A device carries the *observed* (flipped) responses of an injected-fault
workload, paired with the golden design netlist — the test-floor shape
the service diagnoses (see ``repro.serve.intake``).
"""

from repro.circuits import library
from repro.experiments import make_workload
from repro.serve import DeviceReport
from repro.testgen import TestSet
from repro.testgen.testset import Test


def make_device(
    device_id: str,
    design: str = "c17",
    seed: int = 3,
    p: int = 1,
    m_max: int = 4,
    k: int | None = None,
) -> DeviceReport:
    w = make_workload(library.get_circuit(design), p=p, m_max=m_max, seed=seed)
    tests = TestSet(
        tuple(
            Test(vector=dict(t.vector), output=t.output, value=t.value ^ 1)
            for t in w.tests
        )
    )
    return DeviceReport(
        device_id=device_id, design=design, tests=tests, k=k
    )


def device_json(device: DeviceReport) -> dict:
    return {
        "id": device.device_id,
        "design": device.design,
        **({"k": device.k} if device.k is not None else {}),
        "tests": [
            {"vector": dict(t.vector), "output": t.output, "value": t.value}
            for t in device.tests
        ],
    }
