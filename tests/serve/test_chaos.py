"""Chaos harness: seeded injection across every serving failure surface."""

import json

import pytest

from repro.serve import (
    ChaosInjector,
    DiagnosisService,
    JournalCrash,
    ResultJournal,
    check_invariants,
    read_device_stream,
    read_journal,
)
from repro.serve.chaos import ALL_INJECTION_KINDS

from tests.serve._devices import device_json, make_device


def _intake(devices, injector):
    """Devices through the (possibly corrupted) JSONL intake path."""
    lines = injector.wrap_lines(
        [json.dumps(device_json(d)) for d in devices]
    )
    skipped = []
    parsed = list(
        read_device_stream(
            lines, on_error=lambda n, m: skipped.append((n, m))
        )
    )
    return parsed, skipped


def _serve_once(devices, injector, path, resume=None):
    """One service 'process': run with chaos hooks; JournalCrash = death."""
    journal = ResultJournal(
        path,
        before_flush=injector.before_flush,
        after_flush=injector.after_flush,
    )
    service = DiagnosisService(
        n_shards=2,
        timeout=30.0,
        max_attempts=3,
        fault_hook=injector.fault_hook,
        journal=journal,
        resume_from=resume,
    )
    results = None
    try:
        results = service.run(devices)
    except JournalCrash:
        pass
    try:
        journal.close()
    except JournalCrash:
        pass
    return results, service


def _serve_until_done(devices, injector, path):
    """Crash-restart loop: resume from the journal until a run survives."""
    for _ in range(4):
        resume = read_journal(path)
        results, service = _serve_once(
            devices, injector, path, resume=resume
        )
        if results is not None:
            return results, service
    raise AssertionError("service never survived the injection schedule")


# ----------------------------------------------------------------------
# the injector itself
# ----------------------------------------------------------------------
def test_unknown_injection_kind_rejected():
    with pytest.raises(ValueError, match="unknown injection kind"):
        ChaosInjector(kinds=("kill_shard", "set_fire"))


def test_schedule_is_seed_deterministic():
    a = ChaosInjector(seed=7, max_per_kind=2, horizon=16)
    b = ChaosInjector(seed=7, max_per_kind=2, horizon=16)
    assert a.schedule == b.schedule
    for kind, occurrences in a.schedule.items():
        assert len(occurrences) == 2
        assert all(0 <= o < 16 for o in occurrences)


def test_disabled_kinds_never_fire():
    injector = ChaosInjector(seed=0, kinds=("hang_leg",), horizon=1)
    for _ in range(4):
        injector.before_flush()
        injector.after_flush()
    assert injector.wrap_lines(['{"id": "x"}']) == ['{"id": "x"}']
    assert injector.log == []


# ----------------------------------------------------------------------
# one kind at a time: the service survives each failure surface
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("kind", ALL_INJECTION_KINDS)
def test_service_survives_single_kind(kind, seed, tmp_path):
    injector = ChaosInjector(
        seed=seed, kinds=(kind,), max_per_kind=1, horizon=4
    )
    source = [make_device(f"d{i}", seed=3 + i, k=2) for i in range(3)]
    devices, skipped = _intake(source, injector)
    path = tmp_path / "serve.wal"
    results, service = _serve_until_done(devices, injector, path)

    failures = check_invariants(
        devices, results, service=service, journal_path=path
    )
    assert failures == []
    # Surface-specific reactions, when the schedule actually fired.
    if kind == "corrupt_intake_line":
        assert len(skipped) == injector.fired(kind)
        assert len(devices) == len(source) - len(skipped)
    else:
        assert skipped == [] and len(devices) == len(source)
    if kind == "kill_shard" and injector.fired(kind):
        assert service.stats()["shard_deaths"] >= 0  # counted on the
        # service that hosted the kill; a resumed service starts clean.
    if kind == "raise_in_solver" and injector.fired(kind):
        # An injected solver exception may cost an attempt, but never a
        # device: every result above is ok/degraded/error, exactly once.
        assert all(r is not None for r in results)


# ----------------------------------------------------------------------
# everything at once
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1])
def test_service_survives_all_kinds_together(seed, tmp_path):
    injector = ChaosInjector(seed=seed, max_per_kind=1, horizon=6)
    source = [make_device(f"d{i}", seed=3 + i, k=2) for i in range(4)]
    devices, skipped = _intake(source, injector)
    path = tmp_path / "serve.wal"
    results, service = _serve_until_done(devices, injector, path)

    failures = check_invariants(
        devices, results, service=service, journal_path=path
    )
    assert failures == []
    assert len(results) == len(devices)
    assert len(devices) + len(skipped) == len(source)


# ----------------------------------------------------------------------
# journal commit-boundary crashes
# ----------------------------------------------------------------------
def test_flusher_death_does_not_lose_durability_at_close(tmp_path):
    # horizon=1 pins the injection to the very first group commit: the
    # background flusher dies, appends keep buffering, and close()'s
    # final synchronous commit still makes every record durable.
    injector = ChaosInjector(
        seed=0, kinds=("crash_before_flush",), max_per_kind=1, horizon=1
    )
    path = tmp_path / "serve.wal"
    journal = ResultJournal(
        path,
        batch_size=2,
        flush_interval=0.01,
        before_flush=injector.before_flush,
    )
    try:
        for i in range(8):
            journal.accepted(f"d{i}", "c17", f"sig-{i}")
    finally:
        try:
            journal.close()
        except JournalCrash:
            # The scheduled crash fired on the close path instead of
            # the flusher; the append buffer is still flushed below.
            journal.close()
    replay = read_journal(path)
    assert replay.accepted == {f"sig-{i}" for i in range(8)}
    assert injector.fired("crash_before_flush") == 1


def test_crash_then_resume_is_exactly_once(tmp_path):
    # The full crash-resume story: a journal-boundary crash kills the
    # first "process"; the restart replays resolved devices from the
    # WAL and only re-runs the remainder.
    injector = ChaosInjector(
        seed=0,
        kinds=("crash_before_flush", "crash_after_flush"),
        max_per_kind=1,
        horizon=2,
    )
    devices = [make_device(f"d{i}", seed=3 + i, k=2) for i in range(3)]
    path = tmp_path / "serve.wal"
    results, service = _serve_until_done(devices, injector, path)

    assert [r.device_id for r in results] == [d.device_id for d in devices]
    assert all(r.status in ("ok", "degraded") for r in results)
    failures = check_invariants(
        devices, results, service=service, journal_path=path
    )
    assert failures == []
    # Convergence: one clean resume replays everything bit-identically.
    replay = read_journal(path)
    clean = DiagnosisService(n_shards=2, timeout=30.0, resume_from=replay)
    replayed = clean.run(devices)
    for first, again in zip(results, replayed):
        assert again.journal_replayed
        assert again.answer == first.answer
        assert tuple(again.solutions) == tuple(first.solutions)
