"""Per-design artifact cache: built exactly once, shared thereafter."""

import threading

import pytest

from repro.circuits import library
from repro.serve import DesignCache, load_design


def test_artifacts_built_once_per_design():
    cache = DesignCache()
    first = cache.get("c17")
    second = cache.get("c17")
    assert second is first
    assert first.skeleton.circuit is first.circuit
    assert cache.stats["designs_built"] == 1
    assert cache.stats["design_hits"] == 1
    assert cache.stats["skeleton_builds"] == {"c17": 1}
    cache.get("maj3")
    assert cache.stats["designs_built"] == 2
    assert cache.stats["skeleton_builds"] == {"c17": 1, "maj3": 1}
    assert len(cache) == 2


def test_concurrent_gets_build_once():
    cache = DesignCache()
    results = []
    barrier = threading.Barrier(4)

    def worker():
        barrier.wait()
        results.append(cache.get("c17"))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({id(a) for a in results}) == 1
    assert cache.stats["skeleton_builds"] == {"c17": 1}


def test_inputs_of_matches_circuit_order():
    cache = DesignCache()
    assert cache.inputs_of("c17") == tuple(library.c17().inputs)


def test_unknown_design_is_a_value_error():
    cache = DesignCache()
    with pytest.raises(ValueError, match="neither a library circuit"):
        cache.get("no_such_design")
    with pytest.raises(ValueError, match="no_such_design"):
        load_design("no_such_design")


def test_bench_file_design(tmp_path):
    from repro.circuits import dump

    path = tmp_path / "maj.bench"
    dump(library.majority(), path)
    cache = DesignCache()
    artifacts = cache.get(str(path))
    assert artifacts.circuit.num_gates == library.majority().num_gates
    assert cache.stats["skeleton_builds"] == {str(path): 1}
