"""Per-design artifact cache: built exactly once, shared thereafter."""

import threading

import pytest

from repro.circuits import library
from repro.serve import DesignCache, load_design
from repro.serve.design import SignatureMemo


def test_artifacts_built_once_per_design():
    cache = DesignCache()
    first = cache.get("c17")
    second = cache.get("c17")
    assert second is first
    assert first.skeleton.circuit is first.circuit
    assert cache.stats["designs_built"] == 1
    assert cache.stats["design_hits"] == 1
    assert cache.stats["skeleton_builds"] == {"c17": 1}
    cache.get("maj3")
    assert cache.stats["designs_built"] == 2
    assert cache.stats["skeleton_builds"] == {"c17": 1, "maj3": 1}
    assert len(cache) == 2


def test_concurrent_gets_build_once():
    cache = DesignCache()
    results = []
    barrier = threading.Barrier(4)

    def worker():
        barrier.wait()
        results.append(cache.get("c17"))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({id(a) for a in results}) == 1
    assert cache.stats["skeleton_builds"] == {"c17": 1}


def test_inputs_of_matches_circuit_order():
    cache = DesignCache()
    assert cache.inputs_of("c17") == tuple(library.c17().inputs)


def test_unknown_design_is_a_value_error():
    cache = DesignCache()
    with pytest.raises(ValueError, match="neither a library circuit"):
        cache.get("no_such_design")
    with pytest.raises(ValueError, match="no_such_design"):
        load_design("no_such_design")


def test_bench_file_design(tmp_path):
    from repro.circuits import dump

    path = tmp_path / "maj.bench"
    dump(library.majority(), path)
    cache = DesignCache()
    artifacts = cache.get(str(path))
    assert artifacts.circuit.num_gates == library.majority().num_gates
    assert cache.stats["skeleton_builds"] == {str(path): 1}


def test_signature_memo_lru_caps_and_counts_evictions():
    memo = SignatureMemo(max_entries=2)
    assert memo.store(("a",), {"answer": 1}) is True
    assert memo.store(("b",), {"answer": 2}) is True
    assert memo.store(("c",), {"answer": 3}) is True  # evicts ("a",)
    assert len(memo) == 2
    assert memo.evictions == 1
    assert ("a",) not in memo
    assert memo.get(("a",)) is None
    assert memo.get(("c",)) == {"answer": 3}


def test_signature_memo_get_refreshes_recency():
    memo = SignatureMemo(max_entries=2)
    memo.store(("a",), {"answer": 1})
    memo.store(("b",), {"answer": 2})
    # Touch ("a",) so ("b",) becomes the LRU victim.
    assert memo.get(("a",)) == {"answer": 1}
    memo.store(("c",), {"answer": 3})
    assert ("a",) in memo
    assert ("b",) not in memo
    assert memo.evictions == 1


def test_signature_memo_store_is_first_writer_wins():
    memo = SignatureMemo(max_entries=4)
    first = {"answer": 1}
    assert memo.store(("a",), first) is True
    assert memo.store(("a",), {"answer": 999}) is False
    assert memo.get(("a",)) is first
    assert memo.evictions == 0
    with pytest.raises(ValueError, match="max_entries"):
        SignatureMemo(max_entries=0)


def test_design_cache_wires_memo_cap_and_eviction_total():
    cache = DesignCache(memo_max_entries=1)
    artifacts = cache.get("c17")
    artifacts.result_memo.store(("s1",), {"answer": 1})
    artifacts.result_memo.store(("s2",), {"answer": 2})
    other = cache.get("maj3")
    other.result_memo.store(("s3",), {"answer": 3})
    other.result_memo.store(("s4",), {"answer": 4})
    assert artifacts.result_memo.max_entries == 1
    assert cache.memo_evictions() == 2  # summed across designs
