"""The sharded service: exactly-once, batching, faults, retries."""

import threading
import time

import pytest

from repro.circuits import library
from repro.diagnosis import DiagnosisSession, diagnose
from repro.serve import (
    DesignCache,
    DeviceReport,
    DiagnosisService,
    ShardKilled,
    signature_seed,
)

from tests.serve._devices import make_device


def test_exactly_once_and_signature_batching():
    devices = [
        make_device("d0", seed=3),
        make_device("d1", seed=5),
        make_device("d2", seed=7),
        make_device("d3", seed=3),  # identical signature to d0
    ]
    service = DiagnosisService(n_shards=2, timeout=30.0)
    results = service.run(devices)
    assert [r.device_id for r in results] == ["d0", "d1", "d2", "d3"]
    assert all(r.status == "ok" for r in results)
    by_id = {r.device_id: r for r in results}
    # d3 is the same workload as d0: it must be served from the memo...
    assert by_id["d3"].cached is True
    assert by_id["d0"].cached is False
    # ...with the identical answer (batching, not re-diagnosis).
    assert by_id["d3"].answer == by_id["d0"].answer
    stats = service.stats()
    assert stats["signature_hits"] == 1
    assert stats["memo_stores"] == 3  # one per unique signature
    assert stats["duplicate_results_dropped"] == 0
    assert stats["late_results_dropped"] == 0
    assert stats["failures"] == 0
    # The observation-independent artifacts were built exactly once.
    assert stats["design_cache"]["skeleton_builds"] == {"c17": 1}
    # Every resolution records its winning strategy — the memo-served
    # device inherits the winner of the race it batched onto.
    assert sum(stats["race_winners"].values()) == 4


def test_duplicate_device_ids_rejected():
    service = DiagnosisService(n_shards=1)
    with pytest.raises(ValueError, match="duplicate device id"):
        service.run([make_device("x", seed=3), make_device("x", seed=5)])


def test_unknown_design_resolves_as_error_not_crash():
    bad = DeviceReport(
        device_id="u0",
        design="no_such_design",
        tests=make_device("seed").tests,
    )
    service = DiagnosisService(n_shards=2, timeout=10.0)
    results = service.run([bad, make_device("ok0", seed=5)])
    assert results[0].status == "error"
    assert "no_such_design" in results[0].error
    assert results[1].status == "ok"
    assert service.stats()["failures"] == 1


def test_unknown_strategy_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown strategy"):
        DiagnosisService(strategies=("greedy-stochastic", "nope"))


def test_shard_death_retries_on_another_shard():
    state = {"killed": None}

    def hook(shard_index, attempt):
        if attempt.device.device_id == "d0" and state["killed"] is None:
            state["killed"] = shard_index
            raise ShardKilled("injected crash")

    service = DiagnosisService(
        n_shards=3, timeout=30.0, max_attempts=2, fault_hook=hook
    )
    results = service.run(
        [make_device("d0", seed=3), make_device("d1", seed=5)]
    )
    assert [r.device_id for r in results] == ["d0", "d1"]
    assert all(r.status == "ok" for r in results)
    d0 = results[0]
    assert d0.attempts == 2
    assert d0.shard != state["killed"]  # retried *elsewhere*
    stats = service.stats()
    assert stats["shard_deaths"] == 1
    assert stats["retries"] == 1
    assert stats["duplicate_results_dropped"] == 0


def test_hung_shard_watchdog_retries_elsewhere():
    state = {"hung": None}

    def hook(shard_index, attempt):
        if attempt.device.device_id == "d0" and state["hung"] is None:
            state["hung"] = shard_index
            time.sleep(0.5)

    service = DiagnosisService(
        n_shards=2, timeout=0.15, max_attempts=2, fault_hook=hook
    )
    results = service.run([make_device("d0", seed=3, k=2)])
    (d0,) = results
    assert d0.status == "ok"
    assert d0.attempts == 2
    assert d0.shard != state["hung"]
    stats = service.stats()
    assert stats["timeouts"] == 1
    assert stats["retries"] == 1
    # The hung attempt's late outcome was dropped, not double-counted:
    # exactly one extra resolution attempt, zero lost devices.
    assert (
        stats["duplicate_results_dropped"] + stats["late_results_dropped"]
        == 1
    )


def test_deadline_exhausts_attempts_to_timeout_status():
    def hook(shard_index, attempt):
        time.sleep(0.4)

    service = DiagnosisService(
        n_shards=2, timeout=0.1, max_attempts=2, fault_hook=hook,
        degrade=False,
    )
    results = service.run([make_device("d0", seed=3, k=2)])
    (d0,) = results
    assert d0.status == "timeout"
    assert d0.attempts == 2
    assert "deadline exceeded" in d0.error
    stats = service.stats()
    assert stats["timeouts"] == 2
    assert stats["failures"] == 1


def test_deadline_exhaustion_degrades_instead_of_timing_out():
    # Same hang as above, but with the default degradation ladder on:
    # the device resolves with a degraded answer (and its validity
    # class) instead of an empty timeout.
    def hook(shard_index, attempt):
        time.sleep(0.4)

    service = DiagnosisService(
        n_shards=2, timeout=0.1, max_attempts=2, fault_hook=hook
    )
    results = service.run([make_device("d0", seed=3, k=2)])
    (d0,) = results
    assert d0.status == "degraded"
    assert d0.degraded_rung in ("approximate", "guidance")
    assert d0.validity in ("valid-sampled", "guidance")
    if d0.degraded_rung == "approximate":
        # The approximate rung only reports verified valid corrections.
        assert d0.answer is not None and d0.solutions
    else:
        assert d0.answer is None and d0.solutions
    assert "deadline exceeded" in d0.error
    stats = service.stats()
    assert stats["degraded"] == 1
    assert stats["failures"] == 0
    assert stats["timeouts"] == 2


def test_bsat_only_service_matches_sequential_baseline_bitwise():
    devices = [
        make_device("d0", seed=3, k=2),
        make_device("d1", seed=5, k=2),
    ]
    service = DiagnosisService(
        n_shards=2, strategies=("bsat",), policy="complete", timeout=60.0
    )
    results = service.run(devices)
    for device, result in zip(devices, results):
        assert result.status == "ok"
        circuit = library.get_circuit(device.design)
        fresh = DiagnosisSession(
            circuit,
            device.tests,
            seed=signature_seed(device.signature()),
        )
        baseline = diagnose(fresh, k=2, strategy="bsat-auto-k")
        assert result.solutions == tuple(baseline.solutions)


def test_service_run_is_reusable():
    service = DiagnosisService(n_shards=2, timeout=30.0)
    first = service.run([make_device("a", seed=3)])
    second = service.run([make_device("b", seed=3)])
    assert first[0].status == "ok" and second[0].status == "ok"
    # Same signature across runs: the memo survives in the design cache.
    assert second[0].cached is True
    assert second[0].answer == first[0].answer


def test_arena_jit_warm_up_paid_at_construction_not_first_device(
    monkeypatch,
):
    """No warm-up cliff on the first device: constructing the service
    with a JIT backend pays the compile up front."""
    import repro.serve.service as service_mod
    from repro.sat import compiled

    calls: list[float] = []

    def fake_warm_up():
        calls.append(time.perf_counter())
        if len(calls) == 1:
            time.sleep(0.25)  # the compile cliff, first call only

    monkeypatch.setattr(compiled, "warm_up", fake_warm_up)
    monkeypatch.setattr(
        service_mod, "resolve_backend", lambda backend: "arena-jit"
    )
    t0 = time.perf_counter()
    service = DiagnosisService(n_shards=1, timeout=30.0)
    construction = time.perf_counter() - t0
    assert len(calls) == 1
    assert construction >= 0.25  # the cliff landed here...
    (result,) = service.run([make_device("w0", seed=3)])
    assert result.status == "ok"
    assert result.latency < 0.25  # ...not on the first device
    assert len(calls) == 1  # and is never re-paid on the device path


def test_non_jit_backends_skip_eager_warm_up(monkeypatch):
    import repro.serve.service as service_mod
    from repro.sat import compiled

    calls: list[int] = []
    monkeypatch.setattr(compiled, "warm_up", lambda: calls.append(1))
    monkeypatch.setattr(
        service_mod, "resolve_backend", lambda backend: "arena"
    )
    DiagnosisService(n_shards=1, timeout=30.0)
    assert calls == []


def test_external_cancel_abandons_without_retry_or_degrade():
    # A complete bsat enumeration long enough (~0.6s) to cancel midway.
    heavy = make_device("heavy", design="sim6669", seed=5, k=2)
    cancels: dict[str, threading.Event] = {"heavy": threading.Event()}
    service = DiagnosisService(
        n_shards=1,
        strategies=("bsat",),
        policy="complete",
        timeout=30.0,
        max_attempts=3,
        external_cancels=cancels,
    )
    timer = threading.Timer(0.15, cancels["heavy"].set)
    timer.start()
    t0 = time.perf_counter()
    (result,) = service.run([heavy])
    elapsed = time.perf_counter() - t0
    timer.cancel()
    assert result.status == "timeout"
    assert "externally cancelled" in result.error
    # Abandonment, not failure handling: no retry, no degraded answer.
    assert result.attempts == 1
    assert result.degraded_rung is None
    assert service.stats()["retries"] == 0
    assert service.stats()["degraded"] == 0
    assert elapsed < 10.0  # resolved by the cancel, not the deadline


def test_memo_cap_evictions_surface_in_stats():
    service = DiagnosisService(
        n_shards=1,
        timeout=30.0,
        design_cache=DesignCache(memo_max_entries=1),
    )
    devices = [
        make_device("m0", seed=3),
        make_device("m1", seed=5),
        make_device("m2", seed=7),
    ]
    results = service.run(devices)
    assert all(r.status == "ok" for r in results)
    # Three unique signatures through a one-entry memo: two evictions.
    assert service.stats()["design_cache"]["memo_evictions"] == 2
    assert service.stats()["memo_stores"] == 3
