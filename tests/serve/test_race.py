"""Strategy races: first valid answer wins, losers cancel cleanly."""

import threading

import pytest

from repro.circuits import library
from repro.diagnosis import DiagnosisSession, diagnose
from repro.sat.backends import SAT_BACKENDS, register_backend
from repro.sat.budget import Budget
from repro.sat.compiled import CompiledSolver
from repro.serve import DEFAULT_STRATEGIES, race_device, signature_seed
from repro.serve.race import run_leg

from tests.serve._devices import make_device


def _session(device):
    circuit = library.get_circuit(device.design)
    return DiagnosisSession(
        circuit, device.tests, seed=signature_seed(device.signature())
    )


def test_race_produces_a_valid_answer():
    device = make_device("d0", seed=3, k=2)
    session = _session(device)
    outcome = race_device(session, k=device.k)
    assert outcome.winner in DEFAULT_STRATEGIES
    assert outcome.answer is not None
    assert not outcome.timed_out and not outcome.cancelled
    # Every leg only reports verified-valid corrections, so the winner
    # must be consistent with every observation.
    assert session.consistent(outcome.answer)


def test_single_bsat_race_is_bit_identical_to_baseline():
    device = make_device("d0", seed=3, k=2)
    outcome = race_device(
        _session(device), strategies=("bsat",), k=device.k, first_only=False
    )
    baseline = diagnose(_session(device), k=2, strategy="bsat-auto-k")
    assert outcome.winner == "bsat"
    assert outcome.solutions == tuple(baseline.solutions)
    assert outcome.answer == tuple(
        sorted(min(baseline.solutions, key=lambda s: (len(s), sorted(s))))
    )


def test_empty_strategy_tuple_rejected():
    device = make_device("d0")
    with pytest.raises(ValueError, match="at least one strategy"):
        race_device(_session(device), strategies=())


def test_precancelled_race_cancels_every_leg():
    device = make_device("d0", seed=3, k=2)
    cancel = threading.Event()
    cancel.set()
    outcome = race_device(_session(device), k=device.k, cancel=cancel)
    assert outcome.cancelled
    assert outcome.answer is None and outcome.winner is None
    assert outcome.cancelled_legs == len(DEFAULT_STRATEGIES)


class _Stop:
    """should_stop stub: False for ``after`` polls, then always True."""

    def __init__(self, after: int = 0) -> None:
        self.calls = 0
        self.after = after

    def __call__(self) -> bool:
        self.calls += 1
        return self.calls > self.after


@pytest.mark.parametrize(
    "strategy, kwargs",
    [
        ("greedy-stochastic", {}),
        ("ihs", {}),
        ("bsat-auto-k", {"k": 2}),
    ],
)
def test_immediate_stop_cancels_before_any_work(strategy, kwargs):
    device = make_device("d0", seed=3)
    session = _session(device)
    stop = _Stop(after=0)
    result = diagnose(session, strategy=strategy, should_stop=stop, **kwargs)
    assert result.extras.get("cancelled") is True
    assert result.solutions == ()
    assert not result.complete
    # The strategy must stop at its first poll — exactly one call.
    assert stop.calls == 1


def test_stop_honored_within_one_check_interval():
    # Greedy polls once per climb and once per retraction attempt; after
    # the poll that first returns True it must not poll again (the run
    # exits at that check interval, not at the end of the sweep).
    device = make_device("d0", seed=3)
    session = _session(device)
    stop = _Stop(after=3)
    result = diagnose(
        session, strategy="greedy-stochastic", should_stop=stop
    )
    assert result.extras.get("cancelled") is True
    assert stop.calls == stop.after + 1


def test_cancelled_run_leaves_no_poisoned_session_state():
    # A cancelled BSAT sweep must not memoize its partial result or leak
    # solver scope state: a subsequent full run on the *same* session
    # must equal a fresh session's run and must not come from a cache.
    device = make_device("d0", seed=3, k=2)
    session = _session(device)
    cancel = threading.Event()
    cancel.set()
    outcome = race_device(
        session, strategies=("bsat",), k=device.k, cancel=cancel
    )
    assert outcome.cancelled and outcome.answer is None
    full = diagnose(session, k=2, strategy="bsat-auto-k")
    fresh = diagnose(_session(device), k=2, strategy="bsat-auto-k")
    assert full.extras.get("cached") is not True
    assert full.complete
    assert tuple(full.solutions) == tuple(fresh.solutions)


# Thresholds are backend-specific because the bound is relative to each
# solver's own conflict trajectory: the interpreted arena burns ~237
# conflicts on this workload, the compiled kernels ~20.
_BUDGET_CASES = [
    ("arena", 100, 32),
    ("arena-jit", 8, 4),
    ("compiled-scratch", 8, 4),
]


@pytest.mark.parametrize(
    "backend_kind, threshold, interval",
    _BUDGET_CASES,
    ids=[c[0] for c in _BUDGET_CASES],
)
def test_cancelled_bsat_leg_stops_within_poll_interval(
    backend_kind, threshold, interval
):
    # The serving guarantee behind race deadlines: once the stop signal
    # flips, a hung bsat leg stops inside the SAT search within one
    # conflict-poll interval — not at the next solver-call boundary.
    backend = None
    scratch = None
    if backend_kind == "arena-jit":
        if "arena-jit" not in SAT_BACKENDS:
            pytest.skip("numba unavailable: arena-jit is not registered")
        backend = "arena-jit"
    elif backend_kind == "compiled-scratch":
        # Same kernels as arena-jit, minus the numba jit — registered
        # under a scratch name so this path runs in every environment.
        scratch = "compiled-budget-test"
        register_backend(scratch, "compiled kernels (budget test)")(
            CompiledSolver
        )
        backend = scratch
    try:
        device = make_device("d0", design="sim1423", seed=1, k=2)
        session = _session(device)
        budget = Budget(conflict_poll_interval=interval)
        budget.should_stop = lambda: budget.conflicts >= threshold
        result = run_leg(
            session,
            "bsat",
            k=2,
            first_only=False,
            should_stop=None,
            solver_backend=backend,
            budget=budget,
        )
    finally:
        if scratch is not None:
            SAT_BACKENDS.pop(scratch, None)
    assert budget.interrupted and budget.reason == "cancelled"
    assert result.extras.get("cancelled") is True
    assert result.extras.get("interrupted") is True
    assert not result.complete
    # The search ran up to the stop signal...
    assert budget.conflicts >= threshold
    # ...and overran it by at most one poll interval of conflicts.
    assert budget.conflicts <= threshold + interval


def test_cancelled_greedy_and_ihs_leave_session_reusable():
    device = make_device("d0", seed=3)
    session = _session(device)
    for strategy in ("greedy-stochastic", "ihs"):
        cancelled = diagnose(
            session, strategy=strategy, should_stop=_Stop(after=0)
        )
        assert cancelled.extras.get("cancelled") is True
    full = diagnose(session, strategy="ihs")
    fresh = diagnose(_session(device), strategy="ihs")
    assert tuple(full.solutions) == tuple(fresh.solutions)
    assert full.complete == fresh.complete
