"""Shared fixtures for the test-suite.

Small, fast circuits and pre-built diagnosis workloads used across test
modules.  Workload construction is deterministic (fixed seeds) so failures
reproduce exactly.
"""

from __future__ import annotations

import pytest

from repro.circuits import library, random_circuit
from repro.experiments import make_workload


@pytest.fixture
def c17():
    return library.c17()


@pytest.fixture
def s27():
    return library.s27()


@pytest.fixture
def fig5a_circuit():
    return library.fig5a()


@pytest.fixture
def fig5b_circuit():
    return library.fig5b()


@pytest.fixture
def maj3():
    return library.majority()


@pytest.fixture
def rca4():
    return library.ripple_carry_adder(4)


@pytest.fixture
def small_random():
    """A 20-gate random circuit for structural/simulation tests."""
    return random_circuit(n_inputs=6, n_outputs=3, n_gates=20, seed=11)


@pytest.fixture(scope="session")
def tiny_workload():
    """Single gate-change error in a ~15-gate circuit, 4 failing tests."""
    circuit = random_circuit(n_inputs=5, n_outputs=3, n_gates=15, seed=301)
    return make_workload(circuit, p=1, m_max=4, seed=5)


@pytest.fixture(scope="session")
def double_error_workload():
    """Two gate-change errors in a ~25-gate circuit, 8 failing tests."""
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=25, seed=302)
    return make_workload(circuit, p=2, m_max=8, seed=6)


@pytest.fixture(scope="session")
def medium_workload():
    """Two errors in a ~120-gate circuit, 16 failing tests (integration)."""
    circuit = random_circuit(n_inputs=12, n_outputs=6, n_gates=120, seed=303)
    return make_workload(circuit, p=2, m_max=16, seed=7)
