"""Tests for composite (D-calculus) simulation."""

from repro.circuits import Circuit, GateType, X
from repro.circuits.library import c17
from repro.faults import StuckAtFault
from repro.sim import simulate
from repro.testgen.dcalc import (
    D,
    DBAR,
    d_frontier,
    error_at_output,
    is_error,
    is_unknown,
    simulate_composite,
)


def _and2():
    c = Circuit("and2")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("z", GateType.AND, ["a", "b"])
    c.add_output("z")
    c.validate()
    return c


def test_value_predicates():
    assert is_error(D) and is_error(DBAR)
    assert not is_error((1, 1)) and not is_error((X, 0))
    assert is_unknown((X, 1)) and is_unknown((0, X))
    assert not is_unknown(D)


def test_activation_produces_d():
    c = _and2()
    values = simulate_composite(c, {"a": 1, "b": 1}, StuckAtFault("z", 0))
    assert values["z"] == D


def test_unactivated_fault_agrees_with_good():
    c = _and2()
    values = simulate_composite(c, {"a": 0, "b": 1}, StuckAtFault("z", 0))
    assert values["z"] == (0, 0)


def test_dbar_for_stuck_at_one():
    c = _and2()
    values = simulate_composite(c, {"a": 0, "b": 0}, StuckAtFault("z", 1))
    assert values["z"] == DBAR


def test_partial_assignment_yields_x():
    c = _and2()
    values = simulate_composite(c, {"a": 1}, StuckAtFault("z", 0))
    assert values["b"] == (X, X)
    assert values["z"][0] == X  # good value unknown until b is set


def test_controlling_x_dominated():
    c = _and2()
    values = simulate_composite(c, {"a": 0}, StuckAtFault("b", 1))
    # a=0 controls the AND: output good value is 0 despite b unknown.
    assert values["z"][0] == 0


def test_d_propagates_through_sensitized_path():
    circuit = c17()
    # Activate G10 s-a-0 (needs G1=G3=1 so good G10 = NAND(1,1) = 0 ... use
    # G1=0 so good is 1, faulty pinned 0) and sensitise G22 via G16 = 1.
    vec = {"G1": 0, "G2": 0, "G3": 1, "G6": 1, "G7": 0}
    values = simulate_composite(circuit, vec, StuckAtFault("G10", 0))
    assert values["G10"] == D
    good = simulate(circuit, vec)
    assert values["G22"][0] == good["G22"]
    assert is_error(values["G22"])


def test_good_component_matches_scalar_simulator():
    circuit = c17()
    vec = {"G1": 1, "G2": 0, "G3": 1, "G6": 0, "G7": 1}
    values = simulate_composite(circuit, vec, StuckAtFault("G16", 1))
    good = simulate(circuit, vec)
    for name, (g, _f) in values.items():
        assert g == good[name], name


def test_d_frontier_lists_propagation_gates():
    circuit = c17()
    # Activate G10 s-a-0 but leave G16's other input unknown.
    values = simulate_composite(
        circuit, {"G1": 0, "G3": 1}, StuckAtFault("G10", 0)
    )
    frontier = d_frontier(circuit, values)
    assert "G22" in frontier
    # G10 itself carries the D; a gate is only a frontier member through its
    # *inputs*.
    assert "G10" not in frontier


def test_error_at_output_detection():
    c = _and2()
    values = simulate_composite(c, {"a": 1, "b": 1}, StuckAtFault("z", 0))
    assert error_at_output(c, values) == "z"
    values = simulate_composite(c, {"a": 0, "b": 1}, StuckAtFault("z", 0))
    assert error_at_output(c, values) is None


def test_fault_site_on_primary_input():
    c = _and2()
    values = simulate_composite(c, {"a": 1, "b": 1}, StuckAtFault("a", 0))
    assert values["a"] == D
    assert values["z"] == D
