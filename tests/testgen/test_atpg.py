"""Tests for the production-test ATPG flow."""

import pytest

from repro.circuits import Circuit, GateType, random_circuit
from repro.circuits.library import c17, ripple_carry_adder
from repro.faults import StuckAtFault, collapse_faults, full_stuck_at_universe
from repro.sim import deductive_coverage, response, stuck_at_response
from repro.testgen.atpg import (
    compact_patterns,
    generate_tests,
    sat_stuck_at_test,
)


def _detects(circuit, vector, fault):
    return stuck_at_response(
        circuit, vector, fault.signal, fault.value
    ) != response(circuit, vector)


# ----------------------------------------------------------------------
# SAT backend
# ----------------------------------------------------------------------


def test_sat_test_detects_fault(c17):
    fault = StuckAtFault("G16", 0)
    vector = sat_stuck_at_test(c17, fault)
    assert vector is not None
    assert _detects(c17, vector, fault)


def test_sat_proves_redundancy():
    c = Circuit("taut")
    c.add_input("a")
    c.add_gate("n", GateType.NOT, ["a"])
    c.add_gate("z", GateType.OR, ["a", "n"])
    c.add_output("z")
    c.validate()
    assert sat_stuck_at_test(c, StuckAtFault("z", 1)) is None


def test_sat_handles_pi_fault(c17):
    vector = sat_stuck_at_test(c17, StuckAtFault("G1", 1))
    assert vector is not None
    assert _detects(c17, vector, StuckAtFault("G1", 1))


def test_sat_unobservable_site_undetectable():
    c = Circuit("dead")
    c.add_input("a")
    c.add_gate("z", GateType.NOT, ["a"])
    c.add_gate("dangling", GateType.NOT, ["a"])
    c.add_output("z")
    c.validate()
    assert sat_stuck_at_test(c, StuckAtFault("dangling", 0)) is None


@pytest.mark.parametrize("seed", [0, 1])
def test_backends_agree_on_detectability(seed):
    circuit = random_circuit(n_inputs=5, n_outputs=3, n_gates=22, seed=seed)
    from repro.testgen.podem import podem

    for fault in full_stuck_at_universe(circuit, include_inputs=False):
        sat_vec = sat_stuck_at_test(circuit, fault)
        outcome = podem(circuit, fault, backtrack_limit=50_000)
        assert (sat_vec is not None) == outcome.found, fault


# ----------------------------------------------------------------------
# full flow
# ----------------------------------------------------------------------


def test_c17_full_coverage(c17):
    result = generate_tests(c17, seed=1)
    assert result.fault_coverage == 1.0
    assert result.fault_efficiency == 1.0
    assert not result.undetectable and not result.aborted
    assert result.test_count >= 1


def test_flow_sat_backend(c17):
    result = generate_tests(c17, backend="sat")
    assert result.fault_coverage == 1.0
    assert result.backend == "sat"


def test_unknown_backend_rejected(c17):
    with pytest.raises(ValueError, match="backend"):
        generate_tests(c17, backend="dalg")


def test_patterns_cover_uncollapsed_universe(c17):
    """Coverage on the collapsed list implies coverage of the universe."""
    result = generate_tests(c17, seed=2)
    universe = full_stuck_at_universe(c17)
    cov = deductive_coverage(c17, list(result.patterns), faults=universe)
    assert cov.coverage == 1.0


def test_redundant_fault_reported():
    c = Circuit("taut")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("n", GateType.NOT, ["a"])
    c.add_gate("t", GateType.OR, ["a", "n"])
    c.add_gate("z", GateType.AND, ["t", "b"])
    c.add_output("z")
    c.validate()
    result = generate_tests(c, collapse=False)
    assert StuckAtFault("t", 1) in result.undetectable
    assert result.fault_efficiency == 1.0
    assert result.fault_coverage < 1.0


def test_explicit_fault_list(c17):
    targets = [StuckAtFault("G22", 0), StuckAtFault("G23", 1)]
    result = generate_tests(c17, faults=targets)
    assert result.target_faults == tuple(targets)
    assert result.fault_coverage == 1.0


def test_flow_deterministic(c17):
    a = generate_tests(c17, seed=3)
    b = generate_tests(c17, seed=3)
    assert a.patterns == b.patterns


def test_adder_flow_with_and_without_collapse():
    rca = ripple_carry_adder(2)
    collapsed = generate_tests(rca, seed=4)
    full = generate_tests(rca, collapse=False, seed=4)
    assert collapsed.fault_coverage == 1.0
    assert full.fault_coverage == 1.0
    # The collapsed run targets fewer faults.
    assert len(collapsed.target_faults) < len(full.target_faults)


def test_redundancy_verdicts_exhaustively_valid():
    """Every fault the flow calls redundant really is (all 2^n vectors)."""
    from itertools import product

    from repro.sim import pack_patterns, simulate_words

    circuit = random_circuit(n_inputs=10, n_outputs=12, n_gates=80, seed=77)
    result = generate_tests(circuit, backend="podem", seed=1)
    assert result.undetectable  # the funnel topology guarantees some
    vecs = [
        dict(zip(circuit.inputs, bits))
        for bits in product((0, 1), repeat=len(circuit.inputs))
    ]
    words = pack_patterns(vecs, circuit.inputs)
    n = len(vecs)
    mask = (1 << n) - 1
    good = simulate_words(circuit, words, n)
    for fault in result.undetectable:
        forced = {fault.signal: mask if fault.value else 0}
        bad = simulate_words(circuit, words, n, forced_words=forced)
        assert all(
            not ((good[o] ^ bad[o]) & mask) for o in circuit.outputs
        ), fault


def test_summary_mentions_key_numbers(c17):
    result = generate_tests(c17, seed=1)
    text = result.summary()
    assert "coverage" in text and "patterns" in text
    assert c17.name in text


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------


def test_compaction_preserves_coverage():
    rca = ripple_carry_adder(3)
    result = generate_tests(rca, seed=5, compact=False)
    faults = list(result.target_faults)
    before = deductive_coverage(rca, list(result.patterns), faults=faults)
    compacted = compact_patterns(rca, list(result.patterns), faults)
    after = deductive_coverage(rca, compacted, faults=faults)
    assert after.detected == before.detected
    assert len(compacted) <= result.test_count


def test_compaction_drops_redundant_patterns(c17):
    # Duplicate every pattern: compaction must not keep the copies.
    result = generate_tests(c17, seed=6, compact=False)
    doubled = list(result.patterns) * 2
    compacted = compact_patterns(c17, doubled, list(result.target_faults))
    assert len(compacted) <= result.test_count


def test_compaction_of_empty_set(c17):
    assert compact_patterns(c17, [], list(full_stuck_at_universe(c17))) == []


def test_flow_compact_flag(c17):
    loose = generate_tests(c17, seed=7, compact=False)
    tight = generate_tests(c17, seed=7, compact=True)
    assert tight.test_count <= loose.test_count
    assert tight.fault_coverage == loose.fault_coverage == 1.0


def test_sim_engines_produce_identical_flows():
    """The batch fault simulator must be a drop-in for the deductive one:
    same patterns, same coverage, same compaction, for both backends."""
    circuit = random_circuit(n_inputs=7, n_outputs=4, n_gates=45, seed=19)
    batch = generate_tests(circuit, seed=4, sim_engine="batch")
    deductive = generate_tests(circuit, seed=4, sim_engine="deductive")
    assert batch.patterns == deductive.patterns
    assert batch.coverage.first_detection == deductive.coverage.first_detection
    assert batch.undetectable == deductive.undetectable


def test_compaction_engines_agree(c17):
    result = generate_tests(c17, seed=9, compact=False)
    faults = list(result.target_faults)
    patterns = [dict(p) for p in result.patterns]
    assert compact_patterns(
        c17, patterns, faults, sim_engine="batch"
    ) == compact_patterns(c17, patterns, faults, sim_engine="deductive")


def test_unknown_sim_engine_rejected(c17):
    with pytest.raises(ValueError, match="sim_engine"):
        generate_tests(c17, sim_engine="nope")


def test_all_sim_engines_produce_identical_flows():
    """Every registered fault-simulation engine — including the vectorized
    deductive and batched event ones — must be a drop-in: same patterns,
    same coverage, same compaction."""
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=21)
    reference = generate_tests(circuit, seed=4, sim_engine="deductive")
    for engine in ("batch", "deductive-numpy", "event"):
        result = generate_tests(circuit, seed=4, sim_engine=engine)
        assert result.patterns == reference.patterns, engine
        assert (
            result.coverage.first_detection
            == reference.coverage.first_detection
        ), engine
        assert result.undetectable == reference.undetectable, engine


def test_all_compaction_engines_agree(c17):
    result = generate_tests(c17, seed=9, compact=False)
    faults = list(result.target_faults)
    patterns = [dict(p) for p in result.patterns]
    reference = compact_patterns(c17, patterns, faults, sim_engine="deductive")
    for engine in ("batch", "deductive-numpy", "event"):
        assert (
            compact_patterns(c17, patterns, faults, sim_engine=engine)
            == reference
        ), engine
