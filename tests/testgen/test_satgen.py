"""Tests for SAT-based (miter) test generation."""

import pytest

from repro.circuits import GateType, random_circuit
from repro.faults import random_gate_changes
from repro.sim import failing_outputs, output_values
from repro.testgen import (
    MiterGenerator,
    are_equivalent,
    distinguishing_tests,
)


def workpair(seed=0):
    golden = random_circuit(n_inputs=5, n_outputs=2, n_gates=18, seed=seed)
    return golden, random_gate_changes(golden, p=1, seed=seed).faulty


def test_generated_tests_distinguish():
    golden, faulty = workpair(1)
    tests = distinguishing_tests(golden, faulty, m=5)
    assert tests.m >= 1
    for t in tests:
        assert output_values(golden, t.vector)[t.output] == t.value
        assert output_values(faulty, t.vector)[t.output] != t.value


def test_tests_are_distinct():
    golden, faulty = workpair(2)
    tests = distinguishing_tests(golden, faulty, m=8)
    keys = {tuple(sorted(t.vector.items())) for t in tests}
    assert len(keys) == tests.m


def test_equivalence_check_positive():
    golden, _ = workpair(3)
    assert are_equivalent(golden, golden.copy())


def test_equivalence_check_negative():
    golden, faulty = workpair(3)
    assert not are_equivalent(golden, faulty)


def test_equivalence_of_restructured_logic():
    """De Morgan: NAND(a, b) == OR(NOT a, NOT b)."""
    from repro.circuits import Circuit

    c1 = Circuit("nand")
    c1.add_input("a")
    c1.add_input("b")
    c1.add_gate("y", GateType.NAND, ["a", "b"])
    c1.add_output("y")

    c2 = Circuit("demorgan")
    c2.add_input("a")
    c2.add_input("b")
    c2.add_gate("na", GateType.NOT, ["a"])
    c2.add_gate("nb", GateType.NOT, ["b"])
    c2.add_gate("y", GateType.OR, ["na", "nb"])
    c2.add_output("y")
    assert are_equivalent(c1, c2)


def test_output_restricted_generation():
    golden, faulty = workpair(4)
    # find an output the fault can reach
    gen = MiterGenerator(golden, faulty)
    first = gen.next_test()
    assert first is not None
    target = first.output
    gen2 = MiterGenerator(golden, faulty)
    t = gen2.next_test(output=target)
    assert t is not None and t.output == target
    assert target in failing_outputs(golden, faulty, t.vector)


def test_exhaustion_returns_none():
    """A 1-input circuit has at most 2 distinguishing vectors."""
    from repro.circuits import Circuit

    golden = Circuit("buf")
    golden.add_input("a")
    golden.add_gate("y", GateType.BUF, ["a"])
    golden.add_output("y")
    faulty = Circuit("not")
    faulty.add_input("a")
    faulty.add_gate("y", GateType.NOT, ["a"])
    faulty.add_output("y")
    gen = MiterGenerator(golden, faulty)
    got = [gen.next_test() for _ in range(3)]
    assert got[0] is not None and got[1] is not None
    assert got[2] is None


def test_interface_mismatch_rejected(maj3):
    other = random_circuit(n_inputs=3, n_outputs=1, n_gates=5, seed=0)
    with pytest.raises(ValueError):
        MiterGenerator(maj3, other)


def test_attach_expected():
    golden, faulty = workpair(5)
    tests = distinguishing_tests(golden, faulty, m=2, attach_expected=True)
    for t in tests:
        assert t.expected_outputs is not None
        assert dict(t.expected_outputs) == output_values(golden, t.vector)
