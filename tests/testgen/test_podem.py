"""Tests for the PODEM ATPG engine."""

from itertools import product

import pytest

from repro.circuits import Circuit, GateType, random_circuit
from repro.circuits.library import c17, ripple_carry_adder
from repro.faults import StuckAtFault, full_stuck_at_universe
from repro.sim import response, stuck_at_response
from repro.testgen.podem import PodemStatus, podem
from repro.testgen.scoap import analyze_testability


def _detects(circuit, vector, fault):
    return stuck_at_response(
        circuit, vector, fault.signal, fault.value
    ) != response(circuit, vector)


def _detectable_by_exhaustion(circuit, fault):
    for bits in product((0, 1), repeat=len(circuit.inputs)):
        vector = dict(zip(circuit.inputs, bits))
        if _detects(circuit, vector, fault):
            return True
    return False


def _redundant_circuit():
    """z = OR(a, NOT a): z s-a-1 is undetectable (classic redundancy)."""
    c = Circuit("taut")
    c.add_input("a")
    c.add_gate("n", GateType.NOT, ["a"])
    c.add_gate("z", GateType.OR, ["a", "n"])
    c.add_output("z")
    c.validate()
    return c


def test_found_vector_detects_fault(c17):
    fault = StuckAtFault("G16", 0)
    outcome = podem(c17, fault)
    assert outcome.found
    assert _detects(c17, outcome.vector, fault)


def test_vector_is_complete_assignment(c17):
    outcome = podem(c17, StuckAtFault("G22", 1))
    assert outcome.found
    assert set(outcome.vector) == set(c17.inputs)


def test_redundant_fault_proven():
    c = _redundant_circuit()
    outcome = podem(c, StuckAtFault("z", 1))
    assert outcome.status is PodemStatus.UNDETECTABLE
    assert outcome.vector is None


def test_every_c17_fault_resolved_correctly(c17):
    """PODEM's verdict matches exhaustive ground truth on every c17 fault."""
    for fault in full_stuck_at_universe(c17):
        outcome = podem(c17, fault)
        assert outcome.status is not PodemStatus.ABORTED
        assert outcome.found == _detectable_by_exhaustion(c17, fault), fault
        if outcome.found:
            assert _detects(c17, outcome.vector, fault)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_verdicts_match_exhaustion_random_circuits(seed):
    circuit = random_circuit(n_inputs=5, n_outputs=3, n_gates=20, seed=seed)
    for fault in full_stuck_at_universe(circuit):
        outcome = podem(circuit, fault, backtrack_limit=50_000)
        assert outcome.status is not PodemStatus.ABORTED
        assert outcome.found == _detectable_by_exhaustion(circuit, fault), fault
        if outcome.found:
            assert _detects(circuit, outcome.vector, fault)


def test_primary_input_fault(c17):
    fault = StuckAtFault("G3", 0)
    outcome = podem(c17, fault)
    assert outcome.found
    assert outcome.vector["G3"] == 1  # activation requires the complement
    assert _detects(c17, outcome.vector, fault)


def test_fill_policies(c17):
    fault = StuckAtFault("G10", 1)
    zero = podem(c17, fault, fill="zero")
    one = podem(c17, fault, fill="one")
    assert zero.found and one.found
    assert _detects(c17, zero.vector, fault)
    assert _detects(c17, one.vector, fault)


def test_random_fill_deterministic_in_seed(c17):
    fault = StuckAtFault("G10", 1)
    a = podem(c17, fault, seed=5)
    b = podem(c17, fault, seed=5)
    assert a.vector == b.vector


def test_unknown_fault_site_rejected(c17):
    with pytest.raises(ValueError, match="unknown fault site"):
        podem(c17, StuckAtFault("nope", 0))


def test_bad_fill_rejected(c17):
    with pytest.raises(ValueError, match="fill"):
        podem(c17, StuckAtFault("G10", 0), fill="maybe")


def test_precomputed_testability_reused(c17):
    measures = analyze_testability(c17)
    outcome = podem(c17, StuckAtFault("G23", 1), testability=measures)
    assert outcome.found


def test_adder_faults_all_found():
    rca = ripple_carry_adder(3)
    for fault in full_stuck_at_universe(rca, include_inputs=False):
        outcome = podem(rca, fault, backtrack_limit=50_000)
        assert outcome.found, fault  # the adder is irredundant
        assert _detects(rca, outcome.vector, fault)


def test_search_effort_reported(c17):
    outcome = podem(c17, StuckAtFault("G23", 0))
    assert outcome.decisions >= 1
    assert outcome.backtracks >= 0
