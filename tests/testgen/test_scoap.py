"""Tests for SCOAP testability measures."""

import pytest

from repro.circuits import Circuit, GateType, random_circuit
from repro.circuits.library import parity_tree
from repro.testgen.scoap import (
    INFINITE_COST,
    Testability,
    analyze_testability,
    controllability,
    observability,
)


def _and_chain(length):
    """a0 AND a1 -> g0; g0 AND a2 -> g1; ... (controllability-1 grows)."""
    c = Circuit(f"chain{length}")
    c.add_input("a0")
    prev = "a0"
    for i in range(length):
        c.add_input(f"a{i + 1}")
        c.add_gate(f"g{i}", GateType.AND, [prev, f"a{i + 1}"])
        prev = f"g{i}"
    c.add_output(prev)
    c.validate()
    return c


def test_primary_inputs_cost_one(c17):
    cc0, cc1 = controllability(c17)
    for pi in c17.inputs:
        assert cc0[pi] == 1 and cc1[pi] == 1


def test_and_gate_costs():
    c = Circuit("and2")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("z", GateType.AND, ["a", "b"])
    c.add_output("z")
    c.validate()
    cc0, cc1 = controllability(c)
    assert cc1["z"] == 3  # both inputs to 1, plus the gate
    assert cc0["z"] == 2  # one input to 0, plus the gate


def test_not_gate_swaps_costs():
    c = _and_chain(1)
    c.add_gate("n", GateType.NOT, ["g0"])
    c.add_output("n")
    c.validate()
    cc0, cc1 = controllability(c)
    assert cc0["n"] == cc1["g0"] + 1
    assert cc1["n"] == cc0["g0"] + 1


def test_cc1_grows_along_and_chain():
    cc0, cc1 = controllability(_and_chain(5))
    costs = [cc1[f"g{i}"] for i in range(5)]
    assert costs == sorted(costs)
    assert costs[-1] > costs[0]


def test_constants_have_one_sided_cost():
    c = Circuit("const")
    c.add_input("a")
    c.add_gate("one", GateType.CONST1)
    c.add_gate("z", GateType.AND, ["a", "one"])
    c.add_output("z")
    c.validate()
    cc0, cc1 = controllability(c)
    assert cc1["one"] == 0
    assert cc0["one"] == INFINITE_COST


def test_xor_costs_are_parity_dp():
    tree = parity_tree(4)
    cc0, cc1 = controllability(tree)
    root = tree.outputs[0]
    # Any single input pattern with matching parity: 4 inputs + 3 gates.
    assert cc0[root] == cc1[root] == 4 + 3


def test_output_observability_zero(c17):
    co = observability(c17)
    for out in c17.outputs:
        assert co[out] == 0


def test_observability_grows_with_depth():
    c = _and_chain(5)
    co = observability(c)
    # g0 must traverse four more gates than g3 to reach the output.
    assert co["g0"] > co["g3"]
    costs = [co[f"g{i}"] for i in range(5)]
    assert costs == sorted(costs, reverse=True)


def test_unobservable_signal_infinite():
    c = Circuit("dangling")
    c.add_input("a")
    c.add_gate("z", GateType.NOT, ["a"])
    c.add_gate("dead", GateType.NOT, ["a"])
    c.add_output("z")
    c.validate()
    co = observability(c)
    assert co["dead"] == INFINITE_COST


def test_fanout_stem_takes_minimum():
    # Stem s feeds both a direct output buffer (cheap path) and a deep AND
    # chain (expensive path): the stem takes the cheap branch's cost.
    c = Circuit("stem")
    c.add_input("s")
    c.add_input("x0")
    c.add_input("x1")
    c.add_gate("direct", GateType.BUF, ["s"])
    c.add_gate("d0", GateType.AND, ["s", "x0"])
    c.add_gate("d1", GateType.AND, ["d0", "x1"])
    c.add_output("direct")
    c.add_output("d1")
    c.validate()
    co = observability(c)
    assert co["s"] == 1  # through the buffer, not the chain
    deep_cost = co["d0"] + 1 + 1  # CO(d0) + CC1(x0) + 1
    assert co["s"] < deep_cost


def test_analyze_bundles_measures(c17):
    t = analyze_testability(c17)
    assert isinstance(t, Testability)
    cc0, cc1 = controllability(c17)
    assert dict(t.cc0) == cc0 and dict(t.cc1) == cc1


def test_hardest_signals_ranking():
    t = analyze_testability(_and_chain(6))
    ranked = t.hardest_signals(3)
    assert len(ranked) == 3
    assert ranked[0][1] >= ranked[1][1] >= ranked[2][1]


def test_measures_deterministic():
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=40, seed=9)
    a = analyze_testability(circuit)
    b = analyze_testability(circuit)
    assert dict(a.co) == dict(b.co)
