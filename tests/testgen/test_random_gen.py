"""Tests for random failing-test generation."""

import pytest

from repro.circuits import random_circuit
from repro.faults import random_gate_changes
from repro.sim import output_values
from repro.testgen import random_failing_tests
from repro.testgen import tests_from_vectors as build_tests_from_vectors


def workpair(seed=0):
    golden = random_circuit(n_inputs=6, n_outputs=3, n_gates=25, seed=seed)
    return golden, random_gate_changes(golden, p=1, seed=seed).faulty


def test_all_generated_tests_fail():
    golden, faulty = workpair(1)
    tests = random_failing_tests(golden, faulty, m=8, seed=1)
    assert tests.m == 8
    for t in tests:
        got = output_values(faulty, t.vector)[t.output]
        want = output_values(golden, t.vector)[t.output]
        assert want == t.value
        assert got != t.value  # the implementation is wrong here


def test_deterministic():
    golden, faulty = workpair(2)
    a = random_failing_tests(golden, faulty, m=6, seed=9)
    b = random_failing_tests(golden, faulty, m=6, seed=9)
    assert [t.key() for t in a] == [t.key() for t in b]


def test_unique_vectors():
    golden, faulty = workpair(3)
    tests = random_failing_tests(golden, faulty, m=10, seed=2)
    vectors = {tuple(sorted(t.vector.items())) for t in tests}
    assert len(vectors) == 10


def test_attach_expected():
    golden, faulty = workpair(4)
    tests = random_failing_tests(
        golden, faulty, m=3, seed=3, attach_expected=True
    )
    for t in tests:
        assert t.expected_outputs is not None
        assert t.expected_outputs[t.output] == t.value
        assert dict(t.expected_outputs) == output_values(golden, t.vector)


def test_equivalent_circuits_raise():
    golden, _ = workpair(5)
    with pytest.raises(RuntimeError, match="failing tests"):
        random_failing_tests(golden, golden.copy(), m=1, seed=0, max_batches=3)


def test_tests_from_vectors_multi_output():
    golden, faulty = workpair(6)
    import random

    rng = random.Random(0)
    vectors = [
        {pi: rng.getrandbits(1) for pi in golden.inputs} for _ in range(64)
    ]
    single = build_tests_from_vectors(
        golden, faulty, vectors, per_vector_outputs=1
    )
    multi = build_tests_from_vectors(
        golden, faulty, vectors, per_vector_outputs=3
    )
    assert len(multi) >= len(single)
