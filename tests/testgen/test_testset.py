"""Tests for Test/TestSet types."""

import pytest

from repro.testgen import Test, TestSet


def make_test(i=0, out="y", value=1):
    return Test({"a": i & 1, "b": (i >> 1) & 1}, out, value)


def test_test_fields():
    t = make_test()
    assert t.output == "y"
    assert t.value == 1
    assert t.wrong_value == 0
    assert t.vector["a"] == 0


def test_vector_is_immutable():
    t = make_test()
    with pytest.raises(TypeError):
        t.vector["a"] = 1


def test_value_validation():
    with pytest.raises(ValueError):
        Test({"a": 0}, "y", 2)


def test_expected_outputs_consistency():
    Test({"a": 0}, "y", 1, expected_outputs={"y": 1, "z": 0})
    with pytest.raises(ValueError):
        Test({"a": 0}, "y", 1, expected_outputs={"y": 0, "z": 0})


def test_key_hashable():
    a, b = make_test(1), make_test(1)
    assert a.key() == b.key()
    assert make_test(2).key() != a.key()


def test_testset_sequence_protocol():
    ts = TestSet(tuple(make_test(i) for i in range(4)))
    assert len(ts) == 4 and ts.m == 4
    assert ts[0].vector["a"] == 0
    assert [t.output for t in ts] == ["y"] * 4


def test_prefix():
    ts = TestSet(tuple(make_test(i) for i in range(4)))
    assert ts.prefix(2).m == 2
    assert ts.prefix(2)[1].key() == ts[1].key()
    with pytest.raises(ValueError):
        ts.prefix(5)


def test_partition():
    ts = TestSet(tuple(make_test(i) for i in range(7)))
    parts = ts.partition(3)
    assert [p.m for p in parts] == [3, 3, 1]
    with pytest.raises(ValueError):
        ts.partition(0)


def test_outputs():
    ts = TestSet((make_test(0, "y"), make_test(1, "z")))
    assert ts.outputs() == {"y", "z"}


def test_from_triples():
    ts = TestSet.from_triples([({"a": 1}, "y", 0)])
    assert ts.m == 1 and ts[0].value == 0
