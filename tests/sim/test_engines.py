"""The fault-simulation engine registry: listing, selection, fallback.

Mirrors ``tests/sat/test_backends.py``'s registry layer for the sim
twin — the registry feeds ``python -m repro engines`` and the
``engine=``/``sim_engine=`` selection paths in FaultDictionary,
``diagnose_stuck_at``, and ATPG.
"""

import pytest

from repro.sim.engines import (
    DEFAULT_ENGINE,
    ENGINE_FALLBACKS,
    SIM_ENGINES,
    available_engines,
    engine_summary,
    register_engine,
    resolve_engine,
    unavailable_engines,
)


def test_stock_engines_registered():
    assert set(SIM_ENGINES) == {
        "serial",
        "batch",
        "codegen",
        "deductive",
        "deductive-numpy",
        "event",
    }


def test_available_engines_default_first_then_sorted():
    names = available_engines()
    assert names[0] == DEFAULT_ENGINE == "batch"
    assert list(names[1:]) == sorted(set(SIM_ENGINES) - {DEFAULT_ENGINE})


def test_unavailable_engines_empty_on_stock_install():
    """Every in-tree engine is pure numpy/Python, codegen included."""
    assert unavailable_engines() == {}


def test_resolve_auto_and_none_give_default():
    assert resolve_engine(None) == DEFAULT_ENGINE
    assert resolve_engine("auto") == DEFAULT_ENGINE


def test_resolve_registered_names_identity():
    for name in SIM_ENGINES:
        assert resolve_engine(name) == name


def test_resolve_unknown_raises_with_choices():
    with pytest.raises(ValueError, match="unknown sim engine"):
        resolve_engine("hdl-cosim")


def test_resolve_degrades_via_fallback_map():
    ENGINE_FALLBACKS["ghost-jit"] = "batch"
    try:
        assert resolve_engine("ghost-jit") == "batch"
    finally:
        del ENGINE_FALLBACKS["ghost-jit"]


def test_fallback_to_unregistered_engine_still_raises():
    ENGINE_FALLBACKS["ghost-jit"] = "not-a-real-engine"
    try:
        with pytest.raises(ValueError, match="unknown sim engine"):
            resolve_engine("ghost-jit")
    finally:
        del ENGINE_FALLBACKS["ghost-jit"]


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="registered twice"):
        register_engine("batch", "second registration")


def test_engine_summary_resolves_aliases():
    assert engine_summary("auto") == SIM_ENGINES["batch"]
    assert "straight-line" in engine_summary("codegen")
