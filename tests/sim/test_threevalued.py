"""Tests for three-valued simulation and X-propagation."""

import random

from repro.circuits import random_circuit, X
from repro.sim import (
    simulate,
    simulate_ternary,
    x_propagation_set,
    x_reaches,
)


def test_agrees_with_binary_on_full_vectors():
    for seed in range(4):
        c = random_circuit(n_inputs=6, n_outputs=3, n_gates=25, seed=seed)
        rng = random.Random(seed)
        vec = {pi: rng.getrandbits(1) for pi in c.inputs}
        binary = simulate(c, vec)
        ternary = simulate_ternary(c, vec)
        assert all(ternary[s] == binary[s] for s in c.nodes)


def test_missing_inputs_default_to_x(maj3):
    vals = simulate_ternary(maj3, {"a": 1})
    assert vals["b"] == X
    # a=1 makes ab = AND(1,X) = X, ac = X, bc = X -> out X
    assert vals["out"] == X


def test_controlling_input_blocks_x(maj3):
    # a=0 forces ab=0 and ac=0; bc=AND(X,X)=X -> out = OR(0, X) = X
    vals = simulate_ternary(maj3, {"a": 0})
    assert vals["ab"] == 0 and vals["ac"] == 0 and vals["bc"] == X
    # but with b=0 too, everything collapses
    vals = simulate_ternary(maj3, {"a": 0, "b": 0})
    assert vals["out"] == 0


def test_x_injection_soundness():
    """If x_reaches is False, no forced value at the gate can change the
    output — the X-list necessary condition."""
    for seed in range(6):
        c = random_circuit(n_inputs=5, n_outputs=2, n_gates=20, seed=seed)
        rng = random.Random(seed * 3 + 1)
        vec = {pi: rng.getrandbits(1) for pi in c.inputs}
        base = simulate(c, vec)
        for gate in c.gate_names:
            for out in c.outputs:
                if not x_reaches(c, vec, (gate,), out):
                    for v in (0, 1):
                        forced = simulate(c, vec, forced={gate: v})
                        assert forced[out] == base[out], (
                            f"X said {gate} cannot affect {out}, "
                            f"but forcing {v} changed it"
                        )


def test_x_propagation_set(maj3):
    vec = {"a": 1, "b": 1, "c": 0}
    xs = x_propagation_set(maj3, vec, "ab")
    # ab=X with bc=0 (b&c=1&0) and ac=0: o1=OR(X,0)=X, out=OR(X,0)=X
    assert xs == {"ab", "o1", "out"}


def test_x_propagation_blocked(maj3):
    vec = {"a": 1, "b": 1, "c": 1}
    # all products are 1; forcing ab to X leaves o1 = OR(X, 1) = 1
    xs = x_propagation_set(maj3, vec, "ab")
    assert xs == {"ab"}


def test_forced_x_at_input(maj3):
    vals = simulate_ternary(
        maj3, {"a": 1, "b": 1, "c": 1}, forced={"a": X}
    )
    assert vals["a"] == X
    assert vals["out"] == 1  # bc=1 keeps the output determined
