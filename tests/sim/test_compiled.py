"""Tests for the compiled circuit cache and its invalidation."""

from repro.circuits import GateType, random_circuit
from repro.sim import compile_circuit, simulate
from repro.sim.compiled import CompiledCircuit


def test_compile_is_cached(small_random):
    a = compile_circuit(small_random)
    b = compile_circuit(small_random)
    assert a is b


def test_cache_invalidated_on_mutation(small_random):
    before = compile_circuit(small_random)
    gate = small_random.gates[3]
    new_type = (
        GateType.NAND if gate.gtype is not GateType.NAND else GateType.NOR
    )
    small_random.replace_gate(gate.name, gtype=new_type)
    after = compile_circuit(small_random)
    assert after is not before
    assert after.gtypes[after.index[gate.name]] is new_type


def test_mutation_changes_simulation(small_random):
    """The stale-cache bug this guards against: simulate() must see gate
    replacements immediately."""
    import random

    rng = random.Random(0)
    vec = {pi: rng.getrandbits(1) for pi in small_random.inputs}
    gate = small_random.gates[5]
    before = simulate(small_random, vec)[gate.name]
    flip = GateType.NAND if gate.gtype is GateType.AND else GateType.AND
    original = gate.gtype
    small_random.replace_gate(gate.name, gtype=GateType.NAND if original is not GateType.NAND else GateType.AND)
    after = simulate(small_random, vec)[gate.name]
    # NAND vs AND (or AND vs NAND) always differ on the same fanin values
    assert after != before


def test_topological_invariant():
    circuit = random_circuit(n_inputs=5, n_outputs=2, n_gates=30, seed=2)
    comp = compile_circuit(circuit)
    position = {idx: pos for pos, idx in enumerate(range(comp.n))}
    for idx in range(comp.n):
        for fanin in comp.fanins[idx]:
            assert fanin < idx or comp.gtypes[idx].value == "DFF"


def test_eval_order_excludes_inputs():
    circuit = random_circuit(n_inputs=4, n_outputs=2, n_gates=10, seed=3)
    comp = compile_circuit(circuit)
    input_set = set(comp.input_indices)
    assert not (set(comp.eval_order) & input_set)
    assert len(comp.eval_order) + len(comp.input_indices) == comp.n


def test_constant_gates_are_suspects():
    """Regression: gates replaced by constants (stuck-at model) must stay
    in the functional gate list so diagnosis can select them."""
    from repro.circuits import Circuit
    from repro.faults import StuckAtFault, apply_error
    from repro.circuits.library import majority

    maj = majority()
    dut = apply_error(maj, StuckAtFault("ab", 1))
    assert "ab" in dut.gate_names
    assert dut.node("ab").is_functional
