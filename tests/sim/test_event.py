"""Tests for the event-driven incremental simulator."""

import random

import pytest

from repro.circuits import random_circuit
from repro.sim import EventSimulator, simulate


def test_initial_values_match_scalar(small_random):
    rng = random.Random(1)
    vec = {pi: rng.getrandbits(1) for pi in small_random.inputs}
    sim = EventSimulator(small_random, vec)
    assert sim.values() == simulate(small_random, vec)


def test_set_inputs_incremental(small_random):
    rng = random.Random(2)
    vec = {pi: rng.getrandbits(1) for pi in small_random.inputs}
    sim = EventSimulator(small_random, vec)
    for _ in range(20):
        pi = rng.choice(small_random.inputs)
        vec[pi] ^= 1
        sim.set_inputs({pi: vec[pi]})
        assert sim.values() == simulate(small_random, vec)


def test_force_unforce_roundtrip(small_random):
    rng = random.Random(3)
    vec = {pi: rng.getrandbits(1) for pi in small_random.inputs}
    sim = EventSimulator(small_random, vec)
    baseline = sim.values()
    for gate in small_random.gate_names[:10]:
        for v in (0, 1):
            sim.force(gate, v)
            assert sim.values() == simulate(
                small_random, vec, forced={gate: v}
            )
            sim.unforce(gate)
            assert sim.values() == baseline


def test_multiple_forces_and_clear(small_random):
    rng = random.Random(4)
    vec = {pi: rng.getrandbits(1) for pi in small_random.inputs}
    sim = EventSimulator(small_random, vec)
    baseline = sim.values()
    gates = list(small_random.gate_names[:3])
    forced = {g: i % 2 for i, g in enumerate(gates)}
    for g, v in forced.items():
        sim.force(g, v)
    assert sim.values() == simulate(small_random, vec, forced=forced)
    sim.clear_forces()
    assert sim.values() == baseline


def test_forced_value_wins_over_input_changes(small_random):
    rng = random.Random(5)
    vec = {pi: rng.getrandbits(1) for pi in small_random.inputs}
    sim = EventSimulator(small_random, vec)
    gate = small_random.gate_names[5]
    sim.force(gate, 1)
    for _ in range(5):
        pi = rng.choice(small_random.inputs)
        vec[pi] ^= 1
        sim.set_inputs({pi: vec[pi]})
        assert sim.value(gate) == 1
        assert sim.values() == simulate(small_random, vec, forced={gate: 1})


def test_changed_set_is_reported(maj3):
    sim = EventSimulator(maj3, {"a": 1, "b": 1, "c": 0})
    changed = sim.set_inputs({"c": 1})
    # c flip turns bc and ac on; out stays 1, o1 stays 1
    assert "c" in changed and "bc" in changed and "ac" in changed
    assert "out" not in changed


def test_force_non_input_validation(maj3):
    sim = EventSimulator(maj3, {"a": 0, "b": 0, "c": 0})
    with pytest.raises(ValueError):
        sim.set_inputs({"ab": 1})


def test_output_values(maj3):
    sim = EventSimulator(maj3, {"a": 1, "b": 1, "c": 0})
    assert sim.output_values() == {"out": 1}
