"""Property tests for the batched event-driven simulator.

The point of an incremental engine is that *no sequence of updates* may
leave stale values behind: after any random walk of force/unforce/clear
events the state must be bit-identical to a from-scratch evaluation, and
a fault sweep driven through force/unforce cycles must reproduce the
fault-parallel :func:`repro.sim.batchfault.batch_fault_coverage` sweep
exactly (stale-cone bugs die here).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

#: Hypothesis-heavy module: excluded from the CI fast lane (-m "not slow").
pytestmark = pytest.mark.slow

from repro.circuits import random_circuit
from repro.diagnosis.stuckat import full_fault_list
from repro.sim import (
    BatchEventSimulator,
    batch_fault_coverage,
    event_fault_coverage,
    pack_patterns,
    simulate,
    simulate_words,
)


@st.composite
def circuit_and_patterns(draw):
    seed = draw(st.integers(0, 10_000))
    circuit = random_circuit(
        n_inputs=draw(st.integers(2, 7)),
        n_outputs=draw(st.integers(1, 3)),
        n_gates=draw(st.integers(3, 35)),
        seed=seed,
    )
    rng = random.Random(seed)
    n_patterns = draw(st.integers(1, 70))
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs}
        for _ in range(n_patterns)
    ]
    return circuit, patterns


@given(circuit_and_patterns())
@settings(max_examples=25, deadline=None)
def test_initial_state_matches_simulate_words(data):
    circuit, patterns = data
    sim = BatchEventSimulator(circuit, patterns)
    words = pack_patterns(patterns, circuit.inputs)
    expected = simulate_words(circuit, words, len(patterns))
    assert sim.values_words() == expected
    for j, pattern in enumerate(patterns):
        assert sim.pattern_values(j) == simulate(circuit, pattern)


@given(circuit_and_patterns(), st.integers(0, 2**32))
@settings(max_examples=25, deadline=None)
def test_random_walk_matches_from_scratch(data, walk_seed):
    """Any force/unforce/clear sequence ends bit-identical to a fresh
    bit-parallel simulation with the surviving forces applied."""
    circuit, patterns = data
    rng = random.Random(walk_seed)
    sim = BatchEventSimulator(circuit, patterns)
    n = len(patterns)
    mask = (1 << n) - 1
    words = pack_patterns(patterns, circuit.inputs)
    signals = list(circuit.nodes)
    forced: dict[str, int] = {}  # name -> expected forced word
    for _ in range(12):
        action = rng.randrange(4)
        if action == 0:  # force a constant (the stuck-at convention)
            name = rng.choice(signals)
            v = rng.randint(0, 1)
            forced[name] = mask if v else 0
            sim.force(name, v)
        elif action == 1:  # force a per-pattern word
            name = rng.choice(signals)
            word = rng.getrandbits(n)
            forced[name] = word
            lanes = max(1, -(-n // 64))
            arr = np.frombuffer(
                word.to_bytes(lanes * 8, "little"), dtype="<u8"
            ).astype(np.uint64)
            sim.force(name, arr)
        elif action == 2 and forced:  # unforce
            name = rng.choice(sorted(forced))
            del forced[name]
            sim.unforce(name)
        elif action == 3 and forced and rng.random() < 0.3:
            forced.clear()
            sim.clear_forces()
        expected = simulate_words(
            circuit, words, n, forced_words=dict(forced)
        )
        assert sim.values_words() == expected


@given(circuit_and_patterns(), st.integers(0, 2**32))
@settings(max_examples=20, deadline=None)
def test_churned_fault_sweep_matches_batch_coverage(data, churn_seed):
    """A fault sweep driven as force/unforce events — interleaved with
    random extra churn that is always undone — must reproduce the
    from-scratch batchfault sweep bit-identically."""
    circuit, patterns = data
    rng = random.Random(churn_seed)
    faults = full_fault_list(circuit)
    rng.shuffle(faults)
    sim = BatchEventSimulator(circuit, patterns)
    good = sim.output_lanes()
    first_detection = {}
    for fault in faults:
        if rng.random() < 0.3:  # churn: a what-if that is fully undone
            other = rng.choice(list(circuit.nodes))
            sim.force(other, rng.randint(0, 1))
            sim.unforce(other)
        sim.force(fault.signal, fault.value)
        diff = np.bitwise_or.reduce(sim.output_lanes() ^ good, axis=0)
        sim.unforce(fault.signal)
        for lane, word in enumerate(diff):
            w = int(word)
            if w:
                first_detection[fault] = 64 * lane + (w & -w).bit_length() - 1
                break
    batch = batch_fault_coverage(circuit, patterns, faults)
    assert first_detection == dict(batch.first_detection)
    # The packaged sweep helper must agree with the hand-driven walk too.
    event = event_fault_coverage(circuit, patterns, faults)
    assert dict(event.first_detection) == dict(batch.first_detection)
    assert event.coverage == batch.coverage
    assert event.n_patterns == batch.n_patterns


def test_force_word_flips_exactly_selected_patterns(maj3):
    patterns = [
        {"a": 1, "b": 1, "c": 0},
        {"a": 0, "b": 0, "c": 1},
        {"a": 1, "b": 0, "c": 1},
    ]
    sim = BatchEventSimulator(maj3, patterns)
    base = sim.value_word("out")
    # Flip the majority's AND(a,b) term only in patterns 0 and 2.
    ab = sim.value_lanes("ab")
    forced = ab ^ np.uint64(0b101)
    sim.force("ab", forced)
    assert sim.value_word("ab") == int(forced[0]) & 0b111
    words = pack_patterns(patterns, maj3.inputs)
    expected = simulate_words(
        maj3, words, 3, forced_words={"ab": int(forced[0])}
    )
    assert sim.value_word("out") == expected["out"]
    sim.unforce("ab")
    assert sim.value_word("out") == base


def test_empty_pattern_list_rejected(maj3):
    with pytest.raises(ValueError, match="pattern"):
        BatchEventSimulator(maj3, [])


def test_bad_forced_lane_shape_rejected(maj3):
    sim = BatchEventSimulator(maj3, [{"a": 0, "b": 0, "c": 0}])
    with pytest.raises(ValueError, match="shape"):
        sim.force("ab", np.zeros(7, dtype=np.uint64))


def test_pattern_index_out_of_range(maj3):
    sim = BatchEventSimulator(maj3, [{"a": 0, "b": 0, "c": 0}])
    with pytest.raises(IndexError):
        sim.pattern_values(1)


def test_lane_boundary_word_masking():
    """65 patterns span two lanes; padding bits must never leak into
    words or detection."""
    circuit = random_circuit(n_inputs=5, n_outputs=2, n_gates=20, seed=9)
    rng = random.Random(9)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(65)
    ]
    sim = BatchEventSimulator(circuit, patterns)
    limit = 1 << 65
    for name, word in sim.values_words().items():
        assert word < limit, name
    sim.force(circuit.gate_names[3], 1)
    for word in sim.output_words().values():
        assert word < limit
