"""Property-based cross-validation of all simulation engines.

The scalar, bit-parallel, ternary and event-driven simulators implement
the same two-valued semantics; hypothesis generates random circuits,
vectors and forced-value sets and asserts they agree signal-for-signal.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.circuits import random_circuit
from repro.sim import (
    EventSimulator,
    pack_patterns,
    simulate,
    simulate_patterns,
    simulate_ternary,
    simulate_words,
    unpack_word,
)


@st.composite
def circuit_and_vectors(draw):
    seed = draw(st.integers(0, 10_000))
    n_inputs = draw(st.integers(2, 7))
    n_gates = draw(st.integers(3, 35))
    circuit = random_circuit(
        n_inputs=n_inputs,
        n_outputs=draw(st.integers(1, 3)),
        n_gates=n_gates,
        seed=seed,
    )
    n_vectors = draw(st.integers(1, 5))
    vectors = [
        {pi: draw(st.integers(0, 1)) for pi in circuit.inputs}
        for _ in range(n_vectors)
    ]
    return circuit, vectors


@given(circuit_and_vectors())
@settings(max_examples=40, deadline=None)
def test_parallel_equals_scalar(data):
    circuit, vectors = data
    batched = simulate_patterns(circuit, vectors)
    for vec, batch in zip(vectors, batched):
        assert simulate(circuit, vec) == batch


@given(circuit_and_vectors())
@settings(max_examples=40, deadline=None)
def test_ternary_equals_scalar_on_binary(data):
    circuit, vectors = data
    for vec in vectors:
        scalar = simulate(circuit, vec)
        ternary = simulate_ternary(circuit, vec)
        assert all(ternary[s] == scalar[s] for s in circuit.nodes)


@given(circuit_and_vectors(), st.integers(0, 2**32))
@settings(max_examples=40, deadline=None)
def test_event_sim_equals_scalar_under_forcing(data, force_seed):
    circuit, vectors = data
    rng = random.Random(force_seed)
    sim = EventSimulator(circuit, vectors[0])
    current = dict(vectors[0])
    forced: dict[str, int] = {}
    gates = list(circuit.gate_names)
    for step in range(8):
        action = rng.randrange(3)
        if action == 0:  # flip an input
            pi = rng.choice(circuit.inputs)
            current[pi] ^= 1
            sim.set_inputs({pi: current[pi]})
        elif action == 1 and gates:  # force a gate
            g = rng.choice(gates)
            v = rng.randint(0, 1)
            forced[g] = v
            sim.force(g, v)
        elif forced:  # unforce
            g = rng.choice(sorted(forced))
            del forced[g]
            sim.unforce(g)
        expected = simulate(circuit, current, forced=forced)
        assert sim.values() == expected


@given(circuit_and_vectors())
@settings(max_examples=40, deadline=None)
def test_forced_words_equal_scalar_forcing(data):
    circuit, vectors = data
    rng = random.Random(len(vectors))
    gates = list(circuit.gate_names)
    forced_scalar = {g: rng.randint(0, 1) for g in gates[:3]}
    n = len(vectors)
    mask = (1 << n) - 1
    words = pack_patterns(vectors, circuit.inputs)
    forced_words = {
        g: (mask if v else 0) for g, v in forced_scalar.items()
    }
    batch = simulate_words(circuit, words, n, forced_words=forced_words)
    for j, vec in enumerate(vectors):
        scalar = simulate(circuit, vec, forced=forced_scalar)
        for sig in circuit.nodes:
            assert (batch[sig] >> j) & 1 == scalar[sig]
