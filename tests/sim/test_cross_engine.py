"""Property-based cross-validation of all simulation engines.

Two layers:

* **value engines** — the scalar, bit-parallel, ternary and event-driven
  simulators implement the same two-valued semantics; hypothesis
  generates random circuits, vectors and forced-value sets and asserts
  they agree signal-for-signal.
* **fault-engine matrix** — every pair of fault-simulation engines
  (serial, pattern-parallel, batchfault, codegen, deductive,
  deductive-numpy, event, batch-event) is compared on seeded random
  circuits from
  :mod:`repro.circuits.generator` with seeded pattern sets: they must
  agree on per-pattern detected-fault sets, full output signatures and
  coverage (first-detection indices and counts).  Each engine computes
  its results through its own code path; agreement of all pairs is the
  executable definition of "bit-identical".
"""

import itertools
import random
from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import random_circuit
from repro.diagnosis.stuckat import fault_signature, full_fault_list
from repro.sim import (
    BatchEventSimulator,
    EventSimulator,
    batch_detected,
    batch_fault_coverage,
    codegen_detected,
    codegen_fault_coverage,
    deductive_coverage,
    deductive_coverage_numpy,
    deductive_detected,
    deductive_detected_numpy,
    deductive_fault_lists,
    event_detected,
    event_fault_coverage,
    fault_signatures_batch,
    fault_signatures_codegen,
    output_values,
    pack_patterns,
    simulate,
    simulate_patterns,
    simulate_ternary,
    simulate_words,
    unpack_word,
)


@st.composite
def circuit_and_vectors(draw):
    seed = draw(st.integers(0, 10_000))
    n_inputs = draw(st.integers(2, 7))
    n_gates = draw(st.integers(3, 35))
    circuit = random_circuit(
        n_inputs=n_inputs,
        n_outputs=draw(st.integers(1, 3)),
        n_gates=n_gates,
        seed=seed,
    )
    n_vectors = draw(st.integers(1, 5))
    vectors = [
        {pi: draw(st.integers(0, 1)) for pi in circuit.inputs}
        for _ in range(n_vectors)
    ]
    return circuit, vectors


@pytest.mark.slow
@given(circuit_and_vectors())
@settings(max_examples=40, deadline=None)
def test_parallel_equals_scalar(data):
    circuit, vectors = data
    batched = simulate_patterns(circuit, vectors)
    for vec, batch in zip(vectors, batched):
        assert simulate(circuit, vec) == batch


@pytest.mark.slow
@given(circuit_and_vectors())
@settings(max_examples=40, deadline=None)
def test_ternary_equals_scalar_on_binary(data):
    circuit, vectors = data
    for vec in vectors:
        scalar = simulate(circuit, vec)
        ternary = simulate_ternary(circuit, vec)
        assert all(ternary[s] == scalar[s] for s in circuit.nodes)


@pytest.mark.slow
@given(circuit_and_vectors(), st.integers(0, 2**32))
@settings(max_examples=40, deadline=None)
def test_event_sim_equals_scalar_under_forcing(data, force_seed):
    circuit, vectors = data
    rng = random.Random(force_seed)
    sim = EventSimulator(circuit, vectors[0])
    current = dict(vectors[0])
    forced: dict[str, int] = {}
    gates = list(circuit.gate_names)
    for step in range(8):
        action = rng.randrange(3)
        if action == 0:  # flip an input
            pi = rng.choice(circuit.inputs)
            current[pi] ^= 1
            sim.set_inputs({pi: current[pi]})
        elif action == 1 and gates:  # force a gate
            g = rng.choice(gates)
            v = rng.randint(0, 1)
            forced[g] = v
            sim.force(g, v)
        elif forced:  # unforce
            g = rng.choice(sorted(forced))
            del forced[g]
            sim.unforce(g)
        expected = simulate(circuit, current, forced=forced)
        assert sim.values() == expected


@pytest.mark.slow
@given(circuit_and_vectors())
@settings(max_examples=40, deadline=None)
def test_forced_words_equal_scalar_forcing(data):
    circuit, vectors = data
    rng = random.Random(len(vectors))
    gates = list(circuit.gate_names)
    forced_scalar = {g: rng.randint(0, 1) for g in gates[:3]}
    n = len(vectors)
    mask = (1 << n) - 1
    words = pack_patterns(vectors, circuit.inputs)
    forced_words = {
        g: (mask if v else 0) for g, v in forced_scalar.items()
    }
    batch = simulate_words(circuit, words, n, forced_words=forced_words)
    for j, vec in enumerate(vectors):
        scalar = simulate(circuit, vec, forced=forced_scalar)
        for sig in circuit.nodes:
            assert (batch[sig] >> j) & 1 == scalar[sig]


# ======================================================================
# fault-engine differential matrix
# ======================================================================
#
# Every engine exposes (through its own code path) the same three views
# of a (circuit, faults, patterns) workload:
#
#   signatures(case)      -> tuple of {output: word} in fault order
#   detected(case)        -> tuple of per-pattern detected frozensets
#   first_detection(case) -> {fault: first pattern index}
#
# and every engine pair must agree exactly.

CASES = [
    # (circuit seed, n_inputs, n_outputs, n_gates, pattern seed, n_patterns)
    (11, 5, 2, 22, 1, 11),
    (42, 6, 3, 35, 2, 17),
    (7, 4, 1, 14, 3, 66),  # >64 patterns: crosses a uint64 lane boundary
]


@lru_cache(maxsize=None)
def _case(i):
    seed, n_in, n_out, n_gates, pat_seed, n_pat = CASES[i]
    circuit = random_circuit(
        n_inputs=n_in, n_outputs=n_out, n_gates=n_gates, seed=seed
    )
    rng = random.Random(pat_seed)
    patterns = tuple(
        {pi: rng.getrandbits(1) for pi in circuit.inputs}
        for _ in range(n_pat)
    )
    faults = tuple(full_fault_list(circuit))  # gate and primary-input sites
    good = tuple(output_values(circuit, p) for p in patterns)
    return circuit, faults, patterns, good


def _words_from_rows(circuit, rows):
    """Fold per-pattern {output: bit} rows into one {output: word}."""
    sig = {out: 0 for out in circuit.outputs}
    for j, row in enumerate(rows):
        for out in circuit.outputs:
            if row[out] & 1:
                sig[out] |= 1 << j
    return sig


def _sig_serial(i):
    from repro.sim import stuck_at_response

    circuit, faults, patterns, _ = _case(i)
    sigs = []
    for f in faults:
        rows = [
            dict(
                zip(
                    circuit.outputs,
                    stuck_at_response(circuit, p, f.signal, f.value),
                )
            )
            for p in patterns
        ]
        sigs.append(_words_from_rows(circuit, rows))
    return tuple(sigs)


def _sig_pattern_parallel(i):
    circuit, faults, patterns, _ = _case(i)
    words = pack_patterns(list(patterns), circuit.inputs)
    return tuple(
        fault_signature(circuit, f, words, len(patterns)) for f in faults
    )


def _sig_batchfault(i):
    circuit, faults, patterns, _ = _case(i)
    return tuple(fault_signatures_batch(circuit, faults, list(patterns)))


def _sig_codegen(i):
    circuit, faults, patterns, _ = _case(i)
    return tuple(fault_signatures_codegen(circuit, faults, list(patterns)))


def _sig_deductive_common(i, lists_fn):
    """Signature from fault lists: a fault flips exactly the output bits
    whose per-pattern list contains it — sig = good XOR flips."""
    circuit, faults, patterns, good = _case(i)
    flips = [
        {out: 0 for out in circuit.outputs} for _ in faults
    ]
    for j, pattern in enumerate(patterns):
        lists = lists_fn(circuit, pattern, faults=faults)
        for k, f in enumerate(faults):
            for out in circuit.outputs:
                if f in lists[out]:
                    flips[k][out] |= 1 << j
    good_words = _words_from_rows(circuit, good)
    return tuple(
        {out: good_words[out] ^ flip[out] for out in circuit.outputs}
        for flip in flips
    )


def _sig_deductive(i):
    return _sig_deductive_common(i, deductive_fault_lists)


def _sig_deductive_numpy(i):
    from repro.sim import deductive_fault_lists_numpy

    return _sig_deductive_common(i, deductive_fault_lists_numpy)


def _sig_event(i):
    circuit, faults, patterns, _ = _case(i)
    rows_per_fault = [[] for _ in faults]
    for pattern in patterns:
        sim = EventSimulator(circuit, pattern)
        for k, f in enumerate(faults):
            sim.force(f.signal, f.value)
            rows_per_fault[k].append(sim.output_values())
            sim.unforce(f.signal)
    return tuple(
        _words_from_rows(circuit, rows) for rows in rows_per_fault
    )


def _sig_batch_event(i):
    circuit, faults, patterns, _ = _case(i)
    sim = BatchEventSimulator(circuit, list(patterns))
    sigs = []
    for f in faults:
        sim.force(f.signal, f.value)
        sigs.append(sim.output_words())
        sim.unforce(f.signal)
    return tuple(sigs)


def _detected_from_signatures(i, sigs):
    """Per-pattern detected sets derived from an engine's signatures."""
    circuit, faults, patterns, good = _case(i)
    good_words = _words_from_rows(circuit, good)
    result = []
    for j in range(len(patterns)):
        det = set()
        for f, sig in zip(faults, sigs):
            if any(
                ((sig[out] ^ good_words[out]) >> j) & 1
                for out in circuit.outputs
            ):
                det.add(f)
        result.append(frozenset(det))
    return tuple(result)


def _detected_direct(i, detect_fn):
    circuit, faults, patterns, _ = _case(i)
    return tuple(
        detect_fn(circuit, p, list(faults)) for p in patterns
    )


def _first_detection_from_signatures(i, sigs):
    circuit, faults, patterns, good = _case(i)
    good_words = _words_from_rows(circuit, good)
    first = {}
    for f, sig in zip(faults, sigs):
        diff = 0
        for out in circuit.outputs:
            diff |= sig[out] ^ good_words[out]
        if diff:
            first[f] = (diff & -diff).bit_length() - 1
    return first


def _coverage_direct(i, coverage_fn):
    circuit, faults, patterns, _ = _case(i)
    return dict(
        coverage_fn(circuit, list(patterns), list(faults)).first_detection
    )


#: engine -> (signatures, detected, first_detection); engines without a
#: native function for a view derive it from their own signatures.
ENGINES = {
    "serial": (
        _sig_serial,
        lambda i: _detected_from_signatures(i, _sig_serial(i)),
        lambda i: _first_detection_from_signatures(i, _sig_serial(i)),
    ),
    "pattern-parallel": (
        _sig_pattern_parallel,
        lambda i: _detected_from_signatures(i, _sig_pattern_parallel(i)),
        lambda i: _first_detection_from_signatures(
            i, _sig_pattern_parallel(i)
        ),
    ),
    "batchfault": (
        _sig_batchfault,
        lambda i: _detected_direct(i, batch_detected),
        lambda i: _coverage_direct(i, batch_fault_coverage),
    ),
    "codegen": (
        _sig_codegen,
        lambda i: _detected_direct(i, codegen_detected),
        lambda i: _coverage_direct(i, codegen_fault_coverage),
    ),
    "deductive": (
        _sig_deductive,
        lambda i: _detected_direct(i, deductive_detected),
        lambda i: _coverage_direct(i, deductive_coverage),
    ),
    "deductive-numpy": (
        _sig_deductive_numpy,
        lambda i: _detected_direct(i, deductive_detected_numpy),
        lambda i: _coverage_direct(i, deductive_coverage_numpy),
    ),
    "event": (
        _sig_event,
        lambda i: _detected_from_signatures(i, _sig_event(i)),
        lambda i: _first_detection_from_signatures(i, _sig_event(i)),
    ),
    "batch-event": (
        _sig_batch_event,
        lambda i: _detected_direct(i, event_detected),
        lambda i: _coverage_direct(i, event_fault_coverage),
    ),
}

_PAIRS = list(itertools.combinations(sorted(ENGINES), 2))


@lru_cache(maxsize=None)
def _view(engine, view, i):
    return ENGINES[engine][view](i)


@pytest.mark.parametrize("case", range(len(CASES)))
@pytest.mark.parametrize("a,b", _PAIRS, ids=[f"{a}~{b}" for a, b in _PAIRS])
def test_matrix_signatures_agree(a, b, case):
    circuit, faults, _, _ = _case(case)
    sig_a, sig_b = _view(a, 0, case), _view(b, 0, case)
    assert len(sig_a) == len(sig_b) == len(faults)
    for f, wa, wb in zip(faults, sig_a, sig_b):
        assert wa == wb, (f, a, b)


@pytest.mark.parametrize("case", range(len(CASES)))
@pytest.mark.parametrize("a,b", _PAIRS, ids=[f"{a}~{b}" for a, b in _PAIRS])
def test_matrix_detected_sets_agree(a, b, case):
    _, _, patterns, _ = _case(case)
    det_a, det_b = _view(a, 1, case), _view(b, 1, case)
    assert len(det_a) == len(det_b) == len(patterns)
    for j, (da, db) in enumerate(zip(det_a, det_b)):
        assert da == db, (j, a, b)


@pytest.mark.parametrize("case", range(len(CASES)))
@pytest.mark.parametrize("a,b", _PAIRS, ids=[f"{a}~{b}" for a, b in _PAIRS])
def test_matrix_coverage_agrees(a, b, case):
    fd_a, fd_b = _view(a, 2, case), _view(b, 2, case)
    assert fd_a == fd_b, (a, b)
    assert len(fd_a) == len(fd_b)  # detected-fault counts


# ======================================================================
# single-vector fast path (ATPG drop-query shape)
# ======================================================================
#
# ``deductive_*_numpy`` dispatches one-pattern blocks to a dedicated
# 1-lane big-int path (the ROADMAP single-vector gap).  Parity with the
# pure-Python propagator must hold per signal and per fault — including
# when a multi-pattern coverage sweep is forced through one-pattern
# blocks.


@pytest.mark.parametrize("case", range(len(CASES)))
def test_single_vector_fast_path_matches_serial_deductive(case):
    from repro.sim import deductive_fault_lists_numpy

    circuit, faults, patterns, _ = _case(case)
    for pattern in patterns[:4]:
        serial = deductive_fault_lists(circuit, pattern, faults=faults)
        fast = deductive_fault_lists_numpy(circuit, pattern, faults=faults)
        assert serial == fast
        assert deductive_detected(
            circuit, pattern, faults=faults
        ) == deductive_detected_numpy(circuit, pattern, faults=faults)


@pytest.mark.parametrize("case", range(len(CASES)))
def test_single_pattern_blocks_match_block_coverage(case):
    circuit, faults, patterns, _ = _case(case)
    blocked = deductive_coverage_numpy(
        circuit, list(patterns), list(faults), block_patterns=1
    )
    whole = deductive_coverage_numpy(
        circuit, list(patterns), list(faults), block_patterns=128
    )
    serial = deductive_coverage(circuit, list(patterns), list(faults))
    assert blocked.first_detection == whole.first_detection
    assert blocked.first_detection == serial.first_detection


@pytest.mark.parametrize("case", range(len(CASES)))
def test_output_fault_lists_block_pass_matches_per_pattern(case):
    from repro.sim.deductive_numpy import (
        deductive_fault_lists_numpy,
        deductive_output_fault_lists,
    )

    circuit, faults, patterns, _ = _case(case)
    block = deductive_output_fault_lists(
        circuit, list(patterns), faults=list(faults)
    )
    assert len(block) == len(patterns)
    for j, pattern in enumerate(patterns[:3]):
        per = deductive_fault_lists_numpy(circuit, pattern, faults=faults)
        for out in circuit.outputs:
            assert block[j][out] == per[out]
