"""Unit tests for the generated straight-line simulator kernel.

The cross-engine matrix (``test_cross_engine.py``) proves codegen
bit-identical to every interpreted engine; this file pins the pieces
specific to the code generator: kernel caching + invalidation on
netlist mutation, the generated source's shape, forcing-plan caching,
and slot reuse actually shrinking the working set.
"""

import random

import numpy as np
import pytest

from repro.circuits import random_circuit
from repro.circuits.netlist import Circuit, GateType
from repro.faults import full_stuck_at_universe
from repro.sim import (
    batch_fault_coverage,
    codegen_detected,
    codegen_fault_coverage,
    codegen_source,
    compile_kernel,
    fault_signatures_batch,
    fault_signatures_codegen,
)
from repro.sim.codegen import _PLAN_CACHE_LIMIT


def _circuit(seed=11, n_gates=40):
    return random_circuit(
        n_inputs=6, n_outputs=3, n_gates=n_gates, seed=seed
    )


def _patterns(circuit, n, seed=5):
    rng = random.Random(seed)
    return [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(n)
    ]


# ----------------------------------------------------------------------
# kernel caching and invalidation
# ----------------------------------------------------------------------
def test_kernel_cached_per_circuit():
    circuit = _circuit()
    k1 = compile_kernel(circuit)
    k2 = compile_kernel(circuit)
    assert k1 is k2
    assert circuit._cache["codegen"] is k1


def test_kernel_invalidated_on_mutation():
    """Netlist mutation clears the circuit cache; the next sweep builds
    a fresh kernel and the results track the *new* netlist."""
    circuit = Circuit("mut")
    for pi in ("a", "b"):
        circuit.add_input(pi)
    circuit.add_gate("g", GateType.AND, ("a", "b"))
    circuit.add_output("g")
    old = compile_kernel(circuit)
    faults = full_stuck_at_universe(circuit)
    patterns = [{"a": 1, "b": 1}, {"a": 0, "b": 1}]
    before = fault_signatures_codegen(circuit, faults, patterns)
    circuit.replace_gate("g", gtype=GateType.OR)
    new = compile_kernel(circuit)
    assert new is not old
    after = fault_signatures_codegen(circuit, faults, patterns)
    assert before != after  # AND vs OR differ on {a=0, b=1}
    assert after == fault_signatures_batch(circuit, faults, patterns)


# ----------------------------------------------------------------------
# generated source
# ----------------------------------------------------------------------
def test_codegen_source_is_straight_line():
    circuit = _circuit()
    src = codegen_source(circuit)
    assert "def kern(" in src
    # straight-line: no loops inside the kernel body; the only branches
    # are the one-line fault-forcing hooks
    body = src.split("def kern(", 1)[1]
    assert "for " not in body
    assert "while " not in body
    for line in body.splitlines():
        if "if " in line:
            assert "_f" in line, line


def test_slot_reuse_bounds_working_set():
    """Liveness-based slot reuse: the buffer holds far fewer slots than
    the circuit has signals."""
    circuit = _circuit(n_gates=120)
    kernel = compile_kernel(circuit)
    assert kernel.n_slots < len(list(circuit.nodes))


# ----------------------------------------------------------------------
# forcing plans
# ----------------------------------------------------------------------
def test_forcing_plan_cached_per_fault_tuple():
    circuit = _circuit()
    kernel = compile_kernel(circuit)
    faults = tuple(full_stuck_at_universe(circuit))
    p1 = kernel._forcing_plan(faults)
    p2 = kernel._forcing_plan(faults)
    assert p1 is p2


def test_forcing_plan_cache_bounded():
    circuit = _circuit()
    kernel = compile_kernel(circuit)
    universe = list(full_stuck_at_universe(circuit))
    for i in range(_PLAN_CACHE_LIMIT + 4):
        kernel._forcing_plan(tuple(universe[: i + 1]))
    assert len(kernel._plans) <= _PLAN_CACHE_LIMIT + 1


def test_partial_fault_lists_agree_with_batch():
    """Sweeps over sliced fault lists (the ATPG drop-loop shape) hit
    distinct forcing plans and must stay bit-identical to batchfault."""
    circuit = _circuit(seed=7, n_gates=60)
    universe = list(full_stuck_at_universe(circuit))
    patterns = _patterns(circuit, 9)
    rng = random.Random(3)
    for _ in range(5):
        subset = rng.sample(universe, rng.randint(1, len(universe)))
        assert fault_signatures_codegen(
            circuit, subset, patterns
        ) == fault_signatures_batch(circuit, subset, patterns)


# ----------------------------------------------------------------------
# coverage options
# ----------------------------------------------------------------------
@pytest.mark.parametrize("drop", [True, False])
def test_coverage_matches_batch_with_and_without_dropping(drop):
    circuit = _circuit(seed=13, n_gates=80)
    faults = list(full_stuck_at_universe(circuit))
    patterns = _patterns(circuit, 70)  # crosses a uint64 lane boundary
    cg = codegen_fault_coverage(
        circuit, patterns, faults, drop_detected=drop
    )
    bf = batch_fault_coverage(circuit, patterns, faults, drop_detected=drop)
    assert dict(cg.first_detection) == dict(bf.first_detection)
    assert cg.detected == bf.detected


def test_small_block_coverage_matches_whole():
    circuit = _circuit(seed=17, n_gates=50)
    faults = list(full_stuck_at_universe(circuit))
    patterns = _patterns(circuit, 30)
    small = codegen_fault_coverage(
        circuit, patterns, faults, block_patterns=7
    )
    whole = codegen_fault_coverage(
        circuit, patterns, faults, block_patterns=256
    )
    assert dict(small.first_detection) == dict(whole.first_detection)


def test_detected_empty_fault_list():
    circuit = _circuit()
    vector = _patterns(circuit, 1)[0]
    assert codegen_detected(circuit, vector, []) == frozenset()


def test_workspace_reused_across_sweeps():
    circuit = _circuit()
    kernel = compile_kernel(circuit)
    faults = tuple(full_stuck_at_universe(circuit))
    patterns = _patterns(circuit, 4)
    fault_signatures_codegen(circuit, faults, patterns)
    ws1 = kernel._ws
    fault_signatures_codegen(circuit, faults, patterns)
    assert kernel._ws is ws1  # same (rows, lanes) -> same buffers
    assert isinstance(ws1[2], np.ndarray)
