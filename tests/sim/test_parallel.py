"""Tests for the bit-parallel simulators."""

import random

import numpy as np
import pytest

from repro.circuits import random_circuit
from repro.sim import (
    pack_patterns,
    pack_patterns_numpy,
    simulate,
    simulate_patterns,
    simulate_words,
    simulate_words_numpy,
    unpack_word,
)


def test_pack_unpack_roundtrip():
    patterns = [{"a": 1, "b": 0}, {"a": 0, "b": 0}, {"a": 1, "b": 1}]
    words = pack_patterns(patterns, ["a", "b"])
    assert words == {"a": 0b101, "b": 0b100}
    assert unpack_word(words["a"], 3) == [1, 0, 1]


def test_simulate_patterns_empty():
    c = random_circuit(n_inputs=3, n_outputs=1, n_gates=5, seed=0)
    assert simulate_patterns(c, []) == []


@pytest.mark.parametrize("seed", range(4))
def test_words_agree_with_scalar(seed):
    c = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=seed)
    rng = random.Random(seed)
    patterns = [
        {pi: rng.getrandbits(1) for pi in c.inputs} for _ in range(33)
    ]
    batched = simulate_patterns(c, patterns)
    for pattern, batch_vals in zip(patterns, batched):
        assert simulate(c, pattern) == batch_vals


def test_forced_words(maj3):
    # force ab=0 in pattern 0 only; pattern 1 unforced
    words = pack_patterns(
        [{"a": 1, "b": 1, "c": 0}] * 2, maj3.inputs
    )
    out = simulate_words(maj3, words, 2, forced_words={"ab": 0b10})
    assert unpack_word(out["out"], 2) == [0, 1]


def test_wide_patterns_beyond_64():
    c = random_circuit(n_inputs=5, n_outputs=2, n_gates=20, seed=7)
    rng = random.Random(7)
    patterns = [
        {pi: rng.getrandbits(1) for pi in c.inputs} for _ in range(130)
    ]
    batched = simulate_patterns(c, patterns)
    for idx in (0, 63, 64, 127, 129):
        assert simulate(c, patterns[idx]) == batched[idx]


def test_numpy_variant_agrees():
    c = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=3)
    rng = random.Random(3)
    n_patterns = 128  # 2 lanes
    patterns = [
        {pi: rng.getrandbits(1) for pi in c.inputs}
        for _ in range(n_patterns)
    ]
    lanes = n_patterns // 64
    input_words = {}
    for pi in c.inputs:
        arr = np.zeros(lanes, dtype=np.uint64)
        for j, p in enumerate(patterns):
            if p[pi]:
                arr[j // 64] |= np.uint64(1) << np.uint64(j % 64)
        input_words[pi] = arr
    result = simulate_words_numpy(c, input_words)
    for j in (0, 1, 63, 64, 100, 127):
        scalar = simulate(c, patterns[j])
        for sig in c.nodes:
            bit = int(result[sig][j // 64] >> np.uint64(j % 64)) & 1
            assert bit == scalar[sig], (sig, j)


def test_numpy_variant_rejects_empty():
    c = random_circuit(n_inputs=3, n_outputs=1, n_gates=5, seed=1)
    with pytest.raises(ValueError):
        simulate_words_numpy(c, {})


def test_numpy_variant_rejects_mismatched_lane_counts():
    """Regression: mismatched input lanes used to surface as an opaque
    broadcast error deep in gate evaluation (or be silently ignored)."""
    c = random_circuit(n_inputs=3, n_outputs=1, n_gates=5, seed=1)
    words = {pi: np.zeros(2, dtype=np.uint64) for pi in c.inputs}
    words[c.inputs[1]] = np.zeros(3, dtype=np.uint64)
    with pytest.raises(ValueError, match="lane count mismatch"):
        simulate_words_numpy(c, words)
    good = {pi: np.zeros(2, dtype=np.uint64) for pi in c.inputs}
    with pytest.raises(ValueError, match="lane count mismatch"):
        simulate_words_numpy(
            c, good, forced_words={c.gate_names[0]: np.zeros(1, dtype=np.uint64)}
        )


def test_pack_patterns_defaults_missing_inputs_to_zero():
    """Regression: a pattern omitting an input used to raise KeyError while
    simulate_words defaulted the same input to 0."""
    words = pack_patterns([{"a": 1}, {"b": 1}, {"a": 1, "b": 1}], ["a", "b"])
    assert words == {"a": 0b101, "b": 0b110}
    c = random_circuit(n_inputs=3, n_outputs=2, n_gates=10, seed=2)
    partial = [{c.inputs[0]: 1}, {}]
    packed = pack_patterns(partial, c.inputs)
    batch = simulate_words(c, packed, len(partial))
    completed = [
        {pi: p.get(pi, 0) for pi in c.inputs} for p in partial
    ]
    for j, vec in enumerate(completed):
        scalar = simulate(c, vec)
        for sig in c.nodes:
            assert (batch[sig] >> j) & 1 == scalar[sig]


def test_pack_patterns_numpy_matches_int_packing():
    c = random_circuit(n_inputs=5, n_outputs=2, n_gates=12, seed=3)
    rng = random.Random(3)
    patterns = [
        {pi: rng.getrandbits(1) for pi in c.inputs} for _ in range(130)
    ]
    ints = pack_patterns(patterns, c.inputs)
    lanes_map, lanes = pack_patterns_numpy(patterns, c.inputs)
    assert lanes == 3  # 130 patterns -> 3 uint64 lanes
    for name in c.inputs:
        word = sum(int(v) << (64 * l) for l, v in enumerate(lanes_map[name]))
        assert word == ints[name]


def test_pack_patterns_numpy_defaults_missing_inputs_to_zero():
    """Symmetry with pack_patterns: omitted inputs pack as 0."""
    lanes_map, lanes = pack_patterns_numpy(
        [{"a": 1}, {"b": 1}, {"a": 1, "b": 1}], ["a", "b"]
    )
    assert lanes == 1
    assert int(lanes_map["a"][0]) == 0b101
    assert int(lanes_map["b"][0]) == 0b110


def test_pack_patterns_rejects_unknown_input_names():
    """Symmetry fix: an assignment to a name outside ``inputs`` is a
    ValueError in both packers, not a silent drop."""
    with pytest.raises(ValueError, match="unknown input"):
        pack_patterns([{"a": 1}, {"a": 0, "typo": 1}], ["a"])
    with pytest.raises(ValueError, match="unknown input"):
        pack_patterns_numpy([{"a": 1}, {"a": 0, "typo": 1}], ["a"])


def test_pack_patterns_unknown_name_error_names_the_pattern():
    with pytest.raises(ValueError, match=r"pattern 2 .*'b'"):
        pack_patterns([{"a": 1}, {"a": 0}, {"b": 1}], ["a"])
