"""Tests for fault simulation (golden vs faulty comparison)."""

import random

from repro.circuits import GateType, random_circuit
from repro.faults import GateChangeError, apply_error
from repro.sim import (
    detects,
    failing_outputs,
    fault_table,
    response,
    stuck_at_response,
)


def _workpair(seed=0):
    golden = random_circuit(n_inputs=5, n_outputs=3, n_gates=20, seed=seed)
    gate = golden.gates[5]
    new_type = GateType.NOR if gate.gtype is not GateType.NOR else GateType.NAND
    faulty = apply_error(golden, GateChangeError(gate.name, gate.gtype, new_type))
    return golden, faulty


def test_identical_circuits_never_fail():
    golden, _ = _workpair()
    rng = random.Random(0)
    for _ in range(20):
        vec = {pi: rng.getrandbits(1) for pi in golden.inputs}
        assert failing_outputs(golden, golden, vec) == []
        assert not detects(golden, golden, vec)


def test_fault_table_matches_scalar():
    golden, faulty = _workpair(3)
    rng = random.Random(3)
    patterns = [
        {pi: rng.getrandbits(1) for pi in golden.inputs} for _ in range(64)
    ]
    table = fault_table(golden, faulty, patterns)
    for vec, failing in zip(patterns, table):
        assert failing == failing_outputs(golden, faulty, vec)


def test_fault_table_empty():
    golden, faulty = _workpair(1)
    assert fault_table(golden, faulty, []) == []


def test_response_order():
    golden, _ = _workpair(2)
    rng = random.Random(2)
    vec = {pi: rng.getrandbits(1) for pi in golden.inputs}
    resp = response(golden, vec)
    assert len(resp) == len(golden.outputs)


def test_stuck_at_response(maj3):
    vec = {"a": 1, "b": 1, "c": 0}
    assert stuck_at_response(maj3, vec, "ab", 0) == (0,)
    assert stuck_at_response(maj3, vec, "ab", 1) == (1,)


def test_failing_outputs_are_subset_of_outputs():
    golden, faulty = _workpair(4)
    rng = random.Random(4)
    for _ in range(30):
        vec = {pi: rng.getrandbits(1) for pi in golden.inputs}
        failing = failing_outputs(golden, faulty, vec)
        assert set(failing) <= set(golden.outputs)
