"""Tests for the scalar logic simulator."""

import pytest

from repro.circuits import Circuit, GateType
from repro.circuits.library import s27
from repro.sim import output_values, simulate, simulate_sequence


def test_missing_input_raises(maj3):
    with pytest.raises(KeyError, match="primary input"):
        simulate(maj3, {"a": 1, "b": 0})


def test_forced_gate_value(maj3):
    vec = {"a": 1, "b": 1, "c": 0}
    assert simulate(maj3, vec)["out"] == 1
    assert simulate(maj3, vec, forced={"ab": 0})["out"] == 0
    # forcing propagates to fanout, not backwards
    assert simulate(maj3, vec, forced={"out": 0})["ab"] == 1


def test_forced_primary_input(maj3):
    vec = {"a": 1, "b": 1, "c": 0}
    assert simulate(maj3, vec, forced={"c": 1})["bc"] == 1


def test_constants():
    c = Circuit()
    c.add_input("a")
    c.add_gate("zero", GateType.CONST0)
    c.add_gate("one", GateType.CONST1)
    c.add_gate("y", GateType.AND, ["a", "one"])
    c.add_output("y")
    vals = simulate(c, {"a": 1})
    assert vals["zero"] == 0 and vals["one"] == 1 and vals["y"] == 1


def test_output_values(maj3):
    assert output_values(maj3, {"a": 1, "b": 0, "c": 1}) == {"out": 1}


def test_dff_state_defaults_to_zero():
    circuit = s27()
    vals = simulate(circuit, {"G0": 0, "G1": 0, "G2": 0, "G3": 0})
    # state defaults to 0: G5=G6=G7=0
    assert vals["G5"] == 0 and vals["G6"] == 0 and vals["G7"] == 0


def test_dff_state_override():
    circuit = s27()
    vals = simulate(
        circuit,
        {"G0": 0, "G1": 0, "G2": 0, "G3": 0},
        state={"G5": 1, "G6": 1, "G7": 1},
    )
    assert vals["G5"] == 1 and vals["G6"] == 1 and vals["G7"] == 1


def test_simulate_sequence_state_evolution():
    """A T-flip-flop built from XOR + DFF toggles when t=1."""
    c = Circuit("tff")
    c.add_input("t")
    c.add_gate("q", GateType.DFF, ["d"])
    c.add_gate("d", GateType.XOR, ["t", "q"])
    c.add_output("q")
    frames = simulate_sequence(c, [{"t": 1}] * 4)
    assert [f["q"] for f in frames] == [0, 1, 0, 1]
    frames = simulate_sequence(c, [{"t": 0}, {"t": 1}, {"t": 0}, {"t": 1}])
    assert [f["q"] for f in frames] == [0, 0, 1, 1]


def test_simulate_sequence_initial_state():
    c = Circuit("tff")
    c.add_input("t")
    c.add_gate("q", GateType.DFF, ["d"])
    c.add_gate("d", GateType.XOR, ["t", "q"])
    c.add_output("q")
    frames = simulate_sequence(c, [{"t": 0}] * 2, initial_state={"q": 1})
    assert [f["q"] for f in frames] == [1, 1]


def test_simulate_sequence_forced_frames():
    c = Circuit("tff")
    c.add_input("t")
    c.add_gate("q", GateType.DFF, ["d"])
    c.add_gate("d", GateType.XOR, ["t", "q"])
    c.add_output("q")
    frames = simulate_sequence(
        c,
        [{"t": 0}] * 3,
        forced_per_frame=[None, {"d": 1}, None],
    )
    # the forced d=1 in frame 1 is captured into q for frame 2
    assert [f["q"] for f in frames] == [0, 0, 1]
