"""Tests for the deductive fault simulator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, GateType, random_circuit
from repro.circuits.library import parity_tree
from repro.faults import StuckAtFault, full_stuck_at_universe
from repro.sim import (
    deductive_coverage,
    deductive_detected,
    deductive_fault_lists,
    response,
    stuck_at_response,
)


def _forced_detected(circuit, vector, faults):
    """Oracle: detected faults via one forced simulation per fault."""
    good = response(circuit, vector)
    return frozenset(
        f
        for f in faults
        if stuck_at_response(circuit, vector, f.signal, f.value) != good
    )


def _random_vector(circuit, seed):
    rng = random.Random(seed)
    return {pi: rng.getrandbits(1) for pi in circuit.inputs}


# ----------------------------------------------------------------------
# local rules on hand-built gates
# ----------------------------------------------------------------------


def test_and_gate_no_controlling_input_unions():
    c = Circuit("and2")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("z", GateType.AND, ["a", "b"])
    c.add_output("z")
    c.validate()
    lists = deductive_fault_lists(c, {"a": 1, "b": 1})
    assert lists["z"] == frozenset(
        {StuckAtFault("a", 0), StuckAtFault("b", 0), StuckAtFault("z", 0)}
    )


def test_and_gate_controlling_input_masks():
    c = Circuit("and2")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("z", GateType.AND, ["a", "b"])
    c.add_output("z")
    c.validate()
    lists = deductive_fault_lists(c, {"a": 0, "b": 1})
    # Only flipping a (the controlling input) flips z; b s-a-0 is masked.
    assert lists["z"] == frozenset({StuckAtFault("a", 1), StuckAtFault("z", 1)})


def test_two_controlling_inputs_need_intersection():
    c = Circuit("or2")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("z", GateType.OR, ["a", "b"])
    c.add_output("z")
    c.validate()
    lists = deductive_fault_lists(c, {"a": 1, "b": 1})
    # Both inputs controlling (1 for OR): no single input fault flips z.
    assert lists["z"] == frozenset({StuckAtFault("z", 0)})


def test_xor_parity_rule_cancels_reconvergence():
    # z = XOR(g, g) is constant 0; a fault flipping g flips both fanins and
    # must NOT appear in z's list.
    c = Circuit("xorcancel")
    c.add_input("a")
    c.add_gate("g", GateType.NOT, ["a"])
    c.add_gate("z", GateType.XOR, ["g", "g"])
    c.add_output("z")
    c.validate()
    lists = deductive_fault_lists(c, {"a": 0})
    assert StuckAtFault("g", 0) not in lists["z"]
    assert StuckAtFault("a", 1) not in lists["z"]
    assert lists["z"] == frozenset({StuckAtFault("z", 1)})


def test_inverter_passes_list_through():
    c = Circuit("inv")
    c.add_input("a")
    c.add_gate("z", GateType.NOT, ["a"])
    c.add_output("z")
    c.validate()
    lists = deductive_fault_lists(c, {"a": 0})
    assert StuckAtFault("a", 1) in lists["z"]
    assert StuckAtFault("z", 0) in lists["z"]


def test_restricted_universe_filters_lists(maj3):
    only = [StuckAtFault("ab", 0)]
    lists = deductive_fault_lists(maj3, {"a": 1, "b": 1, "c": 0}, faults=only)
    assert lists["out"] == frozenset(only)


# ----------------------------------------------------------------------
# differential: deductive == forced simulation, fault by fault
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_matches_forced_simulation_random_circuits(seed):
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=40, seed=seed)
    universe = full_stuck_at_universe(circuit)
    for vec_seed in range(4):
        vector = _random_vector(circuit, 1000 * seed + vec_seed)
        assert deductive_detected(circuit, vector) == _forced_detected(
            circuit, vector, universe
        )


def test_matches_forced_simulation_xor_heavy():
    circuit = parity_tree(8)
    universe = full_stuck_at_universe(circuit)
    for vec_seed in range(6):
        vector = _random_vector(circuit, vec_seed)
        assert deductive_detected(circuit, vector) == _forced_detected(
            circuit, vector, universe
        )


@given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=3))
@settings(max_examples=25, deadline=None)
def test_matches_forced_simulation_property(seed, vec_seed):
    circuit = random_circuit(n_inputs=5, n_outputs=2, n_gates=18, seed=seed)
    vector = _random_vector(circuit, vec_seed)
    universe = full_stuck_at_universe(circuit)
    assert deductive_detected(circuit, vector) == _forced_detected(
        circuit, vector, universe
    )


# ----------------------------------------------------------------------
# coverage accumulation
# ----------------------------------------------------------------------


def test_coverage_accumulates_and_records_first_detection(c17):
    patterns = [_random_vector(c17, s) for s in range(16)]
    cov = deductive_coverage(c17, patterns)
    assert 0.5 < cov.coverage <= 1.0
    for fault, idx in cov.first_detection.items():
        assert fault in deductive_detected(c17, patterns[idx])
        for earlier in range(idx):
            assert fault not in deductive_detected(c17, patterns[earlier])


def test_coverage_dropping_equals_no_dropping(c17):
    patterns = [_random_vector(c17, s) for s in range(12)]
    with_drop = deductive_coverage(c17, patterns, drop_detected=True)
    without = deductive_coverage(c17, patterns, drop_detected=False)
    assert with_drop.first_detection == without.first_detection


def test_coverage_empty_pattern_list(c17):
    cov = deductive_coverage(c17, [])
    assert cov.coverage == 0.0
    assert not cov.detected
    assert len(cov.undetected) == len(cov.faults)


def test_coverage_empty_fault_list(c17):
    cov = deductive_coverage(c17, [_random_vector(c17, 0)], faults=[])
    assert cov.coverage == 1.0


def test_undetectable_fault_stays_undetected():
    # z = OR(a, NOT(a)) is a tautology; z s-a-1 is undetectable.
    c = Circuit("taut")
    c.add_input("a")
    c.add_gate("n", GateType.NOT, ["a"])
    c.add_gate("z", GateType.OR, ["a", "n"])
    c.add_output("z")
    c.validate()
    patterns = [{"a": 0}, {"a": 1}]
    cov = deductive_coverage(c, patterns)
    assert StuckAtFault("z", 1) in cov.undetected
    assert StuckAtFault("z", 0) in cov.detected


# ----------------------------------------------------------------------
# pinned propagation rules, Python and numpy implementations side by side
# (the docstring's hard cases: reconvergent fanout and XOR/XNOR parity)
# ----------------------------------------------------------------------

from repro.sim import (  # noqa: E402 - grouped with the tests that use them
    deductive_coverage_numpy,
    deductive_detected_numpy,
    deductive_fault_lists_numpy,
)

IMPLS = [deductive_fault_lists, deductive_fault_lists_numpy]
IMPL_IDS = ["python", "numpy"]


def _reconvergent_or():
    """Stem s fans out into two AND paths reconverging at an OR."""
    c = Circuit("reconv_or")
    c.add_input("s")
    c.add_input("b")
    c.add_input("d")
    c.add_gate("x", GateType.AND, ["s", "b"])
    c.add_gate("y", GateType.AND, ["s", "d"])
    c.add_gate("z", GateType.OR, ["x", "y"])
    c.add_output("z")
    c.validate()
    return c


@pytest.mark.parametrize("lists_fn", IMPLS, ids=IMPL_IDS)
def test_reconvergent_stem_intersection_rule(lists_fn):
    """Both OR fanins controlling (1): only a fault flipping *both* paths
    flips z — the intersection keeps exactly the shared stem fault."""
    c = _reconvergent_or()
    lists = lists_fn(c, {"s": 1, "b": 1, "d": 1})
    assert lists["x"] == frozenset(
        {StuckAtFault("s", 0), StuckAtFault("b", 0), StuckAtFault("x", 0)}
    )
    assert lists["z"] == frozenset(
        {StuckAtFault("s", 0), StuckAtFault("z", 0)}
    )


@pytest.mark.parametrize("lists_fn", IMPLS, ids=IMPL_IDS)
def test_reconvergent_stem_union_rule(lists_fn):
    """No OR fanin controlling (both 0): the union keeps the stem fault
    once even though it arrives on both paths."""
    c = _reconvergent_or()
    lists = lists_fn(c, {"s": 0, "b": 1, "d": 1})
    assert lists["z"] == frozenset(
        {
            StuckAtFault("s", 1),
            StuckAtFault("x", 1),
            StuckAtFault("y", 1),
            StuckAtFault("z", 1),
        }
    )


@pytest.mark.parametrize("lists_fn", IMPLS, ids=IMPL_IDS)
def test_reconvergent_masking_cancels_stem(lists_fn):
    """s and NOT(s) reconverging at an OR: the controlling-minus-
    non-controlling rule cancels every stem fault (z is a tautology)."""
    c = Circuit("taut_or")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("s", GateType.AND, ["a", "b"])
    c.add_gate("x", GateType.NOT, ["s"])
    c.add_gate("z", GateType.OR, ["s", "x"])
    c.add_output("z")
    c.validate()
    lists = lists_fn(c, {"a": 1, "b": 1})
    # s=1 is the controlling fanin; every fault in L_s also flips x, so
    # the subtraction empties the list — only z's own fault remains.
    assert lists["s"] == frozenset(
        {StuckAtFault("a", 0), StuckAtFault("b", 0), StuckAtFault("s", 0)}
    )
    assert lists["z"] == frozenset({StuckAtFault("z", 0)})


@pytest.mark.parametrize("lists_fn", IMPLS, ids=IMPL_IDS)
def test_xor_reconvergence_even_parity_cancels(lists_fn):
    """z = XOR(s, NOT(s)) is constant 1; stem faults flip both fanins
    (even parity) and cancel, the inverter's own fault survives."""
    c = Circuit("xor_reconv")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("s", GateType.AND, ["a", "b"])
    c.add_gate("x", GateType.NOT, ["s"])
    c.add_gate("z", GateType.XOR, ["s", "x"])
    c.add_output("z")
    c.validate()
    lists = lists_fn(c, {"a": 1, "b": 0})
    # s=0, x=1, z=1.  L_s = {a s-a-?; only b=0 controls} …
    assert lists["s"] == frozenset(
        {StuckAtFault("b", 1), StuckAtFault("s", 1)}
    )
    assert lists["z"] == frozenset(
        {StuckAtFault("x", 0), StuckAtFault("z", 0)}
    )


@pytest.mark.parametrize("lists_fn", IMPLS, ids=IMPL_IDS)
def test_xnor_three_fanin_odd_parity_keeps_stem(lists_fn):
    """XNOR over (s, s, s): the stem flips an odd number of fanins, so
    parity keeps it — symmetric difference of three equal lists."""
    c = Circuit("xnor3")
    c.add_input("s")
    c.add_gate("z", GateType.XNOR, ["s", "s", "s"])
    c.add_output("z")
    c.validate()
    lists = lists_fn(c, {"s": 0})
    # z = XNOR(0,0,0) = 1; flipping s flips all three fanins -> odd -> z.
    assert lists["z"] == frozenset(
        {StuckAtFault("s", 1), StuckAtFault("z", 0)}
    )


@pytest.mark.parametrize("lists_fn", IMPLS, ids=IMPL_IDS)
def test_xor_two_of_three_shared_fanins_cancel(lists_fn):
    """XOR(s, s, d): s appears an even number of times and cancels; only
    d's list (and the gate's own fault) propagates."""
    c = Circuit("xor_even")
    c.add_input("s")
    c.add_input("d")
    c.add_gate("z", GateType.XOR, ["s", "s", "d"])
    c.add_output("z")
    c.validate()
    lists = lists_fn(c, {"s": 1, "d": 0})
    assert lists["z"] == frozenset(
        {StuckAtFault("d", 1), StuckAtFault("z", 1)}
    )


# differential backstop on the library's XOR-heavy and reconvergent nets
@pytest.mark.parametrize("vec_seed", range(4))
def test_numpy_lists_equal_python_lists_parity_tree(vec_seed):
    circuit = parity_tree(8)
    vector = _random_vector(circuit, vec_seed)
    assert deductive_fault_lists_numpy(circuit, vector) == deductive_fault_lists(
        circuit, vector
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_numpy_engine_matches_python_random_circuits(seed):
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=40, seed=seed)
    patterns = [_random_vector(circuit, 100 * seed + s) for s in range(12)]
    assert deductive_detected_numpy(circuit, patterns[0]) == deductive_detected(
        circuit, patterns[0]
    )
    py = deductive_coverage(circuit, patterns)
    for drop in (True, False):
        np_cov = deductive_coverage_numpy(
            circuit, patterns, drop_detected=drop, block_patterns=5
        )
        assert dict(np_cov.first_detection) == dict(py.first_detection)
        assert np_cov.coverage == py.coverage


def test_numpy_engine_requires_complete_vectors(maj3):
    """Serial-engine input convention: missing primary inputs raise
    (unlike the pack-to-0 convention of the lane engines)."""
    with pytest.raises(KeyError, match="primary input"):
        deductive_detected_numpy(maj3, {"a": 1, "b": 1})
    with pytest.raises(KeyError, match="primary input"):
        deductive_coverage_numpy(maj3, [{"a": 1}])
