"""Tests for the deductive fault simulator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, GateType, random_circuit
from repro.circuits.library import parity_tree
from repro.faults import StuckAtFault, full_stuck_at_universe
from repro.sim import (
    deductive_coverage,
    deductive_detected,
    deductive_fault_lists,
    response,
    stuck_at_response,
)


def _forced_detected(circuit, vector, faults):
    """Oracle: detected faults via one forced simulation per fault."""
    good = response(circuit, vector)
    return frozenset(
        f
        for f in faults
        if stuck_at_response(circuit, vector, f.signal, f.value) != good
    )


def _random_vector(circuit, seed):
    rng = random.Random(seed)
    return {pi: rng.getrandbits(1) for pi in circuit.inputs}


# ----------------------------------------------------------------------
# local rules on hand-built gates
# ----------------------------------------------------------------------


def test_and_gate_no_controlling_input_unions():
    c = Circuit("and2")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("z", GateType.AND, ["a", "b"])
    c.add_output("z")
    c.validate()
    lists = deductive_fault_lists(c, {"a": 1, "b": 1})
    assert lists["z"] == frozenset(
        {StuckAtFault("a", 0), StuckAtFault("b", 0), StuckAtFault("z", 0)}
    )


def test_and_gate_controlling_input_masks():
    c = Circuit("and2")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("z", GateType.AND, ["a", "b"])
    c.add_output("z")
    c.validate()
    lists = deductive_fault_lists(c, {"a": 0, "b": 1})
    # Only flipping a (the controlling input) flips z; b s-a-0 is masked.
    assert lists["z"] == frozenset({StuckAtFault("a", 1), StuckAtFault("z", 1)})


def test_two_controlling_inputs_need_intersection():
    c = Circuit("or2")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("z", GateType.OR, ["a", "b"])
    c.add_output("z")
    c.validate()
    lists = deductive_fault_lists(c, {"a": 1, "b": 1})
    # Both inputs controlling (1 for OR): no single input fault flips z.
    assert lists["z"] == frozenset({StuckAtFault("z", 0)})


def test_xor_parity_rule_cancels_reconvergence():
    # z = XOR(g, g) is constant 0; a fault flipping g flips both fanins and
    # must NOT appear in z's list.
    c = Circuit("xorcancel")
    c.add_input("a")
    c.add_gate("g", GateType.NOT, ["a"])
    c.add_gate("z", GateType.XOR, ["g", "g"])
    c.add_output("z")
    c.validate()
    lists = deductive_fault_lists(c, {"a": 0})
    assert StuckAtFault("g", 0) not in lists["z"]
    assert StuckAtFault("a", 1) not in lists["z"]
    assert lists["z"] == frozenset({StuckAtFault("z", 1)})


def test_inverter_passes_list_through():
    c = Circuit("inv")
    c.add_input("a")
    c.add_gate("z", GateType.NOT, ["a"])
    c.add_output("z")
    c.validate()
    lists = deductive_fault_lists(c, {"a": 0})
    assert StuckAtFault("a", 1) in lists["z"]
    assert StuckAtFault("z", 0) in lists["z"]


def test_restricted_universe_filters_lists(maj3):
    only = [StuckAtFault("ab", 0)]
    lists = deductive_fault_lists(maj3, {"a": 1, "b": 1, "c": 0}, faults=only)
    assert lists["out"] == frozenset(only)


# ----------------------------------------------------------------------
# differential: deductive == forced simulation, fault by fault
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_matches_forced_simulation_random_circuits(seed):
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=40, seed=seed)
    universe = full_stuck_at_universe(circuit)
    for vec_seed in range(4):
        vector = _random_vector(circuit, 1000 * seed + vec_seed)
        assert deductive_detected(circuit, vector) == _forced_detected(
            circuit, vector, universe
        )


def test_matches_forced_simulation_xor_heavy():
    circuit = parity_tree(8)
    universe = full_stuck_at_universe(circuit)
    for vec_seed in range(6):
        vector = _random_vector(circuit, vec_seed)
        assert deductive_detected(circuit, vector) == _forced_detected(
            circuit, vector, universe
        )


@given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=3))
@settings(max_examples=25, deadline=None)
def test_matches_forced_simulation_property(seed, vec_seed):
    circuit = random_circuit(n_inputs=5, n_outputs=2, n_gates=18, seed=seed)
    vector = _random_vector(circuit, vec_seed)
    universe = full_stuck_at_universe(circuit)
    assert deductive_detected(circuit, vector) == _forced_detected(
        circuit, vector, universe
    )


# ----------------------------------------------------------------------
# coverage accumulation
# ----------------------------------------------------------------------


def test_coverage_accumulates_and_records_first_detection(c17):
    patterns = [_random_vector(c17, s) for s in range(16)]
    cov = deductive_coverage(c17, patterns)
    assert 0.5 < cov.coverage <= 1.0
    for fault, idx in cov.first_detection.items():
        assert fault in deductive_detected(c17, patterns[idx])
        for earlier in range(idx):
            assert fault not in deductive_detected(c17, patterns[earlier])


def test_coverage_dropping_equals_no_dropping(c17):
    patterns = [_random_vector(c17, s) for s in range(12)]
    with_drop = deductive_coverage(c17, patterns, drop_detected=True)
    without = deductive_coverage(c17, patterns, drop_detected=False)
    assert with_drop.first_detection == without.first_detection


def test_coverage_empty_pattern_list(c17):
    cov = deductive_coverage(c17, [])
    assert cov.coverage == 0.0
    assert not cov.detected
    assert len(cov.undetected) == len(cov.faults)


def test_coverage_empty_fault_list(c17):
    cov = deductive_coverage(c17, [_random_vector(c17, 0)], faults=[])
    assert cov.coverage == 1.0


def test_undetectable_fault_stays_undetected():
    # z = OR(a, NOT(a)) is a tautology; z s-a-1 is undetectable.
    c = Circuit("taut")
    c.add_input("a")
    c.add_gate("n", GateType.NOT, ["a"])
    c.add_gate("z", GateType.OR, ["a", "n"])
    c.add_output("z")
    c.validate()
    patterns = [{"a": 0}, {"a": 1}]
    cov = deductive_coverage(c, patterns)
    assert StuckAtFault("z", 1) in cov.undetected
    assert StuckAtFault("z", 0) in cov.detected
