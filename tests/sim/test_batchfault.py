"""Cross-engine tests for the fault-parallel batched simulation engine.

The batch engine must be bit-exact against every older engine it can
replace: the serial forced-value signature (:func:`fault_signature`), the
scalar :func:`stuck_at_response`, and the deductive fault simulator.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import library, random_circuit
from repro.diagnosis.stuckat import fault_signature, full_fault_list
from repro.faults.models import StuckAtFault
from repro.sim import (
    batch_detected,
    batch_fault_coverage,
    deductive_coverage,
    deductive_detected,
    exact_match_faults,
    fault_signatures_batch,
    pack_patterns,
    stuck_at_response,
    unpack_word,
)


@st.composite
def circuit_faults_patterns(draw):
    seed = draw(st.integers(0, 10_000))
    n_outputs = draw(st.integers(1, 4))
    circuit = random_circuit(
        n_inputs=draw(st.integers(2, 7)),
        n_outputs=n_outputs,
        n_gates=draw(st.integers(n_outputs, 40)),
        seed=seed,
    )
    rng = random.Random(seed)
    n_patterns = draw(st.integers(1, 70))
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs}
        for _ in range(n_patterns)
    ]
    return circuit, patterns


@given(circuit_faults_patterns())
@settings(max_examples=30, deadline=None)
def test_batch_signatures_match_serial_engine(data):
    """Property: batch signatures equal per-fault serial signatures for the
    full fault universe — gate outputs, fanout stems and primary inputs."""
    circuit, patterns = data
    faults = full_fault_list(circuit)  # includes primary-input faults
    words = pack_patterns(patterns, circuit.inputs)
    serial = [
        fault_signature(circuit, f, words, len(patterns)) for f in faults
    ]
    batch = fault_signatures_batch(circuit, faults, patterns)
    assert batch == serial


@given(circuit_faults_patterns())
@settings(max_examples=15, deadline=None)
def test_batch_signatures_match_scalar_responses(data):
    """Property: every pattern-bit of a batch signature equals the scalar
    stuck_at_response of that pattern."""
    circuit, patterns = data
    faults = full_fault_list(circuit)
    rng = random.Random(len(patterns))
    sample = rng.sample(faults, min(6, len(faults)))
    batch = fault_signatures_batch(circuit, sample, patterns)
    for fault, sig in zip(sample, batch):
        for j, pattern in enumerate(patterns):
            scalar = stuck_at_response(
                circuit, pattern, fault.signal, fault.value
            )
            batched = tuple(
                (sig[out] >> j) & 1 for out in circuit.outputs
            )
            assert batched == scalar, (fault, j)


def test_fanout_stem_and_input_faults_on_c17():
    """Exhaustive c17 check: stems (G10/G11/G16 feed multiple gates) and
    PI faults, every input combination, both engines bit-identical."""
    c17 = library.c17()
    patterns = [
        dict(zip(c17.inputs, bits))
        for bits in itertools.product([0, 1], repeat=len(c17.inputs))
    ]
    faults = full_fault_list(c17)
    assert any(f.signal in c17.inputs for f in faults)
    batch = fault_signatures_batch(c17, faults, patterns)
    words = pack_patterns(patterns, c17.inputs)
    for fault, sig in zip(faults, batch):
        assert sig == fault_signature(c17, fault, words, len(patterns))


@given(circuit_faults_patterns())
@settings(max_examples=20, deadline=None)
def test_batch_detected_matches_deductive(data):
    circuit, patterns = data
    faults = full_fault_list(circuit, include_inputs=False)
    assert batch_detected(circuit, patterns[0], faults) == deductive_detected(
        circuit, patterns[0], faults
    )


@pytest.mark.parametrize("drop", [True, False])
@pytest.mark.parametrize("block", [64, 256])
def test_batch_coverage_matches_deductive(drop, block):
    circuit = random_circuit(n_inputs=7, n_outputs=3, n_gates=45, seed=17)
    rng = random.Random(17)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(150)
    ]
    faults = full_fault_list(circuit, include_inputs=False)
    batch = batch_fault_coverage(
        circuit, patterns, faults, drop_detected=drop, block_patterns=block
    )
    deductive = deductive_coverage(circuit, patterns, faults=faults)
    assert dict(batch.first_detection) == dict(deductive.first_detection)
    assert batch.coverage == deductive.coverage
    assert batch.n_patterns == deductive.n_patterns


def test_exact_match_faults_agrees_with_full_ranking():
    from repro.diagnosis import diagnose_stuck_at
    from repro.faults import apply_error
    from repro.sim import output_values

    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=23)
    defect = StuckAtFault(circuit.gates[10].name, 1)
    dut = apply_error(circuit, defect)
    rng = random.Random(23)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(130)
    ]
    observed = [output_values(dut, p) for p in patterns]
    exact = exact_match_faults(
        circuit, patterns, observed, block_patterns=64
    )
    ranking = diagnose_stuck_at(
        circuit, patterns, observed, engine="serial"
    ).extras["matches"]
    expected = [m.fault for m in ranking if m.exact]
    assert sorted(exact, key=str) == sorted(expected, key=str)
    assert defect in exact


def test_unknown_fault_site_rejected(maj3):
    with pytest.raises(ValueError, match="not a signal"):
        fault_signatures_batch(
            maj3, [StuckAtFault("no_such_signal", 0)], [{"a": 0, "b": 0, "c": 0}]
        )


def test_empty_patterns_rejected(maj3):
    with pytest.raises(ValueError, match="pattern"):
        fault_signatures_batch(maj3, [], [])


def test_empty_faults_gives_empty_signatures(maj3):
    assert fault_signatures_batch(maj3, [], [{"a": 0, "b": 0, "c": 0}]) == []


def test_signature_words_masked_to_pattern_count():
    """Padding bits above n_patterns must be cleared (NAND-heavy circuits
    produce all-ones words whose padding would otherwise leak through)."""
    circuit = random_circuit(n_inputs=4, n_outputs=2, n_gates=15, seed=5)
    rng = random.Random(5)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(7)
    ]
    faults = full_fault_list(circuit)
    for sig in fault_signatures_batch(circuit, faults, patterns):
        for word in sig.values():
            assert word < (1 << len(patterns))
            assert len(unpack_word(word, len(patterns))) == len(patterns)


def test_observed_response_missing_output_raises(maj3):
    """A tester log entry missing an output must raise (like the serial
    matcher), not silently default the output to 0."""
    from repro.diagnosis import FaultDictionary, diagnose_stuck_at
    from repro.sim import pack_responses

    patterns = [{"a": 1, "b": 1, "c": 0}, {"a": 0, "b": 1, "c": 1}]
    good = [{"out": 1}, {"out": 1}]
    broken = [{"out": 1}, {}]  # second response lost its output
    assert pack_responses(maj3.outputs, good).shape == (1, 1)
    with pytest.raises(KeyError):
        pack_responses(maj3.outputs, broken)
    fd = FaultDictionary(maj3, patterns, engine="batch")
    with pytest.raises(KeyError):
        fd.match(broken)
    with pytest.raises(KeyError):
        diagnose_stuck_at(maj3, patterns, broken, engine="batch")
    with pytest.raises(KeyError):
        exact_match_faults(maj3, patterns, broken)


def test_popcount_fallback_matches_bitwise_count():
    """The numpy<2 fallback must agree with np.bitwise_count elementwise."""
    import numpy as np

    from repro.sim.batchfault import _popcount_fallback

    rng = np.random.default_rng(3)
    arr = rng.integers(0, 2**63, size=(5, 3, 4), dtype=np.uint64)
    arr[0, 0, 0] = np.uint64(0xFFFFFFFFFFFFFFFF)
    arr[0, 0, 1] = 0
    expected = np.bitwise_count(arr)
    assert (_popcount_fallback(arr) == expected).all()
    # Strided views (the shape _output_stack hands downstream) work too.
    view = arr.transpose(1, 0, 2)
    assert (_popcount_fallback(view) == np.bitwise_count(view)).all()


def test_blocked_sweep_matches_single_sweep(monkeypatch):
    """Pattern sets wider than the sweep budget are swept in lane-aligned
    blocks; the concatenated result must be bit-identical."""
    import repro.sim.batchfault as bf

    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=25, seed=8)
    rng = random.Random(8)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(300)
    ]
    faults = full_fault_list(circuit)
    whole = fault_signatures_batch(circuit, faults, patterns)
    monkeypatch.setattr(bf, "_SWEEP_BUDGET", 1)  # force 64-pattern blocks
    blocked = fault_signatures_batch(circuit, faults, patterns)
    assert blocked == whole
