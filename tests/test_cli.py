"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_stats_library_circuit(capsys):
    code, out = run_cli(capsys, "stats", "c17")
    assert code == 0
    stats = json.loads(out)
    assert stats["gates"] == 6


def test_stats_bench_file(tmp_path, capsys):
    from repro.circuits import dump, library

    path = tmp_path / "maj.bench"
    dump(library.majority(), path)
    code, out = run_cli(capsys, "stats", str(path))
    assert code == 0
    assert json.loads(out)["gates"] == 5


def test_unknown_circuit_exits():
    with pytest.raises(SystemExit):
        main(["stats", "no_such_circuit_or_file"])


def test_inject_testgen_diagnose_roundtrip(tmp_path, capsys):
    faulty_path = tmp_path / "faulty.bench"
    tests_path = tmp_path / "t.tests"

    code, out = run_cli(
        capsys, "inject", "c17", "--p", "1", "--seed", "3",
        "--out", str(faulty_path),
    )
    assert code == 0 and faulty_path.exists()
    truth = json.loads(
        (tmp_path / "faulty.truth.json").read_text()
    )
    assert len(truth["errors"]) == 1
    site = truth["errors"][0].split(":")[0]

    code, out = run_cli(
        capsys, "testgen", "c17", str(faulty_path), "--m", "4",
        "--out", str(tests_path),
    )
    assert code == 0 and "4 failing tests" in out

    code, out = run_cli(
        capsys, "diagnose", str(faulty_path), str(tests_path),
        "--approach", "bsat", "--k", "1",
    )
    assert code == 0
    assert site in out  # the injected site must be among the solutions

    code, out = run_cli(
        capsys, "diagnose", str(faulty_path), str(tests_path),
        "--approach", "bsim",
    )
    assert code == 0 and "candidate gates" in out

    code, out = run_cli(
        capsys, "diagnose", str(faulty_path), str(tests_path),
        "--approach", "cov", "--k", "1",
    )
    assert code == 0 and "solutions" in out

    code, out = run_cli(
        capsys, "diagnose", str(faulty_path), str(tests_path),
        "--approach", "hybrid", "--k", "1",
    )
    assert code == 0 and "solutions" in out

    code, out = run_cli(
        capsys, "diagnose", str(faulty_path), str(tests_path),
        "--approach", "greedy", "--k", "0",
    )
    assert code == 0 and "solutions" in out
    assert site in out  # greedy candidates are valid, site among them

    code, out = run_cli(
        capsys, "diagnose", str(faulty_path), str(tests_path),
        "--approach", "ihs", "--k", "0",
    )
    assert code == 0 and "solutions" in out
    assert site in out


def test_strategies_lists_registry(capsys):
    code, out = run_cli(capsys, "strategies")
    assert code == 0
    for name in ("bsat", "greedy-stochastic", "ihs", "single-fix"):
        assert name in out


def test_diagnose_rejects_bad_test_file(tmp_path):
    from repro.circuits import dump, library

    faulty = tmp_path / "c.bench"
    dump(library.c17(), faulty)
    bad = tmp_path / "bad.tests"
    bad.write_text("xyz nonsense\n")
    with pytest.raises(SystemExit):
        main(["diagnose", str(faulty), str(bad)])


def test_diagnose_rejects_empty_test_file(tmp_path):
    from repro.circuits import dump, library

    faulty = tmp_path / "c.bench"
    dump(library.c17(), faulty)
    empty = tmp_path / "empty.tests"
    empty.write_text("# nothing\n")
    with pytest.raises(SystemExit):
        main(["diagnose", str(faulty), str(empty)])


def test_table1(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "BSIM" in out and "adv. SAT-based" in out


def test_atpg_writes_patterns(tmp_path, capsys):
    out_file = tmp_path / "patterns.txt"
    code, out = run_cli(capsys, "atpg", "c17", "--out", str(out_file))
    assert code == 0
    assert "coverage 100.0%" in out
    lines = [
        l for l in out_file.read_text().splitlines() if not l.startswith("#")
    ]
    assert lines and all(set(l) <= {"0", "1"} and len(l) == 5 for l in lines)


def test_atpg_sat_backend(capsys):
    code, out = run_cli(capsys, "atpg", "c17", "--backend", "sat")
    assert code == 0 and "coverage 100.0%" in out


def test_cec_equivalent(capsys):
    code, out = run_cli(capsys, "cec", "c17", "c17", "--method", "bdd")
    assert code == 0 and "equivalent" in out


def test_cec_inequivalent_exit_code(tmp_path, capsys):
    faulty_path = tmp_path / "faulty.bench"
    run_cli(capsys, "inject", "c17", "--seed", "3", "--out", str(faulty_path))
    code, out = run_cli(capsys, "cec", "c17", str(faulty_path))
    assert code == 1
    assert "NOT equivalent" in out and "counterexample" in out


def test_certify_correction_exists(tmp_path, capsys):
    faulty_path = tmp_path / "faulty.bench"
    tests_path = tmp_path / "t.tests"
    run_cli(capsys, "inject", "c17", "--seed", "3", "--out", str(faulty_path))
    run_cli(
        capsys, "testgen", "c17", str(faulty_path), "--m", "4",
        "--out", str(tests_path),
    )
    code, out = run_cli(
        capsys, "certify", str(faulty_path), str(tests_path), "--k", "1"
    )
    assert code == 0 and "correction exists" in out


def test_certify_refutation_with_proof(tmp_path, capsys):
    faulty_path = tmp_path / "faulty.bench"
    tests_path = tmp_path / "t.tests"
    proof_path = tmp_path / "refutation.drat"
    run_cli(capsys, "inject", "c17", "--seed", "3", "--out", str(faulty_path))
    run_cli(
        capsys, "testgen", "c17", str(faulty_path), "--m", "4",
        "--out", str(tests_path),
    )
    code, out = run_cli(
        capsys, "certify", str(faulty_path), str(tests_path), "--k", "0",
        "--proof-out", str(proof_path),
    )
    assert code == 0  # verified refutation
    assert "VERIFIED" in out
    assert proof_path.exists()
    from repro.sat import ProofLog

    assert ProofLog.from_drat_text(
        proof_path.read_text()
    ).ends_with_empty_clause


def test_inject_wire_error_model(tmp_path, capsys):
    faulty_path = tmp_path / "wire.bench"
    code, out = run_cli(
        capsys, "inject", "c17", "--error-model", "wire", "--seed", "2",
        "--out", str(faulty_path),
    )
    assert code == 0 and faulty_path.exists()
    assert "injected:" in out
    # The sidecar records a wire/inverter error description, not a type swap.
    import json

    truth = json.loads((tmp_path / "wire.truth.json").read_text())
    assert len(truth["errors"]) == 1


# ----------------------------------------------------------------------
# system descriptions (--system gcnf / spectrum, PR 6)
# ----------------------------------------------------------------------
def test_strategies_shows_system_kinds(capsys):
    code, out = run_cli(capsys, "strategies")
    assert code == 0
    lines = {line.split()[0]: line for line in out.splitlines()}
    assert "model-agnostic" in lines["hsdag"]
    assert "model-agnostic" in lines["fastdiag"]
    assert "model-agnostic" in lines["bsat"]
    assert "circuit-only" in lines["cov"]


def test_diagnose_gcnf(tmp_path, capsys):
    gcnf = tmp_path / "demo.gcnf"
    gcnf.write_text(
        "p gcnf 3 3 3\n{1} 1 0\n{2} -1 0\n{3} 2 3 0\n"
    )
    for approach in ("bsat", "ihs", "hsdag", "fastdiag"):
        code, out = run_cli(
            capsys, "diagnose", str(gcnf), "-",
            "--system", "gcnf", "--approach", approach, "--k", "2",
        )
        assert code == 0
        assert "2 solutions" in out
        assert "g1" in out and "g2" in out


def test_diagnose_gcnf_observation_file(tmp_path, capsys):
    gcnf = tmp_path / "demo.gcnf"
    gcnf.write_text("p gcnf 2 2 2\n{1} 1 0\n{2} 2 0\n")
    obs = tmp_path / "demo.obs"
    obs.write_text("# two observations\nc DIMACS comment\n1 0\n-1 -2\n")
    code, out = run_cli(
        capsys, "diagnose", str(gcnf), str(obs),
        "--system", "gcnf", "--approach", "hsdag", "--k", "2",
    )
    assert code == 0
    assert "2 observations" in out
    assert "g1, g2" in out


def test_diagnose_gcnf_observation_file_rejects_inner_zero(tmp_path, capsys):
    gcnf = tmp_path / "demo.gcnf"
    gcnf.write_text("p gcnf 2 2 2\n{1} 1 0\n{2} 2 0\n")
    obs = tmp_path / "demo.obs"
    obs.write_text("1 0 -2\n")
    with pytest.raises(SystemExit, match="trailing clause terminator"):
        run_cli(
            capsys, "diagnose", str(gcnf), str(obs),
            "--system", "gcnf", "--approach", "hsdag", "--k", "2",
        )


def test_diagnose_gcnf_observation_out_of_range_is_clean_error(
    tmp_path, capsys
):
    gcnf = tmp_path / "demo.gcnf"
    gcnf.write_text("p gcnf 2 2 2\n{1} 1 0\n{2} 2 0\n")
    obs = tmp_path / "demo.obs"
    obs.write_text("7\n")
    with pytest.raises(SystemExit, match="error: observation literal"):
        run_cli(
            capsys, "diagnose", str(gcnf), str(obs),
            "--system", "gcnf", "--approach", "hsdag", "--k", "2",
        )


def test_diagnose_spectrum(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({
        "components": ["a", "b", "c"],
        "rows": [
            {"covered": ["a", "b"], "passed": False},
            {"covered": ["b", "c"], "passed": False},
        ],
    }))
    code, out = run_cli(
        capsys, "diagnose", str(spec), "-",
        "--system", "spectrum", "--approach", "fastdiag", "--k", "2",
    )
    assert code == 0
    assert "3 components, 2 runs" in out
    assert "b" in out


def test_diagnose_gcnf_rejects_bsim(tmp_path):
    gcnf = tmp_path / "demo.gcnf"
    gcnf.write_text("p gcnf 1 1 1\n{1} 1 0\n")
    with pytest.raises(SystemExit, match="bsim"):
        main([
            "diagnose", str(gcnf), "-",
            "--system", "gcnf", "--approach", "bsim",
        ])


def test_diagnose_gcnf_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.gcnf"
    bad.write_text("p gcnf 1 1\n{1} 1 0\n")
    with pytest.raises(SystemExit):
        main(["diagnose", str(bad), "-", "--system", "gcnf"])


# ----------------------------------------------------------------------
# CLI error-handling sweep + the serve subcommand (PR 7)
# ----------------------------------------------------------------------
def test_diagnose_unsupported_strategy_system_combo_is_one_line_error(
    tmp_path,
):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({
        "components": ["a", "b"],
        "rows": [{"covered": ["a"], "passed": False}],
    }))
    # cov is circuit-only: on a spectrum system it must exit with the
    # registry's message, not an uncaught traceback.
    with pytest.raises(SystemExit, match="supports system kinds"):
        main([
            "diagnose", str(spec), "-",
            "--system", "spectrum", "--approach", "cov",
        ])


def test_diagnose_missing_tests_file_is_clean_error(tmp_path):
    with pytest.raises(SystemExit, match="error:"):
        main(["diagnose", "c17", str(tmp_path / "no_such.tests")])


def test_diagnose_missing_observation_file_is_clean_error(tmp_path):
    gcnf = tmp_path / "demo.gcnf"
    gcnf.write_text("p gcnf 1 1 1\n{1} 1 0\n")
    with pytest.raises(SystemExit, match="error:"):
        main([
            "diagnose", str(gcnf), str(tmp_path / "no_such.obs"),
            "--system", "gcnf",
        ])


def test_certify_missing_tests_file_is_clean_error(tmp_path):
    with pytest.raises(SystemExit, match="error:"):
        main(["certify", "c17", str(tmp_path / "no_such.tests")])


def test_diagnose_spectrum_malformed_names_field(tmp_path):
    spec = tmp_path / "bad.json"
    spec.write_text(json.dumps({
        "components": ["a", "b"],
        "rows": [{"covered": ["a"]}],  # missing 'passed'
    }))
    with pytest.raises(SystemExit, match="rows\\[0\\]"):
        main(["diagnose", str(spec), "-", "--system", "spectrum"])


def _serve_device_lines():
    from repro.circuits import library
    from repro.experiments import make_workload

    lines = []
    for i, seed in enumerate((3, 5)):
        w = make_workload(library.c17(), p=1, m_max=4, seed=seed)
        tests = [
            {"vector": dict(t.vector), "output": t.output,
             "value": t.value ^ 1}
            for t in w.tests
        ]
        lines.append(json.dumps(
            {"id": f"d{i}", "design": "c17", "k": 2, "tests": tests}
        ))
    return lines


def test_serve_smoke(tmp_path, capsys):
    stream = tmp_path / "devices.jsonl"
    stream.write_text("\n".join(_serve_device_lines()) + "\n")
    code, out = run_cli(
        capsys, "serve", str(stream), "--shards", "2", "--timeout", "30"
    )
    assert code == 0
    records = [json.loads(line) for line in out.splitlines()]
    assert [r["id"] for r in records] == ["d0", "d1"]
    assert all(r["status"] == "ok" and r["answer"] for r in records)


def test_serve_out_file_and_stats(tmp_path, capsys):
    stream = tmp_path / "devices.jsonl"
    stream.write_text("\n".join(_serve_device_lines()) + "\n")
    out_path = tmp_path / "results.jsonl"
    code = main([
        "serve", str(stream), "--shards", "1", "--timeout", "30",
        "--out", str(out_path), "--stats",
    ])
    captured = capsys.readouterr()
    assert code == 0
    records = [
        json.loads(line) for line in out_path.read_text().splitlines()
    ]
    assert len(records) == 2
    stats = json.loads(captured.err)
    assert stats["design_cache"]["skeleton_builds"] == {"c17": 1}


def test_serve_workers_process_mode_with_stats(tmp_path, capsys):
    stream = tmp_path / "devices.jsonl"
    stream.write_text("\n".join(_serve_device_lines()) + "\n")
    code = main([
        "serve", str(stream), "--workers", "2", "--shards", "1",
        "--timeout", "30", "--stats",
    ])
    captured = capsys.readouterr()
    assert code == 0
    records = [json.loads(line) for line in captured.out.splitlines()]
    assert [r["id"] for r in records] == ["d0", "d1"]
    assert all(r["status"] == "ok" and r["answer"] for r in records)
    # Design sharding: both c17 devices served by the one owning worker.
    assert len({r["worker"] for r in records}) == 1
    assert records[0]["worker"] is not None
    stats = json.loads(captured.err)
    assert set(stats["queue_high_water"]) == {"worker0", "worker1"}
    assert sum(
        block["processed"] for block in stats["workers"].values()
    ) == 2
    assert stats["devices"] == 2
    assert stats["worker_deaths"] == 0


def test_serve_skips_malformed_line_midstream(tmp_path, capsys):
    # Skip-and-count intake: the torn line is dropped with a warning
    # naming its line number, the devices behind it still serve.
    stream = tmp_path / "devices.jsonl"
    lines = _serve_device_lines()
    stream.write_text(
        lines[0] + "\n" + '{"id": "torn-rec\n' + lines[1] + "\n"
    )
    code = main(["serve", str(stream), "--shards", "1", "--stats"])
    captured = capsys.readouterr()
    assert code == 0
    records = [json.loads(line) for line in captured.out.splitlines()]
    assert [r["id"] for r in records] == ["d0", "d1"]
    assert "warning: skipped line 2" in captured.err
    assert '"intake_skipped": 1' in captured.err


def test_serve_strict_counts_skipped_intake(tmp_path, capsys):
    stream = tmp_path / "devices.jsonl"
    stream.write_text(
        _serve_device_lines()[0] + "\n" + "{not json}\n"
    )
    code = main(["serve", str(stream), "--shards", "1", "--strict"])
    captured = capsys.readouterr()
    assert code == 1
    assert "strict: 1 intake lines skipped" in captured.err


def test_serve_stream_of_only_malformed_devices_is_clean_error(tmp_path):
    stream = tmp_path / "devices.jsonl"
    stream.write_text('{"id": "x", "design": "c17"}\n')
    with pytest.raises(SystemExit, match="no devices in the stream"):
        main(["serve", str(stream)])


def test_serve_missing_file_is_clean_error(tmp_path):
    with pytest.raises(SystemExit, match="error:"):
        main(["serve", str(tmp_path / "no_such.jsonl")])


def test_serve_rejects_unknown_strategy(tmp_path):
    stream = tmp_path / "devices.jsonl"
    stream.write_text("\n".join(_serve_device_lines()) + "\n")
    with pytest.raises(SystemExit, match="unknown strategy 'nope'"):
        main(["serve", str(stream), "--strategies", "nope"])


def test_serve_unknown_design_exits_zero_by_default(tmp_path, capsys):
    # The stream was served end to end; per-device failures are data in
    # the result records, not a process failure (use --strict to gate).
    stream = tmp_path / "devices.jsonl"
    line = json.loads(_serve_device_lines()[0])
    line["design"] = "no_such_design"
    stream.write_text(json.dumps(line) + "\n")
    code, out = run_cli(capsys, "serve", str(stream), "--shards", "1")
    assert code == 0
    record = json.loads(out.splitlines()[0])
    assert record["status"] == "error"
    assert "no_such_design" in record["error"]


def test_serve_strict_turns_error_status_into_exit_1(tmp_path, capsys):
    stream = tmp_path / "devices.jsonl"
    line = json.loads(_serve_device_lines()[0])
    line["design"] = "no_such_design"
    stream.write_text(
        json.dumps(line) + "\n" + _serve_device_lines()[1] + "\n"
    )
    code = main(["serve", str(stream), "--shards", "1", "--strict"])
    captured = capsys.readouterr()
    assert code == 1
    assert "strict: 1/2 devices not ok (1 error)" in captured.err


def test_serve_journal_resume_replays_without_rediagnosis(
    tmp_path, capsys
):
    stream = tmp_path / "devices.jsonl"
    stream.write_text("\n".join(_serve_device_lines()) + "\n")
    wal = tmp_path / "serve.wal"
    code, first_out = run_cli(
        capsys, "serve", str(stream), "--shards", "1",
        "--journal", str(wal),
    )
    assert code == 0 and wal.exists()
    code = main([
        "serve", str(stream), "--shards", "1",
        "--journal", str(wal), "--resume", "--stats",
    ])
    captured = capsys.readouterr()
    assert code == 0
    first = [json.loads(l) for l in first_out.splitlines()]
    replayed = [json.loads(l) for l in captured.out.splitlines()]
    for a, b in zip(first, replayed):
        assert b["journal_replayed"] is True
        assert b["answer"] == a["answer"]
        assert b["winner"] == a["winner"]
    stats = json.loads(captured.err)
    assert stats["journal_replayed"] == 2
    assert "degraded" in stats and "journal" in stats


def test_serve_resume_requires_journal(tmp_path):
    stream = tmp_path / "devices.jsonl"
    stream.write_text("\n".join(_serve_device_lines()) + "\n")
    with pytest.raises(SystemExit, match="--resume requires --journal"):
        main(["serve", str(stream), "--resume"])
