"""Tests for the Abadir-style design error models (ref [18] lineage)."""

import pytest

from repro.circuits import Circuit, GateType, random_circuit
from repro.diagnosis import basic_sat_diagnose
from repro.faults import (
    ExtraWireError,
    InverterError,
    MissingWireError,
    WrongWireError,
    apply_error,
    random_wire_errors,
)
from repro.sim import simulate
from repro.testgen import distinguishing_tests


# ----------------------------------------------------------------------
# individual model application
# ----------------------------------------------------------------------


def test_inverter_error_complements(maj3):
    faulty = apply_error(maj3, InverterError("ab"))
    assert faulty.node("ab").gtype is GateType.NAND
    vec = {"a": 1, "b": 1, "c": 0}
    assert simulate(faulty, vec)["ab"] == 1 - simulate(maj3, vec)["ab"]


def test_inverter_error_double_application_restores(maj3):
    twice = apply_error(apply_error(maj3, InverterError("out")), InverterError("out"))
    assert twice.node("out").gtype is maj3.node("out").gtype


def test_inverter_error_on_input_rejected(maj3):
    with pytest.raises(Exception):
        apply_error(maj3, InverterError("a"))


def test_wrong_wire_swaps_connection(maj3):
    faulty = apply_error(maj3, WrongWireError("ab", "b", "c"))
    assert faulty.node("ab").fanins == ("a", "c")
    vec = {"a": 1, "b": 1, "c": 0}
    assert simulate(faulty, vec)["ab"] == 0  # AND(a, c) now


def test_wrong_wire_must_change():
    with pytest.raises(ValueError, match="change"):
        WrongWireError("g", "a", "a")


def test_wrong_wire_requires_existing_fanin(maj3):
    with pytest.raises(ValueError, match="not a fanin"):
        apply_error(maj3, WrongWireError("ab", "c", "a"))


def test_wrong_wire_rejects_cycle():
    c = Circuit("loopy")
    c.add_input("a")
    c.add_gate("g1", GateType.NOT, ["a"])
    c.add_gate("g2", GateType.NOT, ["g1"])
    c.add_output("g2")
    c.validate()
    with pytest.raises(Exception):  # g1 <- g2 closes a cycle
        apply_error(c, WrongWireError("g1", "a", "g2"))


def test_extra_wire_appends(maj3):
    faulty = apply_error(maj3, ExtraWireError("ab", "c"))
    assert faulty.node("ab").fanins == ("a", "b", "c")
    vec = {"a": 1, "b": 1, "c": 0}
    assert simulate(faulty, vec)["ab"] == 0


def test_extra_wire_on_inverter_rejected(maj3):
    c = maj3.copy()
    c.add_gate("inv", GateType.NOT, ["ab"])
    with pytest.raises(ValueError, match="single-input"):
        apply_error(c, ExtraWireError("inv", "bc"))


def test_missing_wire_drops(maj3):
    faulty = apply_error(maj3, MissingWireError("ab", "b"))
    assert faulty.node("ab").fanins == ("a",)
    vec = {"a": 1, "b": 0, "c": 0}
    assert simulate(faulty, vec)["ab"] == 1  # AND(a) == a


def test_missing_wire_cannot_empty_gate():
    c = Circuit("single")
    c.add_input("a")
    c.add_gate("g", GateType.AND, ["a"])
    c.add_output("g")
    c.validate()
    with pytest.raises(ValueError, match="last fanin"):
        apply_error(c, MissingWireError("g", "a"))


def test_missing_wire_requires_existing_fanin(maj3):
    with pytest.raises(ValueError, match="not a fanin"):
        apply_error(maj3, MissingWireError("ab", "c"))


# ----------------------------------------------------------------------
# random injection
# ----------------------------------------------------------------------


@pytest.mark.parametrize("p", [1, 2])
def test_random_wire_errors_detectable(p):
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=42)
    inj = random_wire_errors(circuit, p=p, seed=7)
    assert inj.p == p
    assert len(set(inj.sites)) == p
    inj.faulty.validate()  # acyclic despite wire swaps


def test_random_wire_errors_deterministic():
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=42)
    a = random_wire_errors(circuit, p=2, seed=3)
    b = random_wire_errors(circuit, p=2, seed=3)
    assert a.errors == b.errors


def test_random_wire_errors_mix():
    """Across seeds, the injector exercises several error kinds."""
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=40, seed=1)
    kinds = set()
    for seed in range(12):
        inj = random_wire_errors(circuit, p=1, seed=seed)
        kinds.add(type(inj.errors[0]).__name__)
    assert len(kinds) >= 3


# ----------------------------------------------------------------------
# diagnosability: BSAT locates wire-error sites too
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bsat_locates_wire_errors(seed):
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=25, seed=seed)
    inj = random_wire_errors(circuit, p=1, seed=seed + 20)
    tests = distinguishing_tests(circuit, inj.faulty, m=6)
    assert tests.m >= 1
    result = basic_sat_diagnose(inj.faulty, tests, k=1)
    # The error gate's function changed, so its site is a valid correction.
    assert any(inj.sites[0] in sol for sol in result.solutions)
