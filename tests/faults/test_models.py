"""Tests for error/fault model types."""

import pytest

from repro.circuits import GateType
from repro.faults import GateChangeError, StuckAtFault


def test_gate_change_fields():
    e = GateChangeError("g5", GateType.AND, GateType.OR)
    assert e.site == "g5"
    assert "AND -> OR" in e.describe()


def test_gate_change_must_change():
    with pytest.raises(ValueError):
        GateChangeError("g5", GateType.AND, GateType.AND)


def test_stuck_at_fields():
    f = StuckAtFault("n3", 1)
    assert f.site == "n3"
    assert f.describe() == "n3: stuck-at-1"


def test_stuck_at_value_validation():
    with pytest.raises(ValueError):
        StuckAtFault("n3", 2)


def test_models_hashable():
    a = GateChangeError("g", GateType.AND, GateType.OR)
    b = GateChangeError("g", GateType.AND, GateType.OR)
    assert a == b and hash(a) == hash(b)
    assert len({a, b, StuckAtFault("g", 0)}) == 2
