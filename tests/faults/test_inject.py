"""Tests for error injection."""

import pytest

from repro.circuits import GateType, random_circuit
from repro.faults import (
    GateChangeError,
    StuckAtFault,
    apply_error,
    inject_errors,
    random_gate_changes,
)
from repro.sim import detects, simulate


def test_apply_gate_change(maj3):
    faulty = apply_error(
        maj3, GateChangeError("ab", GateType.AND, GateType.OR)
    )
    assert faulty.node("ab").gtype is GateType.OR
    assert maj3.node("ab").gtype is GateType.AND  # original untouched
    assert faulty.node("ab").fanins == ("a", "b")


def test_apply_gate_change_type_mismatch(maj3):
    with pytest.raises(ValueError, match="expected"):
        apply_error(maj3, GateChangeError("ab", GateType.OR, GateType.AND))


def test_apply_stuck_at(maj3):
    faulty = apply_error(maj3, StuckAtFault("ab", 1))
    assert faulty.node("ab").gtype is GateType.CONST1
    vals = simulate(faulty, {"a": 0, "b": 0, "c": 0})
    assert vals["ab"] == 1 and vals["out"] == 1


def test_stuck_at_input_rejected(maj3):
    with pytest.raises(ValueError):
        apply_error(maj3, StuckAtFault("a", 0))


def test_inject_errors_distinct_sites(maj3):
    errors = [
        GateChangeError("ab", GateType.AND, GateType.OR),
        GateChangeError("ab", GateType.AND, GateType.NAND),
    ]
    with pytest.raises(ValueError, match="distinct"):
        inject_errors(maj3, errors)


def test_injection_record(maj3):
    errors = [
        GateChangeError("ab", GateType.AND, GateType.OR),
        GateChangeError("out", GateType.OR, GateType.AND),
    ]
    inj = inject_errors(maj3, errors)
    assert inj.p == 2
    assert inj.sites == ("ab", "out")
    assert inj.golden is maj3
    assert inj.faulty.name == "maj3_faulty"
    assert inj.faulty.node("ab").gtype is GateType.OR


@pytest.mark.parametrize("p", [1, 2, 4])
def test_random_injection_detectable(p):
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=42)
    inj = random_gate_changes(circuit, p=p, seed=7)
    assert inj.p == p
    assert len(set(inj.sites)) == p
    # detectable: some random vector must expose it
    import random

    rng = random.Random(0)
    exposed = any(
        detects(
            circuit,
            inj.faulty,
            {pi: rng.getrandbits(1) for pi in circuit.inputs},
        )
        for _ in range(512)
    )
    assert exposed


def test_random_injection_deterministic():
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=42)
    a = random_gate_changes(circuit, p=2, seed=3)
    b = random_gate_changes(circuit, p=2, seed=3)
    assert a.errors == b.errors


def test_random_injection_p_too_large(maj3):
    with pytest.raises(ValueError):
        random_gate_changes(maj3, p=50, seed=0)


def test_single_input_gate_changes_swap_buf_not():
    from repro.circuits import Circuit

    c = Circuit()
    c.add_input("a")
    c.add_gate("g", GateType.NOT, ["a"])
    c.add_output("g")
    inj = random_gate_changes(c, p=1, seed=0)
    assert inj.faulty.node("g").gtype is GateType.BUF
