"""Tests for the stuck-at fault universe and structural collapsing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, GateType, random_circuit
from repro.circuits.library import c17, majority, parity_tree
from repro.faults import StuckAtFault
from repro.faults.collapse import (
    checkpoint_signals,
    collapse_faults,
    full_stuck_at_universe,
)
from repro.sim import stuck_at_response, response


def _and_chain():
    """x --AND(a,b)--> g --NOT--> h (fanout-free everywhere)."""
    c = Circuit("chain")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g", GateType.AND, ["a", "b"])
    c.add_gate("h", GateType.NOT, ["g"])
    c.add_output("h")
    c.validate()
    return c


# ----------------------------------------------------------------------
# universe
# ----------------------------------------------------------------------


def test_universe_counts_two_per_signal(maj3):
    universe = full_stuck_at_universe(maj3)
    assert len(universe) == 2 * (3 + 5)  # 3 PIs + 5 gates


def test_universe_without_inputs(maj3):
    universe = full_stuck_at_universe(maj3, include_inputs=False)
    assert len(universe) == 10
    assert all(f.signal not in ("a", "b", "c") for f in universe)


def test_universe_constants_single_polarity():
    c = Circuit("const")
    c.add_input("a")
    c.add_gate("zero", GateType.CONST0)
    c.add_gate("g", GateType.OR, ["a", "zero"])
    c.add_output("g")
    c.validate()
    universe = full_stuck_at_universe(c)
    assert StuckAtFault("zero", 1) in universe
    assert StuckAtFault("zero", 0) not in universe


# ----------------------------------------------------------------------
# equivalence classes
# ----------------------------------------------------------------------


def test_and_input_sa0_equivalent_to_output_sa0():
    col = collapse_faults(_and_chain())
    rep = col.representative
    assert rep[StuckAtFault("a", 0)] == rep[StuckAtFault("g", 0)]
    assert rep[StuckAtFault("b", 0)] == rep[StuckAtFault("g", 0)]
    # s-a-1 faults on inputs stay separate
    assert rep[StuckAtFault("a", 1)] != rep[StuckAtFault("b", 1)]


def test_not_gate_maps_faults_through():
    col = collapse_faults(_and_chain())
    rep = col.representative
    # g has single fanout into the NOT h: g s-a-0 == h s-a-1.
    assert rep[StuckAtFault("g", 0)] == rep[StuckAtFault("h", 1)]
    assert rep[StuckAtFault("g", 1)] == rep[StuckAtFault("h", 0)]


def test_xor_tree_admits_no_collapse():
    tree = parity_tree(4)
    col = collapse_faults(tree, dominance=False)
    assert len(col.classes) == len(col.universe)


def test_fanout_stem_blocks_equivalence(c17):
    col = collapse_faults(c17)
    rep = col.representative
    # G3 fans out to G10 and G11: its faults must not merge into either gate.
    assert rep[StuckAtFault("G3", 0)] == StuckAtFault("G3", 0)
    # G10 is fanout-free into G22 (NAND): G10 s-a-0 == G22 s-a-1.
    assert rep[StuckAtFault("G10", 0)] == rep[StuckAtFault("G22", 1)]


def test_primary_output_fanin_not_collapsed():
    c = Circuit("po_fanin")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g", GateType.AND, ["a", "b"])
    c.add_gate("h", GateType.NOT, ["g"])
    c.add_output("g")  # g observable directly
    c.add_output("h")
    c.validate()
    col = collapse_faults(c)
    rep = col.representative
    assert rep[StuckAtFault("g", 0)] != rep[StuckAtFault("h", 1)]


# ----------------------------------------------------------------------
# dominance
# ----------------------------------------------------------------------


def test_and_output_sa1_dropped_by_dominance():
    col = collapse_faults(_and_chain())
    rep = col.representative
    assert rep[StuckAtFault("g", 1)] in col.dominance_dropped
    kept = col.representatives
    assert rep[StuckAtFault("a", 1)] in kept
    assert rep[StuckAtFault("g", 0)] in kept


def test_dominance_off_keeps_everything():
    col = collapse_faults(_and_chain(), dominance=False)
    assert not col.dominance_dropped
    assert len(col.representatives) == len(col.classes)


def test_collapse_ratio_below_one(c17):
    col = collapse_faults(c17)
    assert 0.0 < col.collapse_ratio < 1.0


def test_expand_recovers_class_members():
    col = collapse_faults(_and_chain())
    rep = col.representative[StuckAtFault("a", 0)]
    expanded = col.expand([rep])
    assert {StuckAtFault("a", 0), StuckAtFault("b", 0), StuckAtFault("g", 0)} <= expanded


# ----------------------------------------------------------------------
# semantic soundness (the properties collapsing claims)
# ----------------------------------------------------------------------


def _detecting_patterns(circuit, fault, patterns):
    good = [response(circuit, p) for p in patterns]
    return {
        i
        for i, p in enumerate(patterns)
        if stuck_at_response(circuit, p, fault.signal, fault.value) != good[i]
    }


def _random_patterns(circuit, n, seed):
    rng = random.Random(seed)
    return [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(n)
    ]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_equivalent_faults_share_all_tests(seed):
    circuit = random_circuit(n_inputs=5, n_outputs=3, n_gates=25, seed=seed)
    col = collapse_faults(circuit, include_inputs=False)
    patterns = _random_patterns(circuit, 32, seed=seed + 100)
    for cls in col.classes:
        if len(cls) < 2:
            continue
        reference = _detecting_patterns(circuit, cls[0], patterns)
        for fault in cls[1:]:
            assert _detecting_patterns(circuit, fault, patterns) == reference


@pytest.mark.parametrize("seed", [3, 4, 5])
def test_detecting_representatives_detects_universe(seed):
    """A pattern set hitting every detectable representative covers the
    detectable universe — the guarantee ATPG-on-the-collapsed-list relies on.
    """
    from itertools import product

    circuit = random_circuit(n_inputs=5, n_outputs=3, n_gates=20, seed=seed)
    col = collapse_faults(circuit)
    exhaustive = [
        dict(zip(circuit.inputs, bits))
        for bits in product((0, 1), repeat=len(circuit.inputs))
    ]
    # One detecting pattern per detectable representative.
    chosen: list[int] = []
    for rep in col.representatives:
        hits = _detecting_patterns(circuit, rep, exhaustive)
        if hits:
            chosen.append(min(hits))
    pattern_set = [exhaustive[i] for i in sorted(set(chosen))]
    assert pattern_set, "degenerate circuit: nothing detectable"
    for fault in col.universe:
        if not _detecting_patterns(circuit, fault, exhaustive):
            continue  # undetectable (redundant) fault: exempt
        assert _detecting_patterns(circuit, fault, pattern_set), fault


@given(st.integers(min_value=0, max_value=30))
@settings(max_examples=15, deadline=None)
def test_dominance_drops_are_sound(seed):
    """Every test for an eligible input fault detects the dropped output fault.

    Checks the dominance relation gate by gate (the implementation drops the
    class of the output fault whenever some fanout-free fanin guarantees it).
    """
    from repro.circuits.gates import CONTROLLING_VALUE
    from repro.faults.collapse import _controlled_output

    circuit = random_circuit(n_inputs=4, n_outputs=2, n_gates=12, seed=seed)
    col = collapse_faults(circuit)
    patterns = _random_patterns(circuit, 16, seed=seed + 300)
    fanouts = circuit.fanouts()
    outputs = set(circuit.outputs)
    for gate in circuit.gates:
        control = CONTROLLING_VALUE.get(gate.gtype)
        if control is None:
            continue
        dropped = StuckAtFault(gate.name, _controlled_output(gate.gtype) ^ 1)
        eligible = [
            fin
            for fin in set(gate.fanins)
            if len(fanouts[fin]) == 1 and fin not in outputs
        ]
        if not eligible:
            continue
        # The class of the output fault must be recorded as dropped ...
        assert col.representative[dropped] in col.dominance_dropped
        # ... because each eligible input fault's tests all detect it.
        dropped_hits = _detecting_patterns(circuit, dropped, patterns)
        for fin in eligible:
            kept = StuckAtFault(fin, control ^ 1)
            assert _detecting_patterns(circuit, kept, patterns) <= dropped_hits


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------


def test_checkpoints_of_c17(c17):
    assert checkpoint_signals(c17) == {"G1", "G2", "G3", "G6", "G7", "G11", "G16"}


def test_checkpoints_include_all_inputs(maj3):
    assert set(maj3.inputs) <= checkpoint_signals(maj3)


def test_fanout_free_circuit_checkpoints_are_inputs():
    c = _and_chain()
    assert checkpoint_signals(c) == {"a", "b"}
