"""Tests for circuit → BDD construction."""

from itertools import product

import pytest

from repro.bdd import BddBlowupError, BddManager, build_output_bdds, dfs_input_order
from repro.circuits import Circuit, GateType, random_circuit
from repro.circuits.library import (
    array_multiplier,
    c17,
    parity_tree,
    ripple_carry_adder,
    s27,
)
from repro.sim import simulate


def _assert_matches_simulator(circuit, built, vectors):
    for vec in vectors:
        vals = simulate(circuit, vec)
        for out, root in built.roots.items():
            assert built.manager.evaluate(root, vec) == vals[out], (out, vec)


def _exhaustive_vectors(circuit):
    return [
        dict(zip(circuit.inputs, bits))
        for bits in product((0, 1), repeat=len(circuit.inputs))
    ]


def test_c17_matches_simulator_exhaustively(c17):
    built = build_output_bdds(c17)
    _assert_matches_simulator(c17, built, _exhaustive_vectors(c17))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_circuits_match_simulator(seed):
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=seed)
    built = build_output_bdds(circuit)
    _assert_matches_simulator(circuit, built, _exhaustive_vectors(circuit))


def test_adder_semantics():
    rca = ripple_carry_adder(3)
    built = build_output_bdds(rca)
    for a in range(8):
        for b in range(8):
            vec = {f"a{i}": (a >> i) & 1 for i in range(3)}
            vec.update({f"b{i}": (b >> i) & 1 for i in range(3)})
            vec["cin"] = 0
            total = sum(
                built.manager.evaluate(built.roots[o], vec) << i
                for i, o in enumerate(rca.outputs)
            )
            assert total == a + b


def test_constants_and_buffers():
    c = Circuit("consts")
    c.add_input("a")
    c.add_gate("zero", GateType.CONST0)
    c.add_gate("one", GateType.CONST1)
    c.add_gate("buf", GateType.BUF, ["a"])
    c.add_gate("z", GateType.AND, ["buf", "one"])
    c.add_output("z")
    c.add_output("zero")
    c.validate()
    built = build_output_bdds(c)
    assert built.roots["zero"] == 0
    assert built.roots["z"] == built.manager.var("a")


def test_sequential_circuit_rejected(s27):
    with pytest.raises(ValueError, match="combinational"):
        build_output_bdds(s27)


def test_dfs_order_interleaves_adder():
    assert dfs_input_order(ripple_carry_adder(2)) == ["a0", "b0", "cin", "a1", "b1"]


def test_dfs_order_covers_dangling_inputs():
    c = Circuit("dangling")
    c.add_input("used")
    c.add_input("unused")
    c.add_gate("z", GateType.NOT, ["used"])
    c.add_output("z")
    c.validate()
    assert set(dfs_input_order(c)) == {"used", "unused"}


def test_explicit_order_accepted_and_checked(c17):
    order = list(reversed(c17.inputs))
    built = build_output_bdds(c17, order=order)
    assert built.manager.variable_order == tuple(order)
    with pytest.raises(ValueError, match="misses inputs"):
        build_output_bdds(c17, order=order[:-1])


def test_unknown_order_keyword_rejected(c17):
    with pytest.raises(ValueError, match="unknown BDD input order"):
        build_output_bdds(c17, order="sifted")


def test_order_matters_for_adder_size():
    rca = ripple_carry_adder(6)
    interleaved = build_output_bdds(rca, order="dfs")
    separated = build_output_bdds(rca, order="declaration")
    assert interleaved.node_count < separated.node_count


def test_multiplier_grows_faster_than_adder():
    mul_counts = [
        build_output_bdds(array_multiplier(w)).node_count for w in (2, 3, 4)
    ]
    add_counts = [
        build_output_bdds(ripple_carry_adder(w)).node_count for w in (2, 3, 4)
    ]
    mul_ratio = mul_counts[-1] / mul_counts[0]
    add_ratio = add_counts[-1] / add_counts[0]
    assert mul_ratio > add_ratio


def test_node_budget_enforced():
    with pytest.raises(BddBlowupError):
        build_output_bdds(array_multiplier(8), max_nodes=20_000)


def test_shared_manager_allows_root_comparison(c17):
    manager = BddManager(order=dfs_input_order(c17))
    a = build_output_bdds(c17, manager=manager)
    b = build_output_bdds(c17, manager=manager)
    assert a.roots == b.roots


def test_parity_tree_linear_in_width():
    # The parity BDD has exactly 2w+1 nodes (1 top + 2 per later level +
    # 2 terminals) regardless of order — the classic linear case.
    for w in (4, 8, 16):
        assert build_output_bdds(parity_tree(w)).node_count == 2 * w + 1


def test_signals_exposed_for_internal_gates(c17):
    built = build_output_bdds(c17)
    assert "G10" in built.signals
    vec = {pi: 1 for pi in c17.inputs}
    vals = simulate(c17, vec)
    assert built.manager.evaluate(built.signals["G10"], vec) == vals["G10"]
