"""Tests for static BDD variable reordering."""

from itertools import product

import pytest

from repro.bdd import (
    BddManager,
    ZERO,
    build_output_bdds,
    evaluate_order,
    exhaustive_best_order,
    sift_order,
)
from repro.circuits.library import array_multiplier, ripple_carry_adder


def _interleaved_function(n, order):
    """f = ∨ᵢ (aᵢ ∧ bᵢ), the textbook order-sensitive function."""
    m = BddManager(order=order)
    f = ZERO
    for i in range(n):
        f = m.apply_or(f, m.apply_and(m.var(f"a{i}"), m.var(f"b{i}")))
    return m, f


def test_evaluate_order_matches_native_build():
    n = 4
    inter = [x for i in range(n) for x in (f"a{i}", f"b{i}")]
    sep = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)]
    m, f = _interleaved_function(n, sep)
    # Rebuilding under the separated order reproduces the native count.
    assert evaluate_order(m, [f], sep) == m.count_nodes(f)
    # The interleaved order is strictly smaller.
    assert evaluate_order(m, [f], inter) < m.count_nodes(f)


def test_exhaustive_finds_interleaved_optimum():
    n = 3
    sep = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)]
    m, f = _interleaved_function(n, sep)
    best_order, best_count = exhaustive_best_order(m, [f])
    inter_count = evaluate_order(
        m, [f], [x for i in range(n) for x in (f"a{i}", f"b{i}")]
    )
    assert best_count == inter_count  # interleaving is optimal here
    assert best_count < m.count_nodes(f)


def test_exhaustive_guard():
    m = BddManager(order=[f"v{i}" for i in range(10)])
    f = m.apply_and(*(m.var(f"v{i}") for i in range(10)))
    with pytest.raises(ValueError, match="capped"):
        exhaustive_best_order(m, [f], max_vars=8)


def test_sift_never_worse_and_often_optimal():
    n = 4
    sep = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)]
    m, f = _interleaved_function(n, sep)
    start = m.count_nodes(f)
    order, count = sift_order(m, [f])
    assert count <= start
    # On this function sifting reaches the interleaved optimum.
    inter_count = evaluate_order(
        m, [f], [x for i in range(n) for x in (f"a{i}", f"b{i}")]
    )
    assert count == inter_count


def test_sift_preserves_function():
    n = 3
    sep = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)]
    m, f = _interleaved_function(n, sep)
    order, _count = sift_order(m, [f])
    target = BddManager(order=order)
    g = m.transfer(f, target)
    names = sep
    for bits in product((0, 1), repeat=len(names)):
        env = dict(zip(names, bits))
        assert m.evaluate(f, env) == target.evaluate(g, env)


def test_sift_ignores_variables_outside_support():
    m = BddManager(order=["x", "unused", "y"])
    f = m.apply_and(m.var("x"), m.var("y"))
    order, _ = sift_order(m, [f])
    assert "unused" not in order


def test_constant_roots():
    m = BddManager(order=["x"])
    order, count = sift_order(m, [ZERO])
    assert order == [] and count == 1  # just the 0 terminal


def test_adder_order_recovered_by_sifting():
    rca = ripple_carry_adder(3)
    built = build_output_bdds(rca, order="declaration")  # the bad order
    roots = list(built.roots.values())
    bad_count = built.manager.count_nodes(*roots)
    _order, sifted_count = sift_order(built.manager, roots, max_rounds=2)
    dfs_count = build_output_bdds(rca, order="dfs").node_count
    assert sifted_count <= bad_count
    assert sifted_count <= dfs_count + 4  # at least as good as the heuristic


def test_no_order_saves_the_multiplier():
    """Bryant's lower bound, empirically: sifting cannot tame mul3 much."""
    mul = array_multiplier(3)
    built = build_output_bdds(mul)
    roots = list(built.roots.values())
    start = built.manager.count_nodes(*roots)
    _order, sifted = sift_order(built.manager, roots, max_rounds=1)
    assert sifted > start // 3  # no order-of-magnitude rescue
