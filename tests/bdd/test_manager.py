"""Tests for the ROBDD manager: canonicity, operations, queries."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import ONE, ZERO, BddBlowupError, BddManager


def _fresh_xyz():
    m = BddManager(order=["x", "y", "z"])
    return m, m.var("x"), m.var("y"), m.var("z")


# ----------------------------------------------------------------------
# construction and canonicity
# ----------------------------------------------------------------------


def test_terminals_are_fixed():
    m = BddManager()
    assert ZERO == 0 and ONE == 1
    assert m.num_nodes == 2


def test_variable_nodes_are_shared():
    m, x, _y, _z = _fresh_xyz()
    assert m.var("x") == x
    assert m.declare("x") == x


def test_undeclared_variable_rejected():
    m = BddManager()
    with pytest.raises(KeyError, match="undeclared"):
        m.var("ghost")


def test_canonicity_same_function_same_node():
    m, x, y, _z = _fresh_xyz()
    # De Morgan: ¬(x ∧ y) == ¬x ∨ ¬y
    a = m.apply_not(m.apply_and(x, y))
    b = m.apply_or(m.apply_not(x), m.apply_not(y))
    assert a == b


def test_reduction_no_redundant_tests():
    m, x, y, _z = _fresh_xyz()
    # (x ∧ y) ∨ (x ∧ ¬y) == x: the y test must vanish.
    f = m.apply_or(
        m.apply_and(x, y), m.apply_and(x, m.apply_not(y))
    )
    assert f == x


def test_constants_from_contradiction_and_tautology():
    m, x, _y, _z = _fresh_xyz()
    assert m.apply_and(x, m.apply_not(x)) == ZERO
    assert m.apply_or(x, m.apply_not(x)) == ONE


# ----------------------------------------------------------------------
# operations agree with truth tables
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "op,oracle",
    [
        ("apply_and", lambda a, b: a & b),
        ("apply_or", lambda a, b: a | b),
        ("apply_xor", lambda a, b: a ^ b),
        ("apply_xnor", lambda a, b: 1 - (a ^ b)),
        ("apply_implies", lambda a, b: (1 - a) | b),
    ],
)
def test_binary_ops_truth_tables(op, oracle):
    m, x, y, _z = _fresh_xyz()
    f = getattr(m, op)(x, y)
    for a, b in product((0, 1), repeat=2):
        assert m.evaluate(f, {"x": a, "y": b, "z": 0}) == oracle(a, b)


def test_ite_truth_table():
    m, x, y, z = _fresh_xyz()
    f = m.ite(x, y, z)
    for a, b, c in product((0, 1), repeat=3):
        expected = b if a else c
        assert m.evaluate(f, {"x": a, "y": b, "z": c}) == expected


def test_nary_and_or():
    m, x, y, z = _fresh_xyz()
    assert m.apply_and(x, y, z) == m.apply_and(m.apply_and(x, y), z)
    assert m.apply_or() == ZERO
    assert m.apply_and() == ONE


# ----------------------------------------------------------------------
# structural operations
# ----------------------------------------------------------------------


def test_restrict_cofactors():
    m, x, y, _z = _fresh_xyz()
    f = m.apply_and(x, y)
    assert m.restrict(f, "x", 1) == y
    assert m.restrict(f, "x", 0) == ZERO
    assert m.restrict(f, "z", 0) == f  # independent variable


def test_compose_substitutes_function():
    m, x, y, z = _fresh_xyz()
    f = m.apply_and(x, y)
    g = m.apply_or(y, z)
    composed = m.compose(f, "x", g)
    for a, b, c in product((0, 1), repeat=3):
        env = {"x": a, "y": b, "z": c}
        assert m.evaluate(composed, env) == ((b | c) & b)


def test_exists_and_forall():
    m, x, y, _z = _fresh_xyz()
    f = m.apply_and(x, y)
    assert m.exists(f, "x") == y
    assert m.forall(f, "x") == ZERO
    g = m.apply_or(x, y)
    assert m.forall(g, "x") == y
    assert m.exists(g, ["x", "y"]) == ONE


def test_shannon_expansion_identity():
    m, x, y, z = _fresh_xyz()
    f = m.apply_xor(m.apply_and(x, y), z)
    rebuilt = m.ite(x, m.restrict(f, "x", 1), m.restrict(f, "x", 0))
    assert rebuilt == f


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------


def test_satcount_simple():
    m, x, y, _z = _fresh_xyz()
    assert m.satcount(m.apply_and(x, y)) == 2.0  # over 3 vars: x=y=1, z free
    assert m.satcount(m.apply_and(x, y), n_vars=2) == 1.0
    assert m.satcount(ONE) == 8.0
    assert m.satcount(ZERO) == 0.0


def test_satcount_xor_half():
    m, x, y, _z = _fresh_xyz()
    f = m.apply_xor(x, y)
    assert m.satcount(f, n_vars=2) == 2.0


def test_sat_one_satisfies():
    m, x, y, z = _fresh_xyz()
    f = m.apply_and(m.apply_or(x, y), m.apply_not(z))
    witness = m.sat_one(f)
    full = {"x": 0, "y": 0, "z": 0, **witness}
    assert m.evaluate(f, full) == 1
    assert m.sat_one(ZERO) is None


def test_sat_all_paths_cover_solutions():
    m, x, y, _z = _fresh_xyz()
    f = m.apply_or(x, y)
    total = 0
    for partial in m.sat_all(f):
        free = 3 - len(partial)  # z always free
        total += 2**free
    assert total == m.satcount(f)


def test_support():
    m, x, y, z = _fresh_xyz()
    f = m.apply_and(x, z)
    assert m.support(f) == {"x", "z"}
    assert m.support(ONE) == set()


def test_count_nodes_shares_terminals():
    m, x, y, _z = _fresh_xyz()
    f = m.apply_and(x, y)
    assert m.count_nodes(f) == 4  # two internal + two terminals
    assert m.count_nodes(x, y) == 4


def test_evaluate_missing_variable_raises():
    m, x, y, _z = _fresh_xyz()
    f = m.apply_and(x, y)
    with pytest.raises(KeyError):
        m.evaluate(f, {"x": 1})


# ----------------------------------------------------------------------
# node budget
# ----------------------------------------------------------------------


def test_blowup_error_raised():
    m = BddManager(order=[f"v{i}" for i in range(16)], max_nodes=40)
    with pytest.raises(BddBlowupError):
        f = ZERO
        # Build a parity function: linear nodes, but the budget is tiny.
        for i in range(16):
            f = m.apply_xor(f, m.var(f"v{i}"))


# ----------------------------------------------------------------------
# transfer (static reordering)
# ----------------------------------------------------------------------


def test_transfer_preserves_function():
    m, x, y, z = _fresh_xyz()
    f = m.apply_or(m.apply_and(x, y), z)
    target = BddManager(order=["z", "y", "x"])
    g = m.transfer(f, target)
    for a, b, c in product((0, 1), repeat=3):
        env = {"x": a, "y": b, "z": c}
        assert m.evaluate(f, env) == target.evaluate(g, env)


def test_order_changes_node_count():
    # f = (a1∧b1) ∨ (a2∧b2) ∨ (a3∧b3): interleaved order is linear,
    # separated order is exponential (the textbook example).
    n = 6
    inter = [f"{side}{i}" for i in range(n) for side in ("a", "b")]
    sep = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)]

    def build(manager):
        f = ZERO
        for i in range(n):
            f = manager.apply_or(
                f, manager.apply_and(manager.var(f"a{i}"), manager.var(f"b{i}"))
            )
        return f

    m_inter = BddManager(order=inter)
    m_sep = BddManager(order=sep)
    f_inter = build(m_inter)
    f_sep = build(m_sep)
    assert m_inter.count_nodes(f_inter) < m_sep.count_nodes(f_sep)
    assert m_sep.count_nodes(f_sep) > 2**n  # exponential lower bound


# ----------------------------------------------------------------------
# property: BDD semantics == direct evaluation of random expressions
# ----------------------------------------------------------------------


def _random_expr(draw, depth, n_vars):
    kind = draw(
        st.sampled_from(["var", "not", "and", "or", "xor"])
        if depth > 0
        else st.just("var")
    )
    if kind == "var":
        return ("var", draw(st.integers(min_value=0, max_value=n_vars - 1)))
    if kind == "not":
        return ("not", _random_expr(draw, depth - 1, n_vars))
    return (
        kind,
        _random_expr(draw, depth - 1, n_vars),
        _random_expr(draw, depth - 1, n_vars),
    )


def _eval_expr(expr, env):
    if expr[0] == "var":
        return env[expr[1]]
    if expr[0] == "not":
        return 1 - _eval_expr(expr[1], env)
    a = _eval_expr(expr[1], env)
    b = _eval_expr(expr[2], env)
    return {"and": a & b, "or": a | b, "xor": a ^ b}[expr[0]]


def _build_expr(m, expr):
    if expr[0] == "var":
        return m.var(f"v{expr[1]}")
    if expr[0] == "not":
        return m.apply_not(_build_expr(m, expr[1]))
    a = _build_expr(m, expr[1])
    b = _build_expr(m, expr[2])
    return getattr(m, f"apply_{expr[0]}")(a, b)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_random_expressions_match_semantics(data):
    n_vars = 4
    expr = _random_expr(data.draw, depth=4, n_vars=n_vars)
    m = BddManager(order=[f"v{i}" for i in range(n_vars)])
    f = _build_expr(m, expr)
    for bits in product((0, 1), repeat=n_vars):
        env_expr = dict(enumerate(bits))
        env_bdd = {f"v{i}": b for i, b in enumerate(bits)}
        assert m.evaluate(f, env_bdd) == _eval_expr(expr, env_expr)
