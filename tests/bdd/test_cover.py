"""Tests for the BDD covering engine, incl. the 3-way engine differential."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import cover_bdd, minimal_covers_bdd
from repro.diagnosis import minimal_covers_bnb, minimal_covers_sat


def test_paper_example_1():
    """Example 1 of the paper: candidate sets over gates A..H, k=2."""
    sets = [
        frozenset("ABFG"),
        frozenset("CDEFG"),
        frozenset("BCEH"),
    ]
    covers = minimal_covers_bdd(sets, k=2)
    assert frozenset("BD") in covers
    # {A, D, H} has size 3: excluded at k=2, included at k=3.
    assert frozenset("ADH") not in covers
    covers3 = minimal_covers_bdd(sets, k=3)
    assert frozenset("ADH") in covers3


def test_single_set_each_element_is_cover():
    covers = minimal_covers_bdd([frozenset("AB")], k=2)
    assert sorted(covers) == [frozenset("A"), frozenset("B")]


def test_empty_input_has_empty_cover():
    assert minimal_covers_bdd([], k=3) == [frozenset()]


def test_uncoverable_empty_set():
    assert minimal_covers_bdd([frozenset(), frozenset("A")], k=2) == []


def test_minimality_enforced():
    sets = [frozenset("AB"), frozenset("A")]
    covers = minimal_covers_bdd(sets, k=2)
    # {A} covers both; {A, B} is not minimal.
    assert covers == [frozenset("A")]


def test_k_bound_respected():
    sets = [frozenset("A"), frozenset("B"), frozenset("C")]
    assert minimal_covers_bdd(sets, k=2) == []
    assert minimal_covers_bdd(sets, k=3) == [frozenset("ABC")]


def test_cover_bdd_root_semantics():
    sets = [frozenset("AB"), frozenset("BC")]
    manager, root = cover_bdd(sets)
    assert manager.evaluate(root, {"A": 0, "B": 1, "C": 0}) == 1
    assert manager.evaluate(root, {"A": 1, "B": 0, "C": 0}) == 0


def _random_instance(rng, n_elems, n_sets, max_size):
    universe = [f"g{i}" for i in range(n_elems)]
    return [
        frozenset(rng.sample(universe, rng.randint(1, max_size)))
        for _ in range(n_sets)
    ]


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_three_engines_agree(seed):
    rng = random.Random(seed)
    sets = _random_instance(rng, n_elems=7, n_sets=rng.randint(1, 5), max_size=4)
    k = rng.randint(1, 4)
    via_bdd = set(minimal_covers_bdd(sets, k))
    via_bnb = set(minimal_covers_bnb(sets, k))
    via_sat, complete = minimal_covers_sat(sets, k)
    assert complete
    assert via_bdd == via_bnb == set(via_sat)


def test_large_instance_matches_bnb():
    rng = random.Random(7)
    sets = _random_instance(rng, n_elems=12, n_sets=8, max_size=5)
    assert set(minimal_covers_bdd(sets, 3)) == set(minimal_covers_bnb(sets, 3))
