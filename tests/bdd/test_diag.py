"""Tests for BDD-based equivalence checking and rectification diagnosis."""

from itertools import product

import pytest

from repro.bdd import (
    bdd_counterexample,
    bdd_equivalent,
    single_fix_candidates,
)
from repro.circuits import Circuit, GateType, random_circuit
from repro.circuits.library import c17, majority
from repro.faults import GateChangeError, StuckAtFault, apply_error, inject_errors
from repro.sim import simulate
from repro.testgen import are_equivalent


def _exhaustive_vectors(circuit):
    return [
        dict(zip(circuit.inputs, bits))
        for bits in product((0, 1), repeat=len(circuit.inputs))
    ]


# ----------------------------------------------------------------------
# equivalence
# ----------------------------------------------------------------------


def test_self_equivalence(c17):
    assert bdd_equivalent(c17, c17.copy())


def test_inequivalence_detected(maj3):
    impl = apply_error(maj3, GateChangeError("ab", GateType.AND, GateType.OR))
    assert not bdd_equivalent(maj3, impl)


def test_counterexample_is_real(maj3):
    impl = apply_error(maj3, StuckAtFault("bc", 1))
    cex = bdd_counterexample(maj3, impl)
    assert cex is not None
    assert simulate(maj3, cex)["out"] != simulate(impl, cex)["out"]


def test_counterexample_none_when_equivalent(maj3):
    assert bdd_counterexample(maj3, maj3.copy()) is None


def test_equivalence_of_restructured_logic():
    # x ∧ (y ∨ z) vs (x ∧ y) ∨ (x ∧ z): distributivity.
    a = Circuit("lhs")
    for pi in "xyz":
        a.add_input(pi)
    a.add_gate("or1", GateType.OR, ["y", "z"])
    a.add_gate("out", GateType.AND, ["x", "or1"])
    a.add_output("out")
    a.validate()
    b = Circuit("rhs")
    for pi in "xyz":
        b.add_input(pi)
    b.add_gate("t1", GateType.AND, ["x", "y"])
    b.add_gate("t2", GateType.AND, ["x", "z"])
    b.add_gate("out", GateType.OR, ["t1", "t2"])
    b.add_output("out")
    b.validate()
    assert bdd_equivalent(a, b)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_agrees_with_sat_miter(seed):
    golden = random_circuit(n_inputs=5, n_outputs=3, n_gates=25, seed=seed)
    from repro.faults import random_gate_changes

    inj = random_gate_changes(golden, p=1, seed=seed, ensure_detectable=False)
    assert bdd_equivalent(golden, golden.copy()) == are_equivalent(
        golden, golden.copy()
    )
    assert bdd_equivalent(golden, inj.faulty) == are_equivalent(
        golden, inj.faulty
    )


def test_mismatched_interfaces_rejected(maj3, c17):
    with pytest.raises(ValueError, match="inputs"):
        bdd_equivalent(maj3, c17)


# ----------------------------------------------------------------------
# single-fix rectification
# ----------------------------------------------------------------------


def _simulation_rectifiable(golden, impl, gate):
    """Oracle: for every vector some forced value at `gate` fixes all outputs."""
    for vec in _exhaustive_vectors(golden):
        good = {o: simulate(golden, vec)[o] for o in golden.outputs}
        ok = False
        for b in (0, 1):
            vals = simulate(impl, vec, forced={gate: b})
            if all(vals[o] == good[o] for o in golden.outputs):
                ok = True
                break
        if not ok:
            return False
    return True


def test_error_site_is_candidate(maj3):
    impl = apply_error(maj3, GateChangeError("ab", GateType.AND, GateType.OR))
    names = [r.gate for r in single_fix_candidates(maj3, impl)]
    assert "ab" in names


def test_candidates_match_simulation_oracle(maj3):
    impl = apply_error(maj3, GateChangeError("ab", GateType.AND, GateType.NAND))
    names = {r.gate for r in single_fix_candidates(maj3, impl)}
    oracle = {
        g for g in impl.gate_names if _simulation_rectifiable(maj3, impl, g)
    }
    assert names == oracle


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_candidates_match_oracle_random(seed):
    golden = random_circuit(n_inputs=5, n_outputs=2, n_gates=15, seed=seed)
    from repro.faults import random_gate_changes

    inj = random_gate_changes(golden, p=1, seed=seed + 10)
    names = {r.gate for r in single_fix_candidates(golden, inj.faulty)}
    oracle = {
        g
        for g in inj.faulty.gate_names
        if _simulation_rectifiable(golden, inj.faulty, g)
    }
    assert names == oracle
    assert inj.sites[0] in names  # the actual error site is always fixable


def test_witness_function_rectifies_everywhere(maj3):
    impl = apply_error(maj3, GateChangeError("out", GateType.OR, GateType.XNOR))
    fixes = {r.gate: r for r in single_fix_candidates(maj3, impl)}
    assert fixes
    for gate, fix in fixes.items():
        for vec in _exhaustive_vectors(maj3):
            forced = {gate: fix.value_for(vec)}
            vals = simulate(impl, vec, forced=forced)
            good = simulate(maj3, vec)
            assert all(vals[o] == good[o] for o in maj3.outputs)


def test_equivalent_circuits_every_gate_is_candidate(maj3):
    # With no error, every gate can be "rectified" by its own function.
    fixes = single_fix_candidates(maj3, maj3.copy())
    assert {r.gate for r in fixes} == set(maj3.gate_names)


def test_double_error_usually_has_no_single_fix():
    golden = random_circuit(n_inputs=5, n_outputs=1, n_gates=12, seed=42)
    errors = [
        GateChangeError(
            "g3", golden.node("g3").gtype, _other_type(golden, "g3")
        ),
        GateChangeError(
            "g9", golden.node("g9").gtype, _other_type(golden, "g9")
        ),
    ]
    inj = inject_errors(golden, errors)
    names = {r.gate for r in single_fix_candidates(golden, inj.faulty)}
    oracle = {
        g
        for g in inj.faulty.gate_names
        if _simulation_rectifiable(golden, inj.faulty, g)
    }
    assert names == oracle  # whatever the answer, it must match simulation


def _other_type(circuit, gate):
    current = circuit.node(gate).gtype
    if len(circuit.node(gate).fanins) == 1:
        return GateType.BUF if current is GateType.NOT else GateType.NOT
    return GateType.NOR if current is not GateType.NOR else GateType.NAND


def test_candidate_restriction(maj3):
    impl = apply_error(maj3, GateChangeError("ab", GateType.AND, GateType.OR))
    fixes = single_fix_candidates(maj3, impl, candidates=["ab", "bc"])
    assert {r.gate for r in fixes} <= {"ab", "bc"}


def test_unknown_candidate_rejected(maj3):
    with pytest.raises(ValueError, match="unknown candidate"):
        single_fix_candidates(maj3, maj3.copy(), candidates=["ghost"])


def test_stuck_at_rectification_is_constant(maj3):
    # The inverse error of a stuck-at-1 is the constant function 1 … but any
    # witness is acceptable; check the reported function via simulation.
    impl = apply_error(maj3, StuckAtFault("ab", 0))
    fixes = {r.gate: r for r in single_fix_candidates(maj3, impl)}
    assert "ab" in fixes
    fix = fixes["ab"]
    for vec in _exhaustive_vectors(maj3):
        forced = {"ab": fix.value_for(vec)}
        assert (
            simulate(impl, vec, forced=forced)["out"]
            == simulate(maj3, vec)["out"]
        )
