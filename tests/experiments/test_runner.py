"""Tests for the experiment cell runner."""

import math

import pytest

from repro.diagnosis import is_valid_correction
from repro.experiments import run_cell


@pytest.fixture(scope="module")
def cell(request):
    from repro.circuits import random_circuit
    from repro.experiments import make_workload

    circuit = random_circuit(n_inputs=8, n_outputs=4, n_gates=60, seed=601)
    workload = make_workload(circuit, p=2, m_max=8, seed=11)
    return workload, run_cell(workload, m=8)


def test_cell_identity(cell):
    workload, result = cell
    assert result.m == 8
    assert result.p == 2
    assert result.k == 2  # defaults to p
    assert result.cell_id.endswith("/p2/m8")


def test_timings_populated(cell):
    _, result = cell
    for field in (
        "bsim_time",
        "cov_cnf",
        "cov_one",
        "cov_all",
        "bsat_cnf",
        "bsat_one",
        "bsat_all",
    ):
        assert getattr(result, field) >= 0
    # paper: the COV CNF column includes the BSIM time
    assert result.cov_cnf >= result.bsim_time


def test_quality_structures(cell):
    _, result = cell
    assert result.bsim.union_size > 0
    assert result.cov.n_solutions == len(result.cov_result.solutions)
    assert result.sat.n_solutions == len(result.sat_result.solutions)


def test_bsat_solutions_valid(cell):
    workload, result = cell
    tests = workload.tests.prefix(8)
    for sol in result.sat_result.solutions:
        assert is_valid_correction(workload.faulty, tests, sol)


def test_k_override(cell):
    workload, _ = cell
    result = run_cell(workload, m=4, k=1)
    assert result.k == 1
    for sol in result.sat_result.solutions:
        assert len(sol) == 1


def test_limits_flagged():
    from repro.circuits import random_circuit
    from repro.experiments import make_workload

    circuit = random_circuit(n_inputs=8, n_outputs=4, n_gates=60, seed=602)
    workload = make_workload(circuit, p=2, m_max=4, seed=12)
    result = run_cell(workload, m=4, solution_limit=1)
    # with a solution limit of 1 the enumerations are almost surely cut
    if result.cov.n_solutions >= 1 and result.sat.n_solutions >= 1:
        assert result.notes.get("cov_truncated") or result.cov.n_solutions <= 1
