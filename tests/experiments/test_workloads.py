"""Tests for workload construction."""

import pytest

from repro.circuits import random_circuit, random_sequential_circuit
from repro.experiments import M_VALUES, PAPER_GRID, make_workload
from repro.sim import output_values


def test_paper_grid_shape():
    assert PAPER_GRID == (("sim1423", 4), ("sim6669", 3), ("sim38417", 2))
    assert M_VALUES == (4, 8, 16, 32)


def test_workload_tests_all_fail(tiny_workload):
    w = tiny_workload
    for t in w.tests:
        assert output_values(w.golden, t.vector)[t.output] == t.value
        assert output_values(w.faulty, t.vector)[t.output] != t.value


def test_workload_cell_prefix(medium_workload):
    w = medium_workload
    cell = w.cell(4)
    assert cell.tests.m == 4
    assert cell.sites == w.sites
    assert [t.key() for t in cell.tests] == [t.key() for t in w.tests][:4]


def test_workload_deterministic():
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=77)
    a = make_workload(circuit, p=2, m_max=6, seed=3)
    b = make_workload(circuit, p=2, m_max=6, seed=3)
    assert a.sites == b.sites
    assert [t.key() for t in a.tests] == [t.key() for t in b.tests]


def test_workload_by_name():
    w = make_workload("sim1423", p=1, m_max=4, seed=0)
    assert w.name == "sim1423"
    assert w.p == 1
    assert w.tests.m == 4


def test_sequential_circuit_converted():
    seq = random_sequential_circuit(
        n_inputs=5, n_outputs=2, n_gates=30, n_dffs=3, seed=9
    )
    w = make_workload(seq, p=1, m_max=4, seed=1)
    assert w.golden.is_combinational
    # scan view has extra PPIs
    assert len(w.golden.inputs) == 5 + 3


def test_attach_expected_flag():
    circuit = random_circuit(n_inputs=5, n_outputs=2, n_gates=20, seed=5)
    w = make_workload(circuit, p=1, m_max=4, seed=2, attach_expected=True)
    for t in w.tests:
        assert t.expected_outputs is not None


def test_make_workload_wire_error_model():
    from repro.circuits import random_circuit
    from repro.experiments import make_workload
    from repro.faults import GateChangeError

    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=17)
    w = make_workload(circuit, p=1, m_max=4, seed=3, error_model="wire")
    assert w.tests.m == 4
    assert not isinstance(w.injection.errors[0], GateChangeError)


def test_make_workload_rejects_unknown_error_model():
    import pytest

    from repro.circuits import random_circuit
    from repro.experiments import make_workload

    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=17)
    with pytest.raises(ValueError, match="error_model"):
        make_workload(circuit, p=1, m_max=4, error_model="cosmic-ray")
