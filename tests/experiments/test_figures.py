"""Tests for Figure 6 series and rendering."""

import math

from repro.experiments.figures import (
    ScatterPoint,
    fig6_series,
    format_fig6,
    render_scatter,
)
from tests.experiments.test_tables import fake_cell


def test_scatter_point_winner():
    assert ScatterPoint("x", cov=3.0, sat=2.0).bsat_wins
    assert not ScatterPoint("x", cov=2.0, sat=3.0).bsat_wins
    assert ScatterPoint("x", cov=2.0, sat=2.0).tie


def test_fig6_series_skips_nan_quality():
    from dataclasses import replace

    from repro.diagnosis.metrics import SolutionQuality

    good = fake_cell()
    bad = replace(
        fake_cell(m=8),
        cov=SolutionQuality(0, math.nan, math.nan, math.nan),
    )
    quality, counts = fig6_series([good, bad])
    assert len(quality) == 1  # NaN cell dropped from panel (a)
    assert len(counts) == 2  # but kept in panel (b)


def test_render_scatter_plots_points():
    points = [ScatterPoint("a", 1.0, 2.0), ScatterPoint("b", 3.0, 1.0)]
    text = render_scatter(points)
    assert "o" in text
    assert "COV" in text and "BSAT" in text


def test_render_scatter_log_mode():
    points = [ScatterPoint("a", 10.0, 1000.0), ScatterPoint("b", 1.0, 1.0)]
    text = render_scatter(points, log=True)
    assert "log10" in text


def test_render_scatter_empty():
    assert render_scatter([]) == "(no points)"


def test_format_fig6_headline():
    cells = [fake_cell(), fake_cell(m=8)]
    text = format_fig6(cells)
    assert "Figure 6(a)" in text and "Figure 6(b)" in text
    assert "BSAT better" in text
    assert "fewer solutions" in text
