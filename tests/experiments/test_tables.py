"""Tests for table formatting."""

import math

from repro.diagnosis.metrics import BsimQuality, SolutionQuality
from repro.experiments import format_table2, format_table3
from repro.experiments.runner import CellResult
from repro.experiments.tables import format_cell_summary


def fake_cell(m=4, truncated=False):
    return CellResult(
        circuit="sim1423",
        p=2,
        m=m,
        k=2,
        bsim_time=0.01,
        cov_cnf=0.02,
        cov_one=0.01,
        cov_all=0.14,
        bsat_cnf=0.2,
        bsat_one=0.56,
        bsat_all=2.5,
        bsim=BsimQuality(83, 3.46, 44, 0.0, 5.0, 3.25),
        cov=SolutionQuality(145, 0.0, 5.0, 3.68),
        sat=SolutionQuality(32, 0.0, 5.0, 3.03),
        cov_result=None,
        sat_result=None,
        notes={"cov_truncated": True} if truncated else {},
    )


def test_table2_contains_all_columns():
    text = format_table2([fake_cell(), fake_cell(m=8)])
    assert "BSIM" in text and "COV CNF" in text and "BSAT CNF" in text
    assert "sim1423" in text
    assert text.count("sim1423") == 2
    assert "2.50" in text  # bsat_all formatted


def test_table2_truncation_flag():
    text = format_table2([fake_cell(truncated=True)])
    assert "*" in text
    assert "truncated" in text


def test_table3_contains_quality_columns():
    text = format_table3([fake_cell()])
    assert "|uCi|" in text
    assert "Gmax" in text
    assert "83" in text and "44" in text
    assert "3.03" in text


def test_table3_nan_rendered_as_dash():
    cell = fake_cell()
    nan_quality = SolutionQuality(0, math.nan, math.nan, math.nan)
    from dataclasses import replace

    cell = replace(cell, cov=nan_quality)
    text = format_table3([cell])
    assert " - " in text or "- " in text


def test_cell_summary():
    text = format_cell_summary(fake_cell())
    assert "sim1423/p2/m4" in text
    assert "BSIM" in text and "COV" in text and "BSAT" in text
