"""Command-line interface: ``python -m repro <command>``.

A thin, scriptable front-end over the library for users who work with
``.bench`` files rather than Python:

* ``stats``    — print circuit statistics.
* ``inject``   — inject gate-change errors, write the faulty netlist and a
  ground-truth sidecar.
* ``testgen``  — generate failing tests for a golden/faulty pair.
* ``diagnose`` — run BSIM / COV / BSAT / hybrid / greedy-stochastic /
  implicit-hitting-set / HS-DAG / FastDiag diagnosis on a faulty netlist
  plus a test file, or (``--system gcnf`` / ``--system spectrum``) on a
  grouped CNF or a fault-spectrum JSON.
* ``strategies`` — list the registered candidate-space strategies with
  the system kinds each one supports.
* ``backends`` — list the registered SAT solver backends.
* ``table1``   — print the paper's comparison matrix.
* ``atpg``     — run the stuck-at ATPG flow (PODEM or SAT) and report
  coverage.
* ``cec``      — combinational equivalence check (random/SAT/BDD engines).
* ``certify``  — decide "correction with ≤ k candidates?" with a DRAT
  proof, re-checked independently.
* ``serve``    — sharded diagnosis service over a JSON-lines stream of
  failing devices (strategy races, per-design artifact cache, retries).

Test files are plain text: one test per line, ``<bits> <output> <value>``
with ``<bits>`` in primary-input declaration order.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .circuits import bench, library
from .circuits.netlist import Circuit
from .diagnosis import (
    ALL_SYSTEM_KINDS,
    DIAGNOSIS_STRATEGIES,
    DiagnosisSession,
    GroupedCNFSystem,
    SpectrumSystem,
    available_strategies,
    basic_sim_diagnose,
    diagnose,
    format_table1,
    strategy_kinds,
)
from .faults import random_gate_changes
from .testgen import TestSet, random_failing_tests
from .testgen.testset import Test

__all__ = ["main"]


def _load_circuit(spec: str) -> Circuit:
    """A circuit argument is a library name or a ``.bench`` path."""
    if spec in library.available_circuits():
        return library.get_circuit(spec)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(
            f"error: {spec!r} is neither a library circuit "
            f"({', '.join(library.available_circuits())}) nor a file"
        )
    return bench.load(path)


def _write_tests(tests: TestSet, circuit: Circuit, path: Path) -> None:
    with path.open("w") as stream:
        stream.write("# bits (input order: " + ",".join(circuit.inputs) + ")")
        stream.write(" output correct_value\n")
        for t in tests:
            bits = "".join(str(t.vector[pi]) for pi in circuit.inputs)
            stream.write(f"{bits} {t.output} {t.value}\n")


def _read_tests(path: Path, circuit: Circuit) -> TestSet:
    tests = []
    try:
        text = path.read_text()
    except OSError as exc:
        raise SystemExit(f"error: {exc}")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            bits, output, value = line.split()
            vector = {
                pi: int(b) for pi, b in zip(circuit.inputs, bits, strict=True)
            }
            tests.append(Test(vector, output, int(value)))
        except (ValueError, KeyError) as exc:
            raise SystemExit(f"{path}:{lineno}: bad test line: {exc}")
    return TestSet(tuple(tests))


def _cmd_stats(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    print(json.dumps(circuit.stats(), indent=2))
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    from .circuits.scan import to_combinational
    from .faults import random_wire_errors

    if circuit.is_sequential:
        circuit = to_combinational(circuit).circuit
    injector = (
        random_gate_changes if args.error_model == "gate" else random_wire_errors
    )
    injection = injector(circuit, p=args.p, seed=args.seed)
    bench.dump(injection.faulty, args.out)
    sidecar = Path(args.out).with_suffix(".truth.json")
    sidecar.write_text(
        json.dumps(
            {"errors": [e.describe() for e in injection.errors]}, indent=2
        )
    )
    print(f"wrote {args.out} and {sidecar}")
    for e in injection.errors:
        print(f"  injected: {e.describe()}")
    return 0


def _cmd_testgen(args: argparse.Namespace) -> int:
    golden = _load_circuit(args.golden)
    faulty = _load_circuit(args.faulty)
    tests = random_failing_tests(golden, faulty, m=args.m, seed=args.seed)
    _write_tests(tests, golden, Path(args.out))
    print(f"wrote {tests.m} failing tests to {args.out}")
    return 0


#: CLI spelling → registry strategy name (plus the legacy aliases).
_CLI_STRATEGIES = {
    "cov": "cov",
    "bsat": "bsat",
    "hybrid": "pt-guided",
    "greedy": "greedy-stochastic",
    "ihs": "ihs",
    "hsdag": "hsdag",
    "fastdiag": "fastdiag",
}


#: Race legs the ``serve`` command offers (mirrors
#: ``repro.serve.race.DEFAULT_STRATEGIES``; kept literal so the parser
#: builds without importing the service stack).
_SERVE_STRATEGIES = ("greedy-stochastic", "ihs", "bsat")


def _read_observations(spec: str) -> list[tuple[int, ...]]:
    """Observation file: one observation per line, space-separated DIMACS
    literals (may be empty for the unconstrained observation); ``-``
    stands for a single empty observation.  ``#`` and DIMACS-style ``c``
    comment lines are skipped, and a trailing ``0`` clause terminator on
    a line is accepted and ignored."""
    if spec == "-":
        return [()]
    observations: list[tuple[int, ...]] = []
    path = Path(spec)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SystemExit(f"error: {exc}")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line or line == "c" or line.startswith("c "):
            continue
        try:
            lits = [int(tok) for tok in line.split()]
        except ValueError as exc:
            raise SystemExit(f"{path}:{lineno}: bad observation line: {exc}")
        if lits and lits[-1] == 0:
            lits.pop()
        if 0 in lits:
            raise SystemExit(
                f"{path}:{lineno}: bad observation line: 0 is only "
                "allowed as a trailing clause terminator"
            )
        observations.append(tuple(lits))
    if not observations:
        raise SystemExit(f"error: no observations in {path}")
    return observations


def _build_session(args: argparse.Namespace) -> tuple[DiagnosisSession, str]:
    """Build the session for ``--system``; returns it plus a headline."""
    if args.system == "circuit":
        faulty = _load_circuit(args.faulty)
        tests = _read_tests(Path(args.tests), faulty)
        if not tests.m:
            raise SystemExit("error: empty test file")
        session = DiagnosisSession(
            faulty, tests, solver_backend=args.solver_backend
        )
        headline = f"{faulty.name}: {faulty.num_gates} gates, {tests.m} tests"
    elif args.system == "gcnf":
        from .sat.dimacs import DimacsFormatError, load_gcnf

        try:
            gcnf = load_gcnf(args.faulty)
        except (OSError, DimacsFormatError) as exc:
            raise SystemExit(f"error: {exc}")
        observations = _read_observations(args.tests)
        try:
            system = GroupedCNFSystem(gcnf, observations)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        session = DiagnosisSession(system, solver_backend=args.solver_backend)
        headline = (
            f"{Path(args.faulty).name}: {gcnf.num_groups} clause groups, "
            f"{len(observations)} observations"
        )
    else:  # spectrum
        try:
            data = json.loads(Path(args.faulty).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"error: {exc}")
        try:
            system = SpectrumSystem.from_dict(data)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        session = DiagnosisSession(system, solver_backend=args.solver_backend)
        headline = (
            f"{Path(args.faulty).name}: {len(system.components)} components, "
            f"{system.m} runs"
        )
    return session, headline


def _cmd_diagnose(args: argparse.Namespace) -> int:
    if args.system != "circuit" and args.approach == "bsim":
        raise SystemExit("error: bsim requires --system circuit")
    session, headline = _build_session(args)
    print(
        f"diagnosing {headline}, k={args.k}, approach={args.approach}, "
        f"backend={args.solver_backend or 'arena'}"
    )
    if args.approach == "bsim":
        faulty = session.circuit
        tests = session.tests
        result = basic_sim_diagnose(faulty, tests, session=session)
        ranked = sorted(result.marks, key=lambda g: -result.marks[g])
        print(f"{len(result.union)} candidate gates; top marks:")
        for g in ranked[: args.top]:
            print(f"  {g}: {result.marks[g]}/{tests.m}")
        return 0
    strategy = _CLI_STRATEGIES.get(args.approach, args.approach)
    options: dict[str, object] = {}
    k: int | None = args.k
    if strategy in ("greedy-stochastic", "ihs", "hsdag", "fastdiag"):
        # --limit caps the number of reported solutions; --k bounds the
        # candidate cardinality (0 = let the search loop determine it).
        options[
            "max_solutions"
            if strategy == "greedy-stochastic"
            else "solution_limit"
        ] = args.limit
        k = args.k if args.k > 0 else None
    else:
        options["solution_limit"] = args.limit
    def run() -> object:
        # Unsupported strategy x system combinations (e.g. the
        # circuit-only cov on --system spectrum) must exit with the
        # registry's one-line message, not a traceback.
        try:
            return diagnose(session, k=k, strategy=strategy, **options)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = run()
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(20)
    else:
        result = run()
    print(
        f"{result.n_solutions} solutions in {result.t_all:.2f}s "
        f"(build {result.t_build:.2f}s)"
        + ("" if result.complete else "  [truncated]")
    )
    for sol in result.solutions[: args.top]:
        print("  " + ", ".join(sorted(sol)))
    return 0


def _cmd_strategies(args: argparse.Namespace) -> int:
    width = max(len(name) for name in DIAGNOSIS_STRATEGIES)
    labels = {
        name: (
            "model-agnostic"
            if set(strategy_kinds(name)) >= set(ALL_SYSTEM_KINDS)
            else "circuit-only"
        )
        for name in DIAGNOSIS_STRATEGIES
    }
    kind_width = max(len(label) for label in labels.values())
    for name in available_strategies():
        print(
            f"{name.ljust(width)}  {labels[name].ljust(kind_width)}  "
            f"{DIAGNOSIS_STRATEGIES[name].summary}"
        )
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from .sat.backends import (
        available_backends,
        backend_summary,
        unavailable_backends,
    )

    names = available_backends()
    missing = unavailable_backends()
    width = max(len(name) for name in (*names, *missing))
    for name in names:
        print(f"{name.ljust(width)}  {backend_summary(name)}")
    for name in sorted(missing):
        print(f"{name.ljust(width)}  [unavailable] {missing[name]}")
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from .sim.engines import (
        SIM_ENGINES,
        available_engines,
        unavailable_engines,
    )

    names = available_engines()
    missing = unavailable_engines()
    width = max(len(name) for name in (*names, *missing))
    for name in names:
        print(f"{name.ljust(width)}  {SIM_ENGINES[name]}")
    for name in sorted(missing):
        print(f"{name.ljust(width)}  [unavailable] {missing[name]}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    print(format_table1())
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    from .testgen import generate_tests

    circuit = _load_circuit(args.circuit)
    from .circuits.scan import to_combinational

    if circuit.is_sequential:
        circuit = to_combinational(circuit).circuit
    result = generate_tests(
        circuit,
        backend=args.backend,
        collapse=not args.no_collapse,
        seed=args.seed,
        compact=not args.no_compact,
    )
    print(result.summary())
    if args.out:
        path = Path(args.out)
        with path.open("w") as stream:
            stream.write(
                "# patterns (input order: " + ",".join(circuit.inputs) + ")\n"
            )
            for pattern in result.patterns:
                stream.write(
                    "".join(str(pattern[pi]) for pi in circuit.inputs) + "\n"
                )
        print(f"wrote {result.test_count} patterns to {path}")
    return 0


def _cmd_cec(args: argparse.Namespace) -> int:
    from .verify import check_equivalence

    golden = _load_circuit(args.golden)
    impl = _load_circuit(args.impl)
    result = check_equivalence(
        golden, impl, method=args.method, seed=args.seed
    )
    print(result.summary())
    if result.counterexample is not None:
        bits = "".join(
            str(result.counterexample[pi]) for pi in golden.inputs
        )
        print(f"counterexample inputs: {bits}")
    if result.equivalent is False:
        return 1
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    from .diagnosis import certify_correction_bound

    faulty = _load_circuit(args.faulty)
    tests = _read_tests(Path(args.tests), faulty)
    if not tests.m:
        raise SystemExit("error: empty test file")
    verdict = certify_correction_bound(
        faulty, tests, k=args.k, check=not args.no_check
    )
    print(verdict.summary())
    if verdict.proof is not None and args.proof_out:
        Path(args.proof_out).write_text(verdict.proof.to_drat_text())
        print(f"wrote DRAT proof to {args.proof_out}")
    return 0 if verdict.has_correction or verdict.verified is not False else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import (
        DesignCache,
        DiagnosisService,
        ProcessDiagnosisService,
        ResultJournal,
        read_device_stream,
        read_journal,
    )

    cache = DesignCache()
    if args.devices == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            lines = Path(args.devices).read_text().splitlines()
        except OSError as exc:
            raise SystemExit(f"error: {exc}")
    # Skip-and-count intake: one malformed JSONL record is reported
    # (with its line number) and dropped; the stream keeps flowing.
    skipped: list[tuple[int, str]] = []

    def on_error(lineno: int, message: str) -> None:
        skipped.append((lineno, message))
        print(f"warning: skipped {message}", file=sys.stderr)

    try:
        devices = list(
            read_device_stream(
                lines, inputs_of=cache.inputs_of, on_error=on_error
            )
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if not devices:
        raise SystemExit("error: no devices in the stream")
    strategies = tuple(
        s.strip() for s in args.strategies.split(",") if s.strip()
    )
    if args.resume and not args.journal:
        raise SystemExit("error: --resume requires --journal")
    resume_from = None
    if args.resume and Path(args.journal).exists():
        resume_from = read_journal(args.journal)
    journal = ResultJournal(args.journal) if args.journal else None
    service = None
    try:
        try:
            if args.workers:
                # Process mode: designs are sharded across worker
                # processes, --shards becomes each worker's internal
                # thread-shard count.
                service = ProcessDiagnosisService(
                    n_workers=args.workers,
                    worker_shards=args.shards,
                    strategies=strategies,
                    policy=args.policy,
                    timeout=args.timeout,
                    max_attempts=args.retries + 1,
                    degrade=not args.no_degrade,
                    journal=journal,
                    resume_from=resume_from,
                    solver_backend=args.solver_backend,
                )
            else:
                service = DiagnosisService(
                    n_shards=args.shards,
                    strategies=strategies,
                    policy=args.policy,
                    timeout=args.timeout,
                    max_attempts=args.retries + 1,
                    degrade=not args.no_degrade,
                    journal=journal,
                    resume_from=resume_from,
                    design_cache=cache,
                    solver_backend=args.solver_backend,
                )
            results = service.run(devices)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    finally:
        if isinstance(service, ProcessDiagnosisService):
            service.close()
        if journal is not None:
            journal.close()
    payload = "\n".join(json.dumps(r.to_dict()) for r in results) + "\n"
    if args.out:
        try:
            Path(args.out).write_text(payload)
        except OSError as exc:
            raise SystemExit(f"error: {exc}")
    else:
        sys.stdout.write(payload)
    if args.stats:
        stats = service.stats()
        stats["intake_skipped"] = len(skipped)
        print(json.dumps(stats, indent=2), file=sys.stderr)
    # Exit code: 0 whenever the stream was served end to end (every
    # device resolved exactly once, possibly degraded).  --strict turns
    # any non-ok resolution or skipped intake line into exit 1 with a
    # one-line summary.
    if args.strict:
        by_status: dict[str, int] = {}
        for r in results:
            if r.status != "ok":
                by_status[r.status] = by_status.get(r.status, 0) + 1
        bad_devices = sum(by_status.values())
        if bad_devices or skipped:
            parts = []
            if bad_devices:
                breakdown = ", ".join(
                    f"{n} {status}"
                    for status, n in sorted(by_status.items())
                )
                parts.append(
                    f"{bad_devices}/{len(results)} devices not ok "
                    f"({breakdown})"
                )
            if skipped:
                parts.append(f"{len(skipped)} intake lines skipped")
            print("strict: " + "; ".join(parts), file=sys.stderr)
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="print circuit statistics")
    p_stats.add_argument("circuit")
    p_stats.set_defaults(func=_cmd_stats)

    p_inject = sub.add_parser("inject", help="inject design errors")
    p_inject.add_argument("circuit")
    p_inject.add_argument("--p", type=int, default=1)
    p_inject.add_argument("--seed", type=int, default=0)
    p_inject.add_argument(
        "--error-model", choices=("gate", "wire"), default="gate",
        help="gate-change (paper §2.1) or Abadir wire errors (ref [18])",
    )
    p_inject.add_argument("--out", required=True)
    p_inject.set_defaults(func=_cmd_inject)

    p_testgen = sub.add_parser("testgen", help="generate failing tests")
    p_testgen.add_argument("golden")
    p_testgen.add_argument("faulty")
    p_testgen.add_argument("--m", type=int, default=8)
    p_testgen.add_argument("--seed", type=int, default=0)
    p_testgen.add_argument("--out", required=True)
    p_testgen.set_defaults(func=_cmd_testgen)

    p_diag = sub.add_parser("diagnose", help="run a diagnosis approach")
    p_diag.add_argument(
        "faulty",
        help="faulty netlist (--system circuit), GCNF file "
        "(--system gcnf) or spectrum JSON (--system spectrum)",
    )
    p_diag.add_argument(
        "tests",
        help="test file (circuit) or observation file (gcnf: one "
        "observation per line as DIMACS literals, '-' = single empty "
        "observation; spectrum: pass '-', the rows live in the JSON)",
    )
    p_diag.add_argument(
        "--system",
        choices=("circuit", "gcnf", "spectrum"),
        default="circuit",
        help="system description kind the inputs encode (see "
        "'python -m repro strategies' for which approaches are "
        "model-agnostic)",
    )
    p_diag.add_argument(
        "--approach",
        choices=(
            "bsim", "cov", "bsat", "hybrid", "greedy", "ihs",
            "hsdag", "fastdiag",
        ),
        default="bsat",
        help="bsim/cov/bsat/hybrid as in the paper; greedy "
        "(SAFARI stochastic search), ihs (implicit hitting sets), "
        "hsdag (Reiter hitting-set DAG) and fastdiag (divide and "
        "conquer) are the candidate-space search loops",
    )
    p_diag.add_argument(
        "--k", type=int, default=1,
        help="error cardinality bound (greedy/ihs: 0 = self-determined)",
    )
    p_diag.add_argument("--limit", type=int, default=100)
    p_diag.add_argument("--top", type=int, default=10)
    p_diag.add_argument(
        "--solver-backend", default=None, metavar="NAME",
        help="SAT backend for every solver the session builds "
        "(see 'python -m repro backends'; default: arena)",
    )
    p_diag.add_argument(
        "--profile", action="store_true",
        help="run the diagnosis under cProfile and print the top-20 "
        "functions by cumulative time (see benchmarks/README.md)",
    )
    p_diag.set_defaults(func=_cmd_diagnose)

    p_serve = sub.add_parser(
        "serve",
        help="sharded diagnosis service over a JSON-lines device stream",
    )
    p_serve.add_argument(
        "devices",
        help="JSON-lines device file ('-' = stdin): one object per "
        "failing device with id, design, tests (see repro.serve.intake)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=2,
        help="worker shards, each with a bounded queue (default: 2)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes sharding *designs* across cores; each "
        "worker runs --shards thread shards over its design subset "
        "(0: current in-process thread mode, the default)",
    )
    p_serve.add_argument(
        "--strategies", default=",".join(_SERVE_STRATEGIES),
        metavar="CSV",
        help="comma-separated race legs per device "
        f"(default: {','.join(_SERVE_STRATEGIES)})",
    )
    p_serve.add_argument(
        "--policy", choices=("first", "complete"), default="first",
        help="first: first valid answer wins, losers cancelled; "
        "complete: every leg runs to completion",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt deadline; expired attempts retry on another "
        "shard (default: none)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts after a timeout or shard death (default: 1)",
    )
    p_serve.add_argument(
        "--solver-backend", default=None, metavar="NAME",
        help="SAT backend for every session the shards build",
    )
    p_serve.add_argument(
        "--out", help="write results here instead of stdout (JSON lines)"
    )
    p_serve.add_argument(
        "--journal", metavar="PATH",
        help="append accepted devices and resolved results to this "
        "durable JSONL write-ahead log (fsync-batched off the latency "
        "path)",
    )
    p_serve.add_argument(
        "--resume", action="store_true",
        help="replay already-resolved signatures from the --journal "
        "file instead of re-diagnosing them (exactly-once across "
        "process death); unresolved devices re-run",
    )
    p_serve.add_argument(
        "--no-degrade", action="store_true",
        help="disable the degradation ladder: devices that exhaust "
        "every attempt report a plain timeout instead of a bounded "
        "approximate/guidance answer",
    )
    p_serve.add_argument(
        "--strict", action="store_true",
        help="exit nonzero (with a one-line summary) when any device "
        "resolved non-ok or any intake line was skipped; default exit "
        "is 0 whenever the stream was served end to end",
    )
    p_serve.add_argument(
        "--stats", action="store_true",
        help="print the service/shard/design-cache counters to stderr "
        "(includes degraded / journal_replayed / intake_skipped; in "
        "process mode also per-worker processed and queue_high_water, "
        "so routing skew is visible)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_strat = sub.add_parser(
        "strategies", help="list the registered diagnosis strategies"
    )
    p_strat.set_defaults(func=_cmd_strategies)

    p_back = sub.add_parser(
        "backends", help="list the registered SAT solver backends"
    )
    p_back.set_defaults(func=_cmd_backends)

    p_eng = sub.add_parser(
        "engines", help="list the registered fault-simulation engines"
    )
    p_eng.set_defaults(func=_cmd_engines)

    p_t1 = sub.add_parser("table1", help="print the comparison matrix")
    p_t1.set_defaults(func=_cmd_table1)

    p_atpg = sub.add_parser("atpg", help="stuck-at ATPG flow with coverage")
    p_atpg.add_argument("circuit")
    p_atpg.add_argument("--backend", choices=("podem", "sat"), default="podem")
    p_atpg.add_argument("--seed", type=int, default=0)
    p_atpg.add_argument("--no-collapse", action="store_true")
    p_atpg.add_argument("--no-compact", action="store_true")
    p_atpg.add_argument("--out", help="write the pattern set to this file")
    p_atpg.set_defaults(func=_cmd_atpg)

    p_cec = sub.add_parser("cec", help="combinational equivalence check")
    p_cec.add_argument("golden")
    p_cec.add_argument("impl")
    p_cec.add_argument(
        "--method", choices=("auto", "sat", "bdd", "random"), default="auto"
    )
    p_cec.add_argument("--seed", type=int, default=0)
    p_cec.set_defaults(func=_cmd_cec)

    p_cert = sub.add_parser(
        "certify", help="certified correction-bound verdict (DRAT)"
    )
    p_cert.add_argument("faulty")
    p_cert.add_argument("tests")
    p_cert.add_argument("--k", type=int, default=1)
    p_cert.add_argument("--no-check", action="store_true")
    p_cert.add_argument("--proof-out", help="write the DRAT proof here")
    p_cert.set_defaults(func=_cmd_certify)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
