"""Verification front-ends: equivalence checking and bounded model checking.

The paper's §1 lists the flows that *produce* diagnosis problems —
equivalence checking, property checking, dynamic verification.  This
package implements those producers so the library covers the loop end to
end: check, fail, extract tests, diagnose.

* :func:`~repro.verify.cec.check_equivalence` — combinational equivalence
  with random/SAT/BDD engines behind one interface.
* :func:`~repro.verify.bmc.bmc_assertion` /
  :func:`~repro.verify.bmc.bmc_equivalence` — bounded model checking of
  sequential circuits with counterexample traces.
* :func:`~repro.verify.bmc.trace_to_sequence_tests` — the bridge into
  :func:`repro.diagnosis.sequential.seq_sat_diagnose`.
"""

from .cec import CecResult, check_equivalence
from .bmc import BmcResult, bmc_assertion, bmc_equivalence, trace_to_sequence_tests
from .unroll import Unrolling, unroll

__all__ = [
    "CecResult",
    "check_equivalence",
    "BmcResult",
    "bmc_assertion",
    "bmc_equivalence",
    "trace_to_sequence_tests",
    "Unrolling",
    "unroll",
]
