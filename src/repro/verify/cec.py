"""Combinational equivalence checking with selectable engines.

Equivalence checking is one of the paper's motivating diagnosis sources
(§1): when a CEC run fails, the counterexample becomes the failing test
the diagnosis approaches start from.  This module unifies the library's
three engines behind one interface:

* ``"random"`` — bit-parallel random simulation: a fast falsifier that can
  prove *in*equivalence only;
* ``"sat"`` — the miter construction of :mod:`repro.testgen.satgen`
  (Larrabee-style), complete;
* ``"bdd"`` — canonical comparison via :mod:`repro.bdd`, complete but
  subject to the intro's space blowup;
* ``"auto"`` — random falsification first, SAT to settle the remainder
  (the standard industrial recipe).

>>> from repro.circuits.library import c17
>>> check_equivalence(c17(), c17()).equivalent
True
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..bdd.diag import bdd_counterexample
from ..circuits.netlist import Circuit
from ..sim.faultsim import fault_table
from ..testgen.satgen import MiterGenerator

__all__ = ["CecResult", "check_equivalence"]


@dataclass(frozen=True)
class CecResult:
    """Outcome of an equivalence check.

    ``equivalent`` is True/False for complete methods; None when the
    random falsifier found no counterexample (inconclusive).  On
    inequivalence ``counterexample`` holds a complete input vector and
    ``failing_output`` one output where the circuits differ.
    """

    equivalent: bool | None
    method: str
    counterexample: dict[str, int] | None
    failing_output: str | None
    elapsed: float

    @property
    def conclusive(self) -> bool:
        return self.equivalent is not None

    def summary(self) -> str:
        if self.equivalent:
            return f"equivalent [{self.method}, {self.elapsed:.3f}s]"
        if self.equivalent is None:
            return (
                f"inconclusive after random simulation "
                f"[{self.method}, {self.elapsed:.3f}s]"
            )
        return (
            f"NOT equivalent at output {self.failing_output!r} "
            f"[{self.method}, {self.elapsed:.3f}s]"
        )


def _random_search(
    golden: Circuit, faulty: Circuit, patterns: int, seed: int
) -> tuple[dict[str, int], str] | None:
    rng = random.Random(seed)
    vectors = [
        {pi: rng.getrandbits(1) for pi in golden.inputs}
        for _ in range(patterns)
    ]
    table = fault_table(golden, faulty, vectors)
    for vector, fails in zip(vectors, table):
        if fails:
            return vector, fails[0]
    return None


def check_equivalence(
    golden: Circuit,
    impl: Circuit,
    method: str = "auto",
    random_patterns: int = 256,
    seed: int = 0,
    max_nodes: int | None = None,
) -> CecResult:
    """Check combinational equivalence of two circuits.

    Both circuits must share primary inputs and outputs (by name).
    ``max_nodes`` bounds the BDD engine;
    :class:`~repro.bdd.manager.BddBlowupError` propagates so callers can
    fall back to SAT — exactly the trade-off the paper's intro describes.
    """
    if method not in ("auto", "sat", "bdd", "random"):
        raise ValueError(f"unknown CEC method {method!r}")
    if golden.inputs != impl.inputs:
        raise ValueError("circuits must share primary inputs")
    if set(golden.outputs) != set(impl.outputs):
        raise ValueError("circuits must share primary outputs")
    start = time.perf_counter()

    if method in ("auto", "random"):
        hit = _random_search(golden, impl, random_patterns, seed)
        if hit is not None:
            vector, out = hit
            return CecResult(
                equivalent=False,
                method="random",
                counterexample=vector,
                failing_output=out,
                elapsed=time.perf_counter() - start,
            )
        if method == "random":
            return CecResult(
                equivalent=None,
                method="random",
                counterexample=None,
                failing_output=None,
                elapsed=time.perf_counter() - start,
            )

    if method == "bdd":
        cex = bdd_counterexample(golden, impl, max_nodes=max_nodes)
        if cex is None:
            return CecResult(
                equivalent=True,
                method="bdd",
                counterexample=None,
                failing_output=None,
                elapsed=time.perf_counter() - start,
            )
        from ..sim.faultsim import failing_outputs

        return CecResult(
            equivalent=False,
            method="bdd",
            counterexample=cex,
            failing_output=failing_outputs(golden, impl, cex)[0],
            elapsed=time.perf_counter() - start,
        )

    # SAT miter ("sat", or the settle phase of "auto").
    gen = MiterGenerator(golden, impl)
    test = gen.next_test()
    if test is None:
        return CecResult(
            equivalent=True,
            method=method if method == "sat" else "auto(random+sat)",
            counterexample=None,
            failing_output=None,
            elapsed=time.perf_counter() - start,
        )
    return CecResult(
        equivalent=False,
        method=method if method == "sat" else "auto(random+sat)",
        counterexample=dict(test.vector),
        failing_output=test.output,
        elapsed=time.perf_counter() - start,
    )
