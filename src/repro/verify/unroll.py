"""Time-frame expansion with free inputs (the BMC unrolling).

Unlike the diagnosis unrolling of :mod:`repro.diagnosis.sequential` —
which pins primary inputs to a known failing sequence — bounded model
checking leaves inputs *free* and lets the SAT solver search for a
violating sequence.  This module provides that unrolling as a reusable
primitive shared by :mod:`repro.verify.bmc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..circuits.netlist import Circuit
from ..sat.cnf import CNF
from ..sat.tseitin import encode_gate

__all__ = ["Unrolling", "unroll"]


@dataclass(frozen=True)
class Unrolling:
    """Variable map of an unrolled circuit.

    ``var_of[(frame, signal)]`` is the CNF variable of ``signal`` in frame
    ``frame`` (0-based).  Primary-input variables are free unless they were
    shared in from another unrolling (product-machine construction).
    """

    circuit_name: str
    n_frames: int
    var_of: Mapping[tuple[int, str], int]

    def input_vars(self, frame: int, inputs: tuple[str, ...]) -> dict[str, int]:
        return {pi: self.var_of[(frame, pi)] for pi in inputs}

    def output_var(self, frame: int, output: str) -> int:
        return self.var_of[(frame, output)]


def unroll(
    cnf: CNF,
    circuit: Circuit,
    n_frames: int,
    prefix: str = "",
    initial_state: int = 0,
    shared_inputs: Mapping[tuple[int, str], int] | None = None,
) -> Unrolling:
    """Encode ``n_frames`` time frames of ``circuit`` into ``cnf``.

    DFFs hold ``initial_state`` (all-0 or all-1) in frame 0 and their
    fanin's previous-frame value afterwards.  ``shared_inputs`` maps
    ``(frame, input_name)`` to existing variables, so two machines can be
    unrolled over the same input sequence (the product construction used
    by sequential equivalence checking).
    """
    if n_frames < 1:
        raise ValueError("n_frames must be at least 1")
    if initial_state not in (0, 1):
        raise ValueError("initial_state must be 0 or 1")
    shared_inputs = shared_inputs or {}
    topo = circuit.topological_order()
    var_of: dict[tuple[int, str], int] = {}
    for frame in range(n_frames):
        for name in topo:
            gate = circuit.node(name)
            tag = f"{prefix}f{frame}:{name}"
            if gate.is_input:
                shared = shared_inputs.get((frame, name))
                var_of[(frame, name)] = (
                    shared if shared is not None else cnf.new_var(tag)
                )
                continue
            if gate.is_dff:
                var = cnf.new_var(tag)
                var_of[(frame, name)] = var
                if frame == 0:
                    cnf.add_clause([var] if initial_state else [-var])
                else:
                    prev = var_of[(frame - 1, gate.fanins[0])]
                    cnf.add_clause([-var, prev])
                    cnf.add_clause([var, -prev])
                continue
            var = cnf.new_var(tag)
            encode_gate(
                cnf, gate.gtype, var, [var_of[(frame, f)] for f in gate.fanins]
            )
            var_of[(frame, name)] = var
    return Unrolling(
        circuit_name=circuit.name, n_frames=n_frames, var_of=var_of
    )
