"""Bounded model checking over sequential circuits.

The paper motivates diagnosis with "dynamic verification, property
checking" (§1): a property checker finds a violating trace, and the trace
becomes the failing test the diagnosis algorithms consume.  This module
closes that loop:

* :func:`bmc_assertion` — search for an input sequence driving a monitor
  output to its bad value within a bound (incremental frame expansion,
  one assumption query per depth);
* :func:`bmc_equivalence` — product-machine BMC: do two sequential
  circuits agree on all outputs for every input sequence up to a bound?
* :func:`trace_to_sequence_tests` — convert a violating trace into the
  :class:`~repro.diagnosis.sequential.SequenceTest` objects that
  :func:`~repro.diagnosis.sequential.seq_sat_diagnose` diagnoses.

BMC answers are *bounded*: "no violation up to k frames" is not a proof of
safety, and results say so explicitly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..circuits.netlist import Circuit
from ..diagnosis.sequential import SequenceTest
from ..sat.cnf import CNF
from ..sim.logicsim import simulate_sequence
from .unroll import Unrolling, unroll

__all__ = ["BmcResult", "bmc_assertion", "bmc_equivalence", "trace_to_sequence_tests"]


@dataclass(frozen=True)
class BmcResult:
    """Outcome of a bounded model-checking run.

    On violation ``trace`` holds one input vector per frame (up to and
    including the violating frame), ``frame`` the violating frame and
    ``output`` the monitor/differing output.  Otherwise the property held
    for every depth up to ``bound`` (and only up to there).
    """

    violated: bool
    bound: int
    frame: int | None
    output: str | None
    trace: tuple[dict[str, int], ...]
    elapsed: float

    @property
    def n_frames(self) -> int:
        return len(self.trace)

    def summary(self) -> str:
        if self.violated:
            return (
                f"violated at frame {self.frame} (output {self.output!r}); "
                f"trace of {self.n_frames} vectors"
            )
        return f"no violation within {self.bound} frames (bounded claim)"


def _extract_trace(
    solver, unrolling: Unrolling, inputs: tuple[str, ...], frames: int
) -> tuple[dict[str, int], ...]:
    trace = []
    for frame in range(frames):
        vec = {}
        for pi in inputs:
            val = solver.value(unrolling.var_of[(frame, pi)])
            vec[pi] = int(bool(val))
        trace.append(vec)
    return tuple(trace)


def bmc_assertion(
    circuit: Circuit,
    monitor: str,
    bound: int,
    bad_value: int = 1,
    initial_state: int = 0,
) -> BmcResult:
    """Can ``monitor`` (a primary output) reach ``bad_value`` within ``bound``
    frames from the reset state?

    The circuit is unrolled frame by frame on one incremental solver; each
    depth is a single assumption query, so learned clauses carry over
    between depths (the standard incremental-BMC loop).
    """
    if monitor not in circuit.outputs:
        raise ValueError(f"monitor {monitor!r} is not a primary output")
    if bound < 1:
        raise ValueError("bound must be at least 1")
    start = time.perf_counter()
    cnf = CNF()
    unrolling = unroll(
        cnf, circuit, bound, prefix="b:", initial_state=initial_state
    )
    solver = cnf.to_solver()
    for depth in range(1, bound + 1):
        bad_var = unrolling.output_var(depth - 1, monitor)
        assumption = bad_var if bad_value else -bad_var
        if solver.solve(assumptions=[assumption]):
            trace = _extract_trace(solver, unrolling, circuit.inputs, depth)
            return BmcResult(
                violated=True,
                bound=bound,
                frame=depth - 1,
                output=monitor,
                trace=trace,
                elapsed=time.perf_counter() - start,
            )
    return BmcResult(
        violated=False,
        bound=bound,
        frame=None,
        output=None,
        trace=(),
        elapsed=time.perf_counter() - start,
    )


def bmc_equivalence(
    golden: Circuit,
    impl: Circuit,
    bound: int,
    initial_state: int = 0,
) -> BmcResult:
    """Product-machine BMC: do the circuits agree on every output for all
    input sequences of length ≤ ``bound``?

    Both machines are unrolled over *shared* input variables; a violation
    is the shortest distinguishing input sequence, reported with the first
    differing output.
    """
    if golden.inputs != impl.inputs:
        raise ValueError("circuits must share primary inputs")
    if set(golden.outputs) != set(impl.outputs):
        raise ValueError("circuits must share primary outputs")
    if bound < 1:
        raise ValueError("bound must be at least 1")
    start = time.perf_counter()
    cnf = CNF()
    gold = unroll(cnf, golden, bound, prefix="g:", initial_state=initial_state)
    shared = {
        (frame, pi): gold.var_of[(frame, pi)]
        for frame in range(bound)
        for pi in golden.inputs
    }
    bad = unroll(
        cnf,
        impl,
        bound,
        prefix="i:",
        initial_state=initial_state,
        shared_inputs=shared,
    )
    # One "some output differs in frame f" indicator per frame; querying
    # them in order on one incremental solver yields the shortest trace.
    frame_diff: list[int] = []
    diff_of_frame: dict[int, list[tuple[int, str]]] = {}
    for frame in range(bound):
        diff_vars = []
        diff_of_frame[frame] = []
        for out in golden.outputs:
            d = cnf.new_var(f"diff:f{frame}:{out}")
            a = gold.output_var(frame, out)
            b = bad.output_var(frame, out)
            cnf.add_clause([-d, a, b])
            cnf.add_clause([-d, -a, -b])
            diff_vars.append(d)
            diff_of_frame[frame].append((d, out))
        any_d = cnf.new_var(f"anydiff:f{frame}")
        cnf.add_clause([-any_d] + diff_vars)
        frame_diff.append(any_d)
    solver = cnf.to_solver()
    for frame in range(bound):
        if solver.solve(assumptions=[frame_diff[frame]]):
            hit_out = next(
                out
                for d, out in diff_of_frame[frame]
                if solver.value(d)
            )
            trace = _extract_trace(solver, gold, golden.inputs, frame + 1)
            return BmcResult(
                violated=True,
                bound=bound,
                frame=frame,
                output=hit_out,
                trace=trace,
                elapsed=time.perf_counter() - start,
            )
    return BmcResult(
        violated=False,
        bound=bound,
        frame=None,
        output=None,
        trace=(),
        elapsed=time.perf_counter() - start,
    )


def trace_to_sequence_tests(
    golden: Circuit,
    faulty: Circuit,
    trace: tuple[dict[str, int], ...],
) -> list[SequenceTest]:
    """Turn a distinguishing trace into sequential diagnosis tests.

    Simulates both machines over ``trace`` and emits one
    :class:`SequenceTest` per (frame, output) mismatch — the bridge from
    property/equivalence checking (§1) to the diagnosis engines.
    """
    good = simulate_sequence(golden, trace)
    bad = simulate_sequence(faulty, trace)
    tests: list[SequenceTest] = []
    for frame in range(len(trace)):
        for out in golden.outputs:
            if good[frame][out] != bad[frame][out]:
                tests.append(
                    SequenceTest(
                        vectors=tuple(trace),
                        output=out,
                        frame=frame,
                        value=good[frame][out],
                    )
                )
    return tests
