"""Error and fault models.

The paper's experiments inject *gate change* errors: "An error is
considered to be the replacement of the function of a gate by another
arbitrary Boolean function" (§2.1).  :class:`GateChangeError` captures the
concrete replacement used to build a faulty implementation; the diagnosis
algorithms never see it — it is ground truth for the quality metrics
(distance to the nearest actual error site, Table 3).

Classic stuck-at faults are also provided since the paper notes error
location and fault diagnosis are interchangeable problems (ref [1]), and
the Abadir-style *design error* types the advanced simulation-based
lineage targets (ref [18]: wrong wires, extra/missing inverters) complete
the model zoo.  Note that a wire error changes the gate's *support*, not
just its function over fixed fanins — BSAT still locates the gate (its
per-test correction value realizes the needed output), but resynthesizing
the exact original connection needs the wire models here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.gates import GateType

__all__ = [
    "GateChangeError",
    "StuckAtFault",
    "InverterError",
    "WrongWireError",
    "ExtraWireError",
    "MissingWireError",
    "ErrorModel",
]


@dataclass(frozen=True)
class GateChangeError:
    """Replacement of the function of ``gate`` by ``new_type``.

    The fanins are unchanged; only the Boolean function computed over them
    differs.  ``old_type`` is retained for reporting.
    """

    gate: str
    old_type: GateType
    new_type: GateType

    def __post_init__(self) -> None:
        if self.old_type == self.new_type:
            raise ValueError(f"gate change on {self.gate!r} must alter the type")

    @property
    def site(self) -> str:
        """The error site (the gate name), used by distance metrics."""
        return self.gate

    def describe(self) -> str:
        return f"{self.gate}: {self.old_type} -> {self.new_type}"


@dataclass(frozen=True)
class StuckAtFault:
    """Signal ``signal`` permanently at ``value`` (0 or 1)."""

    signal: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    @property
    def site(self) -> str:
        return self.signal

    def describe(self) -> str:
        return f"{self.signal}: stuck-at-{self.value}"


@dataclass(frozen=True)
class InverterError:
    """An extra (or missing) inversion at the output of ``gate``.

    Modelled as replacing the gate's function by its complement —
    AND↔NAND, OR↔NOR, XOR↔XNOR, BUF↔NOT, CONST0↔CONST1.
    """

    gate: str

    @property
    def site(self) -> str:
        return self.gate

    def describe(self) -> str:
        return f"{self.gate}: output inverted"


@dataclass(frozen=True)
class WrongWireError:
    """Fanin ``old_wire`` of ``gate`` is connected to ``new_wire`` instead.

    The classic "wrong wire" design error: the gate type is right, one
    connection is not.  Injection validates that the swap keeps the
    netlist acyclic.
    """

    gate: str
    old_wire: str
    new_wire: str

    def __post_init__(self) -> None:
        if self.old_wire == self.new_wire:
            raise ValueError("wrong-wire error must change the connection")

    @property
    def site(self) -> str:
        return self.gate

    def describe(self) -> str:
        return f"{self.gate}: fanin {self.old_wire} -> {self.new_wire}"


@dataclass(frozen=True)
class ExtraWireError:
    """``gate`` has the spurious additional fanin ``wire``."""

    gate: str
    wire: str

    @property
    def site(self) -> str:
        return self.gate

    def describe(self) -> str:
        return f"{self.gate}: extra fanin {self.wire}"


@dataclass(frozen=True)
class MissingWireError:
    """Fanin ``wire`` of ``gate`` is not connected (dropped)."""

    gate: str
    wire: str

    @property
    def site(self) -> str:
        return self.gate

    def describe(self) -> str:
        return f"{self.gate}: missing fanin {self.wire}"


#: Union type accepted by the injector.
ErrorModel = (
    GateChangeError
    | StuckAtFault
    | InverterError
    | WrongWireError
    | ExtraWireError
    | MissingWireError
)
