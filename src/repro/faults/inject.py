"""Error injection: turning a golden circuit into a faulty implementation.

Reproduces the paper's experimental setup: "A number of 1-4 gate change
errors were injected into circuits from the ISCAS89 benchmark set."  The
random injector is deterministic in its seed and can be asked to guarantee
that the injected errors are *detectable* (some input vector exposes them),
which the paper's setup implies — every experiment uses failing tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..circuits.gates import GateType
from ..circuits.netlist import Circuit
from .models import (
    ErrorModel,
    ExtraWireError,
    GateChangeError,
    InverterError,
    MissingWireError,
    StuckAtFault,
    WrongWireError,
)

__all__ = [
    "Injection",
    "apply_error",
    "inject_errors",
    "random_gate_changes",
    "random_wire_errors",
]

#: Complement function per gate type (used by :class:`InverterError`).
_COMPLEMENT: dict[GateType, GateType] = {
    GateType.AND: GateType.NAND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.NOR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.BUF: GateType.NOT,
    GateType.NOT: GateType.BUF,
    GateType.CONST0: GateType.CONST1,
    GateType.CONST1: GateType.CONST0,
}

#: Candidate replacement types per arity.  Single-input gates swap between
#: BUF and NOT; multi-input gates move within the standard cell set.
_MULTI_INPUT_TYPES = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)
_SINGLE_INPUT_TYPES = (GateType.BUF, GateType.NOT)


@dataclass(frozen=True)
class Injection:
    """A faulty implementation together with its ground truth.

    ``faulty`` is the implementation ``I`` handed to the diagnosis
    algorithms; ``golden`` the specification used to judge test responses;
    ``errors`` the actual error sites ``e_1 .. e_p``.
    """

    golden: Circuit
    faulty: Circuit
    errors: tuple[ErrorModel, ...]

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(e.site for e in self.errors)

    @property
    def p(self) -> int:
        """Number of injected errors (the paper's ``p``)."""
        return len(self.errors)


def apply_error(circuit: Circuit, error: ErrorModel) -> Circuit:
    """Return a copy of ``circuit`` with ``error`` applied."""
    faulty = circuit.copy()
    if isinstance(error, GateChangeError):
        gate = faulty.node(error.gate)
        if gate.gtype != error.old_type:
            raise ValueError(
                f"gate {error.gate!r} has type {gate.gtype}, expected "
                f"{error.old_type}"
            )
        faulty.replace_gate(error.gate, gtype=error.new_type)
    elif isinstance(error, StuckAtFault):
        target = faulty.node(error.signal)
        if target.is_input:
            raise ValueError("stuck-at on primary inputs is not supported")
        const = GateType.CONST1 if error.value else GateType.CONST0
        faulty.replace_gate(error.signal, gtype=const, fanins=())
    elif isinstance(error, InverterError):
        gate = faulty.node(error.gate)
        complement = _COMPLEMENT.get(gate.gtype)
        if complement is None:
            raise ValueError(f"cannot invert {gate.gtype} node {error.gate!r}")
        faulty.replace_gate(error.gate, gtype=complement)
    elif isinstance(error, WrongWireError):
        gate = faulty.node(error.gate)
        if error.old_wire not in gate.fanins:
            raise ValueError(
                f"{error.old_wire!r} is not a fanin of {error.gate!r}"
            )
        if error.new_wire not in faulty:
            raise ValueError(f"unknown signal {error.new_wire!r}")
        fanins = [
            error.new_wire if f == error.old_wire else f for f in gate.fanins
        ]
        faulty.replace_gate(error.gate, fanins=fanins)
        faulty.validate()  # rejects swaps that would create a cycle
    elif isinstance(error, ExtraWireError):
        gate = faulty.node(error.gate)
        if error.wire not in faulty:
            raise ValueError(f"unknown signal {error.wire!r}")
        if gate.gtype in (GateType.BUF, GateType.NOT):
            raise ValueError("cannot add a fanin to a single-input gate")
        faulty.replace_gate(error.gate, fanins=[*gate.fanins, error.wire])
        faulty.validate()
    elif isinstance(error, MissingWireError):
        gate = faulty.node(error.gate)
        if error.wire not in gate.fanins:
            raise ValueError(
                f"{error.wire!r} is not a fanin of {error.gate!r}"
            )
        remaining = list(gate.fanins)
        remaining.remove(error.wire)  # drops one occurrence only
        if not remaining:
            raise ValueError("cannot drop the last fanin of a gate")
        faulty.replace_gate(error.gate, fanins=remaining)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unsupported error model {error!r}")
    return faulty


def inject_errors(circuit: Circuit, errors: list[ErrorModel]) -> Injection:
    """Apply several errors (at distinct sites) to ``circuit``."""
    sites = [e.site for e in errors]
    if len(set(sites)) != len(sites):
        raise ValueError("errors must target distinct sites")
    faulty = circuit
    for error in errors:
        faulty = apply_error(faulty, error)
    faulty = faulty.copy(name=f"{circuit.name}_faulty")
    return Injection(golden=circuit, faulty=faulty, errors=tuple(errors))


def _random_change(rng: random.Random, gate_name: str, gtype: GateType) -> GateChangeError:
    if gtype in _SINGLE_INPUT_TYPES:
        pool = [t for t in _SINGLE_INPUT_TYPES if t is not gtype]
    else:
        pool = [t for t in _MULTI_INPUT_TYPES if t is not gtype]
    return GateChangeError(gate_name, gtype, rng.choice(pool))


def random_gate_changes(
    circuit: Circuit,
    p: int,
    seed: int = 0,
    ensure_detectable: bool = True,
    detect_patterns: int = 256,
) -> Injection:
    """Inject ``p`` random gate-change errors at distinct gates.

    With ``ensure_detectable`` (default) the injector redraws until the
    faulty circuit differs from the golden one on at least one of
    ``detect_patterns`` random vectors — mirroring the paper's setup where
    every experiment starts from failing tests.  Raises RuntimeError if no
    detectable combination is found after a generous number of redraws.
    """
    if p < 1:
        raise ValueError("p must be at least 1")
    gates = list(circuit.gate_names)
    if len(gates) < p:
        raise ValueError(f"circuit has only {len(gates)} gates, cannot inject {p}")
    rng = random.Random(seed)
    from ..sim.faultsim import fault_table  # local import to avoid a cycle

    for _attempt in range(200):
        chosen = rng.sample(gates, p)
        errors: list[ErrorModel] = [
            _random_change(rng, g, circuit.node(g).gtype) for g in chosen
        ]
        injection = inject_errors(circuit, errors)
        if not ensure_detectable:
            return injection
        patterns = [
            {pi: rng.getrandbits(1) for pi in circuit.inputs}
            for _ in range(detect_patterns)
        ]
        table = fault_table(circuit, injection.faulty, patterns)
        if any(table):
            return injection
    raise RuntimeError(
        f"no detectable {p}-error injection found for {circuit.name} "
        f"(seed {seed})"
    )


def _random_wire_error(
    rng: random.Random,
    circuit: Circuit,
    gate_name: str,
    levels: dict[str, int],
) -> ErrorModel:
    """Draw one Abadir-style design error at ``gate_name``.

    Wire donors are restricted to strictly lower levels, which keeps the
    mutated netlist acyclic by construction.
    """
    gate = circuit.node(gate_name)
    donors = [
        name
        for name, level in levels.items()
        if level < levels[gate_name]
        and name != gate_name
        and name not in gate.fanins
        and not circuit.node(name).is_dff
    ]
    kinds = ["inverter"]
    if donors:
        kinds.append("wrong")
        if gate.gtype not in (GateType.BUF, GateType.NOT):
            kinds.append("extra")
    if len(gate.fanins) >= 2:
        kinds.append("missing")
    kind = rng.choice(kinds)
    if kind == "inverter":
        return InverterError(gate_name)
    if kind == "wrong":
        return WrongWireError(
            gate_name, rng.choice(gate.fanins), rng.choice(donors)
        )
    if kind == "extra":
        return ExtraWireError(gate_name, rng.choice(donors))
    return MissingWireError(gate_name, rng.choice(list(gate.fanins)))


def random_wire_errors(
    circuit: Circuit,
    p: int,
    seed: int = 0,
    ensure_detectable: bool = True,
    detect_patterns: int = 256,
) -> Injection:
    """Inject ``p`` random Abadir-style design errors at distinct gates.

    The error mix covers extra/missing inverters and wrong/extra/missing
    wires (ref [18]'s model zoo); mirrors :func:`random_gate_changes`
    otherwise, including the detectability redraw loop.
    """
    if p < 1:
        raise ValueError("p must be at least 1")
    gates = list(circuit.gate_names)
    if len(gates) < p:
        raise ValueError(f"circuit has only {len(gates)} gates, cannot inject {p}")
    from ..circuits.structure import levels as signal_levels
    from ..sim.faultsim import fault_table  # local import to avoid a cycle

    levels = signal_levels(circuit)
    rng = random.Random(seed)
    for _attempt in range(200):
        chosen = rng.sample(gates, p)
        try:
            errors: list[ErrorModel] = [
                _random_wire_error(rng, circuit, g, levels) for g in chosen
            ]
            injection = inject_errors(circuit, errors)
        except ValueError:
            continue  # e.g. the drawn swap had no legal donor; redraw
        if not ensure_detectable:
            return injection
        patterns = [
            {pi: rng.getrandbits(1) for pi in circuit.inputs}
            for _ in range(detect_patterns)
        ]
        if any(fault_table(circuit, injection.faulty, patterns)):
            return injection
    raise RuntimeError(
        f"no detectable {p}-wire-error injection found for {circuit.name} "
        f"(seed {seed})"
    )
