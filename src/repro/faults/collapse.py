"""Stuck-at fault universe and structural fault collapsing.

The paper treats error location and fault diagnosis as "similar problems"
(ref [1]) and motivates diagnosis with post-production test.  A production
test flow starts from the *stuck-at fault universe* of the circuit, and
every industrial tool first shrinks that universe by structural collapsing:

* **Equivalence collapsing** — two faults are equivalent when the faulty
  circuits compute the same Boolean function; only one representative per
  class needs a test.  For an AND gate, s-a-0 on a (fanout-free) input is
  equivalent to s-a-0 on the output; inverters/buffers map faults 1:1
  through the gate.
* **Dominance collapsing** — fault *B* dominates fault *A* when every test
  for *A* also detects *B*; *B* can then be dropped.  For an AND gate the
  output s-a-1 dominates each input s-a-1.

This module works on the *signal-level* (stem) fault model that matches the
netlist representation of :mod:`repro.circuits`: a fault site is a signal
name, not an individual gate input pin.  Input-pin faults coincide with
signal faults exactly when the signal has a single fanout, so equivalence
and dominance rules are applied only across such fanout-free edges — a
sound (never drops a distinguishable fault) but slightly conservative
collapse.  The classic *checkpoint* set (primary inputs plus fanout stems)
is exposed by :func:`checkpoint_signals` under the same approximation.

>>> from repro.circuits.library import c17
>>> from repro.faults.collapse import collapse_faults
>>> c = collapse_faults(c17())
>>> len(c.universe) > len(c.representatives)
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..circuits.gates import CONTROLLING_VALUE, GateType, eval_gate
from ..circuits.netlist import Circuit
from .models import StuckAtFault

__all__ = [
    "CollapsedFaults",
    "full_stuck_at_universe",
    "collapse_faults",
    "checkpoint_signals",
]


def full_stuck_at_universe(
    circuit: Circuit, include_inputs: bool = True
) -> tuple[StuckAtFault, ...]:
    """Both stuck-at faults on every signal of ``circuit``.

    Constant nodes contribute only the fault opposite to their tied value
    (a CONST0 stuck at 0 is the fault-free circuit).  With
    ``include_inputs`` (default) primary inputs are fault sites too — they
    are checkpoints and the simulation engines can force them — but note
    that :func:`repro.faults.inject.apply_error` cannot *inject* a PI fault
    as a circuit mutation.

    >>> from repro.circuits.library import majority
    >>> len(full_stuck_at_universe(majority()))
    16
    """
    faults: list[StuckAtFault] = []
    for gate in circuit:
        if gate.is_input:
            if include_inputs:
                faults.append(StuckAtFault(gate.name, 0))
                faults.append(StuckAtFault(gate.name, 1))
        elif gate.gtype is GateType.CONST0:
            faults.append(StuckAtFault(gate.name, 1))
        elif gate.gtype is GateType.CONST1:
            faults.append(StuckAtFault(gate.name, 0))
        else:
            faults.append(StuckAtFault(gate.name, 0))
            faults.append(StuckAtFault(gate.name, 1))
    return tuple(faults)


class _UnionFind:
    """Minimal union-find over hashable items."""

    def __init__(self) -> None:
        self._parent: dict[object, object] = {}

    def find(self, item: object) -> object:
        parent = self._parent.setdefault(item, item)
        if parent is item or parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


@dataclass(frozen=True)
class CollapsedFaults:
    """Result of structural fault collapsing.

    ``universe`` is the uncollapsed fault list; ``classes`` the equivalence
    classes partitioning it; ``representative`` maps every fault to its
    class representative; ``dominance_dropped`` holds the representatives
    removed by dominance (their detection is implied by a kept fault).
    """

    universe: tuple[StuckAtFault, ...]
    classes: tuple[tuple[StuckAtFault, ...], ...]
    representative: Mapping[StuckAtFault, StuckAtFault]
    dominance_dropped: frozenset[StuckAtFault]

    @property
    def representatives(self) -> tuple[StuckAtFault, ...]:
        """The collapsed fault list: one kept representative per class."""
        return tuple(
            cls[0]
            for cls in self.classes
            if cls[0] not in self.dominance_dropped
        )

    @property
    def collapse_ratio(self) -> float:
        """|collapsed| / |universe| — the headline collapsing metric."""
        if not self.universe:
            return 1.0
        return len(self.representatives) / len(self.universe)

    def expand(self, faults: Iterable[StuckAtFault]) -> set[StuckAtFault]:
        """All universe faults whose representative is in ``faults``.

        Used to translate detection of the collapsed list back to the full
        universe (equivalent faults are detected by exactly the same
        tests).
        """
        wanted = set(faults)
        return {f for f in self.universe if self.representative[f] in wanted}


def _controlled_output(gtype: GateType) -> int:
    """Output value of ``gtype`` when some input is at its controlling value."""
    control = CONTROLLING_VALUE[gtype]
    if control is None:  # pragma: no cover - callers check first
        raise ValueError(f"{gtype} has no controlling value")
    # Evaluate with one controlling input; remaining inputs are irrelevant.
    return eval_gate(gtype, [control, control ^ 1])


def collapse_faults(
    circuit: Circuit,
    include_inputs: bool = True,
    dominance: bool = True,
) -> CollapsedFaults:
    """Structurally collapse the stuck-at universe of ``circuit``.

    Equivalence rules (applied when the fanin signal has exactly one fanout
    and is not itself a primary output, so the signal fault coincides with
    the pin fault):

    * AND/NAND/OR/NOR: input s-a-*c* ≡ output s-a-(gate value under a
      controlling input), where *c* is the controlling value.
    * BUF/NOT: both input faults map through the gate function.

    Dominance (same fanout-free condition): the output fault opposite to
    the controlled value is dominated by any input fault at the
    non-controlling value and is dropped.  XOR/XNOR gates admit neither
    rule.  DFFs are sequential boundaries and are never collapsed across.
    """
    universe = full_stuck_at_universe(circuit, include_inputs=include_inputs)
    in_universe = set(universe)
    fanouts = circuit.fanouts()
    outputs = set(circuit.outputs)
    uf = _UnionFind()
    for fault in universe:
        uf.find(fault)

    def fanout_free(signal: str) -> bool:
        return len(fanouts[signal]) == 1 and signal not in outputs

    dropped: set[StuckAtFault] = set()
    for gate in circuit:
        if not gate.is_functional:
            continue
        gtype = gate.gtype
        if gtype in (GateType.CONST0, GateType.CONST1):
            continue
        if gtype in (GateType.BUF, GateType.NOT):
            (fin,) = gate.fanins
            if not fanout_free(fin):
                continue
            for value in (0, 1):
                a = StuckAtFault(fin, value)
                z = StuckAtFault(gate.name, eval_gate(gtype, [value]))
                if a in in_universe and z in in_universe:
                    uf.union(a, z)
            continue
        control = CONTROLLING_VALUE[gtype]
        if control is None:  # XOR/XNOR: no structural collapsing
            continue
        controlled_out = _controlled_output(gtype)
        any_free_fanin = False
        for fin in set(gate.fanins):
            if not fanout_free(fin):
                continue
            any_free_fanin = True
            a = StuckAtFault(fin, control)
            z = StuckAtFault(gate.name, controlled_out)
            if a in in_universe and z in in_universe:
                uf.union(a, z)
        if dominance and any_free_fanin:
            dominated = StuckAtFault(gate.name, controlled_out ^ 1)
            if dominated in in_universe:
                dropped.add(dominated)

    groups: dict[object, list[StuckAtFault]] = {}
    for fault in universe:
        groups.setdefault(uf.find(fault), []).append(fault)
    classes = tuple(
        tuple(sorted(group, key=lambda f: (f.signal, f.value)))
        for group in groups.values()
    )
    classes = tuple(sorted(classes, key=lambda cls: (cls[0].signal, cls[0].value)))
    representative = {
        fault: cls[0] for cls in classes for fault in cls
    }
    # A dominance drop removes the *class* of the dominated output fault
    # (equivalent faults share all tests, so dominance transfers).  A class
    # is only dropped when every drop-marked member agrees; since classes
    # merge output faults of chained BUF/NOT gates this is the common case.
    dropped_reps = frozenset(representative[f] for f in dropped)
    return CollapsedFaults(
        universe=universe,
        classes=classes,
        representative=representative,
        dominance_dropped=dropped_reps,
    )


def checkpoint_signals(circuit: Circuit) -> set[str]:
    """Primary inputs plus fanout stems (signals driving ≥ 2 gates).

    The checkpoint theorem states that a test set detecting all stuck-at
    faults on the checkpoints of an irredundant combinational circuit
    detects all single stuck-at faults.  In the signal-level fault model
    the classic "fanout branches" collapse onto their stems.

    >>> from repro.circuits.library import c17
    >>> sorted(checkpoint_signals(c17()))
    ['G1', 'G11', 'G16', 'G2', 'G3', 'G6', 'G7']
    """
    fanouts = circuit.fanouts()
    points = set(circuit.inputs)
    for name, outs in fanouts.items():
        if len(outs) >= 2:
            points.add(name)
    return points
