"""Error models, injection and fault-list tooling.

Covers the paper's 1-4 gate-change errors (ground truth for Tables 2/3)
plus the classic stuck-at machinery — fault universe and structural
collapsing — that the production-test motivation (§1, ref [1]) builds on.
"""

from .models import (
    ErrorModel,
    ExtraWireError,
    GateChangeError,
    InverterError,
    MissingWireError,
    StuckAtFault,
    WrongWireError,
)
from .inject import (
    Injection,
    apply_error,
    inject_errors,
    random_gate_changes,
    random_wire_errors,
)
from .collapse import (
    CollapsedFaults,
    full_stuck_at_universe,
    collapse_faults,
    checkpoint_signals,
)

__all__ = [
    "ErrorModel",
    "GateChangeError",
    "StuckAtFault",
    "InverterError",
    "WrongWireError",
    "ExtraWireError",
    "MissingWireError",
    "Injection",
    "apply_error",
    "inject_errors",
    "random_gate_changes",
    "random_wire_errors",
    "CollapsedFaults",
    "full_stuck_at_universe",
    "collapse_faults",
    "checkpoint_signals",
]
