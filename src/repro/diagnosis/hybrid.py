"""Hybrid simulation/SAT diagnosis — the paper's future-work section (§6).

The paper closes with two concrete hybrid directions; both are implemented
here as "the initial steps towards building a hybrid technique":

1. **PT-guided SAT** (:func:`pt_guided_sat_diagnose`) — "The fast engines
   of BSIM and COV can be used to direct the SAT-search by tuning the
   decision heuristics of the solver."  Path tracing runs first; every
   select variable's VSIDS activity is seeded with its mark count ``M(g)``
   (and its phase preset to *selected* for the top candidates), steering
   the solver toward likely error sites.  The solution space is untouched
   — only the search order changes — so results equal BSAT's.

2. **Correction repair** (:func:`repair_correction_sat`) — "choose an
   initial correction (that may not be valid) and use SAT-based diagnosis
   to turn it into a valid correction."  Starting from e.g. a COV solution,
   multiplexers are inserted only in a structural neighbourhood of the
   initial correction, with the radius grown until valid corrections
   appear.  The search space per attempt is a small fraction of BSAT's.

Both ride one :class:`~repro.diagnosis.core.DiagnosisSession`: the
path-tracing guidance comes from the session's cached result (the
pre-refactor code re-simulated the implementation once per test, per
call) and instance construction goes through the session, so repeated
hybrid calls on the same problem share every derived artifact.  Since
the master-encoding overhaul each repair radius is an assumption-pinned
*view* over the session's one master CNF
(:meth:`~repro.diagnosis.satdiag.DiagnosisInstance.derive_view`) —
growing the radius derives a new pin tuple, not a new instance.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterable, Sequence

from ..circuits.netlist import Circuit
from ..testgen.testset import TestSet
from .base import Correction, SimDiagnosisResult, SolutionSetResult
from .core import DiagnosisSession, register_strategy
from .satdiag import basic_sat_diagnose

__all__ = [
    "pt_guided_sat_diagnose",
    "repair_correction_sat",
    "structural_neighbourhood",
]


def pt_guided_sat_diagnose(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    policy: str = "first",
    phase_top: int = 8,
    activity_scale: float = 10.0,
    sim_result: SimDiagnosisResult | None = None,
    select_zero_clauses: bool = False,
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
    **kwargs,
) -> SolutionSetResult:
    """Hybrid 1: seed the SAT decision heuristic with path-tracing marks.

    ``activity_scale`` converts mark counts into VSIDS bumps;
    ``phase_top`` select variables with the highest marks also get their
    phase preset to 1 (try "this gate is the error" first).
    """
    if session is None:
        session = DiagnosisSession(circuit, tests)
    start = time.perf_counter()
    if sim_result is None:
        # Cached on the session: the guidance pass costs nothing when the
        # caller (or an earlier strategy) already path-traced these tests.
        sim_result = session.sim_result(policy=policy)
    instance = session.instance(
        k,
        select_zero_clauses=select_zero_clauses,
        solver_backend=solver_backend,
    )
    marks = sim_result.marks
    for gate, select_var in instance.select_of.items():
        count = marks.get(gate, 0)
        if count:
            instance.solver.bump_activity(select_var, count * activity_scale)
    ranked = sorted(marks, key=lambda g: -marks[g])
    for gate in ranked[:phase_top]:
        if gate in instance.select_of:
            instance.solver.set_phase(instance.select_of[gate], True)
    guidance_time = time.perf_counter() - start

    result = basic_sat_diagnose(
        circuit, tests, k, instance=instance, **kwargs
    )
    extras = dict(result.extras)
    extras["guidance_time"] = guidance_time
    extras["sim_result"] = sim_result
    return SolutionSetResult(
        approach="HYBRID/pt-guided",
        k=k,
        solutions=result.solutions,
        complete=result.complete,
        t_build=instance.build_time + guidance_time,
        t_first=result.t_first,
        t_all=result.t_all,
        extras=extras,
    )


def structural_neighbourhood(
    circuit: Circuit, seeds: Iterable[str], radius: int
) -> set[str]:
    """Functional gates within ``radius`` undirected hops of ``seeds``."""
    fanouts = circuit.fanouts()
    dist: dict[str, int] = {s: 0 for s in seeds}
    queue: deque[str] = deque(dist)
    while queue:
        name = queue.popleft()
        d = dist[name]
        if d >= radius:
            continue
        gate = circuit.node(name)
        for neighbour in (*gate.fanins, *fanouts[name]):
            if neighbour not in dist:
                dist[neighbour] = d + 1
                queue.append(neighbour)
    gates = set(circuit.gate_names)
    return {g for g in dist if g in gates}


def repair_correction_sat(
    circuit: Circuit,
    tests: TestSet,
    initial: Correction | Sequence[str],
    k: int | None = None,
    max_radius: int | None = None,
    select_zero_clauses: bool = False,
    session: DiagnosisSession | None = None,
    **kwargs,
) -> SolutionSetResult:
    """Hybrid 2: repair a (possibly invalid) initial correction with SAT.

    Runs BSAT restricted to the structural neighbourhood of ``initial``,
    growing the radius from 0 until solutions appear (or ``max_radius`` is
    exhausted, falling back to the full gate set).  ``k`` defaults to
    ``len(initial)`` — the repair looks for a correction of the same size
    near the initial guess.  All per-radius instances are built through
    the shared session.
    """
    initial = frozenset(initial)
    if not initial:
        raise ValueError("initial correction must not be empty")
    if k is None:
        k = len(initial)
    if session is None:
        session = DiagnosisSession(circuit, tests)
    start = time.perf_counter()
    if max_radius is None:
        max_radius = 6
    last: SolutionSetResult | None = None
    for radius in range(max_radius + 1):
        suspects = sorted(structural_neighbourhood(circuit, initial, radius))
        if not suspects:
            continue
        result = basic_sat_diagnose(
            circuit,
            tests,
            k,
            suspects=suspects,
            select_zero_clauses=select_zero_clauses,
            approach_name="HYBRID/repair",
            session=session,
            **kwargs,
        )
        last = result
        if result.solutions:
            extras = dict(result.extras)
            extras["radius"] = radius
            extras["suspects"] = len(suspects)
            extras["initial"] = initial
            return SolutionSetResult(
                approach="HYBRID/repair",
                k=k,
                solutions=result.solutions,
                complete=result.complete,
                t_build=result.t_build,
                t_first=result.t_first,
                t_all=time.perf_counter() - start,
                extras=extras,
            )
    # Neighbourhood never produced a valid correction: full BSAT fallback.
    result = basic_sat_diagnose(
        circuit,
        tests,
        k,
        select_zero_clauses=select_zero_clauses,
        approach_name="HYBRID/repair-fallback",
        session=session,
        **kwargs,
    )
    extras = dict(result.extras)
    extras["radius"] = None
    extras["initial"] = initial
    return SolutionSetResult(
        approach="HYBRID/repair-fallback",
        k=k,
        solutions=result.solutions,
        complete=result.complete,
        t_build=result.t_build,
        t_first=result.t_first,
        t_all=time.perf_counter() - start,
        extras=extras,
    )


@register_strategy(
    "pt-guided", "BSAT with VSIDS activity/phase seeded from path tracing"
)
def _pt_guided_strategy(
    session: DiagnosisSession, k: int = 1, **options
) -> SolutionSetResult:
    return pt_guided_sat_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )


@register_strategy(
    "repair", "SAT repair of an initial correction inside a neighbourhood"
)
def _repair_strategy(
    session: DiagnosisSession,
    k: int | None = None,
    initial: Correction | Sequence[str] = (),
    **options,
) -> SolutionSetResult:
    return repair_correction_sat(
        session.circuit,
        session.tests,
        initial,
        k,
        session=session,
        **options,
    )
