"""Advanced SAT-based diagnosis heuristics (paper §2.3, ref [17]).

Three of the heuristics the paper credits with >100x speed-ups over BSAT:

1. **Select-zero clauses** ``(s_g ∨ ¬c_g^i)`` — while a multiplexer is
   unselected its free value is pinned to 0, removing up to ``|I|·m``
   pointless decisions.  (Plumbed through
   :func:`~repro.diagnosis.satdiag.build_diagnosis_instance`; exposed here
   as a convenience wrapper.)
2. **Dominator-based two-pass diagnosis** — pass 1 inserts multiplexers
   only at *dominator representatives* (every gate's effect on the outputs
   factors through its nearest dominating gate, so a coarse solution always
   exists there); pass 2 refines inside the implicated dominated regions to
   recover full granularity.
3. **Test-set partitioning** — diagnose chunk by chunk, narrowing the
   suspect set to the union of the previous chunk's solutions, and finish
   with an exact run of the full test-set over the surviving suspects.

Passes 2/3 are heuristics exactly as in the paper: they are exact for
single errors (proved in the module tests) and can in principle lose
multi-error solutions whose gates never surface in earlier passes.
"""

from __future__ import annotations

import time

from ..circuits.netlist import Circuit
from ..circuits.structure import dominated_region, immediate_dominators
from ..testgen.testset import TestSet
from .base import SolutionSetResult
from .core import DiagnosisSession, register_strategy
from .satdiag import basic_sat_diagnose

__all__ = [
    "dominator_representatives",
    "select_zero_sat_diagnose",
    "dominator_sat_diagnose",
    "partitioned_sat_diagnose",
]


def dominator_representatives(circuit: Circuit) -> dict[str, str]:
    """Map every functional gate to its pass-1 representative.

    The representative of ``g`` is the nearest *gate* strictly dominating
    ``g`` on all its paths to the outputs, or ``g`` itself when no such
    gate exists (e.g. ``g`` feeds outputs through reconvergent branches).
    Any correction at ``g`` is subsumed by a per-test free value at its
    representative, so pass 1 is conservative.
    """
    idom = immediate_dominators(circuit)
    gate_names = set(circuit.gate_names)
    rep: dict[str, str] = {}
    for g in circuit.gate_names:
        current = idom.get(g)
        while current is not None and current not in gate_names:
            current = idom.get(current)
        rep[g] = current if current is not None else g
    return rep


def select_zero_sat_diagnose(
    circuit: Circuit, tests: TestSet, k: int, **kwargs
) -> SolutionSetResult:
    """BSAT plus the ``s=0 → c=0`` clauses (heuristic 1).

    The solution space is untouched — only the search is pruned — so the
    result must equal plain BSAT's (asserted in the test-suite).
    """
    result = basic_sat_diagnose(
        circuit, tests, k, select_zero_clauses=True, **kwargs
    )
    return SolutionSetResult(
        approach="BSAT+sc0",
        k=result.k,
        solutions=result.solutions,
        complete=result.complete,
        t_build=result.t_build,
        t_first=result.t_first,
        t_all=result.t_all,
        extras=result.extras,
    )


def dominator_sat_diagnose(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    select_zero_clauses: bool = True,
    **kwargs,
) -> SolutionSetResult:
    """Two-pass dominator diagnosis (heuristic 2).

    Pass 1 restricts multiplexers to dominator representatives; pass 2
    re-runs with multiplexers at the implicated representatives *plus*
    everything inside their dominated regions, recovering the fine
    granularity of BSAT for errors inside those regions.
    """
    start = time.perf_counter()
    rep = dominator_representatives(circuit)
    pass1_suspects = sorted(set(rep.values()))
    pass1 = basic_sat_diagnose(
        circuit,
        tests,
        k,
        suspects=pass1_suspects,
        select_zero_clauses=select_zero_clauses,
        approach_name="advSAT/pass1",
        **kwargs,
    )
    implicated: set[str] = set()
    for sol in pass1.solutions:
        implicated |= sol
    gate_names = set(circuit.gate_names)
    pass2_suspects: set[str] = set(implicated)
    for head in implicated:
        pass2_suspects |= dominated_region(circuit, head) & gate_names
    if not pass2_suspects:
        # No pass-1 solution: report the (empty) pass-1 result directly.
        return SolutionSetResult(
            approach="advSAT",
            k=k,
            solutions=(),
            complete=pass1.complete,
            t_build=pass1.t_build,
            t_first=pass1.t_first,
            t_all=time.perf_counter() - start,
            extras={"pass1": pass1, "pass2_suspects": 0},
        )
    pass2 = basic_sat_diagnose(
        circuit,
        tests,
        k,
        suspects=sorted(pass2_suspects),
        select_zero_clauses=select_zero_clauses,
        approach_name="advSAT",
        **kwargs,
    )
    return SolutionSetResult(
        approach="advSAT",
        k=k,
        solutions=pass2.solutions,
        complete=pass1.complete and pass2.complete,
        t_build=pass1.t_build + pass2.t_build,
        t_first=pass1.t_first,
        t_all=time.perf_counter() - start,
        extras={
            "pass1": pass1,
            "pass2_suspects": len(pass2_suspects),
            "pass1_suspects": len(pass1_suspects),
        },
    )


def partitioned_sat_diagnose(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    chunk: int = 8,
    select_zero_clauses: bool = True,
    **kwargs,
) -> SolutionSetResult:
    """Test-set partitioning (heuristic 3).

    Each chunk is diagnosed over the suspects surviving the previous
    chunks; a final run over the *full* test-set (restricted to the
    surviving suspects) guarantees every reported solution is a valid
    correction for all of ``T``.
    """
    start = time.perf_counter()
    parts = tests.partition(chunk)
    suspects: list[str] | None = None
    stage_results: list[SolutionSetResult] = []
    for part in parts[:-1] if len(parts) > 1 else []:
        stage = basic_sat_diagnose(
            circuit,
            part,
            k,
            suspects=suspects,
            select_zero_clauses=select_zero_clauses,
            approach_name="advSAT/chunk",
            **kwargs,
        )
        stage_results.append(stage)
        surviving: set[str] = set()
        for sol in stage.solutions:
            surviving |= sol
        if not surviving:
            return SolutionSetResult(
                approach="advSAT/part",
                k=k,
                solutions=(),
                complete=stage.complete,
                t_build=sum(s.t_build for s in stage_results),
                t_first=0.0,
                t_all=time.perf_counter() - start,
                extras={"stages": len(stage_results)},
            )
        suspects = sorted(surviving)
    final = basic_sat_diagnose(
        circuit,
        tests,
        k,
        suspects=suspects,
        select_zero_clauses=select_zero_clauses,
        approach_name="advSAT/part",
        **kwargs,
    )
    return SolutionSetResult(
        approach="advSAT/part",
        k=k,
        solutions=final.solutions,
        complete=final.complete and all(s.complete for s in stage_results),
        t_build=final.t_build + sum(s.t_build for s in stage_results),
        t_first=final.t_first,
        t_all=time.perf_counter() - start,
        extras={
            "stages": len(stage_results) + 1,
            "final_suspects": len(suspects) if suspects else circuit.num_gates,
        },
    )


@register_strategy(
    "bsat-select-zero", "BSAT plus the s=0 -> c=0 pruning clauses"
)
def _select_zero_strategy(
    session: DiagnosisSession, k: int = 1, **options
) -> SolutionSetResult:
    return select_zero_sat_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )


@register_strategy(
    "bsat-dominator", "two-pass dominator diagnosis (coarse then refine)"
)
def _dominator_strategy(
    session: DiagnosisSession, k: int = 1, **options
) -> SolutionSetResult:
    return dominator_sat_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )


@register_strategy(
    "bsat-partitioned", "test-set partitioning with surviving-suspect funnel"
)
def _partitioned_strategy(
    session: DiagnosisSession, k: int = 1, **options
) -> SolutionSetResult:
    return partitioned_sat_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )
