"""SAT-based diagnosis — the paper's BSAT (Figs. 2 and 3).

The diagnosis instance ``F`` is constructed exactly as in the paper:

* one copy of the implementation per test ``(t_i, o_i, v_i)``, inputs
  constrained to ``t_i`` and the erroneous output to its correct value
  ``v_i`` (other outputs are free — Definition 1 semantics; the stricter
  all-outputs mode is available when tests carry golden values);
* a correction multiplexer at every candidate gate ``g``: the select line
  ``s_g`` is *shared across copies* while the injected value ``c_g^i`` is
  free per test — so a selected gate may realize any Boolean function;
* a cardinality bound: at most ``i`` select lines may be 1, with ``i``
  incremented from 1 to ``k`` while blocking found solutions — which makes
  every reported correction contain only essential candidates (Lemma 3).

``BasicSATDiagnose`` returns every solution; each solution also carries the
per-test correction values ("the 'correct' function of the gate", §4).

Instance lifetime
-----------------

An instance is built **once** and then serves any number of queries on
one persistent incremental solver (see the lifetime diagram in the
:mod:`repro.sat` docstring): the cardinality bound is an
:class:`~repro.sat.cardinality.IncrementalTotalizer` that extends in
place when a later query needs a larger ``k``, and each enumeration runs
under a fresh *activation literal* so its blocking clauses retract when
the query ends.

Sessions go one step further with a **master encoding**: one CNF with
correction muxes on *every* functional gate (plus the ``(s_g ∨ ¬c_g^i)``
pruning clauses, so an unselected mux propagates instead of costing
decisions), built once per backend.  Any suspect pool is then a *view*
(:meth:`DiagnosisInstance.derive_view`): the same solver, queried under
assumptions that pin the non-suspect selects to 0 — deriving a pool
instance costs a tuple of pin literals instead of a CNF rebuild, and the
solver's longest-common-prefix trail reuse keeps the pins' implied trail
segment alive across bound bumps and pool churn.
:meth:`repro.diagnosis.core.DiagnosisSession.instance` caches one master
per backend and one view per (suspects, options), so ``bsat``,
``bsat-auto-k``, the hybrids (repair radii), the partitioned funnel and
the IHS loop all share one encoded instance — no per-pool rebuilds.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..circuits.netlist import Circuit
from ..circuits.structure import fanin_cone
from ..sat.budget import SearchInterrupted
from ..sat.cardinality import IncrementalTotalizer
from ..sat.cnf import CNF
from ..sat.enumerate import _DELTA_KEYS, enumerate_solutions
from ..sat.solver import Solver
from ..sat.tseitin import encode_gate, encode_mux
from ..testgen.testset import TestSet
from .base import Correction, SolutionSetResult
from .core import ALL_SYSTEM_KINDS, DiagnosisSession, register_strategy

__all__ = [
    "DiagnosisInstance",
    "MasterEncodingSkeleton",
    "build_diagnosis_instance",
    "build_master_instance",
    "basic_sat_diagnose",
    "auto_k_sat_diagnose",
]


@dataclass
class DiagnosisInstance:
    """The SAT instance ``F`` plus the bookkeeping to interpret models.

    ``circuit``/``tests`` are None on instances built by a non-circuit
    :class:`~repro.diagnosis.system.SystemDescription`; those carry the
    observation count in ``num_observations`` instead.
    """

    circuit: Circuit | None
    tests: TestSet | None
    cnf: CNF
    solver: Solver
    select_of: dict[str, int]
    gate_of: dict[int, str]
    correction_of: dict[tuple[int, str], int]
    signal_of: dict[tuple[int, str], int]
    bound_outputs: list[int]
    k_max: int
    suspects: tuple[str, ...]
    build_time: float = 0.0
    extras: dict[str, object] = field(default_factory=dict)
    #: Incremental totalizer behind ``bound_outputs`` (present on all new
    #: instances; None only for hand-built legacy instances).
    totalizer: IncrementalTotalizer | None = None
    #: Persistent instances live in a session cache and serve many
    #: queries; their enumerations are scoped by activation literals and
    #: their complete results are memoized in ``results_cache``.
    persistent: bool = False
    solver_backend: str | None = None
    results_cache: dict = field(default_factory=dict)
    _scope_count: int = 0
    #: ``¬s_g`` literals pinning non-suspect selects to 0 — non-empty only
    #: on views derived from a session master encoding.
    pin_assumptions: tuple[int, ...] = ()
    #: The master instance a view was derived from (None: standalone).
    master: "DiagnosisInstance | None" = None
    #: Observation count for instances without a test set (non-circuit
    #: system descriptions); None means ``len(tests)``.
    num_observations: int | None = None

    @property
    def observation_count(self) -> int:
        if self.num_observations is not None:
            return self.num_observations
        return len(self.tests)

    def base_assumptions(self) -> list[int]:
        """Assumptions every query on this instance must include.

        Empty on standalone instances; on a master view these are the
        ``¬s_g`` pins that restrict the encoding to the view's suspect
        pool.  Callers put them *first* in the assumption list so the
        solver's longest-common-prefix trail reuse keeps their implied
        trail segment alive across bound bumps and repeated queries.
        """
        return list(self.pin_assumptions)

    def bound_assumptions(self, bound: int) -> list[int]:
        """Assumption literals enforcing "at most ``bound`` selects"."""
        if self.totalizer is not None:
            # Views share the master's totalizer, whose outputs may have
            # been extended through a sibling view — its own method
            # always sees the current outputs.
            return self.totalizer.bound_assumptions(bound)
        if bound < 0:
            raise ValueError("bound must be non-negative")
        if bound >= len(self.bound_outputs):
            return []
        return [-self.bound_outputs[bound]]

    def extend_k(self, k_max: int) -> None:
        """Grow the cardinality bound in place (incremental totalizer)."""
        if k_max <= self.k_max:
            return
        if self.master is not None:
            self.master.extend_k(k_max)
            self.bound_outputs = self.master.bound_outputs
            self.k_max = k_max
            self.results_cache.clear()  # cached keys are per-k sweeps
            return
        if self.totalizer is None:
            raise ValueError(
                "instance was built without an incremental totalizer"
            )
        self.totalizer.extend(min(k_max, len(self.suspects)))
        self.bound_outputs = self.totalizer.outputs
        self.k_max = k_max
        self.results_cache.clear()  # cached keys are per-k sweeps

    def derive_view(
        self, suspects: Sequence[str] | None
    ) -> "DiagnosisInstance":
        """A suspect-pool *view* over this (master) instance.

        The view shares the solver, CNF, totalizer and correction
        bookkeeping; it differs only in its ``select_of``/``suspects``
        projection and in :meth:`base_assumptions`, which pin every
        non-suspect select to 0.  Deriving a view is O(|gates|) — no CNF
        is built — and its solution sets equal a freshly built
        ``build_diagnosis_instance(suspects=...)`` by construction (the
        pinned mux collapses to the direct gate encoding).
        """
        if suspects is None:
            suspect_list = self.suspects
        else:
            suspect_list = tuple(dict.fromkeys(suspects))
        select = self.select_of
        for s in suspect_list:
            if s not in select:
                raise ValueError(
                    f"suspect {s!r} is not a candidate gate of the "
                    "master encoding"
                )
        keep = set(suspect_list)
        pins = tuple(
            -select[g] for g in self.suspects if g not in keep
        )
        return DiagnosisInstance(
            circuit=self.circuit,
            tests=self.tests,
            cnf=self.cnf,
            solver=self.solver,
            select_of={g: select[g] for g in suspect_list},
            gate_of={select[g]: g for g in suspect_list},
            correction_of=self.correction_of,
            signal_of=self.signal_of,
            bound_outputs=self.bound_outputs,
            k_max=self.k_max,
            suspects=suspect_list,
            build_time=self.build_time,  # the encoding the view rides on
            totalizer=self.totalizer,
            persistent=True,
            solver_backend=self.solver_backend,
            pin_assumptions=pins,
            master=self,
            num_observations=self.num_observations,
        )

    def begin_scope(self) -> int:
        """Open an enumeration scope: returns a fresh activation literal.

        Assume it on every solve and append its negation to every
        blocking clause; close with :meth:`end_scope` so the blocks
        retract and the next query sees the unblocked instance.  Views
        delegate to their master (one scope counter per encoded CNF).
        """
        if self.master is not None:
            return self.master.begin_scope()
        self._scope_count += 1
        act = self.cnf.new_var(f"act:{self._scope_count}")
        self.solver.ensure_vars(act)
        return act

    def end_scope(self, act: int) -> None:
        """Close an enumeration scope.

        The scope's blocking clauses all carry ``¬act``, so simply never
        assuming ``act`` again retracts them: any later model is free to
        set ``act`` false (the saved phase tries that first).  No root
        unit is pushed into the *solver* — pinning ``¬act`` at level 0
        would reset the whole trail (a unit insertion cancels to the
        root) and defeat the cross-query pin-prefix trail reuse the
        master views rely on.  The CNF mirror does record the
        retirement, so a freshly rebuilt solver pins retired scopes.
        """
        if self.master is not None:
            self.master.end_scope(act)
            return
        self.cnf.add_clause([-act])

    def solution_from_model(self) -> Correction:
        """Selected gates in the solver's current model."""
        return frozenset(
            g for g, s in self.select_of.items() if self.solver.value(s)
        )

    def correction_values(self, solution: Iterable[str]) -> dict[str, list[int]]:
        """Per-test injected values ``c_g^i`` for each gate of ``solution``.

        Must be called while the solver still holds the model.  These values
        are the witness of *how* to fix each gate per test — the paper notes
        they can be exploited to determine the corrected function.
        """
        result: dict[str, list[int]] = {}
        for gate in solution:
            vals: list[int] = []
            for i in range(self.observation_count):
                var = self.correction_of.get((i, gate))
                # Master encodings only carry a witness where the gate
                # reaches the test's constrained cone; elsewhere the
                # injected value is a don't-care (-1).
                val = None if var is None else self.solver.value(var)
                vals.append(-1 if val is None else int(val))
            result[gate] = vals
        return result


def build_diagnosis_instance(
    circuit: Circuit,
    tests: TestSet,
    k_max: int,
    suspects: Sequence[str] | None = None,
    constrain_all_outputs: bool = False,
    select_zero_clauses: bool = False,
    solver: Solver | None = None,
    solver_backend: str | None = None,
    persistent: bool = False,
) -> DiagnosisInstance:
    """Construct the SAT instance of Fig. 2(b)/Fig. 3 step (1).

    Parameters
    ----------
    suspects:
        Gates receiving a correction multiplexer (default: every functional
        gate — BSAT; the advanced approach passes dominators here).
    constrain_all_outputs:
        Constrain every primary output to its golden value (requires tests
        built with ``attach_expected``); default is the paper's
        single-output semantics.
    select_zero_clauses:
        Add the advanced heuristic clauses ``(s_g ∨ ¬c_g^i)`` forcing the
        free value to 0 while its multiplexer is unselected, which "prevents
        up to |I| decisions of the SAT-solver" (§2.3).
    solver_backend:
        Registered SAT backend name (:mod:`repro.sat.backends`); None =
        the default arena solver.  Mutually exclusive with ``solver``.
    persistent:
        Mark the instance as living in a session cache: enumerations over
        it are scoped with activation literals and complete results are
        memoized (see :func:`basic_sat_diagnose`).
    """
    start = time.perf_counter()
    suspect_list = _validated_suspects(circuit, tests, suspects)
    suspect_set = set(suspect_list)

    cnf = CNF()
    select_of = {g: cnf.new_var(f"s:{g}") for g in suspect_list}
    correction_of: dict[tuple[int, str], int] = {}

    def encode_suspect(i, name, gate, fanin_vars):
        raw = cnf.new_var(f"t{i}:{name}:raw")
        encode_gate(cnf, gate.gtype, raw, fanin_vars)
        c_var = cnf.new_var(f"t{i}:c:{name}")
        correction_of[(i, name)] = c_var
        eff = cnf.new_var(f"t{i}:{name}")
        encode_mux(cnf, eff, select_of[name], c_var, raw)
        if select_zero_clauses:
            cnf.add_clause([select_of[name], -c_var])
        return eff

    signal_of = _encode_test_copies(
        circuit, tests, cnf, suspect_set, constrain_all_outputs,
        encode_suspect,
    )
    return _finish_instance(
        circuit, tests, cnf, select_of, correction_of, signal_of,
        suspect_list, k_max, solver, solver_backend, persistent, start,
    )


def _validated_suspects(circuit, tests, suspects):
    """Shared builder front door: structural checks + suspect list."""
    if not circuit.is_combinational:
        raise ValueError(
            "diagnosis instances require a combinational circuit; "
            "apply repro.circuits.to_combinational first"
        )
    if not len(tests):
        raise ValueError("diagnosis requires at least one failing test")
    if suspects is None:
        return circuit.gate_names
    suspect_list = tuple(dict.fromkeys(suspects))
    for s in suspect_list:
        if not circuit.node(s).is_functional:
            raise ValueError(f"suspect {s!r} is not a functional gate")
    return suspect_list


def _encode_test_copies(
    circuit: Circuit,
    tests: TestSet,
    cnf: CNF,
    suspect_set: set[str],
    constrain_all_outputs: bool,
    encode_suspect,
    cone_for=None,
) -> dict[tuple[int, str], int]:
    """One circuit copy per test: inputs pinned to the vector, the
    constrained output(s) asserted, suspect gates delegated to
    ``encode_suspect(i, name, gate, fanin_vars) -> eff var`` (which owns
    the mux flavour and the correction bookkeeping).  ``cone_for(test)``
    optionally restricts a copy to a signal subset (the master's
    fan-in-cone optimization).  Returns ``signal_of``."""
    signal_of: dict[tuple[int, str], int] = {}
    topo = circuit.topological_order()
    for i, test in enumerate(tests):
        if constrain_all_outputs and test.expected_outputs is None:
            raise ValueError(
                "constrain_all_outputs requires tests with expected_outputs"
            )
        cone = None if cone_for is None else cone_for(test)
        for name in topo:
            if cone is not None and name not in cone:
                continue
            gate = circuit.node(name)
            if gate.is_input:
                var = cnf.new_var(f"t{i}:{name}")
                signal_of[(i, name)] = var
                try:
                    value = test.vector[name]
                except KeyError:
                    raise ValueError(
                        f"test {i} does not assign primary input {name!r}"
                    ) from None
                cnf.add_clause([var if value else -var])
                continue
            fanin_vars = [signal_of[(i, f)] for f in gate.fanins]
            if name in suspect_set:
                signal_of[(i, name)] = encode_suspect(
                    i, name, gate, fanin_vars
                )
            else:
                var = cnf.new_var(f"t{i}:{name}")
                encode_gate(cnf, gate.gtype, var, fanin_vars)
                signal_of[(i, name)] = var
        if constrain_all_outputs:
            assert test.expected_outputs is not None
            for out in circuit.outputs:
                var = signal_of[(i, out)]
                expected = test.expected_outputs[out]
                cnf.add_clause([var if expected else -var])
        else:
            var = signal_of[(i, test.output)]
            cnf.add_clause([var if test.value else -var])
    return signal_of


def _finish_instance(
    circuit: Circuit | None,
    tests: TestSet | None,
    cnf: CNF,
    select_of: dict[str, int],
    correction_of: dict[tuple[int, str], int],
    signal_of: dict[tuple[int, str], int],
    suspect_list: tuple[str, ...],
    k_max: int,
    solver: Solver | None,
    solver_backend: str | None,
    persistent: bool,
    start: float,
    num_observations: int | None = None,
) -> DiagnosisInstance:
    """Shared builder tail: totalizer, solver hand-off, instance."""
    tot = IncrementalTotalizer(
        cnf,
        [select_of[g] for g in suspect_list],
        min(k_max, len(suspect_list)),
    )
    built_solver = cnf.to_solver(solver, backend=solver_backend)
    tot.bind_solver(built_solver)
    return DiagnosisInstance(
        circuit=circuit,
        tests=tests,
        cnf=cnf,
        solver=built_solver,
        select_of=select_of,
        gate_of={v: g for g, v in select_of.items()},
        correction_of=correction_of,
        signal_of=signal_of,
        bound_outputs=tot.outputs,
        k_max=k_max,
        suspects=suspect_list,
        build_time=time.perf_counter() - start,
        totalizer=tot,
        persistent=persistent,
        solver_backend=solver_backend,
        num_observations=num_observations,
    )


@dataclass(frozen=True)
class _ConeTemplate:
    """One output cone of the master encoding, pre-encoded once per design.

    Variable space: ids ``1..S`` are the shared select lines (one per
    suspect, in suspect order); ids ``S+1..`` are *local* signals of one
    test copy, allocated in topological walk order.  ``items`` replays
    the copy in emission order — ``("input", name, var)`` marks where the
    per-test input unit clause goes, ``("clause", lits)`` is a structural
    clause to stamp — so instantiation reproduces the exact variable
    numbering and clause order of a from-scratch master build.
    """

    suffixes: tuple[str | None, ...]
    items: tuple[tuple, ...]
    signal: dict[str, int]
    eff: dict[str, int]


class MasterEncodingSkeleton:
    """The observation-independent half of the master correction encoding.

    Built **once per circuit design** and shared by every device (test
    set) of that design: the suspect list with its fixed select-variable
    layout, per-output fan-in cones, and per-cone clause *templates*
    (:class:`_ConeTemplate`).  :meth:`instantiate` then stamps one
    template per test — a tuple-translation pass, no topological walk,
    no Tseitin re-encoding — and finishes with the totalizer and solver
    hand-off.  ``instantiate`` output is bit-identical to the historic
    monolithic builder (same variable ids, names and clause order), so
    the master-encoding parity suite pins the refactor.

    Template construction is lazy per output and guarded by a lock, so a
    skeleton can be shared by concurrent service shards.
    """

    def __init__(
        self, circuit: Circuit, constrain_all_outputs: bool = False
    ) -> None:
        if not circuit.is_combinational:
            raise ValueError(
                "diagnosis instances require a combinational circuit; "
                "apply repro.circuits.to_combinational first"
            )
        self.circuit = circuit
        self.constrain_all_outputs = constrain_all_outputs
        self.suspects: tuple[str, ...] = circuit.gate_names
        self._suspect_set = set(self.suspects)
        self._select_index = {
            g: j + 1 for j, g in enumerate(self.suspects)
        }
        self._topo = circuit.topological_order()
        self._cones: dict[str, frozenset[str]] = {}
        self._templates: dict[str | None, _ConeTemplate] = {}
        self._lock = threading.Lock()
        self.stats = {"templates_built": 0, "instances": 0}

    # ------------------------------------------------------------------
    # per-design artifacts
    # ------------------------------------------------------------------
    def output_cone(self, out: str) -> frozenset[str]:
        """Fan-in cone of ``out`` (cached per design)."""
        cached = self._cones.get(out)
        if cached is None:
            cached = frozenset(
                fanin_cone(self.circuit, out, include_self=True)
            )
            self._cones[out] = cached
        return cached

    def _template(self, key: str | None) -> _ConeTemplate:
        tpl = self._templates.get(key)
        if tpl is not None:
            return tpl
        with self._lock:
            tpl = self._templates.get(key)
            if tpl is None:
                tpl = self._build_template(key)
                self._templates[key] = tpl
                self.stats["templates_built"] += 1
        return tpl

    def _build_template(self, key: str | None) -> _ConeTemplate:
        """Encode one test copy over cone ``key`` into a scratch CNF.

        ``key`` is the constrained output, or None for the
        all-outputs-constrained union cone.
        """
        circuit = self.circuit
        if key is None:
            cone = frozenset().union(
                *(self.output_cone(out) for out in circuit.outputs)
            )
        else:
            cone = self.output_cone(key)
        scratch = CNF()
        for g in self.suspects:
            scratch.new_var(f"s:{g}")
        n_sel = len(self.suspects)
        suffixes: list[str | None] = []
        items: list[tuple] = []
        signal: dict[str, int] = {}
        eff: dict[str, int] = {}

        def local(suffix: str) -> int:
            return scratch.new_var(f"T:{suffix}")

        mark = scratch.num_clauses
        for name in self._topo:
            if name not in cone:
                continue
            gate = circuit.node(name)
            if gate.is_input:
                var = local(name)
                signal[name] = var
                items.append(("input", name, var))
                continue
            fanin_vars = [signal[f] for f in gate.fanins]
            if name in self._suspect_set:
                raw = local(f"{name}:raw")
                encode_gate(scratch, gate.gtype, raw, fanin_vars)
                s_var = self._select_index[name]
                eff_var = local(name)
                scratch.add_clause([s_var, -eff_var, raw])
                scratch.add_clause([s_var, eff_var, -raw])
                eff[name] = eff_var
                signal[name] = eff_var
            else:
                var = local(name)
                encode_gate(scratch, gate.gtype, var, fanin_vars)
                signal[name] = var
            for clause in scratch.clauses[mark:]:
                items.append(("clause", clause))
            mark = scratch.num_clauses
        # Replay list for the copy's local variables in allocation order;
        # None marks an anonymous Tseitin auxiliary (wide-XOR chains).
        for v in range(n_sel + 1, scratch.num_vars + 1):
            name = scratch.name_of(v)
            suffixes.append(None if name is None else name[2:])
        return _ConeTemplate(
            suffixes=tuple(suffixes),
            items=tuple(items),
            signal=signal,
            eff=eff,
        )

    # ------------------------------------------------------------------
    # per-device instantiation
    # ------------------------------------------------------------------
    def instantiate(
        self,
        tests: TestSet,
        k_max: int,
        solver_backend: str | None = None,
    ) -> DiagnosisInstance:
        """Stamp per-device test copies onto the design skeleton.

        Returns a persistent master :class:`DiagnosisInstance` identical
        to a from-scratch :func:`build_master_instance` build.
        """
        start = time.perf_counter()
        if not len(tests):
            raise ValueError("diagnosis requires at least one failing test")
        circuit = self.circuit
        n_sel = len(self.suspects)
        cnf = CNF()
        select_of = {g: cnf.new_var(f"s:{g}") for g in self.suspects}
        correction_of: dict[tuple[int, str], int] = {}
        signal_of: dict[tuple[int, str], int] = {}
        for i, test in enumerate(tests):
            if self.constrain_all_outputs and test.expected_outputs is None:
                raise ValueError(
                    "constrain_all_outputs requires tests with "
                    "expected_outputs"
                )
            tpl = self._template(
                None if self.constrain_all_outputs else test.output
            )
            offset = cnf.num_vars - n_sel
            for suffix in tpl.suffixes:
                cnf.new_var(None if suffix is None else f"t{i}:{suffix}")
            for item in tpl.items:
                if item[0] == "input":
                    _, name, tvar = item
                    var = tvar + offset
                    try:
                        value = test.vector[name]
                    except KeyError:
                        raise ValueError(
                            f"test {i} does not assign primary input "
                            f"{name!r}"
                        ) from None
                    cnf.add_clause([var if value else -var])
                else:
                    cnf.add_clause([
                        lit if abs(lit) <= n_sel
                        else (lit + offset if lit > 0 else lit - offset)
                        for lit in item[1]
                    ])
            if self.constrain_all_outputs:
                assert test.expected_outputs is not None
                for out in circuit.outputs:
                    var = tpl.signal[out] + offset
                    expected = test.expected_outputs[out]
                    cnf.add_clause([var if expected else -var])
            else:
                var = tpl.signal[test.output] + offset
                cnf.add_clause([var if test.value else -var])
            for name, tvar in tpl.signal.items():
                signal_of[(i, name)] = tvar + offset
            for g, eff_var in tpl.eff.items():
                correction_of[(i, g)] = eff_var + offset
        self.stats["instances"] += 1
        return _finish_instance(
            circuit, tests, cnf, select_of, correction_of, signal_of,
            self.suspects, k_max, None, solver_backend, True, start,
        )


def build_master_instance(
    circuit: Circuit,
    tests: TestSet,
    k_max: int,
    constrain_all_outputs: bool = False,
    solver_backend: str | None = None,
    skeleton: MasterEncodingSkeleton | None = None,
) -> DiagnosisInstance:
    """The session-wide **master** correction encoding.

    Correction muxes sit on *every* functional gate, so any suspect pool
    is a view derived by assumptions (:meth:`DiagnosisInstance.
    derive_view`) — no per-pool CNF rebuilds.  The mux is encoded
    without an explicit free value ``c_g^i``: the *effective* signal
    ``eff`` doubles as it (``c_g^i ≡ eff_g^i`` whenever ``s_g`` is
    selected), via the two pinning clauses::

        (s_g ∨ ¬eff ∨ raw)   (s_g ∨ eff ∨ ¬raw)    # s=0 ⇒ eff = raw

    When ``s_g = 0`` the mux collapses to the direct gate encoding by
    propagation; when ``s_g = 1`` ``eff`` is free — the same solution
    space as the Fig. 2(b) encoding of :func:`build_diagnosis_instance`
    (asserted by the parity suite), but with ``|gates| × |T|`` fewer
    variables, so an enumeration redescent never touches a free-value
    tail and ``correction_values`` still reads the per-test witness
    straight off the model.

    Each test copy is further restricted to the **fan-in cone** of its
    constrained output(s): gates outside the cone cannot influence the
    copy's only constraint, so their copy-``i`` signals are never
    encoded (a gate outside every cone still has a select line and a
    totalizer slot, but Lemma 3's superset blocking keeps it out of
    every reported solution — a correction containing it would not be
    essential).  ``correction_values`` reports ``-1`` (“don't care”)
    for tests whose cone a selected gate does not reach.

    The observation-independent half (select layout, cones, per-cone
    clause templates) lives in a :class:`MasterEncodingSkeleton`; pass
    one via ``skeleton`` to amortize it across every device of a design
    (the serving path), or let this wrapper build a throwaway one.
    """
    if skeleton is None:
        skeleton = MasterEncodingSkeleton(circuit, constrain_all_outputs)
    else:
        if skeleton.circuit is not circuit:
            raise ValueError(
                "skeleton was built for a different circuit design"
            )
        if skeleton.constrain_all_outputs != constrain_all_outputs:
            raise ValueError(
                "skeleton output-constraint semantics do not match"
            )
    return skeleton.instantiate(
        tests, k_max, solver_backend=solver_backend
    )


def basic_sat_diagnose(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    suspects: Sequence[str] | None = None,
    constrain_all_outputs: bool = False,
    select_zero_clauses: bool = False,
    solution_limit: int | None = None,
    conflict_limit: int | None = None,
    collect_corrections: bool = False,
    instance: DiagnosisInstance | None = None,
    approach_name: str = "BSAT",
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
    should_stop: Callable[[], bool] | None = None,
    budget=None,
) -> SolutionSetResult:
    """``BasicSATDiagnose(I, T, k)`` — Fig. 3 of the paper.

    Enumerates *all* corrections with at most ``k`` essential candidates
    (Lemma 3): for each bound ``i = 1 .. k`` all solutions are enumerated
    under the cardinality assumption and blocked with superset clauses, so
    no later solution contains an earlier one.

    Returns a :class:`SolutionSetResult`; when ``collect_corrections`` is
    set, ``extras["corrections"]`` maps each solution to its per-test
    injected values.  A prepared ``session`` supplies the (persistent,
    cached) instance; on a persistent instance the enumeration runs in an
    activation-literal scope — identical solution sets to a fresh
    instance, but no CNF rebuild, and a repeated identical query is
    served from the instance's result memo (``extras["cached"]``).

    ``should_stop`` is the cooperative cancellation hook of the serving
    race: it is polled before each cardinality bound and after each
    enumerated solution (the check interval is one solver call).  A
    cancelled run returns what it found with ``complete=False`` and
    ``extras["cancelled"]=True``, closes its activation scope normally,
    and is **not** memoized — cancellation is external nondeterminism
    that must not poison the instance's result cache.

    ``budget`` (:class:`repro.sat.budget.Budget`) tightens the check
    interval from "one solver call" to "one conflict-poll interval":
    it is threaded into every solve of the enumeration, so a deadline
    or cancellation lands mid-query within
    ``budget.conflict_poll_interval`` conflicts.  A budget-interrupted
    run is treated exactly like a cancelled one (``complete=False``,
    not memoized) and additionally sets ``extras["interrupted"]``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if instance is None:
        # Only route through the session when its output semantics match
        # the caller's request — otherwise the session's flag would
        # silently override ``constrain_all_outputs`` — and when the
        # tests are the session's own (the partitioned strategy
        # diagnoses test chunks the session instance does not encode).
        if (
            session is not None
            and session.constrain_all_outputs == constrain_all_outputs
            and session.tests is tests
        ):
            instance = session.instance(
                k,
                suspects=suspects,
                select_zero_clauses=select_zero_clauses,
                solver_backend=solver_backend,
            )
        else:
            if circuit is None:
                raise ValueError(
                    "building a fresh instance requires a circuit; "
                    "non-circuit SystemDescription sessions must route "
                    "through the session (matching output semantics)"
                )
            instance = build_diagnosis_instance(
                circuit,
                tests,
                k_max=k,
                suspects=suspects,
                constrain_all_outputs=constrain_all_outputs,
                select_zero_clauses=select_zero_clauses,
                solver_backend=solver_backend,
            )
    elif instance.persistent and k > instance.k_max:
        instance.extend_k(k)
    solver = instance.solver
    select_vars = [instance.select_of[g] for g in instance.suspects]

    cache_key = (k, solution_limit, conflict_limit)
    if instance.persistent:
        cached = instance.results_cache.get(cache_key)
        if cached is not None and (
            not collect_corrections or cached["corrections"] is not None
        ):
            start = time.perf_counter()
            extras: dict[str, object] = {
                "solver_stats": dict(solver.stats),
                "n_vars": instance.cnf.num_vars,
                "n_clauses": instance.cnf.num_clauses,
                "solution_stats": list(cached["solution_stats"]),
                "cached": True,
            }
            if collect_corrections:
                extras["corrections"] = dict(cached["corrections"])
            t_all = time.perf_counter() - start
            return SolutionSetResult(
                approach=approach_name,
                k=k,
                solutions=cached["solutions"],
                complete=cached["complete"],
                t_build=0.0,
                t_first=min(cached["t_first"], t_all),
                t_all=t_all,
                extras=extras,
            )

    act = instance.begin_scope() if instance.persistent else 0
    # Pins first (stable across bounds and queries — the trail-reuse
    # prefix), then the per-bound literal, then the per-query scope.
    base_assumptions = instance.base_assumptions()
    extra_assumptions = [act] if act else []
    block_extra = (-act,) if act else ()
    solutions: list[Correction] = []
    corrections: dict[Correction, dict[str, list[int]]] = {}
    solution_stats: list[dict[str, int]] = []
    t_first: float | None = None
    complete = True
    cancelled = False
    interrupted = False
    search_start = time.perf_counter()
    try:
        # The cardinality loop below starts at bound 1, so it never asks
        # whether the *empty* candidate is consistent before enumerating
        # singletons.  For a circuit with a failing test ∅ is trivially
        # inconsistent, but system-style instances (e.g. grouped CNF with
        # a satisfiable observation) admit it — and a selector no clause
        # constrains can then ride along as a spurious singleton before
        # ∅'s blocking clause lands.  ∅ consistent makes ∅ the unique
        # subset-minimal solution, so probe it first (one cheap UNSAT
        # call on circuit instances) and skip the loop when it holds.
        probe_assumptions = (
            base_assumptions + [-v for v in select_vars] + extra_assumptions
        )
        probe_before = {key: solver.stats[key] for key in _DELTA_KEYS}
        if budget is None:
            probe = solver.solve(
                assumptions=probe_assumptions, conflict_limit=conflict_limit
            )
        else:
            probe = solver.solve(
                assumptions=probe_assumptions,
                conflict_limit=conflict_limit,
                budget=budget,
            )
        if probe is None:
            complete = False
            if budget is not None and getattr(solver, "interrupted", False):
                cancelled = True
                interrupted = True
        elif probe:
            solution: Correction = frozenset()
            t_first = time.perf_counter() - search_start
            solution_stats.append(
                {
                    key: solver.stats[key] - probe_before[key]
                    for key in _DELTA_KEYS
                }
            )
            if collect_corrections or instance.persistent:
                corrections[solution] = instance.correction_values(solution)
            solutions.append(solution)
        empty_unsat = probe is not None and not probe
        for bound in range(1, k + 1) if empty_unsat else ():
            if should_stop is not None and should_stop():
                complete = False
                cancelled = True
                break
            if budget is not None and budget.poll():
                complete = False
                cancelled = True
                interrupted = True
                break
            assumptions = (
                base_assumptions
                + instance.bound_assumptions(bound)
                + extra_assumptions
            )
            budget_left = (
                None
                if solution_limit is None
                else solution_limit - len(solutions)
            )
            if budget_left is not None and budget_left <= 0:
                complete = False
                break
            try:
                for model_vars in enumerate_solutions(
                    solver,
                    select_vars,
                    assumptions=assumptions,
                    block="superset",
                    limit=budget_left,
                    conflict_limit=conflict_limit,
                    block_extra=block_extra,
                    stats_deltas=solution_stats,
                    budget=budget,
                ):
                    solution = frozenset(
                        instance.gate_of[v] for v in model_vars
                    )
                    if t_first is None:
                        t_first = time.perf_counter() - search_start
                    if collect_corrections or instance.persistent:
                        corrections[solution] = instance.correction_values(
                            solution
                        )
                    solutions.append(solution)
                    if should_stop is not None and should_stop():
                        cancelled = True
                        break
            except SearchInterrupted:
                complete = False
                cancelled = True
                interrupted = True
                break
            except TimeoutError:
                complete = False
                break
            if cancelled:
                complete = False
                break
            if solution_limit is not None and len(solutions) >= solution_limit:
                complete = len(solutions) < solution_limit
                break
    finally:
        if act:
            instance.end_scope(act)
    t_all = time.perf_counter() - search_start
    if instance.persistent and not cancelled:
        instance.results_cache[cache_key] = {
            "solutions": tuple(solutions),
            "complete": complete,
            "corrections": dict(corrections),
            "solution_stats": list(solution_stats),
            "t_first": t_first if t_first is not None else t_all,
        }
    extras = {
        "solver_stats": dict(solver.stats),
        "n_vars": instance.cnf.num_vars,
        "n_clauses": instance.cnf.num_clauses,
        "solution_stats": solution_stats,
    }
    if cancelled:
        extras["cancelled"] = True
    if interrupted:
        extras["interrupted"] = True
    if collect_corrections:
        extras["corrections"] = corrections
    return SolutionSetResult(
        approach=approach_name,
        k=k,
        solutions=tuple(solutions),
        complete=complete,
        t_build=instance.build_time,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras=extras,
    )


def auto_k_sat_diagnose(
    circuit: Circuit,
    tests: TestSet,
    k_max: int = 4,
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
    **kwargs,
) -> SolutionSetResult:
    """Automatically determine the error cardinality (Table 1: "or
    incrementally determined").

    Builds one instance with a totalizer sized for ``k_max`` and solves
    under increasing bound assumptions until the first bound that admits
    solutions; all solutions of that bound are enumerated.  Because bounds
    are assumptions on a shared incremental solver, learned clauses carry
    over between the attempts — and with a ``session``, the probes run on
    the session's persistent instance, so a later ``bsat`` query reuses
    everything this sweep learned.
    """
    if k_max < 1:
        raise ValueError("k_max must be at least 1")
    suspects = kwargs.pop("suspects", None)
    constrain_all_outputs = kwargs.pop("constrain_all_outputs", False)
    select_zero_clauses = kwargs.pop("select_zero_clauses", False)
    if (
        session is not None
        and session.constrain_all_outputs == constrain_all_outputs
        and session.tests is tests
    ):
        instance = session.instance(
            k_max,
            suspects=suspects,
            select_zero_clauses=select_zero_clauses,
            solver_backend=solver_backend,
        )
    else:
        if circuit is None:
            raise ValueError(
                "building a fresh instance requires a circuit; "
                "non-circuit SystemDescription sessions must route "
                "through the session (matching output semantics)"
            )
        instance = build_diagnosis_instance(
            circuit, tests, k_max=k_max,
            suspects=suspects,
            constrain_all_outputs=constrain_all_outputs,
            select_zero_clauses=select_zero_clauses,
            solver_backend=solver_backend,
        )
    solver = instance.solver
    should_stop = kwargs.get("should_stop")
    budget = kwargs.get("budget")
    for k in range(1, k_max + 1):
        if (should_stop is not None and should_stop()) or (
            budget is not None and budget.poll()
        ):
            extras = {"k_found": None, "cancelled": True}
            if budget is not None and budget.interrupted:
                extras["interrupted"] = True
            return SolutionSetResult(
                approach="BSAT/auto-k",
                k=k_max,
                solutions=(),
                complete=False,
                t_build=instance.build_time,
                t_first=0.0,
                t_all=0.0,
                extras=extras,
            )
        if budget is None:
            feasible = solver.solve(
                assumptions=instance.base_assumptions()
                + instance.bound_assumptions(k)
            )
        else:
            # Budgeted probe: the feasibility solve is exactly the kind
            # of unbounded query a race deadline used to hang on.
            feasible = solver.solve(
                assumptions=instance.base_assumptions()
                + instance.bound_assumptions(k),
                budget=budget,
            )
            if feasible is None:
                return SolutionSetResult(
                    approach="BSAT/auto-k",
                    k=k_max,
                    solutions=(),
                    complete=False,
                    t_build=instance.build_time,
                    t_first=0.0,
                    t_all=0.0,
                    extras={
                        "k_found": None,
                        "cancelled": True,
                        "interrupted": True,
                    },
                )
        if feasible:
            result = basic_sat_diagnose(
                circuit, tests, k, instance=instance,
                approach_name="BSAT/auto-k", **kwargs,
            )
            extras = dict(result.extras)
            extras["k_found"] = k
            return SolutionSetResult(
                approach="BSAT/auto-k",
                k=k,
                solutions=result.solutions,
                complete=result.complete,
                t_build=instance.build_time,
                t_first=result.t_first,
                t_all=result.t_all,
                extras=extras,
            )
    return SolutionSetResult(
        approach="BSAT/auto-k",
        k=k_max,
        solutions=(),
        complete=True,
        t_build=instance.build_time,
        t_first=0.0,
        t_all=0.0,
        extras={"k_found": None},
    )


@register_strategy(
    "bsat",
    "BasicSATDiagnose: complete enumeration, essential candidates",
    kinds=ALL_SYSTEM_KINDS,
)
def _bsat_strategy(
    session: DiagnosisSession, k: int = 1, **options
) -> SolutionSetResult:
    return basic_sat_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )


@register_strategy(
    "bsat-auto-k",
    "BSAT with incrementally determined error cardinality",
    kinds=ALL_SYSTEM_KINDS,
)
def _auto_k_strategy(
    session: DiagnosisSession, k: int = 4, **options
) -> SolutionSetResult:
    return auto_k_sat_diagnose(
        session.circuit, session.tests, k_max=k, session=session, **options
    )
