"""SAT-based diagnosis — the paper's BSAT (Figs. 2 and 3).

The diagnosis instance ``F`` is constructed exactly as in the paper:

* one copy of the implementation per test ``(t_i, o_i, v_i)``, inputs
  constrained to ``t_i`` and the erroneous output to its correct value
  ``v_i`` (other outputs are free — Definition 1 semantics; the stricter
  all-outputs mode is available when tests carry golden values);
* a correction multiplexer at every candidate gate ``g``: the select line
  ``s_g`` is *shared across copies* while the injected value ``c_g^i`` is
  free per test — so a selected gate may realize any Boolean function;
* a cardinality bound: at most ``i`` select lines may be 1, with ``i``
  incremented from 1 to ``k`` while blocking found solutions — which makes
  every reported correction contain only essential candidates (Lemma 3).

``BasicSATDiagnose`` returns every solution; each solution also carries the
per-test correction values ("the 'correct' function of the gate", §4).

Instance lifetime
-----------------

An instance is built **once** and then serves any number of queries on
one persistent incremental solver (see the lifetime diagram in the
:mod:`repro.sat` docstring): the cardinality bound is an
:class:`~repro.sat.cardinality.IncrementalTotalizer` that extends in
place when a later query needs a larger ``k``, and each enumeration runs
under a fresh *activation literal* so its blocking clauses retract when
the query ends.  :meth:`repro.diagnosis.core.DiagnosisSession.instance`
caches instances per (suspects, options) alongside the session's lane
caches, so ``bsat``, ``bsat-auto-k``, the hybrids and the IHS loop all
share one encoded instance — no per-k CNF rebuilds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..circuits.netlist import Circuit
from ..sat.cardinality import IncrementalTotalizer
from ..sat.cnf import CNF
from ..sat.enumerate import enumerate_solutions
from ..sat.solver import Solver
from ..sat.tseitin import encode_gate, encode_mux
from ..testgen.testset import TestSet
from .base import Correction, SolutionSetResult
from .core import DiagnosisSession, register_strategy

__all__ = [
    "DiagnosisInstance",
    "build_diagnosis_instance",
    "basic_sat_diagnose",
    "auto_k_sat_diagnose",
]


@dataclass
class DiagnosisInstance:
    """The SAT instance ``F`` plus the bookkeeping to interpret models."""

    circuit: Circuit
    tests: TestSet
    cnf: CNF
    solver: Solver
    select_of: dict[str, int]
    gate_of: dict[int, str]
    correction_of: dict[tuple[int, str], int]
    signal_of: dict[tuple[int, str], int]
    bound_outputs: list[int]
    k_max: int
    suspects: tuple[str, ...]
    build_time: float = 0.0
    extras: dict[str, object] = field(default_factory=dict)
    #: Incremental totalizer behind ``bound_outputs`` (present on all new
    #: instances; None only for hand-built legacy instances).
    totalizer: IncrementalTotalizer | None = None
    #: Persistent instances live in a session cache and serve many
    #: queries; their enumerations are scoped by activation literals and
    #: their complete results are memoized in ``results_cache``.
    persistent: bool = False
    solver_backend: str | None = None
    results_cache: dict = field(default_factory=dict)
    _scope_count: int = 0

    def bound_assumptions(self, bound: int) -> list[int]:
        """Assumption literals enforcing "at most ``bound`` selects"."""
        if bound < 0:
            raise ValueError("bound must be non-negative")
        if bound >= len(self.bound_outputs):
            return []
        return [-self.bound_outputs[bound]]

    def extend_k(self, k_max: int) -> None:
        """Grow the cardinality bound in place (incremental totalizer)."""
        if k_max <= self.k_max:
            return
        if self.totalizer is None:
            raise ValueError(
                "instance was built without an incremental totalizer"
            )
        self.totalizer.extend(min(k_max, len(self.suspects)))
        self.bound_outputs = self.totalizer.outputs
        self.k_max = k_max
        self.results_cache.clear()  # cached keys are per-k sweeps

    def begin_scope(self) -> int:
        """Open an enumeration scope: returns a fresh activation literal.

        Assume it on every solve and append its negation to every
        blocking clause; close with :meth:`end_scope` so the blocks
        retract and the next query sees the unblocked instance.
        """
        self._scope_count += 1
        act = self.cnf.new_var(f"act:{self._scope_count}")
        self.solver.ensure_vars(act)
        return act

    def end_scope(self, act: int) -> None:
        """Close an enumeration scope (permanently satisfies its blocks)."""
        self.solver.add_clause([-act])
        self.cnf.add_clause([-act])

    def solution_from_model(self) -> Correction:
        """Selected gates in the solver's current model."""
        return frozenset(
            g for g, s in self.select_of.items() if self.solver.value(s)
        )

    def correction_values(self, solution: Iterable[str]) -> dict[str, list[int]]:
        """Per-test injected values ``c_g^i`` for each gate of ``solution``.

        Must be called while the solver still holds the model.  These values
        are the witness of *how* to fix each gate per test — the paper notes
        they can be exploited to determine the corrected function.
        """
        result: dict[str, list[int]] = {}
        for gate in solution:
            vals: list[int] = []
            for i in range(len(self.tests)):
                var = self.correction_of[(i, gate)]
                val = self.solver.value(var)
                vals.append(-1 if val is None else int(val))
            result[gate] = vals
        return result


def build_diagnosis_instance(
    circuit: Circuit,
    tests: TestSet,
    k_max: int,
    suspects: Sequence[str] | None = None,
    constrain_all_outputs: bool = False,
    select_zero_clauses: bool = False,
    solver: Solver | None = None,
    solver_backend: str | None = None,
    persistent: bool = False,
) -> DiagnosisInstance:
    """Construct the SAT instance of Fig. 2(b)/Fig. 3 step (1).

    Parameters
    ----------
    suspects:
        Gates receiving a correction multiplexer (default: every functional
        gate — BSAT; the advanced approach passes dominators here).
    constrain_all_outputs:
        Constrain every primary output to its golden value (requires tests
        built with ``attach_expected``); default is the paper's
        single-output semantics.
    select_zero_clauses:
        Add the advanced heuristic clauses ``(s_g ∨ ¬c_g^i)`` forcing the
        free value to 0 while its multiplexer is unselected, which "prevents
        up to |I| decisions of the SAT-solver" (§2.3).
    solver_backend:
        Registered SAT backend name (:mod:`repro.sat.backends`); None =
        the default arena solver.  Mutually exclusive with ``solver``.
    persistent:
        Mark the instance as living in a session cache: enumerations over
        it are scoped with activation literals and complete results are
        memoized (see :func:`basic_sat_diagnose`).
    """
    if not circuit.is_combinational:
        raise ValueError(
            "diagnosis instances require a combinational circuit; "
            "apply repro.circuits.to_combinational first"
        )
    if not len(tests):
        raise ValueError("diagnosis requires at least one failing test")
    start = time.perf_counter()
    if suspects is None:
        suspect_list: tuple[str, ...] = circuit.gate_names
    else:
        suspect_list = tuple(dict.fromkeys(suspects))
        for s in suspect_list:
            if not circuit.node(s).is_functional:
                raise ValueError(f"suspect {s!r} is not a functional gate")
    suspect_set = set(suspect_list)

    cnf = CNF()
    select_of = {g: cnf.new_var(f"s:{g}") for g in suspect_list}
    gate_of = {v: g for g, v in select_of.items()}
    correction_of: dict[tuple[int, str], int] = {}
    signal_of: dict[tuple[int, str], int] = {}
    topo = circuit.topological_order()

    for i, test in enumerate(tests):
        if constrain_all_outputs and test.expected_outputs is None:
            raise ValueError(
                "constrain_all_outputs requires tests with expected_outputs"
            )
        for name in topo:
            gate = circuit.node(name)
            if gate.is_input:
                var = cnf.new_var(f"t{i}:{name}")
                signal_of[(i, name)] = var
                try:
                    value = test.vector[name]
                except KeyError:
                    raise ValueError(
                        f"test {i} does not assign primary input {name!r}"
                    ) from None
                cnf.add_clause([var if value else -var])
                continue
            fanin_vars = [signal_of[(i, f)] for f in gate.fanins]
            if name in suspect_set:
                raw = cnf.new_var(f"t{i}:{name}:raw")
                encode_gate(cnf, gate.gtype, raw, fanin_vars)
                c_var = cnf.new_var(f"t{i}:c:{name}")
                correction_of[(i, name)] = c_var
                eff = cnf.new_var(f"t{i}:{name}")
                encode_mux(cnf, eff, select_of[name], c_var, raw)
                if select_zero_clauses:
                    cnf.add_clause([select_of[name], -c_var])
                signal_of[(i, name)] = eff
            else:
                var = cnf.new_var(f"t{i}:{name}")
                encode_gate(cnf, gate.gtype, var, fanin_vars)
                signal_of[(i, name)] = var
        if constrain_all_outputs:
            assert test.expected_outputs is not None
            for out in circuit.outputs:
                var = signal_of[(i, out)]
                expected = test.expected_outputs[out]
                cnf.add_clause([var if expected else -var])
        else:
            var = signal_of[(i, test.output)]
            cnf.add_clause([var if test.value else -var])

    tot = IncrementalTotalizer(
        cnf,
        [select_of[g] for g in suspect_list],
        min(k_max, len(suspect_list)),
    )
    built_solver = cnf.to_solver(solver, backend=solver_backend)
    tot.bind_solver(built_solver)
    return DiagnosisInstance(
        circuit=circuit,
        tests=tests,
        cnf=cnf,
        solver=built_solver,
        select_of=select_of,
        gate_of=gate_of,
        correction_of=correction_of,
        signal_of=signal_of,
        bound_outputs=tot.outputs,
        k_max=k_max,
        suspects=suspect_list,
        build_time=time.perf_counter() - start,
        totalizer=tot,
        persistent=persistent,
        solver_backend=solver_backend,
    )


def basic_sat_diagnose(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    suspects: Sequence[str] | None = None,
    constrain_all_outputs: bool = False,
    select_zero_clauses: bool = False,
    solution_limit: int | None = None,
    conflict_limit: int | None = None,
    collect_corrections: bool = False,
    instance: DiagnosisInstance | None = None,
    approach_name: str = "BSAT",
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
) -> SolutionSetResult:
    """``BasicSATDiagnose(I, T, k)`` — Fig. 3 of the paper.

    Enumerates *all* corrections with at most ``k`` essential candidates
    (Lemma 3): for each bound ``i = 1 .. k`` all solutions are enumerated
    under the cardinality assumption and blocked with superset clauses, so
    no later solution contains an earlier one.

    Returns a :class:`SolutionSetResult`; when ``collect_corrections`` is
    set, ``extras["corrections"]`` maps each solution to its per-test
    injected values.  A prepared ``session`` supplies the (persistent,
    cached) instance; on a persistent instance the enumeration runs in an
    activation-literal scope — identical solution sets to a fresh
    instance, but no CNF rebuild, and a repeated identical query is
    served from the instance's result memo (``extras["cached"]``).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if instance is None:
        # Only route through the session when its output semantics match
        # the caller's request — otherwise the session's flag would
        # silently override ``constrain_all_outputs`` — and when the
        # tests are the session's own (the partitioned strategy
        # diagnoses test chunks the session instance does not encode).
        if (
            session is not None
            and session.constrain_all_outputs == constrain_all_outputs
            and session.tests is tests
        ):
            instance = session.instance(
                k,
                suspects=suspects,
                select_zero_clauses=select_zero_clauses,
                solver_backend=solver_backend,
            )
        else:
            instance = build_diagnosis_instance(
                circuit,
                tests,
                k_max=k,
                suspects=suspects,
                constrain_all_outputs=constrain_all_outputs,
                select_zero_clauses=select_zero_clauses,
                solver_backend=solver_backend,
            )
    elif instance.persistent and k > instance.k_max:
        instance.extend_k(k)
    solver = instance.solver
    select_vars = [instance.select_of[g] for g in instance.suspects]

    cache_key = (k, solution_limit, conflict_limit)
    if instance.persistent:
        cached = instance.results_cache.get(cache_key)
        if cached is not None and (
            not collect_corrections or cached["corrections"] is not None
        ):
            start = time.perf_counter()
            extras: dict[str, object] = {
                "solver_stats": dict(solver.stats),
                "n_vars": instance.cnf.num_vars,
                "n_clauses": instance.cnf.num_clauses,
                "solution_stats": list(cached["solution_stats"]),
                "cached": True,
            }
            if collect_corrections:
                extras["corrections"] = dict(cached["corrections"])
            t_all = time.perf_counter() - start
            return SolutionSetResult(
                approach=approach_name,
                k=k,
                solutions=cached["solutions"],
                complete=cached["complete"],
                t_build=0.0,
                t_first=min(cached["t_first"], t_all),
                t_all=t_all,
                extras=extras,
            )

    act = instance.begin_scope() if instance.persistent else 0
    extra_assumptions = [act] if act else []
    block_extra = (-act,) if act else ()
    solutions: list[Correction] = []
    corrections: dict[Correction, dict[str, list[int]]] = {}
    solution_stats: list[dict[str, int]] = []
    t_first: float | None = None
    complete = True
    search_start = time.perf_counter()
    try:
        for bound in range(1, k + 1):
            assumptions = (
                instance.bound_assumptions(bound) + extra_assumptions
            )
            budget_left = (
                None
                if solution_limit is None
                else solution_limit - len(solutions)
            )
            if budget_left is not None and budget_left <= 0:
                complete = False
                break
            try:
                for model_vars in enumerate_solutions(
                    solver,
                    select_vars,
                    assumptions=assumptions,
                    block="superset",
                    limit=budget_left,
                    conflict_limit=conflict_limit,
                    block_extra=block_extra,
                    stats_deltas=solution_stats,
                ):
                    solution = frozenset(
                        instance.gate_of[v] for v in model_vars
                    )
                    if t_first is None:
                        t_first = time.perf_counter() - search_start
                    if collect_corrections or instance.persistent:
                        corrections[solution] = instance.correction_values(
                            solution
                        )
                    solutions.append(solution)
            except TimeoutError:
                complete = False
                break
            if solution_limit is not None and len(solutions) >= solution_limit:
                complete = len(solutions) < solution_limit
                break
    finally:
        if act:
            instance.end_scope(act)
    t_all = time.perf_counter() - search_start
    if instance.persistent:
        instance.results_cache[cache_key] = {
            "solutions": tuple(solutions),
            "complete": complete,
            "corrections": dict(corrections),
            "solution_stats": list(solution_stats),
            "t_first": t_first if t_first is not None else t_all,
        }
    extras = {
        "solver_stats": dict(solver.stats),
        "n_vars": instance.cnf.num_vars,
        "n_clauses": instance.cnf.num_clauses,
        "solution_stats": solution_stats,
    }
    if collect_corrections:
        extras["corrections"] = corrections
    return SolutionSetResult(
        approach=approach_name,
        k=k,
        solutions=tuple(solutions),
        complete=complete,
        t_build=instance.build_time,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras=extras,
    )


def auto_k_sat_diagnose(
    circuit: Circuit,
    tests: TestSet,
    k_max: int = 4,
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
    **kwargs,
) -> SolutionSetResult:
    """Automatically determine the error cardinality (Table 1: "or
    incrementally determined").

    Builds one instance with a totalizer sized for ``k_max`` and solves
    under increasing bound assumptions until the first bound that admits
    solutions; all solutions of that bound are enumerated.  Because bounds
    are assumptions on a shared incremental solver, learned clauses carry
    over between the attempts — and with a ``session``, the probes run on
    the session's persistent instance, so a later ``bsat`` query reuses
    everything this sweep learned.
    """
    if k_max < 1:
        raise ValueError("k_max must be at least 1")
    suspects = kwargs.pop("suspects", None)
    constrain_all_outputs = kwargs.pop("constrain_all_outputs", False)
    select_zero_clauses = kwargs.pop("select_zero_clauses", False)
    if (
        session is not None
        and session.constrain_all_outputs == constrain_all_outputs
        and session.tests is tests
    ):
        instance = session.instance(
            k_max,
            suspects=suspects,
            select_zero_clauses=select_zero_clauses,
            solver_backend=solver_backend,
        )
    else:
        instance = build_diagnosis_instance(
            circuit, tests, k_max=k_max,
            suspects=suspects,
            constrain_all_outputs=constrain_all_outputs,
            select_zero_clauses=select_zero_clauses,
            solver_backend=solver_backend,
        )
    solver = instance.solver
    for k in range(1, k_max + 1):
        feasible = solver.solve(assumptions=instance.bound_assumptions(k))
        if feasible:
            result = basic_sat_diagnose(
                circuit, tests, k, instance=instance,
                approach_name="BSAT/auto-k", **kwargs,
            )
            extras = dict(result.extras)
            extras["k_found"] = k
            return SolutionSetResult(
                approach="BSAT/auto-k",
                k=k,
                solutions=result.solutions,
                complete=result.complete,
                t_build=instance.build_time,
                t_first=result.t_first,
                t_all=result.t_all,
                extras=extras,
            )
    return SolutionSetResult(
        approach="BSAT/auto-k",
        k=k_max,
        solutions=(),
        complete=True,
        t_build=instance.build_time,
        t_first=0.0,
        t_all=0.0,
        extras={"k_found": None},
    )


@register_strategy(
    "bsat", "BasicSATDiagnose: complete enumeration, essential candidates"
)
def _bsat_strategy(
    session: DiagnosisSession, k: int = 1, **options
) -> SolutionSetResult:
    return basic_sat_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )


@register_strategy(
    "bsat-auto-k", "BSAT with incrementally determined error cardinality"
)
def _auto_k_strategy(
    session: DiagnosisSession, k: int = 4, **options
) -> SolutionSetResult:
    return auto_k_sat_diagnose(
        session.circuit, session.tests, k_max=k, session=session, **options
    )
