"""Stuck-at fault diagnosis for production test (paper §1 motivation).

The paper opens with diagnosis arising in "dynamic verification, property
checking, equivalence checking and production test", and ref [1] treats
error location and fault diagnosis as the same problem.  This module
implements the classic *cause-effect* flavour for the production-test
setting: a device fails on the tester with observed output responses; the
candidate stuck-at faults are those whose simulated faulty behaviour
matches the observation.

The signature of each fault is computed serial-fault / parallel-pattern —
one bit-parallel simulation pass per fault over all patterns — using the
same forced-value machinery as the effect analysis elsewhere in the
package, so the module doubles as a demonstration that the paper's
"simulation engines can be used for what-if analysis".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..circuits.netlist import Circuit
from ..faults.models import StuckAtFault
from ..sim.parallel import pack_patterns, simulate_words
from .base import SolutionSetResult

__all__ = [
    "FaultMatch",
    "FaultDictionary",
    "full_fault_list",
    "fault_signature",
    "diagnose_stuck_at",
]


@dataclass(frozen=True)
class FaultMatch:
    """One ranked candidate fault.

    ``mismatch_bits`` counts output-bits (over all patterns and outputs)
    where the fault's simulated behaviour differs from the observation;
    0 means a perfect explanation.
    """

    fault: StuckAtFault
    mismatch_bits: int

    @property
    def exact(self) -> bool:
        return self.mismatch_bits == 0


def full_fault_list(
    circuit: Circuit, include_inputs: bool = True
) -> list[StuckAtFault]:
    """Both stuck-at polarities on every gate output (and optionally every
    primary-input stem).

    Primary-input stuck-ats are modelled by forcing the input signal, which
    the checker supports even though the *injector* cannot rewrite an input
    node.  Classic equivalence collapsing is deliberately not applied: the
    diagnosis ranks all sites so ties expose equivalent faults naturally.
    """
    faults: list[StuckAtFault] = []
    for gate in circuit.gates:
        faults.append(StuckAtFault(gate.name, 0))
        faults.append(StuckAtFault(gate.name, 1))
    if include_inputs:
        for pi in circuit.inputs:
            faults.append(StuckAtFault(pi, 0))
            faults.append(StuckAtFault(pi, 1))
    return faults


def fault_signature(
    circuit: Circuit,
    fault: StuckAtFault,
    input_words: Mapping[str, int],
    n_patterns: int,
) -> dict[str, int]:
    """Output words of ``circuit`` with ``fault`` active on all patterns."""
    mask = (1 << n_patterns) - 1
    forced = {fault.signal: mask if fault.value else 0}
    values = simulate_words(
        circuit, input_words, n_patterns, forced_words=forced
    )
    return {out: values[out] for out in circuit.outputs}


class FaultDictionary:
    """Precomputed cause-effect dictionary for one pattern set.

    Production test lines diagnose *many* devices against the *same*
    pattern set; simulating every fault per device (what
    :func:`diagnose_stuck_at` does) wastes that structure.  This class
    simulates each candidate fault once up front and then matches any
    number of observed responses in O(faults × outputs) integer XORs.

    >>> from repro.circuits.library import c17
    >>> from repro.testgen import generate_tests
    >>> circuit = c17()
    >>> patterns = [dict(p) for p in generate_tests(circuit).patterns]
    >>> fd = FaultDictionary(circuit, patterns)
    >>> fd.n_faults > 0
    True
    """

    def __init__(
        self,
        circuit: Circuit,
        patterns: Sequence[Mapping[str, int]],
        faults: Sequence[StuckAtFault] | None = None,
    ) -> None:
        if not patterns:
            raise ValueError("need at least one pattern")
        self._circuit = circuit
        self._patterns = [dict(p) for p in patterns]
        self._n = len(self._patterns)
        input_words = pack_patterns(self._patterns, circuit.inputs)
        self._faults = (
            list(faults) if faults is not None else full_fault_list(circuit)
        )
        self._signatures: list[dict[str, int]] = [
            fault_signature(circuit, fault, input_words, self._n)
            for fault in self._faults
        ]
        good = simulate_words(circuit, input_words, self._n)
        self._good = {out: good[out] for out in circuit.outputs}

    @property
    def n_faults(self) -> int:
        return len(self._faults)

    @property
    def n_patterns(self) -> int:
        return self._n

    def match(
        self,
        observed: Sequence[Mapping[str, int]],
        max_candidates: int | None = None,
    ) -> list[FaultMatch]:
        """Rank the dictionary's faults against one device's responses.

        ``observed`` holds the device's full output response per pattern,
        in the dictionary's pattern order.
        """
        if len(observed) != self._n:
            raise ValueError(
                f"observed {len(observed)} responses for {self._n} patterns"
            )
        observed_words = {out: 0 for out in self._circuit.outputs}
        for j, response in enumerate(observed):
            for out in self._circuit.outputs:
                if response[out] & 1:
                    observed_words[out] |= 1 << j
        matches = [
            FaultMatch(
                fault,
                sum(
                    bin(signature[out] ^ observed_words[out]).count("1")
                    for out in self._circuit.outputs
                ),
            )
            for fault, signature in zip(self._faults, self._signatures)
        ]
        matches.sort(
            key=lambda m: (m.mismatch_bits, m.fault.signal, m.fault.value)
        )
        if max_candidates is not None:
            matches = matches[:max_candidates]
        return matches

    def passes(self, observed: Sequence[Mapping[str, int]]) -> bool:
        """True when the responses equal the fault-free ones (a good die)."""
        if len(observed) != self._n:
            raise ValueError(
                f"observed {len(observed)} responses for {self._n} patterns"
            )
        for j, response in enumerate(observed):
            for out in self._circuit.outputs:
                if (response[out] & 1) != ((self._good[out] >> j) & 1):
                    return False
        return True


def diagnose_stuck_at(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    observed: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault] | None = None,
    max_candidates: int | None = None,
) -> SolutionSetResult:
    """Rank stuck-at faults by how well they explain ``observed``.

    Parameters
    ----------
    patterns:
        The tester's input patterns.
    observed:
        The DUT's observed output values per pattern (full responses, as a
        tester log provides).
    faults:
        Candidate list (default: :func:`full_fault_list`).

    Returns a :class:`SolutionSetResult` whose solutions are the signal
    names of the *exact-match* faults (perfect explanations), with the full
    ranking in ``extras["matches"]``.
    """
    if len(patterns) != len(observed):
        raise ValueError("patterns and observed responses must align")
    if not patterns:
        raise ValueError("need at least one pattern")
    start = time.perf_counter()
    n = len(patterns)
    input_words = pack_patterns(list(patterns), circuit.inputs)
    observed_words: dict[str, int] = {out: 0 for out in circuit.outputs}
    for j, response in enumerate(observed):
        for out in circuit.outputs:
            if response[out] & 1:
                observed_words[out] |= 1 << j
    if faults is None:
        faults = full_fault_list(circuit)
    matches: list[FaultMatch] = []
    for fault in faults:
        signature = fault_signature(circuit, fault, input_words, n)
        mismatch = 0
        for out in circuit.outputs:
            mismatch += bin(signature[out] ^ observed_words[out]).count("1")
        matches.append(FaultMatch(fault, mismatch))
    matches.sort(key=lambda m: (m.mismatch_bits, m.fault.signal, m.fault.value))
    if max_candidates is not None:
        matches = matches[:max_candidates]
    exact = [m for m in matches if m.exact]
    runtime = time.perf_counter() - start
    return SolutionSetResult(
        approach="STUCKAT",
        k=1,
        solutions=tuple(frozenset({m.fault.signal}) for m in exact),
        complete=True,
        t_build=0.0,
        t_first=runtime,
        t_all=runtime,
        extras={"matches": matches, "n_faults": len(faults)},
    )
