"""Stuck-at fault diagnosis for production test (paper §1 motivation).

The paper opens with diagnosis arising in "dynamic verification, property
checking, equivalence checking and production test", and ref [1] treats
error location and fault diagnosis as the same problem.  This module
implements the classic *cause-effect* flavour for the production-test
setting: a device fails on the tester with observed output responses; the
candidate stuck-at faults are those whose simulated faulty behaviour
matches the observation.

Two interchangeable signature engines back the module (``engine``
parameter of :class:`FaultDictionary` and :func:`diagnose_stuck_at`):

* ``"serial"`` — one bit-parallel simulation pass per fault
  (:func:`fault_signature`), the original serial-fault / parallel-pattern
  oracle;
* ``"batch"`` — the fault-parallel × pattern-parallel numpy engine
  (:mod:`repro.sim.batchfault`): all faults stacked along a batch axis and
  swept in one vectorized pass, with matching done by vectorized popcount.
* ``"codegen"`` — the same sweep through the per-circuit generated
  straight-line kernel (:mod:`repro.sim.codegen`): an opt-in fast path
  that pays one kernel build per circuit and then sweeps ~2× faster
  than ``"batch"``.

``"auto"`` (the default) selects ``"batch"``.  All engines produce
bit-identical signatures and rankings — the test-suite and
``benchmarks/bench_stuckat.py`` assert the equivalence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..circuits.netlist import Circuit
from ..faults.models import StuckAtFault
from ..sim.batchfault import (
    batch_output_lanes,
    lanes_to_words,
    pack_responses,
    popcount,
)
from ..sim.parallel import pack_patterns, simulate_words
from .base import SolutionSetResult

__all__ = [
    "FaultMatch",
    "FaultDictionary",
    "full_fault_list",
    "fault_signature",
    "diagnose_stuck_at",
]


@dataclass(frozen=True)
class FaultMatch:
    """One ranked candidate fault.

    ``mismatch_bits`` counts output-bits (over all patterns and outputs)
    where the fault's simulated behaviour differs from the observation;
    0 means a perfect explanation.
    """

    fault: StuckAtFault
    mismatch_bits: int

    @property
    def exact(self) -> bool:
        return self.mismatch_bits == 0


def _resolve_engine(engine: str) -> str:
    if engine == "auto":
        return "batch"
    if engine not in ("batch", "codegen", "serial"):
        # optional engines degrade instead of raising (mirrors
        # repro.sat.backends.BACKEND_FALLBACKS)
        from ..sim.engines import ENGINE_FALLBACKS

        fallback = ENGINE_FALLBACKS.get(engine)
        if fallback in ("batch", "codegen", "serial"):
            return fallback
        raise ValueError(
            f"unknown engine {engine!r}; choose 'auto', 'batch', "
            f"'codegen' or 'serial'"
        )
    return engine


def _output_lanes_fn(engine: str):
    """The batched-sweep implementation for a lane-based engine."""
    if engine == "codegen":
        from ..sim.codegen import codegen_output_lanes  # local: lazy

        return codegen_output_lanes
    return batch_output_lanes


def full_fault_list(
    circuit: Circuit, include_inputs: bool = True
) -> list[StuckAtFault]:
    """Both stuck-at polarities on every gate output (and optionally every
    primary-input stem).

    Primary-input stuck-ats are modelled by forcing the input signal, which
    the checker supports even though the *injector* cannot rewrite an input
    node.  Classic equivalence collapsing is deliberately not applied: the
    diagnosis ranks all sites so ties expose equivalent faults naturally.
    """
    faults: list[StuckAtFault] = []
    for gate in circuit.gates:
        faults.append(StuckAtFault(gate.name, 0))
        faults.append(StuckAtFault(gate.name, 1))
    if include_inputs:
        for pi in circuit.inputs:
            faults.append(StuckAtFault(pi, 0))
            faults.append(StuckAtFault(pi, 1))
    return faults


def fault_signature(
    circuit: Circuit,
    fault: StuckAtFault,
    input_words: Mapping[str, int],
    n_patterns: int,
) -> dict[str, int]:
    """Output words of ``circuit`` with ``fault`` active on all patterns."""
    mask = (1 << n_patterns) - 1
    forced = {fault.signal: mask if fault.value else 0}
    values = simulate_words(
        circuit, input_words, n_patterns, forced_words=forced
    )
    return {out: values[out] for out in circuit.outputs}


def _rank(
    faults: Sequence[StuckAtFault],
    mismatches: Sequence[int],
    max_candidates: int | None,
) -> list[FaultMatch]:
    matches = [
        FaultMatch(fault, int(bits)) for fault, bits in zip(faults, mismatches)
    ]
    matches.sort(key=lambda m: (m.mismatch_bits, m.fault.signal, m.fault.value))
    if max_candidates is not None:
        matches = matches[:max_candidates]
    return matches


class FaultDictionary:
    """Precomputed cause-effect dictionary for one pattern set.

    Production test lines diagnose *many* devices against the *same*
    pattern set; simulating every fault per device (what
    :func:`diagnose_stuck_at` does) wastes that structure.  This class
    simulates each candidate fault once up front and then matches any
    number of observed responses — with the default ``"batch"`` engine the
    build is one fault-parallel numpy sweep and each match a vectorized
    XOR + popcount over the signature matrix.

    >>> from repro.circuits.library import c17
    >>> from repro.testgen import generate_tests
    >>> circuit = c17()
    >>> patterns = [dict(p) for p in generate_tests(circuit).patterns]
    >>> fd = FaultDictionary(circuit, patterns)
    >>> fd.n_faults > 0
    True
    """

    def __init__(
        self,
        circuit: Circuit,
        patterns: Sequence[Mapping[str, int]],
        faults: Sequence[StuckAtFault] | None = None,
        engine: str = "auto",
    ) -> None:
        if not patterns:
            raise ValueError("need at least one pattern")
        self._circuit = circuit
        self._patterns = [dict(p) for p in patterns]
        self._n = len(self._patterns)
        self._engine = _resolve_engine(engine)
        self._faults = (
            list(faults) if faults is not None else full_fault_list(circuit)
        )
        self._signature_words: list[dict[str, int]] | None = None
        if self._engine in ("batch", "codegen"):
            self._fault_lanes, good_lanes, self._lane_mask = (
                _output_lanes_fn(self._engine)(
                    circuit, self._faults, self._patterns
                )
            )
            self._good_lanes = good_lanes & self._lane_mask
        else:
            input_words = pack_patterns(self._patterns, circuit.inputs)
            self._signature_words = [
                fault_signature(circuit, fault, input_words, self._n)
                for fault in self._faults
            ]
            good = simulate_words(circuit, input_words, self._n)
            self._good = {out: good[out] for out in circuit.outputs}

    @property
    def n_faults(self) -> int:
        return len(self._faults)

    @property
    def n_patterns(self) -> int:
        return self._n

    @property
    def engine(self) -> str:
        return self._engine

    def signatures(self) -> list[dict[str, int]]:
        """Per-fault ``{output: word}`` signatures, in fault order.

        Engine-independent canonical form — the benchmark suite uses it to
        verify the batch and serial dictionaries bit-identical.
        """
        if self._signature_words is None:
            self._signature_words = lanes_to_words(
                self._fault_lanes, self._circuit.outputs, self._n
            )
        return [dict(sig) for sig in self._signature_words]

    def _check_length(self, observed: Sequence[Mapping[str, int]]) -> None:
        if len(observed) != self._n:
            raise ValueError(
                f"observed {len(observed)} responses for {self._n} patterns"
            )

    def match(
        self,
        observed: Sequence[Mapping[str, int]],
        max_candidates: int | None = None,
    ) -> list[FaultMatch]:
        """Rank the dictionary's faults against one device's responses.

        ``observed`` holds the device's full output response per pattern,
        in the dictionary's pattern order.
        """
        self._check_length(observed)
        if self._engine in ("batch", "codegen"):
            obs = pack_responses(self._circuit.outputs, observed)
            diff = (self._fault_lanes ^ obs) & self._lane_mask
            counts = popcount(diff).sum(axis=(1, 2))
            return _rank(self._faults, counts, max_candidates)
        observed_words = {out: 0 for out in self._circuit.outputs}
        for j, response in enumerate(observed):
            for out in self._circuit.outputs:
                if response[out] & 1:
                    observed_words[out] |= 1 << j
        assert self._signature_words is not None
        counts = [
            sum(
                bin(signature[out] ^ observed_words[out]).count("1")
                for out in self._circuit.outputs
            )
            for signature in self._signature_words
        ]
        return _rank(self._faults, counts, max_candidates)

    def passes(self, observed: Sequence[Mapping[str, int]]) -> bool:
        """True when the responses equal the fault-free ones (a good die)."""
        self._check_length(observed)
        if self._engine in ("batch", "codegen"):
            obs = pack_responses(self._circuit.outputs, observed)
            return not ((obs ^ self._good_lanes) & self._lane_mask).any()
        for j, response in enumerate(observed):
            for out in self._circuit.outputs:
                if (response[out] & 1) != ((self._good[out] >> j) & 1):
                    return False
        return True


def diagnose_stuck_at(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    observed: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault] | None = None,
    max_candidates: int | None = None,
    engine: str = "auto",
) -> SolutionSetResult:
    """Rank stuck-at faults by how well they explain ``observed``.

    Parameters
    ----------
    patterns:
        The tester's input patterns.
    observed:
        The DUT's observed output values per pattern (full responses, as a
        tester log provides).
    faults:
        Candidate list (default: :func:`full_fault_list`).
    engine:
        ``"batch"`` (one fault-parallel sweep; default via ``"auto"``),
        ``"codegen"`` (the same sweep through the generated per-circuit
        kernel) or ``"serial"`` (one simulation pass per fault; the
        oracle).

    Returns a :class:`SolutionSetResult` whose solutions are the signal
    names of the *exact-match* faults (perfect explanations), with the full
    ranking in ``extras["matches"]``.
    """
    if len(patterns) != len(observed):
        raise ValueError("patterns and observed responses must align")
    if not patterns:
        raise ValueError("need at least one pattern")
    engine = _resolve_engine(engine)
    start = time.perf_counter()
    n = len(patterns)
    if faults is None:
        faults = full_fault_list(circuit)
    faults = list(faults)
    if engine in ("batch", "codegen"):
        fault_lanes, _, lane_mask = _output_lanes_fn(engine)(
            circuit, faults, list(patterns)
        )
        obs = pack_responses(circuit.outputs, observed)
        diff = (fault_lanes ^ obs) & lane_mask
        counts: Sequence[int] = popcount(diff).sum(axis=(1, 2))
    else:
        input_words = pack_patterns(list(patterns), circuit.inputs)
        observed_words: dict[str, int] = {out: 0 for out in circuit.outputs}
        for j, response in enumerate(observed):
            for out in circuit.outputs:
                if response[out] & 1:
                    observed_words[out] |= 1 << j
        counts = []
        for fault in faults:
            signature = fault_signature(circuit, fault, input_words, n)
            counts.append(
                sum(
                    bin(signature[out] ^ observed_words[out]).count("1")
                    for out in circuit.outputs
                )
            )
    matches = _rank(faults, counts, max_candidates)
    exact = [m for m in matches if m.exact]
    runtime = time.perf_counter() - start
    return SolutionSetResult(
        approach="STUCKAT",
        k=1,
        solutions=tuple(frozenset({m.fault.signal}) for m in exact),
        complete=True,
        t_build=0.0,
        t_first=runtime,
        t_all=runtime,
        extras={"matches": matches, "n_faults": len(faults), "engine": engine},
    )
