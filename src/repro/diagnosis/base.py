"""Shared diagnosis types and the paper's Table 1 comparison matrix.

A *candidate* is a gate name; a *correction* is a set of gates whose
functions must change (Definition 2); solutions returned by the multi-error
approaches are corrections.  Result dataclasses keep timing split the way
Table 2 reports it (instance construction vs. first solution vs. all
solutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "Correction",
    "SimDiagnosisResult",
    "SolutionSetResult",
    "APPROACH_PROPERTIES",
    "format_table1",
]

#: A correction: the set of candidate gates to change (Definition 2/3).
Correction = frozenset[str]


@dataclass(frozen=True)
class SimDiagnosisResult:
    """Output of ``BasicSimDiagnose`` (BSIM).

    ``candidate_sets[i]`` is the path-tracing candidate set ``C_i`` of test
    ``i``; ``marks`` is the paper's ``M(g)`` — how many tests marked gate
    ``g``; ``union`` is ``∪ C_i``; ``gmax`` the gates marked by the maximal
    number of tests (the set whose size Table 3 reports as ``Gmax``).
    """

    candidate_sets: tuple[Correction, ...]
    marks: Mapping[str, int]
    runtime: float = 0.0

    @property
    def union(self) -> Correction:
        result: set[str] = set()
        for cs in self.candidate_sets:
            result |= cs
        return frozenset(result)

    @property
    def gmax(self) -> Correction:
        if not self.marks:
            return frozenset()
        top = max(self.marks.values())
        return frozenset(g for g, m in self.marks.items() if m == top)

    @property
    def m(self) -> int:
        """Number of tests diagnosed."""
        return len(self.candidate_sets)


@dataclass(frozen=True)
class SolutionSetResult:
    """Solutions of a multi-error approach (COV, BSAT and variants).

    ``solutions`` are corrections in discovery order; ``complete`` is False
    when enumeration stopped early (limit); ``per_size`` groups solution
    counts by correction size; timing mirrors Table 2's columns: ``t_build``
    ("CNF"), ``t_first`` ("One"), ``t_all`` ("All").
    """

    approach: str
    k: int
    solutions: tuple[Correction, ...]
    complete: bool = True
    t_build: float = 0.0
    t_first: float = 0.0
    t_all: float = 0.0
    extras: Mapping[str, object] = field(default_factory=dict)

    @property
    def n_solutions(self) -> int:
        return len(self.solutions)

    @property
    def per_size(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for sol in self.solutions:
            counts[len(sol)] = counts.get(len(sol), 0) + 1
        return dict(sorted(counts.items()))

    def contains(self, correction: Correction | set[str]) -> bool:
        return frozenset(correction) in set(self.solutions)


#: The qualitative comparison of the paper's Table 1, kept as data so the
#: Table 1 bench prints it and the docs stay in sync with the code.
APPROACH_PROPERTIES: dict[str, dict[str, str]] = {
    "BSIM": {
        "candidates": "O(|I|)",
        "valid_correction": "not guaranteed, guides the designer",
        "effect_analysis": "none",
        "structural_information": "available",
        "engine": "efficient, circuit-based",
        "time_complexity": "O(|I| * m)",
        "size_complexity": "O(|I| + m)",
    },
    "COV": {
        "candidates": "k, user defined (or incrementally determined)",
        "valid_correction": "not guaranteed, guides the designer",
        "effect_analysis": "none",
        "structural_information": "none for correction",
        "engine": "efficient, circuit-based",
        "time_complexity": "O(|I|^k)",
        "size_complexity": "O(|I| * m)",
    },
    "adv. sim.-based": {
        "candidates": "k, user defined (or incrementally determined)",
        "valid_correction": "guaranteed, correct values per test are supplied",
        "effect_analysis": "simulation-based",
        "structural_information": "available",
        "engine": "efficient, circuit-based",
        "time_complexity": "O(|I|^(k+1) * m)",
        "size_complexity": "O(k * |I| * m)",
    },
    "BSAT": {
        "candidates": "k, user defined (or incrementally determined)",
        "valid_correction": "guaranteed, correct values per test are supplied",
        "effect_analysis": "inherent",
        "structural_information": "none",
        "engine": "BCP",
        "time_complexity": "O(k * 2^(|I|*m))",
        "size_complexity": "Theta(|I| * m)",
    },
    "adv. SAT-based": {
        "candidates": "k, user defined (or incrementally determined)",
        "valid_correction": "guaranteed, correct values per test are supplied",
        "effect_analysis": "inherent",
        "structural_information": "exploited during CNF generation",
        "engine": "BCP",
        "time_complexity": "O(2^(|I|*m))",
        "size_complexity": "Theta(|I| * m)",
    },
}


def format_table1() -> str:
    """Render :data:`APPROACH_PROPERTIES` as an aligned text table."""
    rows = [
        "candidates",
        "valid_correction",
        "effect_analysis",
        "structural_information",
        "engine",
        "time_complexity",
        "size_complexity",
    ]
    approaches = list(APPROACH_PROPERTIES)
    col_width = max(
        len(APPROACH_PROPERTIES[a][r]) for a in approaches for r in rows
    )
    header_width = max(len(r) for r in rows)
    lines = [
        " " * header_width
        + " | "
        + " | ".join(a.ljust(col_width) for a in approaches)
    ]
    for row in rows:
        lines.append(
            row.ljust(header_width)
            + " | "
            + " | ".join(
                APPROACH_PROPERTIES[a][row].ljust(col_width) for a in approaches
            )
        )
    return "\n".join(lines)
