"""Sequential diagnosis via time-frame expansion (extension; paper ref [4]).

The paper's experiments treat the ISCAS89 circuits combinationally
(full-scan view), but notes that the SAT-based approach "has also been
applied to diagnose sequential errors efficiently" [4].  This module
implements that extension: the circuit is unrolled over the frames of a
failing input *sequence*; a gate-change error is modelled by one select
line per original gate, shared across all frames *and* all tests, with the
injected value free per (test, frame) — an arbitrary function of the
gate's inputs over time.

Entry points: :func:`failing_sequences` finds failing sequence tests by
comparing against the golden model, :func:`seq_sat_diagnose` enumerates
the corrections.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..circuits.netlist import Circuit
from ..sat.cardinality import totalizer
from ..sat.cnf import CNF
from ..sat.enumerate import enumerate_solutions
from ..sat.tseitin import encode_gate, encode_mux
from ..sim.logicsim import simulate_sequence
from .base import Correction, SolutionSetResult

__all__ = ["SequenceTest", "failing_sequences", "seq_sat_diagnose"]


@dataclass(frozen=True)
class SequenceTest:
    """A failing input sequence: vectors per frame, erroneous output, frame,
    and the correct value there."""

    vectors: tuple[Mapping[str, int], ...]
    output: str
    frame: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.frame < len(self.vectors):
            raise ValueError("frame index out of range")
        if self.value not in (0, 1):
            raise ValueError("correct value must be 0 or 1")

    @property
    def n_frames(self) -> int:
        return len(self.vectors)


def failing_sequences(
    golden: Circuit,
    faulty: Circuit,
    m: int,
    n_frames: int = 4,
    seed: int = 0,
    max_tries: int = 2000,
) -> list[SequenceTest]:
    """Random failing sequences (golden vs. faulty sequential simulation).

    Both circuits start from the all-0 state.  The first (frame, output)
    mismatch of each failing sequence becomes the test's observation point.
    """
    rng = random.Random(seed)
    found: list[SequenceTest] = []
    seen: set[tuple] = set()
    for _ in range(max_tries):
        if len(found) >= m:
            break
        vectors = tuple(
            {pi: rng.getrandbits(1) for pi in golden.inputs}
            for _ in range(n_frames)
        )
        key = tuple(tuple(sorted(v.items())) for v in vectors)
        if key in seen:
            continue
        seen.add(key)
        good = simulate_sequence(golden, vectors)
        bad = simulate_sequence(faulty, vectors)
        hit = None
        for frame in range(n_frames):
            for out in golden.outputs:
                if good[frame][out] != bad[frame][out]:
                    hit = (frame, out, good[frame][out])
                    break
            if hit:
                break
        if hit:
            frame, out, value = hit
            found.append(SequenceTest(vectors, out, frame, value))
    return found


def _encode_unrolled_test(
    cnf: CNF,
    circuit: Circuit,
    test: SequenceTest,
    test_idx: int,
    select_of: Mapping[str, int],
    initial_state: int = 0,
) -> dict[tuple[int, str], int]:
    """Encode one test's unrolled copies; returns (frame, signal) → var."""
    topo = circuit.topological_order()
    var_of: dict[tuple[int, str], int] = {}
    for frame in range(test.n_frames):
        vector = test.vectors[frame]
        for name in topo:
            gate = circuit.node(name)
            tag = f"t{test_idx}f{frame}:{name}"
            if gate.is_input:
                var = cnf.new_var(tag)
                var_of[(frame, name)] = var
                cnf.add_clause([var if vector[name] else -var])
                continue
            if gate.is_dff:
                var = cnf.new_var(tag)
                var_of[(frame, name)] = var
                if frame == 0:
                    cnf.add_clause([var] if initial_state else [-var])
                else:
                    prev = var_of[(frame - 1, gate.fanins[0])]
                    cnf.add_clause([-var, prev])
                    cnf.add_clause([var, -prev])
                continue
            fanin_vars = [var_of[(frame, f)] for f in gate.fanins]
            if name in select_of:
                raw = cnf.new_var(tag + ":raw")
                encode_gate(cnf, gate.gtype, raw, fanin_vars)
                c_var = cnf.new_var(tag + ":c")
                eff = cnf.new_var(tag)
                encode_mux(cnf, eff, select_of[name], c_var, raw)
                var_of[(frame, name)] = eff
            else:
                var = cnf.new_var(tag)
                encode_gate(cnf, gate.gtype, var, fanin_vars)
                var_of[(frame, name)] = var
    out_var = var_of[(test.frame, test.output)]
    cnf.add_clause([out_var if test.value else -out_var])
    return var_of


def seq_sat_diagnose(
    circuit: Circuit,
    tests: Sequence[SequenceTest],
    k: int,
    suspects: Sequence[str] | None = None,
    solution_limit: int | None = None,
    conflict_limit: int | None = None,
) -> SolutionSetResult:
    """SAT-based sequential diagnosis over time-frame expanded copies.

    Selects are shared across frames and tests; enumeration mirrors
    ``BasicSATDiagnose`` (incremental bound, superset blocking), so the
    reported corrections contain only essential candidates.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if not tests:
        raise ValueError("need at least one failing sequence")
    build_start = time.perf_counter()
    suspect_list = (
        tuple(dict.fromkeys(suspects))
        if suspects is not None
        else circuit.gate_names
    )
    cnf = CNF()
    select_of = {g: cnf.new_var(f"s:{g}") for g in suspect_list}
    gate_of = {v: g for g, v in select_of.items()}
    for idx, test in enumerate(tests):
        _encode_unrolled_test(cnf, circuit, test, idx, select_of)
    bound_outs = totalizer(
        cnf, [select_of[g] for g in suspect_list], min(k, len(suspect_list))
    )
    solver = cnf.to_solver()
    t_build = time.perf_counter() - build_start

    search_start = time.perf_counter()
    solutions: list[Correction] = []
    t_first: float | None = None
    complete = True
    select_vars = [select_of[g] for g in suspect_list]
    for bound in range(1, k + 1):
        assumptions = [-bound_outs[bound]] if bound < len(bound_outs) else []
        budget = (
            None if solution_limit is None else solution_limit - len(solutions)
        )
        if budget is not None and budget <= 0:
            complete = False
            break
        try:
            for sol in enumerate_solutions(
                solver,
                select_vars,
                assumptions=assumptions,
                block="superset",
                limit=budget,
                conflict_limit=conflict_limit,
            ):
                solutions.append(frozenset(gate_of[v] for v in sol))
                if t_first is None:
                    t_first = time.perf_counter() - search_start
        except TimeoutError:
            complete = False
            break
    t_all = time.perf_counter() - search_start
    return SolutionSetResult(
        approach="seqSAT",
        k=k,
        solutions=tuple(solutions),
        complete=complete,
        t_build=t_build,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras={"n_vars": cnf.num_vars, "n_clauses": cnf.num_clauses},
    )
