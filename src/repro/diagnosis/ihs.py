"""Implicit-hitting-set diagnosis (Ignatiev/Morgado/Marques-Silva style).

*Model Based Diagnosis of Multiple Observations with Implicit Hitting
Sets* (PAPERS.md) computes minimum-cardinality diagnoses consistent with
*every* observation by dualizing: maintain a growing set of **conflicts**
— gate sets of which every valid correction must contain at least one —
and alternate between (a) a minimum hitting set of the conflicts and (b)
a consistency check of that hitting set against each observation.  An
inconsistent candidate yields a *new* conflict that excludes it, and the
loop repeats until a hitting set survives all observations.

Both engines of the repo feed the loop:

* **Sim side** — the candidate space's per-observation rectification
  sets (derived from the vectorized deductive fault lists /
  fault-parallel sweeps) are each observation's size-1 minimal
  correction sets; a hitting set that hits one rectifying gate per
  observation is consistent *without any SAT call*, and the exact
  bit-parallel forced-value check settles small candidates.
* **SAT side** — when an observation rejects a candidate, the session's
  cached incremental per-observation solver
  (:meth:`~repro.diagnosis.core.DiagnosisSession.rectify_solver`) proves
  it under assumptions ``¬s_g`` for every gate outside the candidate;
  the assumption core is a sound conflict (every correction valid for
  that observation selects at least one core gate), typically far
  smaller than the structural cone.

Hitting sets are enumerated with the repo's own CNF machinery — one
selection variable per pool gate, one clause per conflict, an
:class:`repro.sat.cardinality.IncrementalTotalizer` bound incremented
from 1 — so the first consistent candidates found are
minimum-cardinality, and with superset blocking every reported solution
is subset-minimal within the explored bound.  Initial conflicts are the
failing outputs' fan-in cones (sound: a correction must change the
erroneous output's value, hence contain a cone gate).

The hitting-set instance is **persistent per session**
(:meth:`~repro.diagnosis.core.DiagnosisSession.ihs_state`): selection
variables, accumulated conflicts and the solver's learnt state survive
across calls — conflicts are facts about the problem, so later calls
start from everything earlier calls proved — while each call's
solution-blocking clauses are scoped with an activation literal exactly
like the BSAT enumerations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..circuits.netlist import Circuit
from ..sat.cardinality import IncrementalTotalizer
from ..sat.cnf import CNF
from ..testgen.testset import TestSet
from .base import Correction, SolutionSetResult
from .core import ALL_SYSTEM_KINDS, DiagnosisSession, register_strategy

__all__ = ["ihs_diagnose"]


@dataclass
class _HitterState:
    """Session-persistent hitting-set instance for one (pool, backend)."""

    cnf: CNF
    var_of: dict[str, int]
    gate_of: dict[int, str]
    totalizer: IncrementalTotalizer
    solver: object
    conflicts: list[frozenset[str]]
    seen_conflicts: set[frozenset[str]] = field(default_factory=set)
    scope_count: int = 0

    def add_conflict(self, gates: frozenset[str]) -> bool:
        """Record a sound conflict permanently; False when already known."""
        if not gates or gates in self.seen_conflicts:
            return False
        self.seen_conflicts.add(gates)
        self.conflicts.append(gates)
        self.solver.add_clause([self.var_of[g] for g in sorted(gates)])
        return True

    def begin_scope(self) -> int:
        self.scope_count += 1
        act = self.cnf.new_var(f"act:{self.scope_count}")
        self.solver.ensure_vars(act)
        return act

    def end_scope(self, act: int) -> None:
        self.solver.add_clause([-act])
        self.cnf.add_clause([-act])


def ihs_diagnose(
    circuit: Circuit | None,
    tests: TestSet | None,
    k: int | None = None,
    pool: Sequence[str] | None = None,
    solution_limit: int | None = None,
    max_rounds: int = 10_000,
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
    should_stop: Callable[[], bool] | None = None,
    budget=None,
) -> SolutionSetResult:
    """Implicit hitting set search for minimum-cardinality corrections.

    Parameters
    ----------
    k:
        Largest candidate cardinality to consider (default: the pool
        size — the loop stops at the first cardinality admitting a
        consistent candidate anyway).
    pool:
        Suspect pool (default: every functional gate).
    solution_limit:
        Stop after this many consistent candidates (None: enumerate all
        candidates of the successful cardinality).
    max_rounds:
        Safety valve on hitting-set/consistency-check iterations.
    should_stop:
        Cooperative cancellation hook (the serving race): polled once
        per hitting-set round.  A cancelled run returns the solutions
        found so far with ``complete=False`` and
        ``extras["cancelled"]=True``; its scope closes normally and the
        conflicts it accumulated remain (they are facts about the
        problem, sound for any later call).

    Returns a :class:`SolutionSetResult` (``approach="IHS"``): all
    reported solutions are verified valid corrections of the smallest
    cardinality that admits one; ``extras`` records the conflict and
    SAT-core counts.  ``complete`` is True when the enumeration of that
    cardinality was exhausted.

    ``budget`` (:class:`repro.sat.budget.Budget`) is polled per round
    like ``should_stop`` *and* threaded into the hitting-set solves, so
    a hard hitting-set query cannot overrun a race deadline by more
    than the budget's conflict-poll interval; a budget stop marks
    ``extras["interrupted"]`` alongside ``cancelled``.
    """
    start = time.perf_counter()
    if session is None:
        if circuit is None:
            raise ValueError(
                "ihs_diagnose requires a circuit or an existing session"
            )
        session = DiagnosisSession(circuit, tests)
    space = session.space(pool)
    pool_gates = list(space.pool)
    if not pool_gates:
        raise ValueError("empty suspect pool")
    k_max = len(pool_gates) if k is None else min(k, len(pool_gates))
    if k_max < 1:
        raise ValueError("k must be at least 1")

    # Seed MCSes (sim side): each observation's singleton rectifiers.
    rect_sets = [
        space.observation_candidates(j) for j in range(session.m)
    ]
    from ..sat.backends import resolve_backend

    backend = resolve_backend(
        solver_backend
        if solver_backend is not None
        else session.solver_backend
    )
    pool_key = tuple(pool_gates)

    def build_state() -> _HitterState:
        # Sound initial conflicts: each failing observation's structural
        # conflict (the fan-in cone for circuits, the system-declared
        # component set otherwise).  Only observations that actually
        # fail constrain the correction this way (a passing observation
        # is rectified by the empty correction).
        failing = session.failing_word()
        conflicts: list[frozenset[str]] = []
        seen: set[frozenset[str]] = set()
        for j in range(session.m):
            if not (failing >> j) & 1:
                continue
            cone = space.observation_conflict(j)
            if cone and cone not in seen:
                seen.add(cone)
                conflicts.append(cone)
        # Hitting-set instance: one selection var per pool gate, one
        # clause per conflict, an incremental totalizer for the
        # cardinality bound.  Clauses for new conflicts are added
        # incrementally (CDCL keeps its learnt state).
        cnf = CNF()
        var_of = {g: cnf.new_var(f"h:{g}") for g in pool_gates}
        for conflict in conflicts:
            cnf.add_clause([var_of[g] for g in sorted(conflict)])
        tot = IncrementalTotalizer(
            cnf, [var_of[g] for g in pool_gates], k_max
        )
        hitter = cnf.to_solver(backend=backend)
        tot.bind_solver(hitter)
        return _HitterState(
            cnf=cnf,
            var_of=var_of,
            gate_of={v: g for g, v in var_of.items()},
            totalizer=tot,
            solver=hitter,
            conflicts=conflicts,
            seen_conflicts=seen,
        )

    state: _HitterState = session.ihs_state(
        ("ihs", pool_key, backend), build_state
    )
    state.totalizer.extend(k_max)
    var_of = state.var_of
    gate_of = state.gate_of
    hitter = state.solver
    conflicts = state.conflicts
    t_build = time.perf_counter() - start

    def consistent_with_observation(h: tuple[str, ...], j: int) -> bool:
        """Exact check of one observation, cheapest engine first."""
        if rect_sets[j] & set(h):
            return True  # hits a size-1 MCS of the observation
        return bool(session.rect_word(h) & (1 << j))

    # Conflict extraction runs through the system description
    # (:meth:`DiagnosisSession.observation_core`): for circuits that is
    # the per-observation *master* rectify solver (muxes on every
    # functional gate, pool selected by assumption pins), so pool churn
    # across calls — repair radii, partitioned funnels, refined IHS
    # pools — reuses one encoding and its learnt state per observation
    # instead of rebuilding per pool.  Other system kinds return their
    # own UNSAT-core / coverage conflicts through the same call.
    pool_set = set(pool_gates)

    def extract_conflict(h: tuple[str, ...], j: int) -> frozenset[str]:
        """Sound conflict from an observation that rejects ``h``."""
        core = session.observation_core(h, j, solver_backend=backend)
        # Restrict to the pool: a valid pool correction is also a valid
        # all-components correction, so it intersects the core — hence
        # the pool slice stays a sound conflict (empty slice = the pool
        # cannot rectify the observation at any cardinality).
        return frozenset(c for c in core if c in pool_set)

    act = state.begin_scope()
    search_start = time.perf_counter()
    solutions: list[Correction] = []
    t_first: float | None = None
    complete = True
    rounds = 0
    cores = 0
    found_bound: int | None = None
    infeasible = False
    cancelled = False
    interrupted = False
    try:
        for bound in range(1, k_max + 1):
            if found_bound is not None or infeasible or cancelled:
                break
            assumptions = state.totalizer.bound_assumptions(bound) + [act]
            while True:
                if should_stop is not None and should_stop():
                    complete = False
                    cancelled = True
                    break
                if budget is not None and budget.poll():
                    complete = False
                    cancelled = True
                    interrupted = True
                    break
                if rounds >= max_rounds:
                    complete = False
                    infeasible = True  # stop escalating the bound too
                    break
                rounds += 1
                if budget is None:
                    feasible = hitter.solve(assumptions=assumptions)
                else:
                    feasible = hitter.solve(
                        assumptions=assumptions, budget=budget
                    )
                    if feasible is None:
                        complete = False
                        cancelled = True
                        interrupted = True
                        break
                if not feasible:
                    break  # no hitting set of this cardinality remains
                h = tuple(
                    sorted(
                        gate_of[v]
                        for v in var_of.values()
                        if hitter.value(v)
                    )
                )
                rejecting = None
                for j in range(session.m):
                    if not consistent_with_observation(h, j):
                        rejecting = j
                        break
                if rejecting is None:
                    candidate = frozenset(h)
                    if not any(sol <= candidate for sol in solutions):
                        solutions.append(candidate)
                        if t_first is None:
                            t_first = time.perf_counter() - search_start
                    found_bound = bound
                    # Block supersets (scoped to this call) and keep
                    # enumerating this cardinality.
                    hitter.add_clause(
                        [-var_of[g] for g in h] + [-act]
                    )
                    if (
                        solution_limit is not None
                        and len(solutions) >= solution_limit
                    ):
                        complete = False
                        break
                else:
                    core = extract_conflict(h, rejecting)
                    cores += 1
                    if core:
                        state.add_conflict(core)
                    else:
                        # Empty core: the observation is unrectifiable
                        # even with every pool gate free — no solution
                        # exists at any cardinality.
                        infeasible = True
                        break
    finally:
        state.end_scope(act)
    t_all = time.perf_counter() - search_start
    return SolutionSetResult(
        approach="IHS",
        k=found_bound if found_bound is not None else k_max,
        solutions=tuple(solutions),
        complete=complete,
        t_build=t_build,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras={
            "pool_size": len(pool_gates),
            "rounds": rounds,
            "conflicts": len(conflicts),
            "sat_cores": cores,
            **({"cancelled": True} if cancelled else {}),
            **({"interrupted": True} if interrupted else {}),
        },
    )


@register_strategy(
    "ihs",
    "implicit hitting sets over sim MCSes and SAT cores, minimum "
    "cardinality first",
    kinds=ALL_SYSTEM_KINDS,
)
def _ihs_strategy(
    session: DiagnosisSession, k: int | None = None, **options
) -> SolutionSetResult:
    return ihs_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )
