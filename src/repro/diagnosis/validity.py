"""Valid-correction and essential-candidate checking (Definitions 3 and 4).

A correction ``C`` is *valid* for a test-set when, for every test, some
assignment of values to the gates in ``C`` produces the correct value at
the erroneous output.  Because an arbitrary function replacement at a gate
is — under a fixed input vector — exactly a forced output value, validity
reduces to a per-test exists-check over ``2^|C|`` forced combinations.

The simulation checker evaluates *all* combinations in a single
bit-parallel pass (combination ``j`` lives in bit ``j`` of every signal
word); a SAT fallback covers large corrections.  These checkers are the
executable form of Lemmas 1-4 and the cross-validation oracle for BSAT.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from ..circuits.netlist import Circuit
from ..faults.models import StuckAtFault
from ..sat.cnf import CNF
from ..sat.tseitin import encode_gate
from ..sim.batchevent import BatchEventSimulator
from ..sim.batchfault import _lane_mask, batch_output_lanes
from ..sim.parallel import pack_patterns_numpy, simulate_words
from ..testgen.testset import Test, TestSet
from .base import Correction

__all__ = [
    "rectifiable_by_forcing",
    "is_valid_correction",
    "valid_single_gate_corrections",
    "single_gate_rect_words",
    "has_only_essential_candidates",
    "all_valid_corrections",
]

#: Above this correction size the 2^|C| bit-parallel check yields to SAT.
_SIM_LIMIT = 14


def _counter_words(n_gates: int) -> list[int]:
    """Word ``j`` has bit ``i`` set iff combination index ``i`` sets gate ``j``.

    This lays out all ``2^n_gates`` forced-value combinations across the
    bit-parallel patterns.
    """
    n_patterns = 1 << n_gates
    words = []
    for j in range(n_gates):
        block = 1 << j
        run_mask = (1 << block) - 1
        w = 0
        i = block  # bit j of the pattern index: runs of 2^j, period 2^(j+1)
        while i < n_patterns:
            w |= run_mask << i
            i += 2 * block
        words.append(w)
    return words


def rectifiable_by_forcing(
    circuit: Circuit,
    test: Test,
    gates: Sequence[str],
    constrain_all_outputs: bool = False,
) -> bool:
    """Can forcing values at ``gates`` produce the correct response to ``test``?

    Checks all ``2^len(gates)`` combinations in one bit-parallel simulation.
    With ``constrain_all_outputs`` every output must match the test's
    ``expected_outputs`` simultaneously.
    """
    if not gates:
        # Empty correction: the implementation itself must already pass.
        gates = ()
    n = len(gates)
    if n > _SIM_LIMIT:
        return _rectifiable_sat(circuit, test, gates, constrain_all_outputs)
    n_patterns = 1 << n
    mask = (1 << n_patterns) - 1
    input_words = {
        pi: (mask if test.vector[pi] else 0) for pi in circuit.inputs
    }
    forced = dict(zip(gates, _counter_words(n)))
    values = simulate_words(circuit, input_words, n_patterns, forced_words=forced)
    if constrain_all_outputs:
        if test.expected_outputs is None:
            raise ValueError("test lacks expected_outputs")
        match = mask
        for out in circuit.outputs:
            want = mask if test.expected_outputs[out] else 0
            match &= ~(values[out] ^ want) & mask
        return match != 0
    want = mask if test.value else 0
    return (~(values[test.output] ^ want) & mask) != 0


def _rectifiable_sat(
    circuit: Circuit,
    test: Test,
    gates: Sequence[str],
    constrain_all_outputs: bool,
) -> bool:
    """SAT fallback: free the gates' outputs and ask for a correct response."""
    gate_set = set(gates)
    cnf = CNF()
    var_of: dict[str, int] = {}
    for name in circuit.topological_order():
        gate = circuit.node(name)
        var = cnf.new_var()
        var_of[name] = var
        if gate.is_input:
            cnf.add_clause([var if test.vector[name] else -var])
        elif name in gate_set:
            continue  # free output value
        else:
            encode_gate(cnf, gate.gtype, var, [var_of[f] for f in gate.fanins])
    if constrain_all_outputs:
        if test.expected_outputs is None:
            raise ValueError("test lacks expected_outputs")
        for out in circuit.outputs:
            want = test.expected_outputs[out]
            cnf.add_clause([var_of[out] if want else -var_of[out]])
    else:
        cnf.add_clause([var_of[test.output] if test.value else -var_of[test.output]])
    return bool(cnf.to_solver().solve())


def is_valid_correction(
    circuit: Circuit,
    tests: TestSet | Iterable[Test],
    gates: Iterable[str],
    constrain_all_outputs: bool = False,
) -> bool:
    """Definition 3: every test is rectifiable by changing ``gates``."""
    gate_list = tuple(gates)
    return all(
        rectifiable_by_forcing(
            circuit, test, gate_list, constrain_all_outputs
        )
        for test in tests
    )


def want_care_lanes(
    circuit: Circuit, tests: TestSet, constrain_all_outputs: bool = False
) -> tuple[np.ndarray, np.ndarray, int]:
    """``(want, care, lanes)`` response-goal lanes for a test-set.

    Bit ``j`` of ``care[o]`` is set iff test ``j`` constrains output
    ``o``; ``want`` carries the required value there.  Single
    failing-output semantics by default; with ``constrain_all_outputs``
    every output is constrained to its golden value.  Shared by the
    single-gate screens below and the
    :class:`~repro.diagnosis.core.DiagnosisSession` caches.
    """
    m = len(tests)
    outputs = circuit.outputs
    if constrain_all_outputs:
        for t in tests:
            if t.expected_outputs is None:
                raise ValueError("test lacks expected_outputs")
        # Index every output explicitly so a partial expected_outputs
        # raises KeyError exactly like the per-gate oracle, instead of
        # silently packing the missing outputs as expected-0.
        want_lanes, lanes = pack_patterns_numpy(
            [{o: t.expected_outputs[o] for o in outputs} for t in tests],
            outputs,
        )
        care = np.broadcast_to(
            _lane_mask(m, lanes), (len(outputs), lanes)
        ).copy()
    else:
        # Only the test's erroneous output is constrained: bit j of the
        # care word for output o is set iff test j observes o.
        want_lanes, lanes = pack_patterns_numpy(
            [{t.output: t.value} for t in tests], outputs
        )
        care_lanes, _ = pack_patterns_numpy(
            [{t.output: 1} for t in tests], outputs
        )
        care = np.stack([care_lanes[out] for out in outputs])
    want = np.stack([want_lanes[out] for out in outputs])
    return want, care, lanes


def _lanes_to_word(lanes: np.ndarray, mask: int) -> int:
    """Fold a uint64 lane array into one python int word (bit j = test j)."""
    raw = np.ascontiguousarray(lanes).astype("<u8", copy=False)
    return int.from_bytes(raw.tobytes(), "little") & mask


def single_gate_rect_words(
    circuit: Circuit,
    tests: TestSet | Iterable[Test],
    pool: Sequence[str],
    constrain_all_outputs: bool = False,
    engine: str = "batch",
    sim: BatchEventSimulator | None = None,
) -> dict[str, int]:
    """Per-gate *rectification words* over ``pool``, one engine sweep.

    Bit ``j`` of the word for gate ``g`` is set iff some single forced
    value at ``g`` rectifies test ``j`` (a stuck-at signature realizes
    the correct response).  ``engine="batch"`` computes all ``2·|pool|``
    signatures in one fault-parallel sweep (:mod:`repro.sim.batchfault`)
    — fastest when most of the circuit is in play; ``engine="event"``
    walks the pool on a :class:`~repro.sim.batchevent.
    BatchEventSimulator` (``sim`` reuses a prepared one, e.g. a
    session's), paying only each candidate's fanout cone.  Identical
    results either way (the differential suite asserts this).
    """
    if engine not in ("batch", "event"):
        raise ValueError(
            f"unknown engine {engine!r}; choose 'batch' or 'event'"
        )
    tests = tests if isinstance(tests, TestSet) else TestSet(tuple(tests))
    pool = list(pool)
    if not len(tests) or not pool:
        return {g: 0 for g in pool}
    mask = (1 << len(tests)) - 1
    patterns = tests.vectors()
    want, care, _ = want_care_lanes(circuit, tests, constrain_all_outputs)
    words: dict[str, int] = {}
    if engine == "event":
        if sim is None:
            sim = BatchEventSimulator(circuit, patterns)
        for gate in pool:  # same rejection as the batch path's sweep
            if gate not in circuit.nodes:
                raise ValueError(
                    f"fault site {gate!r} is not a signal of "
                    f"circuit {circuit.name!r}"
                )
        for gate in pool:
            # One word per (value, lane): a set bit marks a test the
            # forced value fails to rectify.  The unforce must run even
            # on failure: ``sim`` may be a session's shared simulator.
            miss = []
            try:
                for value in (0, 1):
                    sim.force(gate, value)
                    miss.append(
                        np.bitwise_or.reduce(
                            (sim.output_lanes() ^ want) & care, axis=0
                        )
                    )
            finally:
                sim.unforce(gate)
            # Candidate {g} fails a test only when *both* values miss it.
            words[gate] = mask & ~_lanes_to_word(miss[0] & miss[1], mask)
        return words
    faults = [
        StuckAtFault(gate, value) for gate in pool for value in (0, 1)
    ]
    fault_lanes, _, _ = batch_output_lanes(circuit, faults, patterns)
    # One word per (row, lane): a set bit marks a test the forced value
    # fails to rectify.
    miss = np.bitwise_or.reduce((fault_lanes ^ want) & care, axis=1)
    # Candidate {g} fails a test only when *both* forced values miss it.
    for i, gate in enumerate(pool):
        words[gate] = mask & ~_lanes_to_word(
            miss[2 * i] & miss[2 * i + 1], mask
        )
    return words


def valid_single_gate_corrections(
    circuit: Circuit,
    tests: TestSet | Iterable[Test],
    pool: Sequence[str],
    constrain_all_outputs: bool = False,
    engine: str = "batch",
) -> list[str]:
    """All gates of ``pool`` that are valid size-1 corrections, batched.

    Semantically ``[g for g in pool if is_valid_correction(circuit, tests,
    (g,))]``, but vectorized through :func:`single_gate_rect_words`: a
    gate is valid alone iff its rectification word covers every test.
    Pool order is preserved.
    """
    tests = tests if isinstance(tests, TestSet) else TestSet(tuple(tests))
    pool = list(pool)
    if not len(tests) or not pool:
        return pool
    words = single_gate_rect_words(
        circuit, tests, pool, constrain_all_outputs, engine
    )
    mask = (1 << len(tests)) - 1
    return [g for g in pool if words[g] == mask]


def has_only_essential_candidates(
    circuit: Circuit,
    tests: TestSet | Iterable[Test],
    gates: Iterable[str],
    constrain_all_outputs: bool = False,
) -> bool:
    """Definition 4: valid, and no proper subset of it is valid.

    (Checking immediate one-removals suffices: validity is monotone — any
    valid subset extends to a valid ``C \\ {g}``.)
    """
    tests = TestSet(tuple(tests)) if not isinstance(tests, TestSet) else tests
    gate_list = tuple(gates)
    if not is_valid_correction(
        circuit, tests, gate_list, constrain_all_outputs
    ):
        return False
    for g in gate_list:
        rest = tuple(x for x in gate_list if x != g)
        if is_valid_correction(circuit, tests, rest, constrain_all_outputs):
            return False
    return True


def all_valid_corrections(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    pool: Sequence[str] | None = None,
    essential_only: bool = True,
    constrain_all_outputs: bool = False,
) -> list[Correction]:
    """Exhaustive reference enumeration of valid corrections up to size ``k``.

    Exponential in ``k`` over ``pool`` (default: all gates) — intended for
    the test-suite, where it is the ground truth BSAT must match exactly.
    With ``essential_only`` the result contains exactly the corrections with
    only essential candidates (what BSAT returns per Lemma 3).
    """
    gate_pool = tuple(pool) if pool is not None else circuit.gate_names
    found: list[Correction] = []
    for size in range(1, k + 1):
        for subset in combinations(gate_pool, size):
            candidate = frozenset(subset)
            if essential_only and any(sol <= candidate for sol in found):
                continue
            if is_valid_correction(
                circuit, tests, subset, constrain_all_outputs
            ):
                found.append(candidate)
    return found
