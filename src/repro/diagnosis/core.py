"""The shared candidate-space core every diagnosis strategy rides on.

The paper's central observation is that simulation-based and SAT-based
diagnosis explore the *same* space — corrections over the same suspects,
judged against the same observations — with different engines.  Before
this module each entry point re-derived that space privately: failing
outputs were re-simulated, fault lists rebuilt, candidate pools re-ranked
per call.  :class:`DiagnosisSession` is now the one place that owns the
space; every strategy (sim, SAT, hybrid, greedy-stochastic, implicit
hitting set) is a thin search loop over it.

Three layers:

* :class:`Observation` — one test triple ``(t, o, v)`` plus optional
  golden responses; the unit both engines constrain.
* :class:`DiagnosisSession` — packs all test vectors into uint64 lanes on
  one shared :class:`~repro.sim.batchevent.BatchEventSimulator` (bit ``j``
  of every lane word is observation ``j``), caches the implementation's
  output signatures, the failing-observation lanes, path-tracing results
  and per-candidate rectification words, and answers
  :meth:`~DiagnosisSession.score`, :meth:`~DiagnosisSession.consistent`
  and :meth:`~DiagnosisSession.refine` for arbitrary suspect sets.
* :class:`CandidateSpace` — a (possibly refined) suspect pool with lazy,
  engine-backed per-gate scoring: one fault-parallel sweep (or shared-sim
  what-ifs) yields each gate's *rectification word* — which observations
  a single forced value at the gate can fix — and the vectorized
  deductive engine (:func:`repro.sim.deductive_numpy`) yields the same
  sets from fault lists, giving strategies both views of the space.

Underneath the session sits the model-agnostic protocol
(:mod:`repro.diagnosis.system`): the session owns memoization and the
solver-instance lifetime while every system-specific answer — what the
components are, which observations a candidate rectifies, how the master
SAT instance is encoded, what a sound conflict looks like — comes from
its :class:`~repro.diagnosis.system.SystemDescription`.  Constructing a
session from ``(circuit, tests)`` binds the gate-level
:class:`~repro.diagnosis.system.CircuitSystem`; constructing it from a
:class:`~repro.diagnosis.system.GroupedCNFSystem` or
:class:`~repro.diagnosis.system.SpectrumSystem` runs the same strategy
loops on clause groups or fault spectra.

Strategies register themselves in :data:`DIAGNOSIS_STRATEGIES` (the
diagnosis twin of ``repro.testgen.atpg._SIM_ENGINES``) via
:func:`register_strategy`, declaring which system kinds they support;
:func:`diagnose` dispatches by name and enforces the kind.  All
registered strategies share the signature ``(session, k, **options) ->
SolutionSetResult`` so runners, the CLI and the candidate-search bench
can race them interchangeably.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, NamedTuple, Sequence

import numpy as np

from ..circuits.netlist import Circuit
from ..circuits.structure import fanin_cone, levels
from ..sat.cnf import CNF
from ..sat.solver import Solver
from ..sat.tseitin import encode_gate, encode_mux
from ..sim.batchevent import BatchEventSimulator
from ..testgen.testset import Test, TestSet
from .base import Correction, SimDiagnosisResult, SolutionSetResult
from .pathtrace import trace_tests
from .system import CircuitSystem, SystemDescription
from .validity import (
    _lanes_to_word,
    want_care_lanes,
)

__all__ = [
    "Observation",
    "DiagnosisSession",
    "CandidateSpace",
    "ALL_SYSTEM_KINDS",
    "DIAGNOSIS_STRATEGIES",
    "StrategyInfo",
    "register_strategy",
    "available_strategies",
    "get_strategy",
    "strategy_kinds",
    "diagnose",
]

#: Every system kind a strategy can declare; registering with this tuple
#: marks the strategy model-agnostic.
ALL_SYSTEM_KINDS: tuple[str, ...] = ("circuit", "gcnf", "spectrum")


@dataclass(frozen=True)
class Observation:
    """One observed misbehaviour: a test vector and its response pair.

    ``vector`` drives the primary inputs; ``output`` is the primary output
    observed to be erroneous and ``value`` its *correct* value (Definition
    1 of the paper — the observed faulty value is ``value ^ 1``).
    ``expected_outputs`` optionally carries golden values for every
    output, enabling the stricter all-outputs-constrained formulation.
    """

    vector: Mapping[str, int]
    output: str
    value: int
    expected_outputs: Mapping[str, int] | None = None

    @classmethod
    def from_test(cls, test: Test) -> "Observation":
        return cls(
            vector=test.vector,
            output=test.output,
            value=test.value,
            expected_outputs=test.expected_outputs,
        )

    def to_test(self) -> Test:
        return Test(
            vector=dict(self.vector),
            output=self.output,
            value=self.value,
            expected_outputs=(
                dict(self.expected_outputs)
                if self.expected_outputs is not None
                else None
            ),
        )

    @property
    def observed_value(self) -> int:
        """The erroneous value the implementation produces at ``output``."""
        return self.value ^ 1


class DiagnosisSession:
    """One diagnosis problem ``(I, T)`` with every shared artifact cached.

    The session packs all test vectors into uint64 lanes once, keeps one
    :class:`~repro.sim.batchevent.BatchEventSimulator` for what-if
    queries (candidate application per test-lane is a forced word plus a
    fanout-cone update), caches the implementation's output signatures
    and path-tracing results, and memoizes per-candidate *rectification
    words* — bit ``j`` set iff observation ``j`` is rectifiable by
    changing the candidate's gates (Definition 3, per test).

    A session is constructed either from the classic ``(circuit, tests)``
    pair — which binds the gate-level
    :class:`~repro.diagnosis.system.CircuitSystem` — or from any other
    :class:`~repro.diagnosis.system.SystemDescription` (grouped CNF,
    fault spectrum): ``DiagnosisSession(system)``.  Either way the
    session owns memoization, solver lifetimes and the strategy
    substrate while the system answers the model-specific questions.

    >>> from repro.circuits.library import c17
    >>> from repro.experiments import make_workload
    >>> w = make_workload(c17(), p=1, m_max=4, seed=11)
    >>> session = DiagnosisSession(w.faulty, w.tests)
    >>> session.consistent(["G19"]) in (True, False)
    True
    """

    def __init__(
        self,
        circuit: Circuit | SystemDescription,
        tests: TestSet | Iterable[Test] | None = None,
        constrain_all_outputs: bool = False,
        solver_backend: str | None = None,
        seed: int = 0,
    ) -> None:
        if isinstance(circuit, SystemDescription):
            if tests is not None:
                raise ValueError(
                    "a SystemDescription carries its own observations; "
                    "pass tests only with a circuit"
                )
            if constrain_all_outputs:
                raise ValueError(
                    "constrain_all_outputs is a circuit-session option"
                )
            self.system: SystemDescription = circuit
            self.circuit = None
            self.tests = None
            self.observations: tuple[Observation, ...] = ()
            self.m = self.system.m
            if self.m < 1:
                raise ValueError(
                    "diagnosis requires at least one observation"
                )
        else:
            if tests is None:
                raise ValueError(
                    "tests are required with a circuit argument"
                )
            if not isinstance(tests, TestSet):
                tests = TestSet(tuple(tests))
            if not len(tests):
                raise ValueError(
                    "diagnosis requires at least one failing test"
                )
            if not circuit.is_combinational:
                raise ValueError(
                    "diagnosis sessions require a combinational circuit; "
                    "apply repro.circuits.to_combinational first"
                )
            if constrain_all_outputs:
                for t in tests:
                    if t.expected_outputs is None:
                        raise ValueError(
                            "constrain_all_outputs requires tests with "
                            "expected_outputs"
                        )
            self.circuit = circuit
            self.tests = tests
            self.observations = tuple(
                Observation.from_test(t) for t in tests
            )
            self.m = len(tests)
            self.system = CircuitSystem(self)
        self.constrain_all_outputs = constrain_all_outputs
        #: Default SAT backend for every solver this session builds
        #: (:mod:`repro.sat.backends`; None = the registry default).
        #: Strategies may override per call via ``solver_backend=``.
        self.solver_backend = solver_backend
        #: Base seed for the stochastic strategies: threaded into the
        #: greedy climbs (decorrelated per system kind) so results are
        #: reproducible per session.
        self.seed = seed
        #: Word with one bit per observation; a candidate is consistent
        #: when its rectification word equals this mask.
        self.all_mask = (1 << self.m) - 1
        self.system.bind(self)
        self._sim: BatchEventSimulator | None = None
        self._responses: dict[str, int] | None = None
        self._want_care: tuple[np.ndarray, np.ndarray, int] | None = None
        self._rect_words: dict[Correction, int] = {}
        self._sim_results: dict[tuple[str, int], SimDiagnosisResult] = {}
        self._spaces: dict[tuple[str, ...] | None, CandidateSpace] = {}
        self._levels: dict[str, int] | None = None
        self._fanin_cones: dict[str, frozenset[str]] = {}
        self._rectify_solvers: dict[
            tuple[int, tuple[str, ...], str | None],
            tuple[Solver, dict[str, int]],
        ] = {}
        self._instances: dict[tuple, object] = {}
        self._ihs_states: dict[tuple, object] = {}
        #: Optional per-design :class:`~repro.diagnosis.satdiag.
        #: MasterEncodingSkeleton` (the serving path's DesignCache sets
        #: this): when present and matching, the session's master
        #: encoding is stamped from the shared skeleton instead of
        #: re-walking the circuit.
        self.master_skeleton = None

    @property
    def kind(self) -> str:
        """The bound system's kind ("circuit", "gcnf", "spectrum", ...)."""
        return self.system.kind

    def _require_circuit(self) -> Circuit:
        if self.circuit is None:
            raise ValueError(
                "this operation requires a circuit-backed session "
                f"(system kind is {self.kind!r})"
            )
        return self.circuit

    # ------------------------------------------------------------------
    # shared engines and cached artifacts
    # ------------------------------------------------------------------
    @property
    def sim(self) -> BatchEventSimulator:
        """The shared lane simulator (one lane bit per observation)."""
        if self._sim is None:
            self._sim = BatchEventSimulator(
                self._require_circuit(),
                [o.vector for o in self.observations],
            )
        return self._sim

    def responses(self) -> dict[str, int]:
        """The implementation's output signature ``{output: word}``.

        Cached — this is the faulty circuit's observed behaviour on all
        tests, the quantity several pre-refactor entry points re-derived
        with one scalar simulation per test.
        """
        if self._responses is None:
            self._responses = dict(self.sim.output_words())
        return dict(self._responses)

    def failing_word(self) -> int:
        """Bit ``j`` set iff observation ``j`` actually fails (the empty
        correction does not rectify it; on circuits: the implementation's
        value at ``o_j`` differs from ``v_j``)."""
        return self.system.failing_word()

    def observation_values(self, j: int) -> dict[str, int]:
        """Full signal valuation of observation ``j`` (from the shared
        lane simulator — no per-test scalar re-simulation)."""
        if not 0 <= j < self.m:
            raise IndexError(f"observation index {j} out of range")
        return self.sim.pattern_values(j)

    def what_if(self, forces: Mapping[str, object]) -> np.ndarray:
        """Output lanes with ``forces`` applied (then reverted).

        ``forces`` maps signal names to 0/1 constants or per-test uint64
        lane words — candidate application per test-lane on the one
        shared simulator.
        """
        sim = self.sim
        try:
            for name, value in forces.items():
                sim.force(name, value)
            return sim.output_lanes()
        finally:
            for name in forces:
                sim.unforce(name)

    def want_care_lanes(self) -> tuple[np.ndarray, np.ndarray, int]:
        """``(want, care, lanes)`` — per-output goal words for all tests.

        The session-cached form of :func:`repro.diagnosis.validity.
        want_care_lanes`: bit ``j`` of ``care[o]`` is set iff observation
        ``j`` constrains output ``o``; ``want`` carries the required
        value there.
        """
        if self._want_care is None:
            self._want_care = want_care_lanes(
                self._require_circuit(), self.tests,
                self.constrain_all_outputs,
            )
        return self._want_care

    def rectified_word(self, lanes: np.ndarray) -> int:
        """Which observations an output-lane matrix satisfies, as a word."""
        want, care, _ = self.want_care_lanes()
        miss = np.bitwise_or.reduce((lanes ^ want) & care, axis=0)
        return self.all_mask & ~_lanes_to_word(miss, self.all_mask)

    def levels(self) -> dict[str, int]:
        if self._levels is None:
            self._levels = levels(self._require_circuit())
        return self._levels

    def fanin_gates(self, output: str) -> frozenset[str]:
        """Functional gates in the fan-in cone of ``output`` (cached).

        Sound conflict structure: a correction that rectifies a failing
        observation at ``output`` must change the output's value, so it
        must contain at least one gate of this cone.
        """
        cached = self._fanin_cones.get(output)
        if cached is None:
            circuit = self._require_circuit()
            gates = set(circuit.gate_names)
            cached = frozenset(
                fanin_cone(circuit, output, include_self=True) & gates
            )
            self._fanin_cones[output] = cached
        return cached

    # ------------------------------------------------------------------
    # candidate evaluation
    # ------------------------------------------------------------------
    def rect_word(self, candidate: Iterable[str]) -> int:
        """Rectification word of ``candidate``: bit ``j`` set iff
        observation ``j`` is rectifiable by changing these components.

        Memoized; the exact computation is the bound system's
        (:meth:`~repro.diagnosis.system.SystemDescription.rect_word` —
        on circuits the singleton fast path plus the exact forced-value
        check, on grouped CNFs incremental consistency solves, on
        spectra set cover).
        """
        gates = frozenset(candidate)
        cached = self._rect_words.get(gates)
        if cached is not None:
            return cached
        word = self.system.rect_word(gates)
        self._rect_words[gates] = word
        return word

    def observation_core(
        self,
        candidate: Iterable[str],
        j: int,
        solver_backend: str | None = None,
    ) -> frozenset[str]:
        """Sound conflict from an observation that rejects ``candidate``
        (:meth:`~repro.diagnosis.system.SystemDescription.
        observation_core`): disjoint from the candidate, intersected by
        every correction valid for observation ``j``; empty when nothing
        can rectify the observation.  The hitting-set strategies (IHS,
        HSDAG) drive their refinement loops with these."""
        if not 0 <= j < self.m:
            raise IndexError(f"observation index {j} out of range")
        return self.system.observation_core(
            candidate, j, solver_backend=solver_backend
        )

    def score(self, candidate: Iterable[str]) -> int:
        """Number of observations ``candidate`` can rectify (0..m)."""
        return self.rect_word(candidate).bit_count()

    def consistent(self, candidate: Iterable[str]) -> bool:
        """Definition 3: is ``candidate`` a valid correction for all
        observations?"""
        return self.rect_word(candidate) == self.all_mask

    def refine(self, suspects: Iterable[str]) -> "CandidateSpace":
        """Narrow the candidate space to ``suspects`` (caches shared)."""
        return self.space(tuple(suspects))

    def space(
        self, suspects: Sequence[str] | None = None
    ) -> "CandidateSpace":
        """The (optionally refined) candidate space over this session."""
        key = None if suspects is None else tuple(dict.fromkeys(suspects))
        cached = self._spaces.get(key)
        if cached is None:
            cached = CandidateSpace(self, key)
            self._spaces[key] = cached
        return cached

    # ------------------------------------------------------------------
    # cached strategy substrate
    # ------------------------------------------------------------------
    def sim_result(
        self, policy: str = "first", seed: int = 0
    ) -> SimDiagnosisResult:
        """``BasicSimDiagnose`` over this session's observations, cached.

        Identical result to :func:`repro.diagnosis.pathtrace.
        basic_sim_diagnose` by construction — both run the shared
        :func:`~repro.diagnosis.pathtrace.trace_tests` loop, here with
        signal valuations from the shared lane simulator instead of one
        scalar simulation per test.
        """
        key = (policy, seed)
        cached = self._sim_results.get(key)
        if cached is not None:
            return cached
        level_map = (
            self.levels() if policy in ("lowest", "highest") else None
        )
        result = trace_tests(
            self._require_circuit(),
            self.tests,
            lambda j, test: self.observation_values(j),
            policy=policy,
            seed=seed,
            level_map=level_map,
        )
        self._sim_results[key] = result
        return result

    def instance(
        self,
        k_max: int,
        suspects: Sequence[str] | None = None,
        select_zero_clauses: bool = False,
        solver_backend: str | None = None,
    ):
        """The session's *persistent* SAT instance for these options.

        One **master** encoding per backend
        (:func:`~repro.diagnosis.satdiag.build_master_instance`:
        correction muxes on every functional gate, free values folded
        into the effective signals so an unselected mux is pure
        propagation) serves every request: each (suspects, select-zero)
        key gets a cached *view*
        (:meth:`~repro.diagnosis.satdiag.DiagnosisInstance.derive_view`)
        whose ``base_assumptions()`` pin the non-suspect selects to 0.
        Deriving a pool instance therefore costs a tuple of pin literals
        instead of a per-pool CNF rebuild (the IHS loop, the repair
        radii and the partitioned funnel all churn pools).  Blocking
        clauses are scoped per query with activation literals and the
        cardinality bound extends in place when a later query needs a
        larger ``k`` — no per-k rebuilds either.  The master's c-free
        mux already subsumes the select-zero pruning, so
        ``select_zero_clauses`` is accepted for signature compatibility
        but ignored entirely: both flag values return the *same* cached
        view object (solution sets are unaffected by the flag either
        way, so keying the cache on it would only duplicate views).
        """
        from ..sat.backends import resolve_backend

        backend = resolve_backend(
            solver_backend
            if solver_backend is not None
            else self.solver_backend
        )
        suspects_key = (
            None if suspects is None else tuple(dict.fromkeys(suspects))
        )
        key = ("view", suspects_key, backend)
        cached = self._instances.get(key)
        if cached is None:
            master = self._instances.get(("master", backend))
            if master is None:
                master = self.system.build_master_instance(
                    k_max, solver_backend=backend
                )
                self._instances[("master", backend)] = master
            else:
                master.extend_k(k_max)
            cached = master.derive_view(suspects_key)
            self._instances[key] = cached
        cached.extend_k(k_max)
        return cached

    def ihs_state(self, key: tuple, factory):
        """Per-session persistent state for the IHS hitting-set loop.

        The implicit-hitting-set search keeps its hitting-set solver —
        selection variables, accumulated conflict clauses, incremental
        totalizer and learnt state — alive across calls under ``key``
        (pool + backend); ``factory`` builds it on first use.
        """
        cached = self._ihs_states.get(key)
        if cached is None:
            cached = factory()
            self._ihs_states[key] = cached
        return cached

    def rectify_solver(
        self,
        j: int,
        pool: Sequence[str],
        solver_backend: str | None = None,
    ) -> tuple[Solver, dict[str, int]]:
        """Incremental per-observation solver for conflict extraction.

        Encodes one copy of the circuit under observation ``j`` with a
        correction multiplexer at every ``pool`` gate and the output
        constrained to its correct value.  Solving under assumptions
        ``¬s_g`` for the gates *outside* a candidate decides whether the
        candidate can rectify the observation; on UNSAT the solver's
        assumption core is a sound conflict: every valid correction for
        the observation selects at least one gate of the core.  Cached
        per ``(observation, pool)`` so the implicit-hitting-set loop
        reuses learned clauses across rounds.
        """
        if not 0 <= j < self.m:
            raise IndexError(f"observation index {j} out of range")
        self._require_circuit()
        from ..sat.backends import resolve_backend

        backend = resolve_backend(
            solver_backend
            if solver_backend is not None
            else self.solver_backend
        )
        pool_key = tuple(dict.fromkeys(pool))
        cached = self._rectify_solvers.get((j, pool_key, backend))
        if cached is not None:
            return cached
        obs = self.observations[j]
        pool_set = set(pool_key)
        cnf = CNF()
        select_of = {g: cnf.new_var(f"s:{g}") for g in pool_key}
        var_of: dict[str, int] = {}
        for name in self.circuit.topological_order():
            gate = self.circuit.node(name)
            if gate.is_input:
                var = cnf.new_var(f"x:{name}")
                var_of[name] = var
                cnf.add_clause([var if obs.vector[name] else -var])
                continue
            fanin_vars = [var_of[f] for f in gate.fanins]
            if name in pool_set:
                raw = cnf.new_var(f"x:{name}:raw")
                encode_gate(cnf, gate.gtype, raw, fanin_vars)
                c_var = cnf.new_var(f"c:{name}")
                eff = cnf.new_var(f"x:{name}")
                encode_mux(cnf, eff, select_of[name], c_var, raw)
                var_of[name] = eff
            else:
                var = cnf.new_var(f"x:{name}")
                encode_gate(cnf, gate.gtype, var, fanin_vars)
                var_of[name] = var
        if self.constrain_all_outputs:
            assert obs.expected_outputs is not None
            for out in self.circuit.outputs:
                want = obs.expected_outputs[out]
                cnf.add_clause([var_of[out] if want else -var_of[out]])
        else:
            out_var = var_of[obs.output]
            cnf.add_clause([out_var if obs.value else -out_var])
        solver = cnf.to_solver(backend=backend)
        self._rectify_solvers[(j, pool_key, backend)] = (solver, select_of)
        return solver, select_of


class CandidateSpace:
    """A suspect pool with lazy, engine-backed per-gate scoring.

    Two engines compute the same per-gate view of the space:

    * the fault-parallel sweep / shared-sim what-ifs give each gate's
      *rectification word* (forcing a single value at the gate is a
      stuck-at signature, so candidate ``{g}`` rectifies observation
      ``j`` iff one of the two forced responses realizes the correct
      value there);
    * the vectorized deductive engine's fault lists
      (:func:`repro.sim.deductive_numpy.deductive_fault_lists_numpy`)
      give, per observation, the gates whose single stuck-at flips the
      failing output — the same sets, derived from fault-list algebra
      (the differential suite asserts the agreement).

    Both views feed the search strategies: rectification words are the
    greedy-stochastic search's cheap consistency oracle; the per-
    observation sets are the implicit-hitting-set loop's seed MCSes.
    """

    def __init__(
        self,
        session: DiagnosisSession,
        pool: Sequence[str] | None = None,
    ) -> None:
        self.session = session
        if pool is None:
            self.pool: tuple[str, ...] = session.system.components
        else:
            self.pool = tuple(dict.fromkeys(pool))
            session.system.validate_components(self.pool)
        self._singleton_words: dict[str, int] | None = None
        self._fault_list_sets: tuple[frozenset[str], ...] | None = None

    def __len__(self) -> int:
        return len(self.pool)

    # -- engine 1: forced-value what-ifs --------------------------------
    def singleton_rect_words(self, engine: str = "auto") -> dict[str, int]:
        """Per-gate rectification words, one engine sweep for the pool.

        Delegates to :func:`repro.diagnosis.validity.
        single_gate_rect_words` (one implementation for the screen and
        the session): ``engine="batch"`` stacks both stuck-at polarities
        of every pool gate on the fault-parallel batch axis (best when
        most of the circuit is in play); ``engine="event"`` walks the
        pool on the session's shared lane simulator, paying only each
        gate's fanout cone (best for small refined pools).  ``"auto"``
        picks by pool fraction.  Identical results either way.
        """
        if self._singleton_words is not None:
            return dict(self._singleton_words)
        if engine not in ("auto", "batch", "event"):
            raise ValueError(
                f"unknown engine {engine!r}; choose 'auto', 'batch' or "
                "'event'"
            )
        words = self.session.system.singleton_rect_words(
            self.pool, engine=engine
        )
        self._singleton_words = words
        return dict(words)

    def singletons(self) -> list[str]:
        """Pool gates that are valid size-1 corrections, pool order."""
        words = self.singleton_rect_words()
        mask = self.session.all_mask
        return [g for g in self.pool if words[g] == mask]

    def marks(self) -> dict[str, int]:
        """Engine-backed per-gate score: how many observations each gate
        can rectify alone (the effect-analysis analogue of BSIM's
        ``M(g)`` mark counts)."""
        words = self.singleton_rect_words()
        return {g: words[g].bit_count() for g in self.pool}

    def rectifying_gates(self, j: int) -> frozenset[str]:
        """Pool gates whose single forced value rectifies observation
        ``j`` — the observation's size-1 minimal correction sets."""
        if not 0 <= j < self.session.m:
            raise IndexError(f"observation index {j} out of range")
        words = self.singleton_rect_words()
        return frozenset(
            g for g in self.pool if (words[g] >> j) & 1
        )

    # -- engine 2: the system's independent candidate-set view ----------
    def observation_candidates(self, j: int) -> frozenset[str]:
        """Observation ``j``'s size-1 rectifier candidates over the pool.

        On circuits this is the vectorized deductive fault-list view: a
        gate's stuck-at flips the observed output iff forcing the gate
        *changes* that output's value.  For a **failing** observation
        (Definition 1 tests fail by construction) changing the erroneous
        value is rectifying it, so this equals :meth:`rectifying_gates`
        — computed through an independent engine (the differential suite
        asserts the agreement on failing observations).  For an
        already-passing observation the two notions diverge: this
        returns the output *flippers* (breakers), while
        :meth:`rectifying_gates` returns near-everything — use
        :meth:`~DiagnosisSession.failing_word` to distinguish.  Other
        system kinds derive the sets from their singleton rectification
        words.
        """
        if self._fault_list_sets is None:
            self._fault_list_sets = (
                self.session.system.observation_candidate_sets(self.pool)
            )
        return self._fault_list_sets[j]

    #: Backwards-compatible name from the circuit-only era.
    fault_list_candidates = observation_candidates

    # -- structural conflicts -------------------------------------------
    def observation_conflict(self, j: int) -> frozenset[str]:
        """Sound conflict for observation ``j``, sliced to the pool: on
        circuits the failing output's fan-in cone; every valid
        correction for the observation intersects the unsliced set."""
        conflict = self.session.system.observation_conflict(j)
        return frozenset(g for g in self.pool if g in conflict)

    #: Backwards-compatible name from the circuit-only era.
    cone_conflict = observation_conflict

    # -- delegation ------------------------------------------------------
    def score(self, candidate: Iterable[str]) -> int:
        return self.session.score(candidate)

    def consistent(self, candidate: Iterable[str]) -> bool:
        return self.session.consistent(candidate)


# ----------------------------------------------------------------------
# strategy registry
# ----------------------------------------------------------------------

#: Signature every registered strategy shares.
Strategy = Callable[..., SolutionSetResult]


class StrategyInfo(NamedTuple):
    """One registry entry: the search loop, its summary, and the system
    kinds it runs on (``("circuit",)`` for the circuit-only strategies,
    :data:`ALL_SYSTEM_KINDS` for the model-agnostic ones)."""

    fn: Strategy
    summary: str
    kinds: tuple[str, ...]


#: Name → :class:`StrategyInfo`.  The diagnosis twin of the ATPG
#: ``_SIM_ENGINES`` registry: one place enumerating every search loop
#: that can run on a :class:`DiagnosisSession`.
DIAGNOSIS_STRATEGIES: dict[str, StrategyInfo] = {}


def register_strategy(
    name: str, summary: str, kinds: Sequence[str] = ("circuit",)
) -> Callable[[Strategy], Strategy]:
    """Class-register a strategy ``(session, k, **options) -> result``.

    ``kinds`` declares which :class:`~repro.diagnosis.system.
    SystemDescription` kinds the strategy supports; :func:`diagnose`
    refuses to dispatch a strategy onto a session of another kind.
    """

    def deco(fn: Strategy) -> Strategy:
        if name in DIAGNOSIS_STRATEGIES:
            raise ValueError(f"strategy {name!r} registered twice")
        DIAGNOSIS_STRATEGIES[name] = StrategyInfo(
            fn, summary, tuple(kinds)
        )
        return fn

    return deco


def available_strategies() -> tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(DIAGNOSIS_STRATEGIES))


def _strategy_info(name: str) -> StrategyInfo:
    try:
        return DIAGNOSIS_STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown diagnosis strategy {name!r}; choose from "
            f"{available_strategies()}"
        ) from None


def get_strategy(name: str) -> Strategy:
    return _strategy_info(name).fn


def strategy_kinds(name: str) -> tuple[str, ...]:
    """System kinds strategy ``name`` supports."""
    return _strategy_info(name).kinds


def diagnose(
    circuit: Circuit | DiagnosisSession | SystemDescription,
    tests: TestSet | Iterable[Test] | None = None,
    k: int | None = None,
    strategy: str = "bsat",
    **options,
) -> SolutionSetResult:
    """Run one registered strategy on ``(circuit, tests)``.

    Accepts a prepared :class:`DiagnosisSession` in place of the circuit
    (with ``tests=None``) so several strategies can share one session's
    caches — the cross-strategy benches race them that way — and a bare
    :class:`~repro.diagnosis.system.SystemDescription` (grouped CNF,
    spectrum), which is wrapped in a fresh session.  The strategy must
    support the session's system kind (see :func:`strategy_kinds`).

    ``k=None`` (the default) leaves the cardinality to the strategy's
    own default: the enumerative strategies use ``k=1`` while the search
    loops (``greedy-stochastic``, ``ihs``) determine the cardinality
    themselves — passing a hard ``k=1`` to those would silently hide
    every multi-gate correction.
    """
    if isinstance(circuit, DiagnosisSession):
        session = circuit
        if tests is not None:
            raise ValueError("pass either a session or (circuit, tests)")
    elif isinstance(circuit, SystemDescription):
        if tests is not None:
            raise ValueError(
                "a SystemDescription carries its own observations"
            )
        session = DiagnosisSession(circuit)
    else:
        if tests is None:
            raise ValueError("tests are required with a circuit argument")
        session = DiagnosisSession(circuit, tests)
    info = _strategy_info(strategy)
    if session.kind not in info.kinds:
        raise ValueError(
            f"strategy {strategy!r} supports system kinds "
            f"{info.kinds}; this session diagnoses a "
            f"{session.kind!r} system"
        )
    if k is None:
        return info.fn(session, **options)
    return info.fn(session, k, **options)


@register_strategy(
    "single-fix",
    "session-native screen: all valid single-gate corrections, one sweep",
    kinds=ALL_SYSTEM_KINDS,
)
def _single_fix_strategy(
    session: DiagnosisSession,
    k: int = 1,
    pool: Sequence[str] | None = None,
    solver_backend: str | None = None,
) -> SolutionSetResult:
    """All size-1 corrections via the space's singleton sweep.

    ``solver_backend`` is accepted for registry uniformity; the sweep is
    pure simulation, so it has no effect here.
    """
    start = time.perf_counter()
    space = session.space(pool)
    singles = space.singletons()
    t_all = time.perf_counter() - start
    return SolutionSetResult(
        approach="single-fix",
        k=1,
        solutions=tuple(frozenset({g}) for g in singles),
        complete=True,
        t_build=0.0,
        t_first=t_all,
        t_all=t_all,
        extras={"pool_size": len(space), "marks": space.marks()},
    )
