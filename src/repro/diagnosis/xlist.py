"""X-list style diagnosis by forward X-injection (paper §2.2, ref [5]).

Boppana et al.'s alternative to path tracing: instead of backtracing
sensitized paths, inject an unknown ``X`` at a suspect and propagate it
*forward* with three-valued simulation.  Only if the ``X`` reaches the
erroneous output can a function change at the suspect possibly fix that
test — "the effect of changing a value at a certain position is
considered", giving a cheap necessary condition without full effect
analysis.

Like path tracing this yields candidates, not guaranteed corrections; the
optional ``verify`` step upgrades candidates to valid corrections via the
exact checker, giving an X-list-pruned variant of the advanced
simulation-based search.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Sequence

from ..circuits.netlist import Circuit
from ..sim.threevalued import x_reaches
from ..testgen.testset import TestSet
from .base import Correction, SimDiagnosisResult, SolutionSetResult
from .core import DiagnosisSession, register_strategy
from .validity import is_valid_correction

__all__ = ["xlist_candidates", "xlist_diagnose"]


def xlist_candidates(
    circuit: Circuit, tests: TestSet, suspects: Sequence[str] | None = None
) -> SimDiagnosisResult:
    """Per-test X-list candidate sets.

    Gate ``g`` is a candidate for test ``i`` when forcing ``g`` to ``X``
    makes the erroneous output ``o_i`` unknown.  Analogous to path
    tracing's ``C_i`` but derived by forward implication; the same mark
    counts ``M(g)`` apply.
    """
    pool = tuple(suspects) if suspects is not None else circuit.gate_names
    start = time.perf_counter()
    candidate_sets: list[frozenset[str]] = []
    marks: dict[str, int] = {}
    for test in tests:
        cand = frozenset(
            g
            for g in pool
            if x_reaches(circuit, test.vector, (g,), test.output)
        )
        candidate_sets.append(cand)
        for g in cand:
            marks[g] = marks.get(g, 0) + 1
    return SimDiagnosisResult(
        candidate_sets=tuple(candidate_sets),
        marks=marks,
        runtime=time.perf_counter() - start,
    )


def xlist_diagnose(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    verify: bool = True,
    suspects: Sequence[str] | None = None,
    solver_backend: str | None = None,
) -> SolutionSetResult:
    """Multi-error X-list diagnosis.

    Enumerates subsets (size ≤ k) of the X-list candidate union whose
    *joint* X-injection reaches every erroneous output — the multi-error
    necessary condition — and, with ``verify`` (default), keeps only the
    minimal subsets that are valid corrections.  Without verification the
    result is candidate guidance like COV (Lemma-2-style invalid solutions
    are possible).
    """
    start = time.perf_counter()
    sim_result = xlist_candidates(circuit, tests, suspects=suspects)
    pool = sorted(sim_result.union, key=lambda g: -sim_result.marks[g])
    t_build = time.perf_counter() - start

    search_start = time.perf_counter()
    solutions: list[Correction] = []
    t_first: float | None = None
    for size in range(1, k + 1):
        for subset in combinations(pool, size):
            candidate = frozenset(subset)
            if any(sol <= candidate for sol in solutions):
                continue
            reaches_all = all(
                x_reaches(circuit, t.vector, subset, t.output) for t in tests
            )
            if not reaches_all:
                continue
            if verify and not is_valid_correction(circuit, tests, subset):
                continue
            solutions.append(candidate)
            if t_first is None:
                t_first = time.perf_counter() - search_start
    t_all = time.perf_counter() - search_start
    return SolutionSetResult(
        approach="XLIST" + ("+v" if verify else ""),
        k=k,
        solutions=tuple(solutions),
        complete=True,
        t_build=t_build,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras={"sim_result": sim_result, "pool_size": len(pool)},
    )


@register_strategy(
    "xlist", "forward X-injection candidates, optionally verified valid"
)
def _xlist_strategy(
    session: DiagnosisSession, k: int = 1, **options
) -> SolutionSetResult:
    return xlist_diagnose(session.circuit, session.tests, k, **options)
