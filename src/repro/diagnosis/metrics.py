"""Diagnosis quality metrics — everything Table 3 and Figure 6 report.

The central measure is the *distance to the nearest actual error site*:
the number of gates on a shortest path (in the undirected gate graph)
between a candidate and any injected error — "an intuition up to which
depth the designer has to analyze the circuit" (§5).  Distance 0 is an
exact hit.

For BSIM the table reports the union size ``|∪Ci|``, the average distance
over all marked gates (``avgA``), the gates marked by the maximal number of
tests (``Gmax``) and their min/max/average distance.  For COV and BSAT it
reports the number of solutions and, over the per-solution *average*
distances, the min/max/average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..circuits.netlist import Circuit
from ..circuits.structure import undirected_distance_to_nearest
from .base import Correction, SimDiagnosisResult

__all__ = [
    "BsimQuality",
    "SolutionQuality",
    "distance_map",
    "bsim_quality",
    "solution_quality",
    "hit_rate",
]


@dataclass(frozen=True)
class BsimQuality:
    """Table 3's BSIM columns."""

    union_size: int          # |∪Ci|
    avg_all: float           # avgA: mean distance of every marked gate
    gmax_size: int           # Gmax: #gates marked by the max number of tests
    gmax_min: float          # min distance among Gmax gates
    gmax_max: float          # max distance among Gmax gates
    gmax_avg: float          # avgG

    @property
    def error_in_gmax(self) -> bool:
        """True iff an actual error site got the maximal mark count
        (``gmax_min == 0``)."""
        return self.gmax_min == 0


@dataclass(frozen=True)
class SolutionQuality:
    """Table 3's COV/SAT columns: per-solution average distances."""

    n_solutions: int
    min_avg: float
    max_avg: float
    avg_avg: float           # the "avg" column; Figure 6(a) plots this

    @property
    def is_empty(self) -> bool:
        return self.n_solutions == 0


def distance_map(circuit: Circuit, error_sites: Iterable[str]) -> dict[str, int]:
    """Distance of every signal to the nearest actual error site."""
    return undirected_distance_to_nearest(circuit, list(error_sites))


def bsim_quality(
    circuit: Circuit,
    result: SimDiagnosisResult,
    error_sites: Iterable[str],
) -> BsimQuality:
    """Compute the BSIM quality columns of Table 3."""
    dist = distance_map(circuit, error_sites)
    union = sorted(result.union)
    gmax = sorted(result.gmax)
    union_d = [dist[g] for g in union]
    gmax_d = [dist[g] for g in gmax]
    return BsimQuality(
        union_size=len(union),
        avg_all=_mean(union_d),
        gmax_size=len(gmax),
        gmax_min=min(gmax_d) if gmax_d else float("nan"),
        gmax_max=max(gmax_d) if gmax_d else float("nan"),
        gmax_avg=_mean(gmax_d),
    )


def solution_quality(
    circuit: Circuit,
    solutions: Sequence[Correction],
    error_sites: Iterable[str],
) -> SolutionQuality:
    """Compute the COV/SAT quality columns of Table 3.

    For each solution the average candidate distance is taken; the summary
    reports min/max/average of those per-solution averages.
    """
    dist = distance_map(circuit, error_sites)
    per_solution = [
        _mean([dist[g] for g in sol]) for sol in solutions if sol
    ]
    if not per_solution:
        nan = float("nan")
        return SolutionQuality(len(solutions), nan, nan, nan)
    return SolutionQuality(
        n_solutions=len(solutions),
        min_avg=min(per_solution),
        max_avg=max(per_solution),
        avg_avg=_mean(per_solution),
    )


def hit_rate(
    solutions: Sequence[Correction], error_sites: Iterable[str]
) -> float:
    """Fraction of solutions containing at least one actual error site.

    Not in the paper's tables but a natural summary used by the extended
    ablation benches.
    """
    sites = set(error_sites)
    if not solutions:
        return float("nan")
    hits = sum(1 for sol in solutions if sol & sites)
    return hits / len(solutions)


def _mean(values: Sequence[float]) -> float:
    if not values:
        return float("nan")
    return sum(values) / len(values)
