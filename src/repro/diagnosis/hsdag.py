"""Reiter-style hitting-set DAG diagnosis (HS-DAG cross-check strategy).

*A Theory of Diagnosis from First Principles* (Reiter 1987; PAPERS.md)
computes diagnoses as the minimal hitting sets of the system's conflict
sets, explored breadth-first over a DAG: each node carries the set ``H``
of components committed so far (the edge labels on its path), a node
inconsistent with some observation is labelled with a **conflict**
disjoint from ``H`` — every valid correction containing ``H`` must pick
at least one conflict element — and gets one child per conflict element.
Consistent nodes are diagnoses.

This implementation speaks only the
:class:`~repro.diagnosis.system.SystemDescription` protocol, so it runs
unchanged on circuits, grouped CNFs and fault spectra:

* consistency is the session's exact oracle
  (:meth:`~repro.diagnosis.core.DiagnosisSession.rect_word`);
* conflicts come from
  :meth:`~repro.diagnosis.core.DiagnosisSession.observation_core` — the
  per-observation assumption core for SAT-backed systems, the failing
  row's coverage for spectra — and are **sound but not necessarily
  minimal**, which plain HS-tree search tolerates: a sound conflict
  disjoint from ``H`` still intersects every diagnosis extending ``H``,
  so every minimal diagnosis keeps an open path (pick any element the
  diagnosis shares with the label).  Consistent nodes are trimmed to
  subset-minimal diagnoses with the exact oracle before being recorded.

Known conflicts are reused before any oracle call (the smallest one
disjoint from ``H`` labels the node for free), and paths that contain a
recorded diagnosis are closed.  The strategy is a deliberately
independent *cross-check* for ``bsat``/``ihs``: same solution sets,
entirely different search (tests pin the equality on circuits and
grouped CNFs).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Sequence

from ..circuits.netlist import Circuit
from ..testgen.testset import TestSet
from .base import Correction, SolutionSetResult
from .core import ALL_SYSTEM_KINDS, DiagnosisSession, register_strategy

__all__ = ["hsdag_diagnose"]


def _trim(
    session: DiagnosisSession, candidate: frozenset[str]
) -> frozenset[str]:
    """Deletion-based trim of a consistent candidate to subset-minimal.

    Deterministic (components dropped in sorted order); every query goes
    through the memoized exact oracle.
    """
    current = set(candidate)
    for c in sorted(candidate):
        if len(current) == 1:
            break
        if c in current and session.consistent(current - {c}):
            current.remove(c)
    return frozenset(current)


def hsdag_diagnose(
    circuit: Circuit | None,
    tests: TestSet | None,
    k: int | None = None,
    pool: Sequence[str] | None = None,
    solution_limit: int | None = None,
    max_nodes: int = 100_000,
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
) -> SolutionSetResult:
    """Breadth-first Reiter HS-DAG over system conflicts.

    Parameters
    ----------
    k:
        Largest candidate cardinality to consider (default: pool size).
    pool:
        Suspect pool (default: every component of the system).
    solution_limit:
        Stop after this many diagnoses (None: enumerate all of size
        ``<= k``).
    max_nodes:
        Safety valve on expanded DAG nodes; tripping it sets
        ``complete=False``.

    Returns a :class:`SolutionSetResult` (``approach="HSDAG"``): the
    subset-minimal valid corrections of cardinality ``<= k``, each
    verified by the exact consistency oracle.
    """
    start = time.perf_counter()
    if session is None:
        if circuit is None:
            raise ValueError(
                "hsdag_diagnose requires a circuit or an existing session"
            )
        session = DiagnosisSession(circuit, tests)
    space = session.space(pool)
    pool_list = sorted(space.pool)
    pool_set = set(pool_list)
    if not pool_list:
        raise ValueError("empty suspect pool")
    k_max = len(pool_list) if k is None else min(k, len(pool_list))
    if k_max < 1:
        raise ValueError("k must be at least 1")
    all_mask = session.all_mask
    t_build = time.perf_counter() - start

    search_start = time.perf_counter()
    t_first: float | None = None
    solutions: list[Correction] = []
    # Conflicts ordered smallest-first so label reuse prefers the
    # tightest (fewest children) known conflict.
    conflicts: list[frozenset[str]] = []
    seen_conflicts: set[frozenset[str]] = set()

    def record_conflict(conf: frozenset[str]) -> None:
        if conf in seen_conflicts:
            return
        seen_conflicts.add(conf)
        conflicts.append(conf)
        conflicts.sort(key=lambda c: (len(c), sorted(c)))

    queue: deque[frozenset[str]] = deque([frozenset()])
    visited: set[frozenset[str]] = {frozenset()}
    nodes = 0
    cores = 0
    complete = True
    while queue:
        if nodes >= max_nodes:
            complete = False
            break
        H = queue.popleft()
        nodes += 1
        # Closed: any extension of a recorded diagnosis is non-minimal.
        if any(sol <= H for sol in solutions):
            continue
        # Label reuse: a known conflict disjoint from H proves H is not
        # a diagnosis without consulting the oracle (H misses a set
        # every valid correction must hit).
        label: frozenset[str] | None = None
        for conf in conflicts:
            if not (conf & H):
                label = conf
                break
        if label is None:
            word = session.rect_word(H)
            if word == all_mask:
                minimal = _trim(session, H)
                if minimal not in solutions:
                    solutions.append(minimal)
                    if t_first is None:
                        t_first = time.perf_counter() - search_start
                    if (
                        solution_limit is not None
                        and len(solutions) >= solution_limit
                    ):
                        complete = False
                        break
                continue
            rejecting = next(
                j
                for j in range(session.m)
                if (all_mask >> j) & 1 and not (word >> j) & 1
            )
            core = session.observation_core(
                H, rejecting, solver_backend=solver_backend
            )
            cores += 1
            label = frozenset(c for c in core if c in pool_set)
            if not label:
                # The pool cannot rectify this observation even with
                # every component beyond H free: no diagnosis extends H.
                continue
            record_conflict(label)
        if len(H) >= k_max:
            continue
        for c in sorted(label):
            child = H | {c}
            if child not in visited:
                visited.add(child)
                queue.append(child)
    t_all = time.perf_counter() - search_start
    solutions.sort(key=lambda s: (len(s), sorted(s)))
    return SolutionSetResult(
        approach="HSDAG",
        k=k_max,
        solutions=tuple(solutions),
        complete=complete,
        t_build=t_build,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras={
            "pool_size": len(pool_list),
            "nodes": nodes,
            "conflicts": len(conflicts),
            "sat_cores": cores,
        },
    )


@register_strategy(
    "hsdag",
    "Reiter hitting-set DAG over observation conflicts, breadth-first",
    kinds=ALL_SYSTEM_KINDS,
)
def _hsdag_strategy(
    session: DiagnosisSession, k: int | None = None, **options
) -> SolutionSetResult:
    return hsdag_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )
