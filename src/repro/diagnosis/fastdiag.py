"""FastDiag divide-and-conquer diagnosis (QuickXplain-dual cross-check).

*An Efficient Diagnosis Algorithm for Inconsistent Constraint Sets*
(Felfernig/Schubert/Zehentner, FastDiag; PAPERS.md) finds one
subset-minimal diagnosis with ``O(|diag| * log(pool/|diag|))``
consistency checks instead of the linear deletion sweep: it is the dual
of Junker's QuickXplain, recursively splitting the component pool and
discarding whole halves the moment the kept part alone is consistent.

The repo's consistency predicates are **monotone** for every
:class:`~repro.diagnosis.system.SystemDescription` — a larger candidate
never loses an observation (the circuit mux can mimic the original
function; retracting more clauses keeps a formula satisfiable; a larger
cover covers more rows) — which is exactly the property FastDiag's
prune steps rely on.  Consistency is the session's exact memoized
oracle, so the strategy runs unchanged on circuits, grouped CNFs and
fault spectra, with no RNG anywhere: results are a deterministic
function of the pool order.

Enumeration uses the dual HS-tree: each node carries a set of
*excluded* components, is labelled with a minimal diagnosis avoiding
them (computed by FastDiag over the remaining pool), and branches by
excluding one label element per child.  Any other minimal diagnosis
``D'`` survives some branch (a label ``D != D'`` cannot be a subset of
``D'``, so some label element is outside ``D'`` and excluding it keeps
``D'`` reachable), making the enumeration complete.  Like ``hsdag``
this is a deliberately independent cross-check for ``bsat``/``ihs``:
same solution sets, entirely different search.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Sequence

from ..circuits.netlist import Circuit
from ..testgen.testset import TestSet
from .base import Correction, SolutionSetResult
from .core import ALL_SYSTEM_KINDS, DiagnosisSession, register_strategy

__all__ = ["fastdiag_diagnose"]


def _fastdiag_one(
    session: DiagnosisSession,
    base: tuple[str, ...],
    candidates: list[str],
    counter: list[int],
) -> list[str] | None:
    """Minimal ``X`` within ``candidates`` with ``base + X`` consistent.

    Requires ``base + candidates`` consistent; returns None when even
    that fails (no diagnosis in this branch).  ``counter[0]`` tallies
    oracle calls.
    """
    counter[0] += 1
    if not session.consistent(base + tuple(candidates)):
        return None
    return _qx(session, True, base, candidates, counter)


def _qx(
    session: DiagnosisSession,
    base_may_suffice: bool,
    base: tuple[str, ...],
    candidates: list[str],
    counter: list[int],
) -> list[str]:
    """QuickXplain-dual core: assumes ``base + candidates`` consistent."""
    if base_may_suffice:
        counter[0] += 1
        if session.consistent(base):
            return []
    if len(candidates) == 1:
        return list(candidates)
    half = len(candidates) // 2
    left, right = candidates[:half], candidates[half:]
    # Minimal part of `right` needed on top of all of `left`...
    need_right = _qx(session, True, base + tuple(left), right, counter)
    # ...then the minimal part of `left` needed on top of that.
    need_left = _qx(
        session, bool(need_right), base + tuple(need_right), left, counter
    )
    return need_left + need_right


def fastdiag_diagnose(
    circuit: Circuit | None,
    tests: TestSet | None,
    k: int | None = None,
    pool: Sequence[str] | None = None,
    solution_limit: int | None = None,
    max_nodes: int = 100_000,
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
) -> SolutionSetResult:
    """FastDiag with dual HS-tree enumeration of minimal diagnoses.

    Parameters
    ----------
    k:
        Report only diagnoses of cardinality ``<= k`` (default: pool
        size).  The tree is still explored past larger labels — a big
        minimal diagnosis on one branch says nothing about its
        siblings.
    pool:
        Suspect pool (default: every component of the system).
    solution_limit:
        Stop after this many reported diagnoses (None: enumerate all).
    max_nodes:
        Safety valve on HS-tree nodes; tripping it sets
        ``complete=False``.
    solver_backend:
        Accepted for registry interface parity.  FastDiag only speaks
        the session's exact consistency oracle, which uses the
        session's own backend where it needs a solver at all —
        solution sets are backend-independent either way.

    Returns a :class:`SolutionSetResult` (``approach="FASTDIAG"``): the
    subset-minimal valid corrections of cardinality ``<= k``, each
    verified consistent by construction.
    """
    start = time.perf_counter()
    if session is None:
        if circuit is None:
            raise ValueError(
                "fastdiag_diagnose requires a circuit or an existing "
                "session"
            )
        session = DiagnosisSession(circuit, tests)
    space = session.space(pool)
    pool_list = sorted(space.pool)
    if not pool_list:
        raise ValueError("empty suspect pool")
    k_max = len(pool_list) if k is None else min(k, len(pool_list))
    if k_max < 1:
        raise ValueError("k must be at least 1")
    t_build = time.perf_counter() - start

    search_start = time.perf_counter()
    t_first: float | None = None
    counter = [0]
    solutions: list[Correction] = []
    recorded: set[Correction] = set()
    queue: deque[frozenset[str]] = deque([frozenset()])
    visited: set[frozenset[str]] = {frozenset()}
    nodes = 0
    complete = True
    while queue:
        if nodes >= max_nodes:
            complete = False
            break
        excluded = queue.popleft()
        nodes += 1
        remaining = [c for c in pool_list if c not in excluded]
        if not remaining:
            continue
        diag = _fastdiag_one(session, (), remaining, counter)
        if diag is None:
            continue  # nothing avoiding `excluded` is consistent
        label = frozenset(diag)
        if label not in recorded:
            recorded.add(label)
            if len(label) <= k_max:
                solutions.append(label)
                if t_first is None:
                    t_first = time.perf_counter() - search_start
                if (
                    solution_limit is not None
                    and len(solutions) >= solution_limit
                ):
                    complete = False
                    break
        for c in sorted(label):
            child = excluded | {c}
            if child not in visited:
                visited.add(child)
                queue.append(child)
    t_all = time.perf_counter() - search_start
    solutions.sort(key=lambda s: (len(s), sorted(s)))
    return SolutionSetResult(
        approach="FASTDIAG",
        k=k_max,
        solutions=tuple(solutions),
        complete=complete,
        t_build=t_build,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras={
            "pool_size": len(pool_list),
            "nodes": nodes,
            "consistency_checks": counter[0],
            "distinct_minima": len(recorded),
        },
    )


@register_strategy(
    "fastdiag",
    "FastDiag divide-and-conquer minima via a dual hitting-set tree",
    kinds=ALL_SYSTEM_KINDS,
)
def _fastdiag_strategy(
    session: DiagnosisSession, k: int | None = None, **options
) -> SolutionSetResult:
    return fastdiag_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )
