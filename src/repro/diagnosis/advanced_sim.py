"""Advanced simulation-based diagnosis (paper §2.2, refs [9, 13, 18]).

Where BSIM stops at candidate marking, the advanced approaches *verify*
candidates: corrections of size up to ``k`` are assembled from the
path-tracing pool, each checked by re-simulation ("effect analysis"), with
greedy ordering by mark count and chronological backtracking — the
time-complexity blow-up from ``O(|I|·m)`` to ``O(|I|^{k+1}·m)`` the paper
describes.

Both entry points are thin strategies over one
:class:`~repro.diagnosis.core.DiagnosisSession`: the session owns the
packed test lanes, the path-tracing cache, the single-gate screen (one
fault-parallel sweep) and the memoized effect-analysis verdicts, so the
searches never re-derive shared state.

Two entry points:

* :func:`enumerate_sim_corrections` — exhaustive DFS over a candidate pool
  with exact effect analysis; restricted to the PT pool it reproduces the
  advanced simulation-based approaches (valid corrections, but possibly
  missing ones whose gates PT never marks — the Lemma 4 gap); with
  ``pool=None`` (all gates) it is an oracle equal to BSAT.
* :func:`incremental_sim_diagnose` — the greedy-with-backtracking flavour
  of ref [13]: pick the highest-marked candidate, re-run path tracing on
  the corrected circuit for the still-failing tests, recurse, backtrack on
  dead ends.  Its what-if re-simulation rides the session's shared
  :class:`~repro.sim.batchevent.BatchEventSimulator`: all tests live in
  uint64 lanes and a correction is one forced word, so applying a
  candidate costs one fanout-cone update instead of one scalar simulation
  per test.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Sequence

from ..circuits.netlist import Circuit
from ..testgen.testset import TestSet
from .base import Correction, SolutionSetResult
from .core import DiagnosisSession, register_strategy
from .pathtrace import path_trace
from .validity import valid_single_gate_corrections

__all__ = ["enumerate_sim_corrections", "incremental_sim_diagnose"]


def enumerate_sim_corrections(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    pool: Sequence[str] | None = None,
    policy: str = "first",
    approach_name: str = "advSIM",
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
) -> SolutionSetResult:
    """All minimal valid corrections of size ≤ k within ``pool``.

    ``pool=None`` uses the path-tracing union ``∪ C_i`` (the advanced
    simulation-based pruning); ``pool=circuit.gate_names`` makes the search
    exhaustive.  Effect analysis is the exact bit-parallel forced-value
    check of :mod:`repro.diagnosis.validity`, memoized on the session, so
    every reported correction is valid, with only essential candidates.
    """
    if session is None:
        session = DiagnosisSession(circuit, tests)
    start = time.perf_counter()
    sim_result = None
    if pool is None:
        sim_result = session.sim_result(policy=policy)
        pool = sorted(sim_result.union, key=lambda g: -sim_result.marks[g])
    pool = list(pool)
    t_build = time.perf_counter() - start

    search_start = time.perf_counter()
    solutions: list[Correction] = []
    t_first: float | None = None
    # Size-ordered search so minimality-by-subsumption works: explore all
    # subsets of size s before any of size s+1.  Size 1 is screened in one
    # fault-parallel batched sweep (forcing one gate is a stuck-at
    # signature) instead of one effect-analysis pass per gate.
    if k >= 1:
        for gate in _screen_singletons(session, pool):
            candidate = frozenset({gate})
            if candidate in solutions:
                continue
            solutions.append(candidate)
            if t_first is None:
                t_first = time.perf_counter() - search_start
    for size in range(2, k + 1):
        for subset in combinations(pool, size):
            candidate = frozenset(subset)
            if any(sol <= candidate for sol in solutions):
                continue
            if session.consistent(subset):
                solutions.append(candidate)
                if t_first is None:
                    t_first = time.perf_counter() - search_start
    t_all = time.perf_counter() - search_start
    return SolutionSetResult(
        approach=approach_name,
        k=k,
        solutions=tuple(solutions),
        complete=True,
        t_build=t_build,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras={"pool_size": len(pool), "sim_result": sim_result},
    )


def _screen_singletons(
    session: DiagnosisSession, pool: list[str]
) -> list[str]:
    """Valid size-1 corrections of ``pool``, via the session's sweep.

    Falls back to the standalone checker when the pool names signals
    that are not functional gates (e.g. primary-input fault sites, which
    the legacy surface accepted)."""
    circuit = session.circuit
    if all(
        g in circuit.nodes and circuit.node(g).is_functional for g in pool
    ):
        return session.space(pool).singletons()
    return valid_single_gate_corrections(
        circuit, session.tests, pool, session.constrain_all_outputs
    )


def incremental_sim_diagnose(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    policy: str = "first",
    max_solutions: int | None = None,
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
) -> SolutionSetResult:
    """Greedy incremental diagnosis with backtracking (flavour of ref [13]).

    At each level the highest-marked path-tracing candidate (over the
    still-failing tests, re-simulated with the corrections applied so far)
    is tried first; on exhaustion the search backtracks.  Every reported
    correction is verified valid; the search is heuristic and may miss
    solutions outside the (recomputed) path-tracing pools.
    """
    start = time.perf_counter()
    if session is None:
        session = DiagnosisSession(circuit, tests)
    solutions: list[Correction] = []
    t_first: float | None = None
    test_list = list(tests)

    def failing_indices(chosen: tuple[str, ...]) -> list[int]:
        # The session memoizes the rectification word, so revisiting a
        # chosen-set (different DFS order, same gates) is free.
        word = session.rect_word(chosen)
        return [j for j in range(session.m) if not (word >> j) & 1]

    def candidates_for(
        chosen: tuple[str, ...], failing: list[int]
    ) -> list[str]:
        """Recomputed PT candidates over failing tests, best-marked first.

        All tests stay in the session's shared lane simulator; each
        chosen gate is flipped from its *unforced* value in every lane
        (a concrete "applied" fix) — one fanout-cone update per gate
        instead of one scalar simulation per test.
        """
        marks: dict[str, int] = {}
        sim = session.sim
        base = {g: sim.value_lanes(g) for g in chosen}
        try:
            for g in chosen:
                sim.force(g, ~base[g])
            for j in failing:
                values = sim.pattern_values(j)
                test = test_list[j]
                for g in path_trace(
                    circuit, values, test.output, policy=policy
                ):
                    if g not in chosen:
                        marks[g] = marks.get(g, 0) + 1
        finally:
            for g in chosen:
                sim.unforce(g)
        return sorted(marks, key=lambda g: (-marks[g], g))

    def dfs(chosen: tuple[str, ...]) -> None:
        nonlocal t_first
        if max_solutions is not None and len(solutions) >= max_solutions:
            return
        failing = failing_indices(chosen)
        if not failing:
            candidate = frozenset(chosen)
            if not any(sol <= candidate for sol in solutions):
                solutions.append(candidate)
                if t_first is None:
                    t_first = time.perf_counter() - start
            return
        if len(chosen) >= k:
            return
        for gate in candidates_for(chosen, failing):
            dfs(chosen + (gate,))

    dfs(())
    t_all = time.perf_counter() - start
    # Post-filter: keep only inclusion-minimal corrections (greedy order can
    # surface a superset before its subset on a different branch).
    minimal = [
        sol
        for sol in solutions
        if not any(other < sol for other in solutions)
    ]
    return SolutionSetResult(
        approach="incSIM",
        k=k,
        solutions=tuple(minimal),
        complete=max_solutions is None,
        t_build=0.0,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras={"raw_solutions": len(solutions)},
    )


@register_strategy(
    "adv-sim", "exhaustive effect-analysis DFS over the path-tracing pool"
)
def _adv_sim_strategy(
    session: DiagnosisSession, k: int = 1, **options
) -> SolutionSetResult:
    return enumerate_sim_corrections(
        session.circuit, session.tests, k, session=session, **options
    )


@register_strategy(
    "inc-sim", "greedy incremental path-tracing search with backtracking"
)
def _inc_sim_strategy(
    session: DiagnosisSession, k: int = 1, **options
) -> SolutionSetResult:
    return incremental_sim_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )
