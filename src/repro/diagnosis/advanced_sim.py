"""Advanced simulation-based diagnosis (paper §2.2, refs [9, 13, 18]).

Where BSIM stops at candidate marking, the advanced approaches *verify*
candidates: corrections of size up to ``k`` are assembled from the
path-tracing pool, each checked by re-simulation ("effect analysis"), with
greedy ordering by mark count and chronological backtracking — the
time-complexity blow-up from ``O(|I|·m)`` to ``O(|I|^{k+1}·m)`` the paper
describes.

Two entry points:

* :func:`enumerate_sim_corrections` — exhaustive DFS over a candidate pool
  with exact effect analysis; restricted to the PT pool it reproduces the
  advanced simulation-based approaches (valid corrections, but possibly
  missing ones whose gates PT never marks — the Lemma 4 gap); with
  ``pool=None`` (all gates) it is an oracle equal to BSAT.
* :func:`incremental_sim_diagnose` — the greedy-with-backtracking flavour
  of ref [13]: pick the highest-marked candidate, re-run path tracing on
  the corrected circuit for the still-failing tests, recurse, backtrack on
  dead ends.  Its what-if re-simulation rides the batched event engine
  (:class:`repro.sim.batchevent.BatchEventSimulator`): all failing tests
  live in uint64 lanes and a correction is one forced word, so applying a
  candidate costs one fanout-cone update instead of one scalar simulation
  per test.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Sequence

from ..circuits.netlist import Circuit
from ..sim.batchevent import BatchEventSimulator
from ..testgen.testset import Test, TestSet
from .base import Correction, SolutionSetResult
from .pathtrace import basic_sim_diagnose, path_trace
from .validity import (
    is_valid_correction,
    rectifiable_by_forcing,
    valid_single_gate_corrections,
)

__all__ = ["enumerate_sim_corrections", "incremental_sim_diagnose"]


def enumerate_sim_corrections(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    pool: Sequence[str] | None = None,
    policy: str = "first",
    approach_name: str = "advSIM",
) -> SolutionSetResult:
    """All minimal valid corrections of size ≤ k within ``pool``.

    ``pool=None`` uses the path-tracing union ``∪ C_i`` (the advanced
    simulation-based pruning); ``pool=circuit.gate_names`` makes the search
    exhaustive.  Effect analysis is the exact bit-parallel forced-value
    check of :mod:`repro.diagnosis.validity`, so every reported correction
    is valid, with only essential candidates.
    """
    start = time.perf_counter()
    sim_result = None
    if pool is None:
        sim_result = basic_sim_diagnose(circuit, tests, policy=policy)
        pool = sorted(sim_result.union, key=lambda g: -sim_result.marks[g])
    pool = list(pool)
    t_build = time.perf_counter() - start

    search_start = time.perf_counter()
    solutions: list[Correction] = []
    t_first: float | None = None
    # Size-ordered search so minimality-by-subsumption works: explore all
    # subsets of size s before any of size s+1.  Size 1 is screened in one
    # fault-parallel batched sweep (forcing one gate is a stuck-at
    # signature) instead of one effect-analysis pass per gate.
    if k >= 1:
        for gate in valid_single_gate_corrections(circuit, tests, pool):
            candidate = frozenset({gate})
            if candidate in solutions:
                continue
            solutions.append(candidate)
            if t_first is None:
                t_first = time.perf_counter() - search_start
    for size in range(2, k + 1):
        for subset in combinations(pool, size):
            candidate = frozenset(subset)
            if any(sol <= candidate for sol in solutions):
                continue
            if is_valid_correction(circuit, tests, subset):
                solutions.append(candidate)
                if t_first is None:
                    t_first = time.perf_counter() - search_start
    t_all = time.perf_counter() - search_start
    return SolutionSetResult(
        approach=approach_name,
        k=k,
        solutions=tuple(solutions),
        complete=True,
        t_build=t_build,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras={"pool_size": len(pool), "sim_result": sim_result},
    )


def incremental_sim_diagnose(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    policy: str = "first",
    max_solutions: int | None = None,
) -> SolutionSetResult:
    """Greedy incremental diagnosis with backtracking (flavour of ref [13]).

    At each level the highest-marked path-tracing candidate (over the
    still-failing tests, re-simulated with the corrections applied so far)
    is tried first; on exhaustion the search backtracks.  Every reported
    correction is verified valid; the search is heuristic and may miss
    solutions outside the (recomputed) path-tracing pools.
    """
    start = time.perf_counter()
    solutions: list[Correction] = []
    t_first: float | None = None

    def failing_tests(chosen: tuple[str, ...]) -> list[Test]:
        return [
            t
            for t in tests
            if not rectifiable_by_forcing(circuit, t, chosen)
        ]

    def candidates_for(chosen: tuple[str, ...], failing: list[Test]) -> list[str]:
        """Recomputed PT candidates over failing tests, best-marked first.

        All failing tests are simulated at once on the batched event
        engine: one lane per test, with each chosen gate flipped from its
        *unforced* value in every lane (a concrete "applied" fix) — the
        what-if question the serial code answered with two scalar
        simulations per test.
        """
        marks: dict[str, int] = {}
        sim = BatchEventSimulator(circuit, [t.vector for t in failing])
        base = {g: sim.value_lanes(g) for g in chosen}
        for g in chosen:
            sim.force(g, ~base[g])
        for j, test in enumerate(failing):
            values = sim.pattern_values(j)
            for g in path_trace(circuit, values, test.output, policy=policy):
                if g not in chosen:
                    marks[g] = marks.get(g, 0) + 1
        return sorted(marks, key=lambda g: (-marks[g], g))

    def dfs(chosen: tuple[str, ...]) -> None:
        nonlocal t_first
        if max_solutions is not None and len(solutions) >= max_solutions:
            return
        failing = failing_tests(chosen)
        if not failing:
            candidate = frozenset(chosen)
            if not any(sol <= candidate for sol in solutions):
                solutions.append(candidate)
                if t_first is None:
                    t_first = time.perf_counter() - start
            return
        if len(chosen) >= k:
            return
        for gate in candidates_for(chosen, failing):
            dfs(chosen + (gate,))

    dfs(())
    t_all = time.perf_counter() - start
    # Post-filter: keep only inclusion-minimal corrections (greedy order can
    # surface a superset before its subset on a different branch).
    minimal = [
        sol
        for sol in solutions
        if not any(other < sol for other in solutions)
    ]
    return SolutionSetResult(
        approach="incSIM",
        k=k,
        solutions=tuple(minimal),
        complete=max_solutions is None,
        t_build=0.0,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras={"raw_solutions": len(solutions)},
    )
