"""Path tracing and ``BasicSimDiagnose`` — the paper's BSIM (Fig. 1).

``PathTrace(I, i, t, o)`` walks backward from the erroneous primary output
through the sensitized structure: at each marked gate, if some inputs carry
the gate's *controlling* value, exactly one of them is marked (they alone
determine the output); otherwise — all inputs non-controlling, or the gate
has no controlling value (XOR/NOT/BUF) — all inputs are marked.

The choice among several controlling inputs is the algorithm's only
nondeterminism; the paper leaves it open ("mark one of these inputs").  The
``policy`` parameter pins it down:

* ``"first"``   — fanin order (default, deterministic),
* ``"lowest"``  — the input with the smallest topological level (walks
  toward the primary inputs fastest),
* ``"highest"`` — the input with the largest level,
* ``"random"``  — seeded random choice,
* ``"all"``     — mark *every* controlling input (a conservative variant,
  kept for the ablation bench: it over-marks but never drops a sensitized
  path).
"""

from __future__ import annotations

import random
import time
from typing import Mapping

from ..circuits.gates import CONTROLLING_VALUE
from ..circuits.netlist import Circuit
from ..circuits.structure import levels
from ..sim.logicsim import simulate
from ..testgen.testset import TestSet
from .base import SimDiagnosisResult

__all__ = ["path_trace", "trace_tests", "basic_sim_diagnose", "POLICIES"]

POLICIES = ("first", "lowest", "highest", "random", "all")


def path_trace(
    circuit: Circuit,
    values: Mapping[str, int],
    output: str,
    policy: str = "first",
    rng: random.Random | None = None,
    level_map: Mapping[str, int] | None = None,
) -> frozenset[str]:
    """Candidate gates on sensitized paths to ``output`` (paper Fig. 1).

    ``values`` is the full signal valuation of the faulty circuit under the
    test vector (from :func:`repro.sim.simulate`).  Returns the candidate
    set ``C_i`` — functional gates only; primary inputs terminate the walk.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
    if policy == "random" and rng is None:
        rng = random.Random(0)
    if policy in ("lowest", "highest") and level_map is None:
        level_map = levels(circuit)

    candidates: set[str] = set()
    visited: set[str] = set()
    stack = [output]
    while stack:
        name = stack.pop()
        if name in visited:
            continue
        visited.add(name)
        gate = circuit.node(name)
        if gate.is_input:
            continue
        if gate.is_functional:
            candidates.add(name)
        if not gate.fanins:  # constants terminate the walk
            continue
        ctrl = CONTROLLING_VALUE.get(gate.gtype)
        if ctrl is None:
            stack.extend(gate.fanins)
            continue
        controlling = [f for f in gate.fanins if values[f] == ctrl]
        if not controlling:
            stack.extend(gate.fanins)
        elif policy == "all":
            stack.extend(controlling)
        elif len(controlling) == 1 or policy == "first":
            stack.append(controlling[0])
        elif policy == "random":
            stack.append(rng.choice(controlling))
        elif policy == "lowest":
            stack.append(min(controlling, key=lambda f: level_map[f]))
        else:  # highest
            stack.append(max(controlling, key=lambda f: level_map[f]))
    return frozenset(candidates)


def trace_tests(
    circuit: Circuit,
    tests: TestSet,
    values_of,
    policy: str = "first",
    seed: int = 0,
    level_map: Mapping[str, int] | None = None,
) -> SimDiagnosisResult:
    """The BSIM loop over an arbitrary valuation provider.

    ``values_of(j, test)`` must return the full signal valuation of test
    ``j`` — scalar simulation for the standalone entry point, the shared
    lane simulator for a :class:`~repro.diagnosis.core.DiagnosisSession`.
    Keeping the rng threading, level-map handling and mark accumulation
    in one place is what makes the two paths bit-identical by
    construction.
    """
    rng = random.Random(seed)
    if level_map is None and policy in ("lowest", "highest"):
        level_map = levels(circuit)
    start = time.perf_counter()
    candidate_sets: list[frozenset[str]] = []
    marks: dict[str, int] = {}
    for j, test in enumerate(tests):
        cand = path_trace(
            circuit,
            values_of(j, test),
            test.output,
            policy=policy,
            rng=rng,
            level_map=level_map,
        )
        candidate_sets.append(cand)
        for g in cand:
            marks[g] = marks.get(g, 0) + 1
    return SimDiagnosisResult(
        candidate_sets=tuple(candidate_sets),
        marks=marks,
        runtime=time.perf_counter() - start,
    )


def basic_sim_diagnose(
    circuit: Circuit,
    tests: TestSet,
    policy: str = "first",
    seed: int = 0,
    session=None,
) -> SimDiagnosisResult:
    """``BasicSimDiagnose`` (BSIM): run path tracing for every test.

    Simulates the faulty implementation under each test vector and traces
    from the erroneous output.  Returns the per-test candidate sets, mark
    counts ``M(g)`` and runtime.

    With ``session`` (a :class:`~repro.diagnosis.core.DiagnosisSession`)
    the result comes from the session's cache: the signal valuations ride
    the shared lane simulator and repeated calls are free.  Results are
    identical either way (the regression suite pins this).
    """
    if session is not None:
        return session.sim_result(policy=policy, seed=seed)
    return trace_tests(
        circuit,
        tests,
        lambda j, test: simulate(circuit, test.vector),
        policy=policy,
        seed=seed,
    )
