"""Certified diagnosis verdicts via DRAT proofs.

BSAT's negative answers matter: "no correction with at most ``k``
candidates exists" is what justifies incrementing the bound in Fig. 3
step (2), and — at ``k = k_max`` — what tells the designer the error is
not a ``k``-gate change at all.  This module turns that answer into a
*checkable certificate*: the diagnosis instance is rebuilt with the
cardinality bound as a hard clause (no assumptions), solved with DRAT
logging, and the resulting proof re-verified by the independent checker in
:mod:`repro.sat.proof`.

This mirrors how modern SAT-based tools ship trust: the solver is fast and
complicated, the checker small and obvious.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..circuits.netlist import Circuit
from ..sat.proof import ProofLog, check_drat
from ..sat.solver import Solver
from ..testgen.testset import TestSet
from .satdiag import build_diagnosis_instance

__all__ = ["CertifiedVerdict", "certify_correction_bound"]


@dataclass(frozen=True)
class CertifiedVerdict:
    """Outcome of :func:`certify_correction_bound`.

    ``has_correction`` reports whether some correction with at most ``k``
    candidates exists.  When it does not, ``proof`` holds the DRAT
    refutation and ``verified`` the checker's verdict (None when checking
    was skipped).
    """

    k: int
    has_correction: bool
    proof: ProofLog | None
    verified: bool | None
    n_vars: int
    n_clauses: int
    proof_steps: int
    solve_time: float
    check_time: float

    def summary(self) -> str:
        if self.has_correction:
            return f"k={self.k}: correction exists (no certificate needed)"
        status = {True: "VERIFIED", False: "REJECTED", None: "unchecked"}[
            self.verified
        ]
        return (
            f"k={self.k}: no correction — DRAT proof with "
            f"{self.proof_steps} steps over {self.n_clauses} clauses "
            f"[{status}]"
        )


def certify_correction_bound(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    check: bool = True,
) -> CertifiedVerdict:
    """Decide — with a checkable proof — whether a ≤ ``k`` correction exists.

    Rebuilds the Fig. 2(b) instance with the at-most-``k`` bound asserted
    as unit clauses (so the UNSAT answer is formula-level, which DRAT can
    certify), solves with proof logging, and optionally re-checks the
    proof.  ``k = 0`` is allowed and asks whether the tests are already
    rectified (they never are, by Definition 1).

    >>> # see tests/diagnosis/test_certify.py for full examples
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    instance = build_diagnosis_instance(circuit, tests, k_max=max(k, 1))
    cnf = instance.cnf
    for lit in instance.bound_assumptions(k):
        cnf.add_clause([lit])
    solver = Solver()
    proof = solver.start_proof()
    start = time.perf_counter()
    cnf.to_solver(solver)
    satisfiable = bool(solver.solve())
    solve_time = time.perf_counter() - start
    if satisfiable:
        return CertifiedVerdict(
            k=k,
            has_correction=True,
            proof=None,
            verified=None,
            n_vars=cnf.num_vars,
            n_clauses=cnf.num_clauses,
            proof_steps=0,
            solve_time=solve_time,
            check_time=0.0,
        )
    verified: bool | None = None
    check_time = 0.0
    if check:
        check_start = time.perf_counter()
        verified = check_drat(cnf.clauses, proof)
        check_time = time.perf_counter() - check_start
    return CertifiedVerdict(
        k=k,
        has_correction=False,
        proof=proof,
        verified=verified,
        n_vars=cnf.num_vars,
        n_clauses=cnf.num_clauses,
        proof_steps=len(proof),
        solve_time=solve_time,
        check_time=check_time,
    )
