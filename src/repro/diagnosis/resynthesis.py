"""Correction resynthesis: from diagnosis witness to an actual fix.

The paper notes (§4) that the SAT-based approaches supply "with respect to
each test a new value for each gate in the correction", which "can be
exploited to determine the 'correct' function of the gate".  This module
closes that loop:

1. :func:`correction_constraints` extracts, per corrected gate, the
   observed (fanin values → required output) pairs across the test-set;
2. :func:`consistent_gate_types` finds the standard cell functions
   compatible with those pairs;
3. :func:`resynthesize` rewrites the circuit with a chosen replacement and
   :func:`repair_and_verify` checks the result against the golden model
   (SAT equivalence) — the full debug → rectify → verify flow.

Resynthesis is exact with respect to the test-set; equivalence against a
golden model (when one exists) certifies it for all inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice, product
from typing import Iterable, Mapping, Sequence

from ..circuits.gates import FUNCTIONAL_TYPES, GateType, eval_gate
from ..circuits.netlist import Circuit
from ..sim.logicsim import simulate
from ..testgen.satgen import are_equivalent
from ..testgen.testset import TestSet
from .base import Correction
from .satdiag import basic_sat_diagnose

__all__ = [
    "correction_constraints",
    "consistent_gate_types",
    "resynthesize",
    "RepairResult",
    "repair_and_verify",
]


def correction_constraints(
    circuit: Circuit,
    tests: TestSet,
    correction_values: Mapping[str, Sequence[int]],
) -> dict[str, list[tuple[tuple[int, ...], int]]]:
    """Per corrected gate: observed (fanin values, required output) pairs.

    ``correction_values`` comes from
    :meth:`~repro.diagnosis.satdiag.DiagnosisInstance.correction_values`
    (``-1`` entries, where the solver left ``c`` unassigned, are skipped —
    those tests do not constrain the gate).  Fanin values are taken from
    simulating the *faulty* circuit with the other corrected gates forced
    to their witness values, so multi-gate corrections are handled
    consistently.
    """
    constraints: dict[str, list[tuple[tuple[int, ...], int]]] = {
        g: [] for g in correction_values
    }
    gates = list(correction_values)
    for i, test in enumerate(tests):
        forced = {
            g: vals[i]
            for g, vals in correction_values.items()
            if vals[i] != -1
        }
        values = simulate(circuit, test.vector, forced=forced)
        for g in gates:
            required = correction_values[g][i]
            if required == -1:
                continue
            fanins = tuple(values[f] for f in circuit.node(g).fanins)
            constraints[g].append((fanins, required))
    return constraints


def consistent_gate_types(
    arity: int,
    pairs: Iterable[tuple[tuple[int, ...], int]],
    candidates: Iterable[GateType] | None = None,
) -> list[GateType]:
    """Standard cell types whose function matches every observed pair.

    >>> consistent_gate_types(2, [((0, 0), 0), ((1, 1), 0), ((0, 1), 1)])
    [<GateType.XOR: 'XOR'>]
    """
    if candidates is None:
        candidates = FUNCTIONAL_TYPES
    constants = (GateType.CONST0, GateType.CONST1)
    result = []
    for gtype in candidates:
        if gtype in constants:
            continue  # constant cells are defects, never proposed repairs
        if gtype in (GateType.BUF, GateType.NOT) and arity != 1:
            continue
        if gtype not in (GateType.BUF, GateType.NOT) and arity < 2:
            continue  # no degenerate single-input AND/OR/XOR cells
        ok = True
        for fanins, out in pairs:
            if len(fanins) != arity:
                raise ValueError("inconsistent arity in constraint pairs")
            if eval_gate(gtype, list(fanins)) != out:
                ok = False
                break
        if ok:
            result.append(gtype)
    order = [
        GateType.BUF,
        GateType.NOT,
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
    ]
    return sorted(result, key=order.index)


def resynthesize(
    circuit: Circuit, replacements: Mapping[str, GateType]
) -> Circuit:
    """Copy of ``circuit`` with the given gates' functions replaced."""
    fixed = circuit.copy(name=f"{circuit.name}_repaired")
    for gate, gtype in replacements.items():
        fixed.replace_gate(gate, gtype=gtype)
    return fixed


@dataclass(frozen=True)
class RepairResult:
    """Outcome of :func:`repair_and_verify`."""

    solution: Correction
    replacements: dict[str, GateType]
    repaired: Circuit
    passes_tests: bool
    equivalent_to_golden: bool | None

    @property
    def success(self) -> bool:
        return self.passes_tests and self.equivalent_to_golden in (True, None)


def repair_and_verify(
    faulty: Circuit,
    tests: TestSet,
    k: int,
    golden: Circuit | None = None,
    solution_limit: int = 50,
) -> list[RepairResult]:
    """End-to-end rectification: diagnose → resynthesize → verify.

    Runs BSAT with correction collection, derives type replacements for
    each solution whose gates admit a consistent standard cell, re-checks
    the repaired circuit against the test-set, and (when a golden model is
    available) performs a full SAT equivalence check.  Solutions whose
    witness values match no standard cell are skipped (the correct fix may
    need different fanins, which type replacement cannot express).
    """
    result = basic_sat_diagnose(
        faulty,
        tests,
        k,
        collect_corrections=True,
        solution_limit=solution_limit,
    )
    corrections = result.extras["corrections"]
    repairs: list[RepairResult] = []
    for solution in result.solutions:
        constraint_map = correction_constraints(
            faulty, tests, corrections[solution]
        )
        gate_list = sorted(solution)
        per_gate_options: list[list[GateType]] = []
        feasible = True
        for gate in gate_list:
            arity = len(faulty.node(gate).fanins)
            current = faulty.node(gate).gtype
            options = [
                t
                for t in consistent_gate_types(arity, constraint_map[gate])
                if t is not current
            ]
            if not options:
                feasible = False
                break
            per_gate_options.append(options)
        if not feasible:
            continue
        # Several cell types may fit the witness values (the tests only
        # constrain part of the truth table); try the combinations — best
        # combination first means "equivalent to golden" when checkable,
        # otherwise "passes all tests".
        best: RepairResult | None = None
        for combo in islice(product(*per_gate_options), 64):
            replacements = dict(zip(gate_list, combo))
            repaired = resynthesize(faulty, replacements)
            passes = all(
                simulate(repaired, t.vector)[t.output] == t.value
                for t in tests
            )
            if not passes:
                continue
            equivalent = (
                are_equivalent(golden, repaired)
                if golden is not None
                else None
            )
            candidate = RepairResult(
                solution=solution,
                replacements=replacements,
                repaired=repaired,
                passes_tests=True,
                equivalent_to_golden=equivalent,
            )
            if equivalent or golden is None:
                best = candidate
                break
            if best is None:
                best = candidate
        if best is not None:
            repairs.append(best)
    return repairs
