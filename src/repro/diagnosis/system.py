"""Model-agnostic system descriptions — the MBD layer under the session.

The paper's framing — simulation-based and SAT-based diagnosis explore
the same correction space with different guarantees — is not specific to
gate-level circuits.  :class:`SystemDescription` captures exactly what a
:class:`~repro.diagnosis.core.DiagnosisSession` needs from a diagnosed
system:

* a finite set of **components** (the things a correction may touch),
* ``m`` **observations** (the individual constraints a correction must
  satisfy; bit ``j`` of every *rectification word* is observation ``j``),
* a consistency oracle — :meth:`~SystemDescription.rect_word` — saying
  which observations a candidate component set can rectify,
* a SAT side: a session-wide **master instance** (selection variable per
  component, cardinality bound, persistent solver) for the enumerative
  strategies, and per-observation **cores** (sound conflicts) for the
  hitting-set loops.

Three instantiations ship:

* :class:`CircuitSystem` — the original gate-level path (correction
  muxes, fan-in-cone test copies, lane-sim rectification words), bound
  automatically by ``DiagnosisSession(circuit, tests)``.  Its methods
  delegate to the session's cached circuit machinery, so the circuit
  path's outputs are bit-identical to the pre-protocol code.
* :class:`GroupedCNFSystem` — the weak-fault model over assumable clause
  groups (GCNF / group-MUS shape, the flamapy ``C`` + background ``B``
  formulation): components are clause groups, an observation is a set of
  assumption literals, and a candidate is consistent with an observation
  iff the background plus the *unretracted* groups plus the observation
  literals are satisfiable.
* :class:`SpectrumSystem` — software fault spectra: components are code
  elements, observations are pass/fail coverage rows, and consistency is
  set cover (a failing run must execute at least one candidate element).

All consistency predicates are **monotone**: enlarging a candidate never
loses an observation (a selected circuit mux can realize the original
function; retracting more clauses keeps a formula satisfiable; a larger
element set covers more rows).  The search strategies rely on this —
FastDiag's divide-and-conquer minimization is correct exactly for
monotone predicates.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..sat.cnf import CNF

if TYPE_CHECKING:  # import cycle: core imports this module
    from .core import DiagnosisSession
    from .satdiag import DiagnosisInstance

__all__ = [
    "SystemDescription",
    "CircuitSystem",
    "GroupedCNFSystem",
    "SpectrumSystem",
]


class SystemDescription(ABC):
    """What a diagnosis session needs to know about a diagnosed system.

    Subclasses set :attr:`kind` (the strategy registry gates on it),
    provide :attr:`components` and :attr:`m`, and implement the abstract
    oracle methods.  A description is *bound* to the session that owns
    it (:meth:`bind`); the session supplies memoization
    (``session.rect_word`` caches per candidate) and the default solver
    backend.
    """

    #: Registry key strategies declare support for ("circuit", "gcnf",
    #: "spectrum", ...).
    kind: str = "abstract"

    session: "DiagnosisSession | None" = None

    # -- identity -------------------------------------------------------
    @property
    @abstractmethod
    def components(self) -> tuple[str, ...]:
        """Every component a correction may include, in a stable order."""

    @property
    @abstractmethod
    def m(self) -> int:
        """Number of observations (bits in every rectification word)."""

    @property
    def all_mask(self) -> int:
        return (1 << self.m) - 1

    def bind(self, session: "DiagnosisSession") -> None:
        """Attach the owning session (memoization, default backend)."""
        self.session = session

    def validate_components(self, components: Iterable[str]) -> None:
        """Raise ``ValueError`` for names that are not components."""
        known = set(self.components)
        for c in components:
            if c not in known:
                raise ValueError(
                    f"suspect {c!r} is not a component of the system"
                )

    # -- consistency oracle ---------------------------------------------
    @abstractmethod
    def rect_word(self, candidate: frozenset[str]) -> int:
        """Bit ``j`` set iff ``candidate`` can rectify observation ``j``.

        Exact and unmemoized — call through ``session.rect_word`` which
        caches per candidate.
        """

    def failing_word(self) -> int:
        """Bit ``j`` set iff observation ``j`` fails as-is (the empty
        correction does not rectify it)."""
        assert self.session is not None
        return self.all_mask & ~self.session.rect_word(())

    @abstractmethod
    def singleton_rect_words(
        self, pool: Sequence[str], engine: str = "auto"
    ) -> dict[str, int]:
        """Per-component rectification words for a pool, in one sweep.

        ``engine`` selects the circuit sweep implementation; non-circuit
        systems only support ``"auto"``.
        """

    def observation_candidate_sets(
        self, pool: Sequence[str]
    ) -> tuple[frozenset[str], ...]:
        """Per-observation size-1 rectifier sets over ``pool``.

        Default: read them off :meth:`singleton_rect_words`.  The
        circuit system overrides this with the independently derived
        deductive fault-list view.
        """
        words = self.singleton_rect_words(pool)
        return tuple(
            frozenset(c for c in pool if (words[c] >> j) & 1)
            for j in range(self.m)
        )

    # -- conflict structure ---------------------------------------------
    @abstractmethod
    def observation_conflict(self, j: int) -> frozenset[str]:
        """A *sound* structural conflict for observation ``j``: every
        valid correction for a failing observation ``j`` contains at
        least one returned component.  Over all components; callers
        slice to their pool."""

    @abstractmethod
    def observation_core(
        self,
        candidate: Iterable[str],
        j: int,
        solver_backend: str | None = None,
    ) -> frozenset[str]:
        """A sound conflict from an observation that rejects ``candidate``.

        Precondition: ``candidate`` does *not* rectify observation ``j``.
        The result is disjoint from ``candidate`` and every correction
        valid for observation ``j`` intersects it; an empty result means
        no extension of ``candidate`` rectifies the observation at all.
        Raises ``AssertionError`` when the SAT side finds the candidate
        consistent after all (engine disagreement = a bug upstream).
        """

    # -- SAT side --------------------------------------------------------
    @abstractmethod
    def build_master_instance(
        self, k_max: int, solver_backend: str | None = None
    ) -> "DiagnosisInstance":
        """The session-wide master SAT encoding: one selection variable
        per component, a cardinality bound sized for ``k_max``, one
        persistent solver.  Suspect pools are derived as assumption
        views (:meth:`~repro.diagnosis.satdiag.DiagnosisInstance.
        derive_view`)."""


class CircuitSystem(SystemDescription):
    """The gate-level instantiation — today's circuit path, verbatim.

    Constructed by ``DiagnosisSession(circuit, tests)``; every method
    body is the pre-protocol session/space implementation moved behind
    the interface, so circuit-path outputs (pinned wrapper JSON, bench
    gates) are bit-identical.
    """

    kind = "circuit"

    def __init__(self, session: "DiagnosisSession") -> None:
        self.session = session
        self._gate_by_select: dict[tuple[int, str | None], dict[int, str]] = {}

    @property
    def components(self) -> tuple[str, ...]:
        return self.session.circuit.gate_names

    @property
    def m(self) -> int:
        return len(self.session.tests)

    def validate_components(self, components: Iterable[str]) -> None:
        for g in components:
            if not self.session.circuit.node(g).is_functional:
                raise ValueError(f"suspect {g!r} is not a functional gate")

    # -- consistency oracle ---------------------------------------------
    def rect_word(self, candidate: frozenset[str]) -> int:
        from .validity import rectifiable_by_forcing

        session = self.session
        gates = candidate
        word = 0
        if gates:
            singles = session.space().singleton_rect_words()
            for g in gates:
                single = singles.get(g)
                if single is None:
                    node = session.circuit.nodes.get(g)
                    if node is None or not node.is_functional:
                        # Not a pool gate (e.g. a primary-input fault
                        # site): no singleton fast path; the exact check
                        # below keeps the legacy forced-value semantics.
                        continue
                    single = session.space((g,)).singleton_rect_words()[g]
                word |= single
        if word != session.all_mask:
            gate_list = tuple(sorted(gates))
            for j, test in enumerate(session.tests):
                if (word >> j) & 1:
                    continue
                if rectifiable_by_forcing(
                    session.circuit,
                    test,
                    gate_list,
                    session.constrain_all_outputs,
                ):
                    word |= 1 << j
        return word

    def failing_word(self) -> int:
        session = self.session
        responses = session.responses()
        word = 0
        for j, obs in enumerate(session.observations):
            if ((responses[obs.output] >> j) & 1) != obs.value:
                word |= 1 << j
        return word

    def singleton_rect_words(
        self, pool: Sequence[str], engine: str = "auto"
    ) -> dict[str, int]:
        from .validity import single_gate_rect_words

        session = self.session
        if engine == "auto":
            engine = (
                "event"
                if len(pool) * 4 < session.circuit.num_gates
                else "batch"
            )
        return single_gate_rect_words(
            session.circuit,
            session.tests,
            pool,
            session.constrain_all_outputs,
            engine=engine,
            sim=session.sim if engine == "event" else None,
        )

    def observation_candidate_sets(
        self, pool: Sequence[str]
    ) -> tuple[frozenset[str], ...]:
        from ..faults.models import StuckAtFault
        from ..sim.deductive_numpy import deductive_output_fault_lists

        session = self.session
        faults = [
            StuckAtFault(gate, value)
            for gate in pool
            for value in (0, 1)
        ]
        # One vectorized block pass computes every observation's output
        # fault lists at once (instead of one propagation per test).
        per_observation = deductive_output_fault_lists(
            session.circuit,
            [dict(o.vector) for o in session.observations],
            faults=faults,
        )
        responses = session.responses()
        sets: list[frozenset[str]] = []
        for j, obs in enumerate(session.observations):
            lists = per_observation[j]
            if session.constrain_all_outputs:
                assert obs.expected_outputs is not None
                candidates: set[str] = set()
                for gate in pool:
                    for value in (0, 1):
                        fault = StuckAtFault(gate, value)
                        # The forced value fixes the observation iff it
                        # flips exactly the outputs that currently
                        # mismatch the golden response.
                        if all(
                            (fault in lists[out])
                            == (
                                ((responses[out] >> j) & 1)
                                != obs.expected_outputs[out]
                            )
                            for out in session.circuit.outputs
                        ):
                            candidates.add(gate)
                            break
                sets.append(frozenset(candidates))
            else:
                out_list = lists[obs.output]
                sets.append(
                    frozenset(
                        gate
                        for gate in pool
                        if StuckAtFault(gate, 0) in out_list
                        or StuckAtFault(gate, 1) in out_list
                    )
                )
        return tuple(sets)

    # -- conflict structure ---------------------------------------------
    def observation_conflict(self, j: int) -> frozenset[str]:
        session = self.session
        return session.fanin_gates(session.observations[j].output)

    def observation_core(
        self,
        candidate: Iterable[str],
        j: int,
        solver_backend: str | None = None,
    ) -> frozenset[str]:
        from ..sat.backends import resolve_backend

        session = self.session
        backend = resolve_backend(
            solver_backend
            if solver_backend is not None
            else session.solver_backend
        )
        all_gates = self.components
        solver, select_of = session.rectify_solver(
            j, all_gates, solver_backend=backend
        )
        gate_by_select = self._gate_by_select.get((j, backend))
        if gate_by_select is None:
            gate_by_select = {v: g for g, v in select_of.items()}
            self._gate_by_select[(j, backend)] = gate_by_select
        h_set = set(candidate)
        assumptions = [-select_of[g] for g in all_gates if g not in h_set]
        if solver.solve(assumptions=assumptions):
            # The per-observation encoding admits a correction inside
            # the candidate after all (can only disagree with the lane
            # check through a bug) — treat as consistent upstream.
            raise AssertionError(
                "rectify solver and simulation oracle disagree"
            )
        core = solver.core()
        return frozenset(
            gate_by_select[-lit] for lit in core if -lit in gate_by_select
        )

    # -- SAT side --------------------------------------------------------
    def build_master_instance(
        self, k_max: int, solver_backend: str | None = None
    ) -> "DiagnosisInstance":
        from .satdiag import build_master_instance

        session = self.session
        skeleton = session.master_skeleton
        if skeleton is not None and (
            skeleton.circuit is not session.circuit
            or skeleton.constrain_all_outputs
            != session.constrain_all_outputs
        ):
            raise ValueError(
                "session.master_skeleton does not match the session's "
                "circuit design or output-constraint semantics"
            )
        return build_master_instance(
            session.circuit,
            session.tests,
            k_max=k_max,
            constrain_all_outputs=session.constrain_all_outputs,
            solver_backend=solver_backend,
            skeleton=skeleton,
        )


class GroupedCNFSystem(SystemDescription):
    """Weak-fault-model diagnosis over assumable clause groups (GCNF).

    ``gcnf`` supplies the hard background (group 0) and ``k`` assumable
    groups; each group is one component (named ``g1 .. gk`` unless
    ``component_names`` overrides).  An observation is a sequence of
    assumption literals over the formula's variables.  A candidate Δ is
    consistent with an observation iff::

        background ∧ (groups \\ Δ) ∧ observation    is satisfiable

    — the flamapy/QuickXplain ``B`` + ``C`` shape, with the session's
    incremental solvers doing the checking: one persistent checker per
    backend carries every group clause guarded by its selection literal
    (``clause ∨ s_c``), so a consistency probe is a solve under
    assumptions ``¬s_c`` for the kept groups plus the observation
    literals; the UNSAT core over the ``¬s_c`` pins is a sound conflict.

    >>> from repro.sat.dimacs import GroupedCNF
    >>> g = GroupedCNF()
    >>> g.add_clause(1, [1]); g.add_clause(2, [-1])
    >>> system = GroupedCNFSystem(g, observations=[()])
    >>> system.components
    ('g1', 'g2')
    """

    kind = "gcnf"

    def __init__(
        self,
        gcnf,
        observations: Sequence[Sequence[int]],
        component_names: Sequence[str] | None = None,
    ) -> None:
        if not gcnf.num_groups:
            raise ValueError("a grouped CNF system needs assumable groups")
        if not observations:
            raise ValueError(
                "diagnosis requires at least one observation "
                "(use one empty observation for plain consistency)"
            )
        self.gcnf = gcnf
        if component_names is None:
            names = tuple(f"g{i}" for i in range(1, gcnf.num_groups + 1))
        else:
            names = tuple(component_names)
            if len(names) != gcnf.num_groups:
                raise ValueError(
                    f"{gcnf.num_groups} groups but "
                    f"{len(names)} component names"
                )
            if len(set(names)) != len(names):
                raise ValueError("duplicate component names")
        self._components = names
        self.group_of = {name: i for i, name in enumerate(names, start=1)}
        obs: list[tuple[int, ...]] = []
        for lits in observations:
            row = tuple(int(l) for l in lits)
            for lit in row:
                if lit == 0 or abs(lit) > gcnf.num_vars:
                    raise ValueError(
                        f"observation literal {lit} outside the formula's "
                        f"{gcnf.num_vars} variables"
                    )
            obs.append(row)
        self.observations: tuple[tuple[int, ...], ...] = tuple(obs)
        self._checkers: dict[
            str | None, tuple[object, dict[str, int]]
        ] = {}

    @property
    def components(self) -> tuple[str, ...]:
        return self._components

    @property
    def m(self) -> int:
        return len(self.observations)

    # -- checker solver ---------------------------------------------------
    def _checker(self, solver_backend: str | None):
        """Persistent per-backend consistency solver: background clauses
        plus every group clause guarded by its selection literal."""
        from ..sat.backends import resolve_backend

        session_backend = (
            self.session.solver_backend if self.session is not None else None
        )
        backend = resolve_backend(
            solver_backend if solver_backend is not None else session_backend
        )
        cached = self._checkers.get(backend)
        if cached is not None:
            return cached
        cnf = CNF()
        # Formula variables first, identity-mapped, so observation
        # literals are used verbatim.
        for v in range(1, self.gcnf.num_vars + 1):
            cnf.new_var()
        select_of = {
            name: cnf.new_var(f"s:{name}") for name in self._components
        }
        for clause in self.gcnf.background:
            cnf.add_clause(clause)
        for name in self._components:
            s_var = select_of[name]
            for clause in self.gcnf.groups[self.group_of[name] - 1]:
                # Enforced while the group is *not* retracted (¬s_c).
                cnf.add_clause(tuple(clause) + (s_var,))
        solver = cnf.to_solver(backend=backend)
        self._checkers[backend] = (solver, select_of)
        return solver, select_of

    def _assumptions(
        self, select_of: Mapping[str, int], candidate: frozenset[str], j: int
    ) -> list[int]:
        # Pins first (stable across observations — trail-prefix reuse),
        # then the observation literals.
        return [
            -select_of[name]
            for name in self._components
            if name not in candidate
        ] + list(self.observations[j])

    # -- consistency oracle ---------------------------------------------
    def rect_word(self, candidate: frozenset[str]) -> int:
        solver, select_of = self._checker(None)
        word = 0
        for j in range(self.m):
            if solver.solve(
                assumptions=self._assumptions(select_of, candidate, j)
            ):
                word |= 1 << j
        return word

    def singleton_rect_words(
        self, pool: Sequence[str], engine: str = "auto"
    ) -> dict[str, int]:
        if engine != "auto":
            raise ValueError(
                "engine selection applies to circuit systems only"
            )
        session = self.session
        if session is not None:
            return {c: session.rect_word((c,)) for c in pool}
        return {c: self.rect_word(frozenset((c,))) for c in pool}

    # -- conflict structure ---------------------------------------------
    def observation_conflict(self, j: int) -> frozenset[str]:
        # No structure finer than "something must be retracted" without
        # solving; the full component set is the sound cone analogue.
        return frozenset(self._components)

    def observation_core(
        self,
        candidate: Iterable[str],
        j: int,
        solver_backend: str | None = None,
    ) -> frozenset[str]:
        solver, select_of = self._checker(solver_backend)
        gate_by_select = {v: name for name, v in select_of.items()}
        if solver.solve(
            assumptions=self._assumptions(
                select_of, frozenset(candidate), j
            )
        ):
            raise AssertionError(
                "grouped-CNF checker and rectification oracle disagree"
            )
        core = solver.core()
        # Observation literals in the core are facts, not retractable
        # components — only the ¬s pins name components.
        return frozenset(
            gate_by_select[-lit] for lit in core if -lit in gate_by_select
        )

    # -- SAT side --------------------------------------------------------
    def build_master_instance(
        self, k_max: int, solver_backend: str | None = None
    ) -> "DiagnosisInstance":
        from .satdiag import _finish_instance

        start = time.perf_counter()
        suspect_list = self._components
        cnf = CNF()
        select_of = {g: cnf.new_var(f"s:{g}") for g in suspect_list}
        signal_of: dict[tuple[int, str], int] = {}
        # One full variable copy per observation (selects shared), each
        # carrying the background, the guarded group clauses and the
        # observation's literals as units.
        for j in range(self.m):
            vmap = {
                v: cnf.new_var() for v in range(1, self.gcnf.num_vars + 1)
            }

            def mapped(clause: tuple[int, ...]) -> list[int]:
                return [
                    vmap[lit] if lit > 0 else -vmap[-lit] for lit in clause
                ]

            for clause in self.gcnf.background:
                cnf.add_clause(mapped(clause))
            for name in suspect_list:
                s_var = select_of[name]
                for clause in self.gcnf.groups[self.group_of[name] - 1]:
                    cnf.add_clause(mapped(clause) + [s_var])
            for lit in self.observations[j]:
                cnf.add_clause(mapped((lit,)))
        return _finish_instance(
            None, None, cnf, select_of, {}, signal_of,
            suspect_list, k_max, None, solver_backend, True, start,
            num_observations=self.m,
        )


class SpectrumSystem(SystemDescription):
    """Spectrum-based fault localization as weak-fault-model MBD.

    Components are code elements; each observation is one test run given
    as ``(covered, passed)`` — the set of elements the run executed and
    whether it passed.  Under the weak fault model a candidate explains
    a failing run iff the run covered at least one candidate element
    (the faulty element must have executed for the failure to manifest);
    passing runs are unconstrained.  Diagnoses are therefore the minimal
    covers of the failing rows — the classic staccato/set-cover view of
    program spectra.

    >>> s = SpectrumSystem(
    ...     ["a", "b"], [(("a",), False), (("a", "b"), True)]
    ... )
    >>> s.m
    2
    """

    kind = "spectrum"

    def __init__(
        self,
        components: Sequence[str],
        rows: Sequence[tuple[Iterable[str], bool]],
    ) -> None:
        comps = tuple(dict.fromkeys(components))
        if not comps:
            raise ValueError("a spectrum system needs components")
        if not rows:
            raise ValueError("diagnosis requires at least one observation")
        self._components = comps
        known = set(comps)
        parsed: list[tuple[frozenset[str], bool]] = []
        for covered, passed in rows:
            cov = frozenset(covered)
            extra = cov - known
            if extra:
                raise ValueError(
                    f"coverage row mentions unknown components "
                    f"{sorted(extra)}"
                )
            parsed.append((cov, bool(passed)))
        self.rows: tuple[tuple[frozenset[str], bool], ...] = tuple(parsed)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SpectrumSystem":
        """Build from the JSON shape the CLI and benches use::

            {"components": ["c1", ...],
             "rows": [{"covered": ["c1", ...], "passed": false}, ...]}

        ``covered`` may also be a 0/1 coverage *vector* aligned with
        ``components`` (the classic spectrum-matrix shape).  Malformed
        input raises :class:`ValueError` naming the offending field —
        never a bare ``KeyError``/``IndexError`` (matching the
        :mod:`repro.sat.dimacs` GCNF errors).
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                "spectrum JSON must be an object with 'components' "
                "and 'rows'"
            )
        try:
            components = data["components"]
        except KeyError:
            raise ValueError(
                "spectrum JSON is missing the 'components' field"
            ) from None
        if isinstance(components, (str, bytes)) or not isinstance(
            components, Sequence
        ):
            raise ValueError(
                "'components' must be a list of component names"
            )
        for idx, comp in enumerate(components):
            if not isinstance(comp, str):
                raise ValueError(
                    f"components[{idx}] must be a string, got "
                    f"{type(comp).__name__}"
                )
        try:
            raw_rows = data["rows"]
        except KeyError:
            raise ValueError(
                "spectrum JSON is missing the 'rows' field"
            ) from None
        if isinstance(raw_rows, (str, bytes)) or not isinstance(
            raw_rows, Sequence
        ):
            raise ValueError("'rows' must be a list of row objects")
        rows = []
        for i, row in enumerate(raw_rows):
            if not isinstance(row, Mapping):
                raise ValueError(
                    f"rows[{i}] must be an object with 'covered' and "
                    "'passed'"
                )
            try:
                covered = row["covered"]
            except KeyError:
                raise ValueError(
                    f"rows[{i}] is missing the 'covered' field"
                ) from None
            try:
                passed = row["passed"]
            except KeyError:
                raise ValueError(
                    f"rows[{i}] is missing the 'passed' field"
                ) from None
            if not isinstance(passed, bool) and passed not in (0, 1):
                raise ValueError(
                    f"rows[{i}].passed must be a boolean or 0/1, got "
                    f"{passed!r}"
                )
            rows.append(
                (cls._parse_covered(covered, components, i), bool(passed))
            )
        return cls(components, rows)

    @staticmethod
    def _parse_covered(
        covered: object, components: Sequence[str], i: int
    ) -> tuple[str, ...]:
        """One row's coverage: a name list or a 0/1 vector."""
        if isinstance(covered, (str, bytes)) or not isinstance(
            covered, Sequence
        ):
            raise ValueError(
                f"rows[{i}].covered must be a list of component names "
                "or a 0/1 coverage vector"
            )
        if all(isinstance(c, str) for c in covered):
            return tuple(covered)
        # 0/1 vector aligned with the component list.
        if len(covered) != len(components):
            raise ValueError(
                f"rows[{i}].covered: coverage vector has "
                f"{len(covered)} entries for {len(components)} "
                "components"
            )
        names = []
        for j, bit in enumerate(covered):
            if not isinstance(bit, bool) and bit not in (0, 1):
                raise ValueError(
                    f"rows[{i}].covered[{j}] must be a component name "
                    f"or 0/1, got {bit!r}"
                )
            if bit:
                names.append(components[j])
        return tuple(names)

    @property
    def components(self) -> tuple[str, ...]:
        return self._components

    @property
    def m(self) -> int:
        return len(self.rows)

    # -- consistency oracle ---------------------------------------------
    def rect_word(self, candidate: frozenset[str]) -> int:
        word = 0
        for j, (covered, passed) in enumerate(self.rows):
            if passed or (covered & candidate):
                word |= 1 << j
        return word

    def failing_word(self) -> int:
        word = 0
        for j, (_, passed) in enumerate(self.rows):
            if not passed:
                word |= 1 << j
        return word

    def singleton_rect_words(
        self, pool: Sequence[str], engine: str = "auto"
    ) -> dict[str, int]:
        if engine != "auto":
            raise ValueError(
                "engine selection applies to circuit systems only"
            )
        pass_word = 0
        for j, (_, passed) in enumerate(self.rows):
            if passed:
                pass_word |= 1 << j
        words: dict[str, int] = {}
        for c in pool:
            word = pass_word
            for j, (covered, passed) in enumerate(self.rows):
                if not passed and c in covered:
                    word |= 1 << j
            words[c] = word
        return words

    # -- conflict structure ---------------------------------------------
    def observation_conflict(self, j: int) -> frozenset[str]:
        covered, passed = self.rows[j]
        return frozenset() if passed else covered

    def observation_core(
        self,
        candidate: Iterable[str],
        j: int,
        solver_backend: str | None = None,
    ) -> frozenset[str]:
        covered, passed = self.rows[j]
        cand = frozenset(candidate)
        if passed or (covered & cand):
            raise AssertionError(
                "observation_core called on a consistent observation"
            )
        # The failing row's coverage is the exact conflict — disjoint
        # from the candidate by the precondition.  Empty coverage means
        # the failure is unexplainable by any component.
        return covered

    # -- SAT side --------------------------------------------------------
    def build_master_instance(
        self, k_max: int, solver_backend: str | None = None
    ) -> "DiagnosisInstance":
        from .satdiag import _finish_instance

        start = time.perf_counter()
        suspect_list = self._components
        cnf = CNF()
        select_of = {g: cnf.new_var(f"s:{g}") for g in suspect_list}
        for covered, passed in self.rows:
            if passed:
                continue
            if covered:
                cnf.add_clause([select_of[c] for c in sorted(covered)])
            else:
                # An uncovered failure is unexplainable: make the
                # instance unsatisfiable (the CNF container rejects
                # literal-free clauses, so spend a variable).
                v = cnf.new_var()
                cnf.add_clause([v])
                cnf.add_clause([-v])
        return _finish_instance(
            None, None, cnf, select_of, {}, {},
            suspect_list, k_max, None, solver_backend, True, start,
            num_observations=self.m,
        )
