"""Diagnosis algorithms — the paper's primary subject.

The candidate-space core (:mod:`~repro.diagnosis.core`)
-------------------------------------------------------

Every strategy explores the same space of corrections against the same
observations; :class:`~repro.diagnosis.core.DiagnosisSession` owns that
space once per problem:

* ``DiagnosisSession(circuit, tests)`` packs all test vectors into uint64
  lanes on one shared :class:`~repro.sim.batchevent.BatchEventSimulator`,
  caches the implementation's output signatures (``responses()``), the
  failing lanes (``failing_word()``) and path tracing (``sim_result()``).
* ``session.score(C)`` / ``session.consistent(C)`` — memoized effect
  analysis: how many observations (all?) candidate ``C`` can rectify.
* ``session.refine(suspects)`` / ``session.space(pool)`` — a
  :class:`~repro.diagnosis.core.CandidateSpace` with lazy per-gate
  rectification words (one fault-parallel sweep or shared-sim what-ifs)
  and per-observation candidate sets from the vectorized deductive fault
  lists.
* ``session.instance(k)`` / ``session.rectify_solver(j, pool)`` — the
  SAT side: Fig. 2(b) instances and incremental per-observation solvers
  for conflict extraction.

Strategies register in
:data:`~repro.diagnosis.core.DIAGNOSIS_STRATEGIES` (the diagnosis twin of
ATPG's ``_SIM_ENGINES``) and run via
:func:`~repro.diagnosis.core.diagnose`; all share the signature
``(session, k, **options) -> SolutionSetResult``.

System descriptions (:mod:`~repro.diagnosis.system`)
----------------------------------------------------

The session itself is model-agnostic: everything a strategy asks of it —
components, rectification words, conflicts, SAT cores, the master
encoding — routes through a
:class:`~repro.diagnosis.system.SystemDescription`.  Three instantiations
ship:

* :class:`~repro.diagnosis.system.CircuitSystem` — the paper's setting:
  gates as components, test responses as observations, the vectorized
  simulator plus correction-mux SAT encodings underneath.  Built
  implicitly by ``DiagnosisSession(circuit, tests)``.
* :class:`~repro.diagnosis.system.GroupedCNFSystem` — weak-fault-model
  diagnosis of a :class:`~repro.sat.dimacs.GroupedCNF`: assumable clause
  groups are the components, each observation a set of unit assumptions;
  a candidate retracts its groups and asks the solver for consistency.
* :class:`~repro.diagnosis.system.SpectrumSystem` — software fault
  spectra: program runs as observations, a failing run is rectified iff
  the candidate intersects its coverage (set-cover consistency).

``DiagnosisSession(system)`` accepts any bound description; strategies
declare the kinds they support
(:func:`~repro.diagnosis.core.strategy_kinds`), and
:func:`~repro.diagnosis.core.diagnose` enforces the match.  All
consistency predicates are monotone (a larger candidate never loses an
observation), which ``fastdiag``'s pruning and ``hsdag``'s conflict
reuse both rely on.

Strategy selection (the paper's Table 1 framing, extended)
----------------------------------------------------------

===================  ===========================  ==========================
strategy             wins when                    guarantees
===================  ===========================  ==========================
``bsim`` / ``cov``   speed matters, guidance      candidates only (may be
                     suffices                     invalid — Lemma 2)
``single-fix``       single error suspected       valid; size-1 complete
``bsat`` (+advanced  completeness required,       all corrections with only
variants)            ``k`` small                  essential candidates
``adv-sim`` /        pools already narrow         valid; complete within
``inc-sim``                                       the (PT) pool
``greedy-            first valid answer on        valid (verified); a
stochastic``         multi-fault instances,       sample, approximately
                     enumeration too slow         minimal
``ihs``              minimum-cardinality answer   valid; minimum cardinality
                     without full enumeration     within the pool
``hsdag``            conflict sets are small /    valid; all subset-minimal
                     reusable, cross-checking     corrections within ``k``
``fastdiag``         few deep diagnoses, cheap    valid; all subset-minimal
                     consistency oracle           corrections within ``k``
===================  ===========================  ==========================

Basic approaches (§2, §3):

* :func:`~repro.diagnosis.pathtrace.basic_sim_diagnose` — **BSIM** (Fig. 1).
* :func:`~repro.diagnosis.cover.sc_diagnose` — **COV** / SCDiagnose (Fig. 4).
* :func:`~repro.diagnosis.satdiag.basic_sat_diagnose` — **BSAT** (Figs. 2-3).

Advanced approaches (§2.2, §2.3):

* :mod:`~repro.diagnosis.advanced_sat` — select-zero clauses, dominator
  two-pass, test-set partitioning.
* :mod:`~repro.diagnosis.advanced_sim` — effect-analysis search with greedy
  ordering and backtracking.
* :mod:`~repro.diagnosis.xlist` — forward X-injection diagnosis (ref [5]).

Search loops on the candidate space (PAPERS.md):

* :mod:`~repro.diagnosis.greedy` — Feldman/Provan greedy stochastic
  search (SAFARI).
* :mod:`~repro.diagnosis.ihs` — Ignatiev-style implicit hitting sets.
* :mod:`~repro.diagnosis.hsdag` — Reiter hitting-set DAG over
  observation conflicts.
* :mod:`~repro.diagnosis.fastdiag` — FastDiag divide-and-conquer minima
  with dual HS-tree enumeration.

Hybrids (§6) and extensions:

* :mod:`~repro.diagnosis.hybrid` — PT-guided SAT decisions; SAT repair of an
  initial correction.
* :mod:`~repro.diagnosis.sequential` — time-frame expansion diagnosis.

Infrastructure: validity/essentialness checking (Defs. 3-4) in
:mod:`~repro.diagnosis.validity`; Table-3 metrics in
:mod:`~repro.diagnosis.metrics`.
"""

from .base import (
    APPROACH_PROPERTIES,
    Correction,
    SimDiagnosisResult,
    SolutionSetResult,
    format_table1,
)
from .core import (
    ALL_SYSTEM_KINDS,
    CandidateSpace,
    DIAGNOSIS_STRATEGIES,
    DiagnosisSession,
    Observation,
    StrategyInfo,
    available_strategies,
    diagnose,
    get_strategy,
    register_strategy,
    strategy_kinds,
)
from .system import (
    CircuitSystem,
    GroupedCNFSystem,
    SpectrumSystem,
    SystemDescription,
)
from .pathtrace import basic_sim_diagnose, path_trace, POLICIES
from .cover import sc_diagnose, minimal_covers_sat, minimal_covers_bnb
from .satdiag import (
    DiagnosisInstance,
    build_diagnosis_instance,
    basic_sat_diagnose,
    auto_k_sat_diagnose,
)
from .resynthesis import (
    RepairResult,
    correction_constraints,
    consistent_gate_types,
    repair_and_verify,
    resynthesize,
)
from .validity import (
    rectifiable_by_forcing,
    is_valid_correction,
    has_only_essential_candidates,
    all_valid_corrections,
)
from .metrics import (
    BsimQuality,
    SolutionQuality,
    bsim_quality,
    solution_quality,
    distance_map,
    hit_rate,
)
from .advanced_sat import (
    dominator_representatives,
    select_zero_sat_diagnose,
    dominator_sat_diagnose,
    partitioned_sat_diagnose,
)
from .advanced_sim import enumerate_sim_corrections, incremental_sim_diagnose
from .greedy import greedy_stochastic_diagnose
from .ihs import ihs_diagnose
from .hsdag import hsdag_diagnose
from .fastdiag import fastdiag_diagnose
from .xlist import xlist_candidates, xlist_diagnose
from .hybrid import (
    pt_guided_sat_diagnose,
    repair_correction_sat,
    structural_neighbourhood,
)
from .sequential import SequenceTest, failing_sequences, seq_sat_diagnose
from .certify import CertifiedVerdict, certify_correction_bound
from .structural import (
    StructuralDiagnosis,
    signature_map,
    structural_diagnose,
    suspects_within_error_cones,
)
from .stuckat import (
    FaultDictionary,
    FaultMatch,
    diagnose_stuck_at,
    fault_signature,
    full_fault_list,
)

__all__ = [
    "APPROACH_PROPERTIES",
    "Correction",
    "SimDiagnosisResult",
    "SolutionSetResult",
    "format_table1",
    "ALL_SYSTEM_KINDS",
    "CandidateSpace",
    "DIAGNOSIS_STRATEGIES",
    "DiagnosisSession",
    "Observation",
    "StrategyInfo",
    "available_strategies",
    "diagnose",
    "get_strategy",
    "register_strategy",
    "strategy_kinds",
    "SystemDescription",
    "CircuitSystem",
    "GroupedCNFSystem",
    "SpectrumSystem",
    "basic_sim_diagnose",
    "path_trace",
    "POLICIES",
    "sc_diagnose",
    "minimal_covers_sat",
    "minimal_covers_bnb",
    "DiagnosisInstance",
    "build_diagnosis_instance",
    "basic_sat_diagnose",
    "auto_k_sat_diagnose",
    "RepairResult",
    "correction_constraints",
    "consistent_gate_types",
    "repair_and_verify",
    "resynthesize",
    "rectifiable_by_forcing",
    "is_valid_correction",
    "has_only_essential_candidates",
    "all_valid_corrections",
    "BsimQuality",
    "SolutionQuality",
    "bsim_quality",
    "solution_quality",
    "distance_map",
    "hit_rate",
    "dominator_representatives",
    "select_zero_sat_diagnose",
    "dominator_sat_diagnose",
    "partitioned_sat_diagnose",
    "enumerate_sim_corrections",
    "incremental_sim_diagnose",
    "greedy_stochastic_diagnose",
    "ihs_diagnose",
    "hsdag_diagnose",
    "fastdiag_diagnose",
    "xlist_candidates",
    "xlist_diagnose",
    "pt_guided_sat_diagnose",
    "repair_correction_sat",
    "structural_neighbourhood",
    "SequenceTest",
    "failing_sequences",
    "seq_sat_diagnose",
    "CertifiedVerdict",
    "StructuralDiagnosis",
    "signature_map",
    "structural_diagnose",
    "suspects_within_error_cones",
    "certify_correction_bound",
    "FaultDictionary",
    "FaultMatch",
    "diagnose_stuck_at",
    "fault_signature",
    "full_fault_list",
]
