"""Diagnosis algorithms — the paper's primary subject.

Basic approaches (§2, §3):

* :func:`~repro.diagnosis.pathtrace.basic_sim_diagnose` — **BSIM** (Fig. 1).
* :func:`~repro.diagnosis.cover.sc_diagnose` — **COV** / SCDiagnose (Fig. 4).
* :func:`~repro.diagnosis.satdiag.basic_sat_diagnose` — **BSAT** (Figs. 2-3).

Advanced approaches (§2.2, §2.3):

* :mod:`~repro.diagnosis.advanced_sat` — select-zero clauses, dominator
  two-pass, test-set partitioning.
* :mod:`~repro.diagnosis.advanced_sim` — effect-analysis search with greedy
  ordering and backtracking.
* :mod:`~repro.diagnosis.xlist` — forward X-injection diagnosis (ref [5]).

Hybrids (§6) and extensions:

* :mod:`~repro.diagnosis.hybrid` — PT-guided SAT decisions; SAT repair of an
  initial correction.
* :mod:`~repro.diagnosis.sequential` — time-frame expansion diagnosis.

Infrastructure: validity/essentialness checking (Defs. 3-4) in
:mod:`~repro.diagnosis.validity`; Table-3 metrics in
:mod:`~repro.diagnosis.metrics`.
"""

from .base import (
    APPROACH_PROPERTIES,
    Correction,
    SimDiagnosisResult,
    SolutionSetResult,
    format_table1,
)
from .pathtrace import basic_sim_diagnose, path_trace, POLICIES
from .cover import sc_diagnose, minimal_covers_sat, minimal_covers_bnb
from .satdiag import (
    DiagnosisInstance,
    build_diagnosis_instance,
    basic_sat_diagnose,
    auto_k_sat_diagnose,
)
from .resynthesis import (
    RepairResult,
    correction_constraints,
    consistent_gate_types,
    repair_and_verify,
    resynthesize,
)
from .validity import (
    rectifiable_by_forcing,
    is_valid_correction,
    has_only_essential_candidates,
    all_valid_corrections,
)
from .metrics import (
    BsimQuality,
    SolutionQuality,
    bsim_quality,
    solution_quality,
    distance_map,
    hit_rate,
)
from .advanced_sat import (
    dominator_representatives,
    select_zero_sat_diagnose,
    dominator_sat_diagnose,
    partitioned_sat_diagnose,
)
from .advanced_sim import enumerate_sim_corrections, incremental_sim_diagnose
from .xlist import xlist_candidates, xlist_diagnose
from .hybrid import (
    pt_guided_sat_diagnose,
    repair_correction_sat,
    structural_neighbourhood,
)
from .sequential import SequenceTest, failing_sequences, seq_sat_diagnose
from .certify import CertifiedVerdict, certify_correction_bound
from .structural import (
    StructuralDiagnosis,
    signature_map,
    structural_diagnose,
    suspects_within_error_cones,
)
from .stuckat import (
    FaultDictionary,
    FaultMatch,
    diagnose_stuck_at,
    fault_signature,
    full_fault_list,
)

__all__ = [
    "APPROACH_PROPERTIES",
    "Correction",
    "SimDiagnosisResult",
    "SolutionSetResult",
    "format_table1",
    "basic_sim_diagnose",
    "path_trace",
    "POLICIES",
    "sc_diagnose",
    "minimal_covers_sat",
    "minimal_covers_bnb",
    "DiagnosisInstance",
    "build_diagnosis_instance",
    "basic_sat_diagnose",
    "auto_k_sat_diagnose",
    "RepairResult",
    "correction_constraints",
    "consistent_gate_types",
    "repair_and_verify",
    "resynthesize",
    "rectifiable_by_forcing",
    "is_valid_correction",
    "has_only_essential_candidates",
    "all_valid_corrections",
    "BsimQuality",
    "SolutionQuality",
    "bsim_quality",
    "solution_quality",
    "distance_map",
    "hit_rate",
    "dominator_representatives",
    "select_zero_sat_diagnose",
    "dominator_sat_diagnose",
    "partitioned_sat_diagnose",
    "enumerate_sim_corrections",
    "incremental_sim_diagnose",
    "xlist_candidates",
    "xlist_diagnose",
    "pt_guided_sat_diagnose",
    "repair_correction_sat",
    "structural_neighbourhood",
    "SequenceTest",
    "failing_sequences",
    "seq_sat_diagnose",
    "CertifiedVerdict",
    "StructuralDiagnosis",
    "signature_map",
    "structural_diagnose",
    "suspects_within_error_cones",
    "certify_correction_bound",
    "FaultDictionary",
    "FaultMatch",
    "diagnose_stuck_at",
    "fault_signature",
    "full_fault_list",
]
