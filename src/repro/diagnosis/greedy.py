"""Greedy stochastic diagnosis search (Feldman/Provan/van Gemund, SAFARI).

*Approximate Model-Based Diagnosis Using Greedy Stochastic Search*
(PAPERS.md) trades completeness for speed: instead of enumerating every
correction the way BSAT does, SAFARI runs a number of randomized climbs.
Each climb starts from a trivially consistent candidate — here the whole
suspect pool, which can always realize the correct responses — and
repeatedly tries to *retract* a random gate, keeping the retraction
whenever the shrunk candidate is still consistent with every observation;
after ``patience`` consecutive failed retractions the climb stops and a
deterministic sweep trims the survivor to a subset-minimal candidate.

The search never re-simulates from scratch: all observations live as
uint64 lanes in one shared :class:`~repro.diagnosis.core.DiagnosisSession`
and every gate's *rectification word* (which observations one forced
value at the gate fixes) comes from a single fault-parallel sweep.  A
retraction is then a word-algebra question — does the remaining pool
still cover every observation? — tracked incrementally with per-
observation cover counts, exactly the "cheap candidate application per
test-lane" the vectorized substrate was built for.  Candidates whose
cover check fails may still be consistent through multi-gate effects;
``deep_check`` escalates those to the session's exact (bit-parallel /
SAT) oracle.

Every reported candidate is verified consistent — valid corrections in
the sense of Definition 3 — but unlike BSAT the set of candidates is a
sample, not an enumeration, and minimality is with respect to the checks
performed (subset-minimal under ``deep_check``).
"""

from __future__ import annotations

import random
import time
import zlib
from typing import Callable, Sequence

from ..circuits.netlist import Circuit
from ..testgen.testset import TestSet
from .base import Correction, SolutionSetResult
from .core import ALL_SYSTEM_KINDS, DiagnosisSession, register_strategy

__all__ = ["greedy_stochastic_diagnose"]

#: Above this candidate size the exact consistency oracle is skipped
#: during minimization (the 2^|C| bit-parallel check would blow up and
#: the SAT fallback dominates the climb); the cover-word check alone is
#: still sound, only minimality may be coarser.
_DEEP_CHECK_LIMIT = 12


def _minimize(
    session: DiagnosisSession,
    words: dict[str, int],
    candidate: list[str],
    rng: random.Random,
    patience: int,
    deep_check: bool,
    should_stop: Callable[[], bool] | None = None,
) -> Correction | None:
    """One SAFARI climb: stochastic retraction, then deterministic trim.

    ``candidate`` must be consistent on entry (its cover words span all
    observations, or it was deep-checked).  Retractions keep the cover
    invariant: gate ``g`` may leave while every observation it covers is
    covered by another remaining gate; when the cover check blocks a
    retraction and the candidate is small, the exact oracle gets the
    final say.

    ``should_stop`` is polled once per retraction attempt; a cancelled
    climb returns None (its partial candidate is consistent but not yet
    minimal, so it is discarded rather than reported).
    """
    counts = [0] * session.m
    for g in candidate:
        w = words[g]
        for j in range(session.m):
            if (w >> j) & 1:
                counts[j] += 1
    current = list(candidate)
    misses = 0
    while misses < patience and len(current) > 1:
        if should_stop is not None and should_stop():
            return None
        g = current[rng.randrange(len(current))]
        if _can_retract(session, words, counts, current, g, deep_check):
            _retract(words, counts, current, g)
            misses = 0
        else:
            misses += 1
    # Deterministic trim to a subset-minimal candidate: one full pass in
    # random order; a second pass is never needed because retraction
    # opportunities only shrink as gates leave... except through exact
    # multi-gate effects, so loop until a full pass retracts nothing.
    changed = True
    while changed and len(current) > 1:
        changed = False
        order = list(current)
        rng.shuffle(order)
        for g in order:
            if len(current) == 1:
                break
            if should_stop is not None and should_stop():
                return None
            if g in current and _can_retract(
                session, words, counts, current, g, deep_check
            ):
                _retract(words, counts, current, g)
                changed = True
    return frozenset(current)


def _can_retract(
    session: DiagnosisSession,
    words: dict[str, int],
    counts: list[int],
    current: list[str],
    gate: str,
    deep_check: bool,
) -> bool:
    # The cover argument is only sound while the *whole* candidate is
    # cover-consistent (every observation covered by some member's own
    # rectification word).  Once consistency rests on a multi-gate
    # effect (some count is 0), every retraction needs the exact oracle.
    if all(counts):
        w = words[gate]
        if all(counts[j] > 1 for j in range(session.m) if (w >> j) & 1):
            return True
    if deep_check and len(current) - 1 <= _DEEP_CHECK_LIMIT:
        return session.consistent([g for g in current if g != gate])
    return False


def _retract(
    words: dict[str, int], counts: list[int], current: list[str], gate: str
) -> None:
    current.remove(gate)
    w = words[gate]
    for j in range(len(counts)):
        if (w >> j) & 1:
            counts[j] -= 1


def greedy_stochastic_diagnose(
    circuit: Circuit | None,
    tests: TestSet | None,
    k: int | None = None,
    retries: int = 16,
    patience: int = 6,
    seed: int | None = None,
    pool: Sequence[str] | None = None,
    max_solutions: int | None = None,
    deep_check: bool = True,
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
    should_stop: Callable[[], bool] | None = None,
    budget=None,
) -> SolutionSetResult:
    """SAFARI-style greedy stochastic search for valid corrections.

    Parameters
    ----------
    k:
        Keep only candidates with at most ``k`` gates (None: keep every
        minimal candidate found).
    retries:
        Number of independent randomized climbs.
    patience:
        Consecutive failed retractions before a climb settles.
    seed:
        Base RNG seed (None: the session's own ``seed``, so repeated
        calls on one session are reproducible without threading a seed
        through every caller).  Climb ``r`` draws from a stream derived
        from the seed, the retry index, and the system *kind*, so the
        same seed explores decorrelated orders on different system
        descriptions while circuit runs keep their historical streams.
    pool:
        Suspect pool (default: every functional gate).
    deep_check:
        Escalate blocked retractions of small candidates to the exact
        consistency oracle (catches multi-gate corrections the cover
        words cannot see).
    session:
        Reuse a prepared session (shared caches) instead of building one.
    should_stop:
        Cooperative cancellation hook (the serving race): polled before
        each climb and once per retraction attempt inside a climb.  A
        cancelled run returns the minima found so far with
        ``extras["cancelled"]=True``; the interrupted climb's partial
        candidate is discarded, so every reported solution is still a
        verified subset-minimal correction.
    budget:
        :class:`repro.sat.budget.Budget` polled at the same sites as
        ``should_stop`` (the climbs are pure simulation — each
        retraction is one bounded cover-word update, so per-retraction
        polling already bounds the overrun); a budget stop marks
        ``extras["interrupted"]``.

    Returns a :class:`SolutionSetResult` (``approach="SAFARI"``); every
    solution is a verified valid correction.  ``complete`` is always
    False — the search is a sample of the solution space by design.
    """
    start = time.perf_counter()
    if session is None:
        if circuit is None:
            raise ValueError(
                "greedy_stochastic_diagnose requires a circuit or an "
                "existing session"
            )
        session = DiagnosisSession(circuit, tests)
    if budget is not None:
        user_stop = should_stop

        def should_stop() -> bool:  # noqa: F811 - deliberate rebind
            return (
                user_stop is not None and user_stop()
            ) or budget.poll()

    if seed is None:
        seed = session.seed
    # Per-kind stream offset: 0 for circuits (preserving the historical
    # seed -> climb mapping), a kind-hash otherwise, so gcnf/spectrum
    # sessions with the same numeric seed do not replay the circuit
    # retraction order.
    kind_offset = (
        0 if session.kind == "circuit"
        else zlib.crc32(session.kind.encode("ascii"))
    )
    space = session.space(pool)
    words = space.singleton_rect_words()
    t_build = time.perf_counter() - start

    search_start = time.perf_counter()
    t_first: float | None = None
    solutions: list[Correction] = []
    seen: set[Correction] = set()
    full = list(space.pool)
    cover = 0
    for g in full:
        cover |= words[g]
    pool_consistent = cover == session.all_mask or session.consistent(full)
    climbs = 0
    cancelled = False
    if pool_consistent:
        for r in range(retries):
            if max_solutions is not None and len(solutions) >= max_solutions:
                break
            if should_stop is not None and should_stop():
                cancelled = True
                break
            rng = random.Random(seed * 1_000_003 + kind_offset + r)
            minimal = _minimize(
                session, words, list(full), rng, patience, deep_check,
                should_stop=should_stop,
            )
            if minimal is None:
                cancelled = True
                break
            climbs += 1
            if minimal in seen:
                continue
            seen.add(minimal)
            if k is not None and len(minimal) > k:
                continue
            solutions.append(minimal)
            if t_first is None:
                t_first = time.perf_counter() - search_start
    t_all = time.perf_counter() - search_start
    solutions.sort(key=lambda s: (len(s), sorted(s)))
    return SolutionSetResult(
        approach="SAFARI",
        k=k if k is not None else max((len(s) for s in solutions), default=0),
        solutions=tuple(solutions),
        complete=False,
        t_build=t_build,
        t_first=t_first if t_first is not None else t_all,
        t_all=t_all,
        extras={
            "pool_size": len(space),
            "climbs": climbs,
            "pool_consistent": pool_consistent,
            "distinct_minima": len(seen),
            **({"cancelled": True} if cancelled else {}),
            **(
                {"interrupted": True}
                if budget is not None and budget.interrupted
                else {}
            ),
        },
    )


@register_strategy(
    "greedy-stochastic",
    "SAFARI climbs: retract-at-random over cover words, verified valid",
    kinds=ALL_SYSTEM_KINDS,
)
def _greedy_strategy(
    session: DiagnosisSession, k: int | None = None, **options
) -> SolutionSetResult:
    return greedy_stochastic_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )
