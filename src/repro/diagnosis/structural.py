"""Structural (signature-correspondence) diagnosis — the intro's baseline.

The oldest family of error-location techniques (paper ref [12]) assumes
the implementation still *resembles* the specification: internal signals
correspond one-to-one, so any signal whose behaviour has no counterpart in
the specification is suspicious.  This module implements the classic
simulation-signature version:

1. simulate the same random patterns bit-parallel on both netlists;
2. a signal's *signature* is its response word; two signals correspond
   when their signatures are equal (optionally up to inversion);
3. implementation gates without any corresponding specification signal
   are the **suspects**; suspects whose fanins all still correspond are
   the **sources** — the frontier where the mismatch begins, which is
   where the error sits when the similarity assumption holds.

The paper's criticism — "such similarities may not be present, e.g. due
to optimizations during synthesis" — is reproduced by the test-suite and
the ablation bench: after :func:`repro.circuits.rewrite.decompose_wide_gates`
the implementation contains sub-functions that exist nowhere in the
specification, so the suspect set fills with false positives unrelated to
any error, while the test-vector approaches (BSIM/COV/BSAT) are
unaffected.

Signatures are necessary, not sufficient: with ``n_patterns`` random
vectors two different functions collide with probability ``2^-n``; the
default of 256 makes false correspondences negligible for the circuit
sizes here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..circuits.netlist import Circuit
from ..circuits.structure import fanout_cone
from ..sim.parallel import pack_patterns, simulate_words

__all__ = ["StructuralDiagnosis", "signature_map", "structural_diagnose"]


def signature_map(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
) -> dict[str, int]:
    """Response word of every signal under ``patterns`` (bit ``j`` =
    pattern ``j``)."""
    words = pack_patterns(patterns, circuit.inputs)
    return simulate_words(circuit, words, len(patterns))


@dataclass(frozen=True)
class StructuralDiagnosis:
    """Result of :func:`structural_diagnose`.

    ``matched`` maps implementation signals to a corresponding
    specification signal (its own name where unchanged).  ``suspects``
    are implementation gates with no correspondence; ``sources`` the
    suspects whose fanins all correspond — the candidates this baseline
    reports to the designer.
    """

    matched: Mapping[str, str]
    suspects: tuple[str, ...]
    sources: tuple[str, ...]
    n_patterns: int

    @property
    def suspect_count(self) -> int:
        return len(self.suspects)

    def is_suspect(self, signal: str) -> bool:
        return signal in set(self.suspects)


def structural_diagnose(
    spec: Circuit,
    impl: Circuit,
    n_patterns: int = 256,
    seed: int = 0,
    match_inverted: bool = True,
) -> StructuralDiagnosis:
    """Locate error suspects by signature correspondence.

    Both circuits must share primary inputs.  ``match_inverted`` also
    accepts complemented counterparts (synthesis freely moves inverters).

    >>> from repro.circuits.library import majority
    >>> from repro.circuits import GateType
    >>> from repro.faults import GateChangeError, apply_error
    >>> impl = apply_error(
    ...     majority(), GateChangeError("bc", GateType.AND, GateType.NOR)
    ... )
    >>> diag = structural_diagnose(majority(), impl, seed=3)
    >>> "bc" in diag.suspects and "bc" in diag.sources
    True
    """
    if spec.inputs != impl.inputs:
        raise ValueError("spec and impl must share primary inputs")
    if n_patterns < 1:
        raise ValueError("n_patterns must be positive")
    rng = random.Random(seed)
    patterns = [
        {pi: rng.getrandbits(1) for pi in spec.inputs}
        for _ in range(n_patterns)
    ]
    mask = (1 << n_patterns) - 1
    spec_sig = signature_map(spec, patterns)
    impl_sig = signature_map(impl, patterns)
    # Index specification signatures (prefer the identically-named signal).
    by_word: dict[int, str] = {}
    for name, word in spec_sig.items():
        by_word.setdefault(word, name)
    matched: dict[str, str] = {}
    suspects: list[str] = []
    for gate in impl:
        if not gate.is_functional:
            matched[gate.name] = gate.name
            continue
        word = impl_sig[gate.name]
        if gate.name in spec_sig and spec_sig[gate.name] == word:
            matched[gate.name] = gate.name
            continue
        hit = by_word.get(word)
        if hit is None and match_inverted:
            hit = by_word.get(~word & mask)
        if hit is not None:
            matched[gate.name] = hit
        else:
            suspects.append(gate.name)
    suspect_set = set(suspects)
    sources = tuple(
        s
        for s in suspects
        if all(f not in suspect_set for f in impl.node(s).fanins)
    )
    return StructuralDiagnosis(
        matched=matched,
        suspects=tuple(suspects),
        sources=sources,
        n_patterns=n_patterns,
    )


def suspects_within_error_cones(
    diag: StructuralDiagnosis, impl: Circuit, sites: Sequence[str]
) -> bool:
    """True when every suspect lies in the fanout cone of some error site.

    This is the tightness property the similarity assumption buys — it
    holds for plain injections and breaks after restructuring.
    """
    cones: set[str] = set()
    for site in sites:
        cones |= fanout_cone(impl, site, include_self=True)
    return set(diag.suspects) <= cones
