"""Set-covering diagnosis — the paper's COV / ``SCDiagnose`` (Fig. 4).

The third approach the paper introduces to bridge BSIM and BSAT: the
path-tracing candidate sets ``C_1 .. C_m`` form a set covering instance
``S``; a solution ``C*`` (a) hits every ``C_i``, (b) is inclusion-minimal,
and (c) has at most ``k`` elements.  All such solutions are enumerated.

Two engines are provided and cross-checked in the test-suite:

* ``method="sat"`` — the paper's route ("The covering problem in COV was
  also solved using Zchaff"): one selection variable per marked gate, one
  clause per test, a totalizer bound, superset-blocking enumeration with
  the bound incremented from 1 to ``k`` (minimality for free, mirroring
  BSAT's loop);
* ``method="bnb"`` — a direct branch-and-bound enumerator of irredundant
  covers, which needs no SAT machinery and serves as an independent oracle.

Per Lemma 2 / Theorem 1, COV solutions need *not* be valid corrections —
no effect analysis happens here.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..circuits.netlist import Circuit
from ..sat.cardinality import totalizer
from ..sat.cnf import CNF
from ..sat.enumerate import enumerate_solutions
from ..testgen.testset import TestSet
from .base import Correction, SimDiagnosisResult, SolutionSetResult
from .core import DiagnosisSession, register_strategy
from .pathtrace import basic_sim_diagnose

__all__ = ["minimal_covers_sat", "minimal_covers_bnb", "sc_diagnose"]


def minimal_covers_sat(
    sets: Sequence[frozenset[str]],
    k: int,
    solution_limit: int | None = None,
    conflict_limit: int | None = None,
    solver_backend: str | None = None,
) -> tuple[list[Correction], bool]:
    """All inclusion-minimal covers of ``sets`` with at most ``k`` elements.

    Returns ``(covers, complete)``.  Elements appearing in no set are never
    chosen; an empty input has the empty cover as its only solution.
    """
    if not sets:
        return [frozenset()], True
    if any(not s for s in sets):
        return [], True  # an empty candidate set can never be covered
    universe = sorted(set().union(*sets))
    cnf = CNF()
    var_of = {g: cnf.new_var(f"x:{g}") for g in universe}
    gate_of = {v: g for g, v in var_of.items()}
    for s in sets:
        cnf.add_clause([var_of[g] for g in sorted(s)])
    bound_outs = totalizer(cnf, [var_of[g] for g in universe], min(k, len(universe)))
    solver = cnf.to_solver(backend=solver_backend)
    covers: list[Correction] = []
    complete = True
    for bound in range(1, k + 1):
        assumptions = [-bound_outs[bound]] if bound < len(bound_outs) else []
        budget = None if solution_limit is None else solution_limit - len(covers)
        if budget is not None and budget <= 0:
            complete = False
            break
        try:
            for sol in enumerate_solutions(
                solver,
                [var_of[g] for g in universe],
                assumptions=assumptions,
                block="superset",
                limit=budget,
                conflict_limit=conflict_limit,
            ):
                covers.append(frozenset(gate_of[v] for v in sol))
        except TimeoutError:
            complete = False
            break
    if solution_limit is not None and len(covers) >= solution_limit:
        complete = False
    return covers, complete


def minimal_covers_bnb(
    sets: Sequence[frozenset[str]], k: int
) -> list[Correction]:
    """Branch-and-bound enumeration of the same solution set.

    Branches on the elements of an uncovered set with the fewest elements;
    the candidate covers are then filtered to the inclusion-minimal ones of
    size ≤ k, matching conditions (a)-(c) of ``SCDiagnose`` exactly.
    """
    if not sets:
        return [frozenset()]
    if any(not s for s in sets):
        return []
    raw: set[frozenset[str]] = set()

    def search(chosen: frozenset[str], remaining: tuple[frozenset[str], ...]) -> None:
        uncovered = [s for s in remaining if not (s & chosen)]
        if not uncovered:
            raw.add(chosen)
            return
        if len(chosen) >= k:
            return
        pivot = min(uncovered, key=len)
        for g in sorted(pivot):
            search(chosen | {g}, tuple(uncovered))

    search(frozenset(), tuple(sets))
    minimal = [
        c
        for c in raw
        if not any(other < c for other in raw)
    ]
    # `raw` may lack a subset that is itself a cover discovered on another
    # branch with extra elements; enforce condition (b) directly.
    result: list[Correction] = []
    for cover in minimal:
        if all(
            any(not (s & (cover - {g})) for s in sets) for g in cover
        ):
            result.append(cover)
    return sorted(result, key=lambda c: (len(c), sorted(c)))


def sc_diagnose(
    circuit: Circuit,
    tests: TestSet,
    k: int,
    method: str = "sat",
    policy: str = "first",
    sim_result: SimDiagnosisResult | None = None,
    solution_limit: int | None = None,
    conflict_limit: int | None = None,
    session: DiagnosisSession | None = None,
    solver_backend: str | None = None,
) -> SolutionSetResult:
    """``SCDiagnose(I, T, k)`` — Fig. 4 of the paper (the COV approach).

    Step (1) runs ``BasicSimDiagnose`` (or reuses ``sim_result``, or the
    ``session``'s cached path-tracing result); step (2) enumerates all
    minimal covers of the candidate sets up to size ``k``.
    """
    if method not in ("sat", "bnb"):
        raise ValueError("method must be 'sat' or 'bnb'")
    build_start = time.perf_counter()
    if sim_result is None:
        sim_result = basic_sim_diagnose(
            circuit, tests, policy=policy, session=session
        )
    t_build = time.perf_counter() - build_start

    search_start = time.perf_counter()
    complete = True
    if method == "sat":
        covers, complete = minimal_covers_sat(
            sim_result.candidate_sets,
            k,
            solution_limit=solution_limit,
            conflict_limit=conflict_limit,
            solver_backend=solver_backend,
        )
    else:
        covers = minimal_covers_bnb(sim_result.candidate_sets, k)
        if solution_limit is not None and len(covers) > solution_limit:
            covers = covers[:solution_limit]
            complete = False
    t_all = time.perf_counter() - search_start
    # Table 2 measures "One" with a separate solution_limit=1 run, so the
    # first-solution time here simply equals the (single) search time.
    return SolutionSetResult(
        approach="COV",
        k=k,
        solutions=tuple(covers),
        complete=complete,
        t_build=t_build,
        t_first=t_all,
        t_all=t_all,
        extras={"sim_result": sim_result, "method": method},
    )


@register_strategy(
    "cov", "SCDiagnose: minimal covers of the path-tracing candidate sets"
)
def _cov_strategy(
    session: DiagnosisSession, k: int = 1, **options
) -> SolutionSetResult:
    return sc_diagnose(
        session.circuit, session.tests, k, session=session, **options
    )
