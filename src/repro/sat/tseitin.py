"""Tseitin encoding of gate-level circuits into CNF.

Used to build the SAT instance ``F`` of Fig. 2/3 of the paper: one circuit
copy per test, with correction multiplexers inserted at candidate gates.
The primitives here are deliberately composable — :func:`encode_gate`
encodes one gate, :func:`encode_mux` one correction multiplexer — so the
diagnosis instance builder, the miter-based test generator and the validity
checker all share them.

Encoding is linear in circuit size; n-ary XOR/XNOR gates are folded into
chains of binary XORs with auxiliary variables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..circuits.gates import GateType
from ..circuits.netlist import Circuit
from .cnf import CNF

__all__ = ["encode_gate", "encode_mux", "encode_circuit", "encode_equivalence"]


def _encode_and(cnf: CNF, out: int, ins: Sequence[int], negate: bool) -> None:
    y = -out if negate else out
    for x in ins:
        cnf.add_clause([-y, x])
    cnf.add_clause([y] + [-x for x in ins])


def _encode_or(cnf: CNF, out: int, ins: Sequence[int], negate: bool) -> None:
    y = -out if negate else out
    for x in ins:
        cnf.add_clause([y, -x])
    cnf.add_clause([-y] + list(ins))


def _encode_xor2(cnf: CNF, out: int, a: int, b: int) -> None:
    cnf.add_clause([-out, a, b])
    cnf.add_clause([-out, -a, -b])
    cnf.add_clause([out, -a, b])
    cnf.add_clause([out, a, -b])


def encode_gate(
    cnf: CNF, gtype: GateType, out: int, ins: Sequence[int]
) -> None:
    """Add clauses asserting ``out == gtype(ins)``.

    ``DFF`` is rejected: the SAT formulations work on the combinational
    (full-scan or time-frame expanded) view where no DFFs remain.
    """
    if gtype is GateType.CONST0:
        cnf.add_clause([-out])
    elif gtype is GateType.CONST1:
        cnf.add_clause([out])
    elif gtype is GateType.BUF:
        (a,) = ins
        cnf.add_clause([-out, a])
        cnf.add_clause([out, -a])
    elif gtype is GateType.NOT:
        (a,) = ins
        cnf.add_clause([-out, -a])
        cnf.add_clause([out, a])
    elif gtype is GateType.AND:
        _encode_and(cnf, out, ins, negate=False)
    elif gtype is GateType.NAND:
        _encode_and(cnf, out, ins, negate=True)
    elif gtype is GateType.OR:
        _encode_or(cnf, out, ins, negate=False)
    elif gtype is GateType.NOR:
        _encode_or(cnf, out, ins, negate=True)
    elif gtype in (GateType.XOR, GateType.XNOR):
        acc = ins[0]
        for nxt in ins[1:-1]:
            aux = cnf.new_var()
            _encode_xor2(cnf, aux, acc, nxt)
            acc = aux
        if len(ins) == 1:
            # Degenerate single-input XOR behaves as a buffer.
            last = acc
            if gtype is GateType.XOR:
                cnf.add_clause([-out, last])
                cnf.add_clause([out, -last])
            else:
                cnf.add_clause([-out, -last])
                cnf.add_clause([out, last])
            return
        target = out if gtype is GateType.XOR else -out
        _encode_xor2(cnf, target, acc, ins[-1])
    else:
        raise ValueError(f"cannot Tseitin-encode gate type {gtype}")


def encode_mux(cnf: CNF, out: int, select: int, correction: int, orig: int) -> None:
    """Correction multiplexer of Fig. 2(a): ``out = select ? correction : orig``."""
    cnf.add_clause([-select, -correction, out])
    cnf.add_clause([-select, correction, -out])
    cnf.add_clause([select, -orig, out])
    cnf.add_clause([select, orig, -out])


def encode_circuit(
    cnf: CNF,
    circuit: Circuit,
    prefix: str = "",
    input_vars: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Encode one plain copy of ``circuit``; returns signal → variable.

    ``input_vars`` lets several copies share primary-input variables (used
    by the miter construction); otherwise fresh input variables are created.
    Variable names are registered as ``prefix + signal``.
    """
    if not circuit.is_combinational:
        raise ValueError(
            "encode_circuit requires a combinational circuit; "
            "apply repro.circuits.to_combinational first"
        )
    var_of: dict[str, int] = {}
    input_vars = input_vars or {}
    for name in circuit.topological_order():
        gate = circuit.node(name)
        if gate.is_input:
            var_of[name] = input_vars.get(name) or cnf.new_var(prefix + name)
            continue
        out = cnf.new_var(prefix + name)
        var_of[name] = out
        encode_gate(cnf, gate.gtype, out, [var_of[f] for f in gate.fanins])
    return var_of


def encode_equivalence(cnf: CNF, a: int, b: int) -> None:
    """Assert ``a == b``."""
    cnf.add_clause([-a, b])
    cnf.add_clause([a, -b])
