"""Cardinality constraint encodings.

``BasicSATDiagnose`` bounds the number of asserted multiplexer select lines
by ``k`` ("Constrain the number of select-inputs with value 1 to be at most
i", paper Fig. 3).  Three encodings are provided:

* **pairwise** — O(n²) clauses, no auxiliary variables; best for tiny k/n
  and used as the ground truth in the encoding equivalence tests.
* **sequential counter** (Sinz 2005) — O(n·k) clauses, the classic
  at-most-k circuit.
* **totalizer** (Bailleul & Boufkhad 2003) — O(n·k) clauses with *reusable
  bound outputs*: unit assumptions ``¬out[i]`` enforce "at most i", so the
  incremental loop ``i = 1 .. k`` of the paper reuses one encoding, exactly
  like an incremental SAT use of Zchaff would.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from .cnf import CNF

__all__ = [
    "at_most_k_pairwise",
    "at_most_k_sequential",
    "totalizer",
    "at_least_one",
]


def at_least_one(cnf: CNF, lits: Sequence[int]) -> None:
    """Add the clause requiring at least one of ``lits``."""
    if not lits:
        raise ValueError("at_least_one of nothing is unsatisfiable")
    cnf.add_clause(lits)


def at_most_k_pairwise(cnf: CNF, lits: Sequence[int], k: int) -> None:
    """Naive binomial encoding: every (k+1)-subset contains a false literal.

    >>> cnf = CNF()
    >>> lits = [cnf.new_var() for _ in range(3)]
    >>> at_most_k_pairwise(cnf, lits, 1)
    >>> cnf.num_clauses  # C(3, 2) blocking pairs
    3
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k >= len(lits):
        return
    for subset in combinations(lits, k + 1):
        cnf.add_clause([-lit for lit in subset])


def at_most_k_sequential(cnf: CNF, lits: Sequence[int], k: int) -> None:
    """Sinz's sequential-counter encoding of ``sum(lits) <= k``.

    Introduces registers ``r[i][j]`` = "at least j+1 of the first i+1
    literals are true"; O(n·k) clauses.
    """
    n = len(lits)
    if k < 0:
        raise ValueError("k must be non-negative")
    if k >= n:
        return
    if k == 0:
        for lit in lits:
            cnf.add_clause([-lit])
        return
    regs = [[cnf.new_var() for _ in range(k)] for _ in range(n)]
    cnf.add_clause([-lits[0], regs[0][0]])
    for j in range(1, k):
        cnf.add_clause([-regs[0][j]])
    for i in range(1, n):
        cnf.add_clause([-lits[i], regs[i][0]])
        cnf.add_clause([-regs[i - 1][0], regs[i][0]])
        for j in range(1, k):
            cnf.add_clause([-lits[i], -regs[i - 1][j - 1], regs[i][j]])
            cnf.add_clause([-regs[i - 1][j], regs[i][j]])
        cnf.add_clause([-lits[i], -regs[i - 1][k - 1]])
    # The final clause for i = n-1 already forbids k+1; nothing else needed.


def totalizer(cnf: CNF, lits: Sequence[int], max_bound: int) -> list[int]:
    """Build a truncated totalizer over ``lits``.

    Returns output variables ``out`` with ``out[j]`` ⇔ "at least j+1 input
    literals are true", truncated to ``max_bound + 1`` outputs.  Enforce
    "at most i" (for any ``i <= max_bound``) by asserting the unit or
    assumption ``-out[i]``.

    The encoding only constrains the outputs *upward* (inputs true ⇒
    outputs true), which is sufficient for at-most bounds.
    """
    if max_bound < 0:
        raise ValueError("max_bound must be non-negative")
    width = max_bound + 1

    def build(segment: Sequence[int]) -> list[int]:
        if len(segment) == 1:
            return [segment[0]]
        mid = len(segment) // 2
        left = build(segment[:mid])
        right = build(segment[mid:])
        m = min(len(segment), width)
        outs = [cnf.new_var() for _ in range(m)]
        # sum_left >= a and sum_right >= b  ==>  sum >= a+b
        for a in range(len(left) + 1):
            for b in range(len(right) + 1):
                if a + b == 0 or a + b > m:
                    continue
                clause = [outs[a + b - 1]]
                if a > 0:
                    clause.append(-left[a - 1])
                if b > 0:
                    clause.append(-right[b - 1])
                cnf.add_clause(clause)
        return outs

    if not lits:
        return []
    return build(list(lits))
