"""Cardinality constraint encodings.

``BasicSATDiagnose`` bounds the number of asserted multiplexer select lines
by ``k`` ("Constrain the number of select-inputs with value 1 to be at most
i", paper Fig. 3).  Three encodings are provided:

* **pairwise** — O(n²) clauses, no auxiliary variables; best for tiny k/n
  and used as the ground truth in the encoding equivalence tests.
* **sequential counter** (Sinz 2005) — O(n·k) clauses, the classic
  at-most-k circuit.
* **totalizer** (Bailleul & Boufkhad 2003) — O(n·k) clauses with *reusable
  bound outputs*: unit assumptions ``¬out[i]`` enforce "at most i", so the
  incremental loop ``i = 1 .. k`` of the paper reuses one encoding, exactly
  like an incremental SAT use of Zchaff would.  The class form,
  :class:`IncrementalTotalizer`, additionally **extends its bound in
  place**: when a persistent diagnosis instance needs a larger ``k`` it
  adds only the missing output variables and sum clauses (pushed straight
  into the live solver) instead of re-encoding — the technique behind the
  incremental MaxSAT/IHS loops in PAPERS.md.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from .cnf import CNF

__all__ = [
    "IncrementalTotalizer",
    "at_most_k_pairwise",
    "at_most_k_sequential",
    "totalizer",
    "at_least_one",
]


def at_least_one(cnf: CNF, lits: Sequence[int]) -> None:
    """Add the clause requiring at least one of ``lits``."""
    if not lits:
        raise ValueError("at_least_one of nothing is unsatisfiable")
    cnf.add_clause(lits)


def at_most_k_pairwise(cnf: CNF, lits: Sequence[int], k: int) -> None:
    """Naive binomial encoding: every (k+1)-subset contains a false literal.

    >>> cnf = CNF()
    >>> lits = [cnf.new_var() for _ in range(3)]
    >>> at_most_k_pairwise(cnf, lits, 1)
    >>> cnf.num_clauses  # C(3, 2) blocking pairs
    3
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k >= len(lits):
        return
    for subset in combinations(lits, k + 1):
        cnf.add_clause([-lit for lit in subset])


def at_most_k_sequential(cnf: CNF, lits: Sequence[int], k: int) -> None:
    """Sinz's sequential-counter encoding of ``sum(lits) <= k``.

    Introduces registers ``r[i][j]`` = "at least j+1 of the first i+1
    literals are true"; O(n·k) clauses.
    """
    n = len(lits)
    if k < 0:
        raise ValueError("k must be non-negative")
    if k >= n:
        return
    if k == 0:
        for lit in lits:
            cnf.add_clause([-lit])
        return
    regs = [[cnf.new_var() for _ in range(k)] for _ in range(n)]
    cnf.add_clause([-lits[0], regs[0][0]])
    for j in range(1, k):
        cnf.add_clause([-regs[0][j]])
    for i in range(1, n):
        cnf.add_clause([-lits[i], regs[i][0]])
        cnf.add_clause([-regs[i - 1][0], regs[i][0]])
        for j in range(1, k):
            cnf.add_clause([-lits[i], -regs[i - 1][j - 1], regs[i][j]])
            cnf.add_clause([-regs[i - 1][j], regs[i][j]])
        cnf.add_clause([-lits[i], -regs[i - 1][k - 1]])
    # The final clause for i = n-1 already forbids k+1; nothing else needed.


class _TotNode:
    """One totalizer tree node: children plus the node's output literals."""

    __slots__ = ("left", "right", "outs", "n_leaves", "is_leaf")

    def __init__(self, left, right, outs, n_leaves, is_leaf):
        self.left = left
        self.right = right
        self.outs = outs
        self.n_leaves = n_leaves
        self.is_leaf = is_leaf


class IncrementalTotalizer:
    """A truncated totalizer whose bound can grow after construction.

    Builds the same encoding as :func:`totalizer` (identical variable and
    clause order for a given ``max_bound``), but keeps the merge tree so
    :meth:`extend` can raise the bound *in place*: only the missing
    output variables and ``sum_left >= a ∧ sum_right >= b ⇒ sum >= a+b``
    clauses are added, and when a live solver is attached
    (:meth:`bind_solver`) the new clauses are pushed into it as well —
    no re-encoding, learnt clauses survive.

    >>> cnf = CNF()
    >>> lits = [cnf.new_var() for _ in range(4)]
    >>> tot = IncrementalTotalizer(cnf, lits, max_bound=1)
    >>> len(tot.outputs)
    2
    >>> tot.extend(3); len(tot.outputs)
    4
    """

    def __init__(
        self, cnf: CNF, lits: Sequence[int], max_bound: int
    ) -> None:
        if max_bound < 0:
            raise ValueError("max_bound must be non-negative")
        self.cnf = cnf
        self.lits = list(lits)
        self._width = max_bound + 1
        self._solver = None
        self._root: _TotNode | None = (
            self._build(self.lits) if self.lits else None
        )

    # -- construction ---------------------------------------------------
    def _emit(self, clause: list[int]) -> None:
        self.cnf.add_clause(clause)
        if self._solver is not None:
            self._solver.add_clause(clause)

    def _build(self, segment: Sequence[int]) -> _TotNode:
        if len(segment) == 1:
            return _TotNode(None, None, [segment[0]], 1, True)
        mid = len(segment) // 2
        left = self._build(segment[:mid])
        right = self._build(segment[mid:])
        m = min(len(segment), self._width)
        outs = [self.cnf.new_var() for _ in range(m)]
        node = _TotNode(left, right, outs, len(segment), False)
        self._merge_clauses(node, 0, m)
        return node

    def _merge_clauses(self, node: _TotNode, lo: int, hi: int) -> None:
        """Emit the sum clauses for outputs ``lo < a+b <= hi`` of ``node``."""
        left, right = node.left, node.right
        outs = node.outs
        for a in range(len(left.outs) + 1):
            for b in range(len(right.outs) + 1):
                s = a + b
                if s <= lo or s > hi:
                    continue
                clause = [outs[s - 1]]
                if a > 0:
                    clause.append(-left.outs[a - 1])
                if b > 0:
                    clause.append(-right.outs[b - 1])
                self._emit(clause)

    # -- queries --------------------------------------------------------
    @property
    def outputs(self) -> list[int]:
        """Root output variables: ``outputs[j]`` ⇔ at least ``j+1`` true."""
        return [] if self._root is None else list(self._root.outs)

    @property
    def max_bound(self) -> int:
        return self._width - 1

    def bound_assumptions(self, bound: int) -> list[int]:
        """Assumption literals enforcing "at most ``bound``" inputs true."""
        if bound < 0:
            raise ValueError("bound must be non-negative")
        outs = self.outputs
        if bound >= len(outs):
            return []
        return [-outs[bound]]

    # -- growth ---------------------------------------------------------
    def bind_solver(self, solver) -> None:
        """Mirror all *future* clauses into ``solver`` (which must already
        hold the clauses emitted so far, e.g. via ``cnf.to_solver``)."""
        self._solver = solver

    def extend(self, new_max_bound: int) -> None:
        """Raise the bound to ``new_max_bound``, adding only the missing
        outputs and clauses (a no-op when the bound does not grow)."""
        if new_max_bound < self.max_bound:
            return
        new_width = new_max_bound + 1
        if new_width <= self._width or self._root is None:
            self._width = max(self._width, new_width)
            return
        old_width, self._width = self._width, new_width
        self._extend_node(self._root, old_width)

    def _extend_node(self, node: _TotNode, old_width: int) -> None:
        if node.is_leaf:
            return
        self._extend_node(node.left, old_width)
        self._extend_node(node.right, old_width)
        old_m = len(node.outs)
        new_m = min(node.n_leaves, self._width)
        if new_m <= old_m:
            # Width already saturated at this node, but wider children
            # may enable sums that were previously out of their range.
            self._merge_rect(node, old_width, old_m)
            return
        node.outs.extend(
            self.cnf.new_var() for _ in range(new_m - old_m)
        )
        self._merge_rect(node, old_width, new_m)

    def _merge_rect(
        self, node: _TotNode, old_width: int, hi: int
    ) -> None:
        """Emit exactly the merge clauses not emitted at ``old_width``:
        pairs whose sum exceeded the old output range *or* that used
        child outputs beyond the old child range."""
        left, right = node.left, node.right
        old_left = min(left.n_leaves, old_width)
        old_right = min(right.n_leaves, old_width)
        old_m = min(node.n_leaves, old_width)
        outs = node.outs
        for a in range(len(left.outs) + 1):
            for b in range(len(right.outs) + 1):
                s = a + b
                if s == 0 or s > hi:
                    continue
                if s <= old_m and a <= old_left and b <= old_right:
                    continue  # already emitted at the old width
                clause = [outs[s - 1]]
                if a > 0:
                    clause.append(-left.outs[a - 1])
                if b > 0:
                    clause.append(-right.outs[b - 1])
                self._emit(clause)


def totalizer(cnf: CNF, lits: Sequence[int], max_bound: int) -> list[int]:
    """Build a truncated totalizer over ``lits``.

    Returns output variables ``out`` with ``out[j]`` ⇔ "at least j+1 input
    literals are true", truncated to ``max_bound + 1`` outputs.  Enforce
    "at most i" (for any ``i <= max_bound``) by asserting the unit or
    assumption ``-out[i]``.

    The encoding only constrains the outputs *upward* (inputs true ⇒
    outputs true), which is sufficient for at-most bounds.  This is the
    one-shot form of :class:`IncrementalTotalizer` (identical encoding).
    """
    return IncrementalTotalizer(cnf, lits, max_bound).outputs
