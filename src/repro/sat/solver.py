"""Conflict-driven clause-learning (CDCL) SAT solver on a flat clause arena.

A from-scratch reimplementation of the solver class the paper relies on
(Zchaff, ref [15]): two-watched-literal Boolean constraint propagation,
VSIDS-style decision heuristic with phase saving, first-UIP conflict
analysis with clause minimization, Luby restarts, activity-driven learnt
clause deletion, and *incremental* solving under assumptions — the feature
(paper ref [19], SATIRE) that makes the iterative ``k = 1 .. k_max``
diagnosis loop cheap, since learned clauses survive between calls.

Clause storage is a single flat Python int list (the *arena*): a clause is
an offset ``ref`` into the arena with its literals at ``arena[ref :
ref + size]`` and a two-int header (``size``, ``learnt`` flag) just below.
Watch lists are literal-indexed flat lists of ``(ref, blocker)`` pairs, so
the propagation inner loop touches only small-int list slots — no per-
clause Python objects, no attribute lookups — and learnt-clause deletion
compacts the arena in place.  **Binary clauses** (the bulk of Tseitin
gate encodings) bypass the pair watch lists entirely: each literal keeps
a flat implicit adjacency of ``(other-lit, ref)`` ints that propagation
walks *before* the clause-arena pass, so BCP over a binary clause is two
list reads and an assignment — no blocker indirection, no arena access,
no watch-list rewriting.  Learnt binaries are routed into the same
structure (they are never deleted, so the adjacency only grows).  The
search (decision order, conflict analysis, restarts, deletion policy)
matches the legacy object-graph solver
(:class:`repro.sat.legacy.LegacySolver`) except for **chronological
backtracking** on long backjumps (Nadel/Ryvchin 2018): when the
assertion level sits far below the conflict level, only one level is
undone and the asserting literal is implied there — its recorded level
over-approximates the assertion level, which analysis tolerates because
reason levels never exceed the implied literal's.  Solution sets are
unaffected (the differential suite in ``tests/sat/test_backends.py``
pins arena against legacy and brute force), but a diagnosis
enumeration keeps its ~10k-assignment implied trail alive across
blocking conflicts instead of redescending it.

Trail reuse across solve() calls
--------------------------------

The solver never discards more search state than it must.  Within one
:meth:`Solver.solve` call the trail persists across restarts; *between*
calls it is kept alive and re-entered under the **longest common
assumption prefix**: assumptions are applied positionally as
pseudo-decision levels ``1..n``, so when the next call's assumption list
shares a prefix of length ``L`` with the previous call's, only the
levels above ``L`` are undone — the implied trail segment of the shared
prefix (e.g. the fan-out of ``¬s_g`` suspect pins of a master diagnosis
view, or a totalizer bound literal) is not re-propagated.  A re-solve
under *identical* assumptions after a SAT answer resumes the full
descent (the PR-4 behaviour, now the ``L = n`` special case), and the
trail survives assumption-level UNSAT answers too, so bound sweeps
(``k = 1 .. k_max``) and scoped enumerations redescend only what their
assumptions actually changed.  :meth:`add_clause` cooperates by
inserting new clauses *chronologically* — a falsified blocking clause
undoes only the deepest trail level instead of backjumping to its
assertion level — and :meth:`load_clauses` bulk-loads a CNF at the root
with one deferred propagation pass.

The public literal convention is DIMACS (positive/negative ints).  Two
hooks exist specifically for the paper's hybrid future-work direction
(§6): :meth:`Solver.bump_activity` seeds the decision order from outside
(e.g. with path-tracing mark counts) and :meth:`Solver.set_phase` presets
the polarity a variable is first tried with.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Iterable, Sequence

from .types import to_dimacs, to_internal

__all__ = ["Solver", "SolveResult"]

#: Solve outcome: True = SAT, False = UNSAT, None = conflict limit hit.
SolveResult = bool | None

#: Arena header layout: ``arena[ref - 2]`` is the clause size and
#: ``arena[ref - 1]`` the learnt flag; literals live at ``arena[ref:ref+size]``.
_HEADER = 2


class Solver:
    """Incremental CDCL SAT solver (arena clause storage).

    Example
    -------
    >>> s = Solver()
    >>> a, b = s.new_var(), s.new_var()
    >>> _ = s.add_clause([a, b]); _ = s.add_clause([-a, b])
    >>> s.solve()
    True
    >>> s.value(b)
    True
    >>> s.solve(assumptions=[-b])
    False
    >>> s.core() == [-b]
    True
    """

    def __init__(self) -> None:
        self._num_vars = 0
        #: Flat clause storage; clause refs index the first literal.
        self._arena: list[int] = []
        self._clauses: list[int] = []  # problem clause refs
        self._learnts: list[int] = []  # learnt clause refs
        #: Per-literal flat watch lists of (clause ref, blocker lit) pairs.
        self._watches: list[list[int]] = [[], []]
        #: Implicit binary-clause adjacency: ``_bin_watches[l]`` holds
        #: flat (other-lit, clause ref) pairs for every binary clause
        #: containing ``l`` — visited when ``l`` becomes false, *before*
        #: the arena walk; never rewritten, excluded from the pair watch
        #: lists entirely.
        self._bin_watches: list[list[int]] = [[], []]
        self._assigns: list[int] = [2]  # index 0 unused; 0/1 assigned, >=2 free
        self._level: list[int] = [0]
        self._reason: list[int] = [0]  # clause ref, 0 = decision/unit
        self._activity: list[float] = [0.0]
        self._polarity: list[int] = [1]  # 1 = try the negative phase first
        self._seen: list[int] = [0]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._ok = True
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._cla_activity: dict[int, float] = {}  # learnt ref -> activity
        self._order_heap: list[tuple[float, int]] = []
        # Cursor for zero-activity variables: the heap only tracks variables
        # that conflicts ever touched; the long tail of never-bumped
        # variables (e.g. the free c_g^i values of diagnosis instances) is
        # scanned linearly, which avoids millions of heap operations on
        # instances whose search is decision-heavy but conflict-light.
        self._scan_cursor = 1
        self._conflict_core: list[int] = []
        self._model: list[int] = []
        # Trail-reuse bookkeeping: after a SAT answer the trail is kept
        # alive, and a re-solve under the *same* assumptions resumes the
        # search instead of re-descending from the root — the step that
        # makes all-solutions enumeration (solve / block / solve ...)
        # cost one shallow backjump per solution instead of a full
        # descent (see also add_clause's minimal-backjump insertion).
        self._last_assumptions: tuple[int, ...] | None = None
        self._last_status: SolveResult = None
        #: True iff the last solve() returned None because its Budget
        #: tripped (deadline / cancel / cap) — distinct from a
        #: conflict_limit stop, which leaves this False.
        self.interrupted = False
        self._proof = None  # ProofLog when DRAT logging is active
        self.stats: dict[str, int] = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "deleted": 0,
        }

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) DIMACS index."""
        self._num_vars += 1
        self._assigns.append(2)
        self._level.append(0)
        self._reason.append(0)
        self._activity.append(0.0)
        self._polarity.append(1)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        self._bin_watches.append([])
        self._bin_watches.append([])
        return self._num_vars

    def ensure_vars(self, n: int) -> None:
        """Grow the variable table so that variables ``1..n`` exist."""
        while self._num_vars < n:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def clause_lits(self, ref: int) -> list[int]:
        """The DIMACS literals of the clause at ``ref`` (debug/test aid)."""
        size = self._arena[ref - 2]
        return [to_dimacs(l) for l in self._arena[ref : ref + size]]

    def _alloc_clause(self, lits: list[int], learnt: bool) -> int:
        arena = self._arena
        arena.append(len(lits))
        arena.append(1 if learnt else 0)
        ref = len(arena)
        arena.extend(lits)
        return ref

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause of DIMACS literals.

        Returns False when the solver becomes trivially UNSAT (empty clause,
        or a unit contradicting the root trail).  Clauses may be added
        between :meth:`solve` calls — *without* discarding the current
        trail: the clause is inserted with a minimal backjump (only deep
        enough to restore the watch invariant), so enumeration loops that
        alternate solve / blocking-clause keep their descent alive.
        Duplicate literals are merged; tautologies are dropped.
        """
        if not self._ok:
            return False
        assigns = self._assigns
        levels = self._level
        internal: list[int] = []
        seen_lits: set[int] = set()
        max_var = 0
        for lit in lits:
            max_var = max(max_var, abs(lit))
        if max_var > self._num_vars:
            self.ensure_vars(max_var)
        for lit in lits:
            il = to_internal(lit)
            if il ^ 1 in seen_lits:
                return True  # tautology: trivially satisfied
            if il not in seen_lits:
                seen_lits.add(il)
                internal.append(il)
        # Simplify against the *root* trail only — deeper assignments are
        # search state, not facts.
        simplified: list[int] = []
        for il in internal:
            var = il >> 1
            val = assigns[var] ^ (il & 1)
            if val < 2 and levels[var] == 0:
                if val == 1:
                    return True  # root-satisfied
                continue  # root-false literal: drop
            simplified.append(il)
        if not simplified:
            self._cancel_until(0)
            self._ok = False
            self._last_status = None
            if self._proof is not None:
                self._proof.add([])
            return False
        if len(simplified) == 1:
            self._cancel_until(0)
            lit = simplified[0]
            if not self._enqueue(lit, 0):
                self._ok = False
                if self._proof is not None:
                    self._proof.add([])
                return False
            self._ok = self._propagate() == 0
            if not self._ok and self._proof is not None:
                self._proof.add([])
            return self._ok
        # Choose the two watched literals under the current (possibly
        # deep) assignment, backtracking just enough that the watch
        # invariant holds: watches must be non-false, or the clause is
        # satisfied/unit-enqueued right here.
        nonfalse = [
            il for il in simplified if assigns[il >> 1] ^ (il & 1) != 0
        ]
        if len(nonfalse) < 2 and self._trail_lim:
            false_lits = [
                il for il in simplified if assigns[il >> 1] ^ (il & 1) == 0
            ]
            false_levels = sorted(
                (levels[il >> 1] for il in false_lits), reverse=True
            )
            if not nonfalse:
                # Falsified clause (the enumeration blocking case):
                # *chronological* insertion — undo only the deepest
                # level, keeping the rest of the trail alive.  When the
                # clause becomes unit it is implied at the current
                # (chronological) level even though its reason literals
                # sit lower; the recorded level over-approximates the
                # assertion level, which conflict analysis tolerates
                # (reason levels stay <= the implied literal's level).
                # This is what makes enumeration redescend ~one select
                # cascade per solution instead of the whole c_g^i tail.
                target = false_levels[0] - 1
                self._cancel_until(max(target, 0))
                nonfalse = [
                    il
                    for il in simplified
                    if assigns[il >> 1] ^ (il & 1) != 0
                ]
        if len(nonfalse) >= 2:
            watch0, watch1 = nonfalse[0], nonfalse[1]
            clause_lits = [watch0, watch1] + [
                il for il in simplified if il != watch0 and il != watch1
            ]
            unit = 0
        else:
            # Exactly one non-false literal: the clause is unit (or
            # satisfied when that literal is already true).  Watch it
            # together with the deepest false literal.
            watch0 = nonfalse[0]
            false_sorted = sorted(
                (il for il in simplified if il != watch0),
                key=lambda il: levels[il >> 1],
                reverse=True,
            )
            watch1 = false_sorted[0]
            clause_lits = [watch0, watch1] + false_sorted[1:]
            val = assigns[watch0 >> 1] ^ (watch0 & 1)
            unit = watch0 if val >= 2 else 0
        ref = self._alloc_clause(clause_lits, learnt=False)
        self._clauses.append(ref)
        if len(clause_lits) == 2:
            # Binary clause: implicit adjacency (no blocker pair, no
            # arena access during propagation).
            bws = self._bin_watches[watch0]
            bws.append(watch1)
            bws.append(ref)
            bws = self._bin_watches[watch1]
            bws.append(watch0)
            bws.append(ref)
        else:
            # watches[l] holds (clause ref, blocker) pairs in which l is
            # watched; propagation visits watches[l] when l becomes
            # false.  The blocker is the other watched literal at append
            # time — any true literal of the clause proves it satisfied,
            # so a true blocker lets propagation skip the clause without
            # touching the arena at all.
            ws = self._watches[watch0]
            ws.append(ref)
            ws.append(watch1)
            ws = self._watches[watch1]
            ws.append(ref)
            ws.append(watch0)
        if unit:
            if not self._trail_lim:
                if not self._enqueue(unit, 0):
                    self._ok = False
                    if self._proof is not None:
                        self._proof.add([])
                    return False
                self._ok = self._propagate() == 0
                if not self._ok and self._proof is not None:
                    self._proof.add([])
                return self._ok
            self._enqueue(unit, ref)
        return True

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def load_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Bulk-load clauses at the root (the ``CNF.to_solver`` fast path).

        Behaviourally equivalent to :meth:`add_clause` per clause when
        the trail is at the root, with two shortcuts that make loading
        the mux-heavy diagnosis CNFs ~2× cheaper: duplicate-literal /
        tautology normalization is skipped (harmless — a duplicate
        behaves as one watch slot, a tautological clause can never
        propagate wrongly), and *transitive* root implications are
        propagated once at the end instead of after every unit clause.
        Falls back to :meth:`add_clause` when the trail is deep.
        """
        if not self._ok:
            return False
        if self._trail_lim:
            return self.add_clauses(clauses)
        assigns = self._assigns
        num_vars = self._num_vars
        for clause in clauses:
            satisfied = False
            w0 = w1 = 0
            for lit in clause:
                if lit > 0:
                    il = lit << 1
                else:
                    il = ((-lit) << 1) | 1
                var = il >> 1
                if var > num_vars:
                    self.ensure_vars(var)
                    assigns = self._assigns
                    num_vars = self._num_vars
                val = assigns[var] ^ (il & 1)
                if val == 1:
                    satisfied = True
                    break
                if val >= 2:
                    if w0 == 0:
                        w0 = il
                    elif w1 == 0 and il != w0:
                        w1 = il
            if satisfied:
                continue
            if w0 == 0:
                self._ok = False
                if self._proof is not None:
                    self._proof.add([])
                return False
            if w1 == 0:
                # Unit (duplicates of w0 and root-false literals only).
                if not self._enqueue(w0, 0):
                    self._ok = False
                    if self._proof is not None:
                        self._proof.add([])
                    return False
                continue
            lits = [w0, w1]
            for lit in clause:
                il = (lit << 1) if lit > 0 else (((-lit) << 1) | 1)
                if il != w0 and il != w1:
                    lits.append(il)
            ref = self._alloc_clause(lits, learnt=False)
            self._clauses.append(ref)
            if len(lits) == 2:
                bws = self._bin_watches[w0]
                bws.append(w1)
                bws.append(ref)
                bws = self._bin_watches[w1]
                bws.append(w0)
                bws.append(ref)
            else:
                ws = self._watches[w0]
                ws.append(ref)
                ws.append(w1)
                ws = self._watches[w1]
                ws.append(ref)
                ws.append(w0)
        self._ok = self._propagate() == 0
        if not self._ok and self._proof is not None:
            self._proof.add([])
        return self._ok

    # ------------------------------------------------------------------
    # proof logging (DRAT, see repro.sat.proof)
    # ------------------------------------------------------------------
    def start_proof(self):
        """Begin DRAT proof logging; returns the live ProofLog.

        Every learnt clause, learnt-clause deletion and the final empty
        clause are recorded.  Start logging *before* solving; the checker
        needs the full original formula separately
        (:func:`repro.sat.proof.check_drat`).  Assumption-based UNSAT
        answers are not certified — only formula-level UNSAT ends in the
        empty clause.

        When logging is *not* active (``self._proof is None``, the
        default) every call site is guarded by that single identity
        check, so the off path performs no method calls, literal
        conversions or list builds anywhere in the search loop
        (``benchmarks/bench_proof_overhead.py`` asserts the off-path
        overhead stays under 2%).
        """
        from .proof import ProofLog  # local import to avoid a cycle

        self._proof = ProofLog()
        return self._proof

    def _log_learnt(self, internal_lits: list[int]) -> None:
        # Call sites guard on ``self._proof is not None``; kept as a
        # helper for the logging-on path only.
        self._proof.add([to_dimacs(l) for l in internal_lits])

    def _log_deleted(self, internal_lits: list[int]) -> None:
        self._proof.delete([to_dimacs(l) for l in internal_lits])

    # ------------------------------------------------------------------
    # heuristic hooks (used by the hybrid diagnosis approaches, paper §6)
    # ------------------------------------------------------------------
    def bump_activity(self, var: int, amount: float = 1.0) -> None:
        """Externally increase the VSIDS score of ``var``.

        The hybrid approach seeds these scores with path-tracing mark counts
        so the solver branches on likely error sites first.
        """
        self._activity[var] += amount * self._var_inc
        if self._activity[var] > 1e100:
            self._rescale_activity()
        heapq.heappush(self._order_heap, (-self._activity[var], var))

    def set_phase(self, var: int, value: bool) -> None:
        """Preset the polarity first tried when deciding ``var``."""
        self._polarity[var] = 0 if value else 1

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        budget=None,
    ) -> SolveResult:
        """Run the CDCL search.

        Returns True (SAT; model available via :meth:`value`/:meth:`model`),
        False (UNSAT; :meth:`core` returns the failed assumptions), or None
        if ``conflict_limit`` conflicts were exceeded — or if ``budget``
        (a :class:`repro.sat.budget.Budget`) tripped, in which case
        :attr:`interrupted` is additionally True.  The budget is polled
        inside :meth:`_search` every ``budget.conflict_poll_interval``
        conflicts (and every ``budget.propagation_poll_interval``
        propagations on conflict-light stretches), so cancellation
        overrun is bounded by the poll interval rather than by however
        long the query takes.
        """
        self.interrupted = False
        if not self._ok:
            self._conflict_core = []
            return False
        if budget is not None and budget.poll():
            self.interrupted = True
            self._last_status = None
            return None
        for a in assumptions:
            self.ensure_vars(abs(a))
        internal_assumptions = [to_internal(a) for a in assumptions]
        # Trail reuse: the trail is kept alive between calls (after SAT
        # *and* after assumption-level UNSAT), and assumptions occupy
        # decision levels positionally, so the search backtracks only to
        # the longest common prefix of the previous and the new
        # assumption lists instead of to the root.  Identical
        # assumptions after a SAT answer keep the full descent (the
        # blocking clauses added since were inserted with a minimal
        # backjump); a changed suffix undoes exactly the levels whose
        # assumptions changed, preserving the implied trail segment of
        # the shared prefix (suspect pins, bound literals, ...).
        new_assumptions = tuple(internal_assumptions)
        prev = self._last_assumptions
        if prev is not None and self._trail_lim:
            if not (self._last_status is True and new_assumptions == prev):
                shared = 0
                for a, b in zip(prev, new_assumptions):
                    if a != b:
                        break
                    shared += 1
                self._cancel_until(shared)
        else:
            self._cancel_until(0)
        if not self._trail_lim:
            if self._propagate() != 0:
                self._ok = False
                self._last_status = None
                if self._proof is not None:
                    self._proof.add([])
                return False
        self._conflict_core = []
        self._model = []
        self._last_assumptions = tuple(internal_assumptions)
        start_conflicts = self.stats["conflicts"]
        restart_idx = 0
        while True:
            restart_idx += 1
            limit = 100 * _luby(restart_idx)
            status = self._search(limit, internal_assumptions, budget)
            if self.interrupted:
                self._last_status = None
                return None
            if status is None and budget is not None and budget.poll():
                # Restart-boundary poll: _search notes its sub-interval
                # remainder without polling, so without this check the
                # poll grid drifts and overrun could reach ~2x the
                # configured interval.
                self.interrupted = True
                self._cancel_until(0)
                self._last_status = None
                return None
            if status is not None:
                # The trail survives SAT *and* assumption-level UNSAT
                # answers: the next call backtracks only to the longest
                # common assumption prefix (see the class docstring).
                self._last_status = status
                return status
            self.stats["restarts"] += 1
            if (
                conflict_limit is not None
                and self.stats["conflicts"] - start_conflicts >= conflict_limit
            ):
                self._cancel_until(0)
                self._last_status = None
                return None

    def value(self, var: int) -> bool | None:
        """Truth value of ``var`` in the last model (None if unassigned)."""
        if not self._model:
            raise RuntimeError("no model: last solve() did not return True")
        v = self._model[var]
        return None if v >= 2 else bool(v)

    def model(self) -> list[int]:
        """The last model as DIMACS literals (assigned variables only)."""
        if not self._model:
            raise RuntimeError("no model: last solve() did not return True")
        return [
            (v if self._model[v] == 1 else -v)
            for v in range(1, self._num_vars + 1)
            if self._model[v] < 2
        ]

    def core(self) -> list[int]:
        """Subset of the assumptions responsible for the last UNSAT answer."""
        return list(self._conflict_core)

    # ------------------------------------------------------------------
    # CDCL machinery
    # ------------------------------------------------------------------
    def _search(
        self, conflict_budget: int, assumptions: list[int], budget=None
    ) -> SolveResult:
        # The whole hot path — two-watched-literal BCP, decision picking
        # and trail pushing — is fused into one loop over local variable
        # bindings.  On the decision-heavy, conflict-light diagnosis
        # instances the per-decision cost is dominated by interpreter
        # overhead, so avoiding the _propagate/_pick_branch/_enqueue call
        # chain per decision is worth the duplication with
        # :meth:`_propagate` (which stays for the cold add_clause/solve
        # root-propagation paths).
        watches = self._watches
        bin_watches = self._bin_watches
        assigns = self._assigns
        levels = self._level
        reason = self._reason
        trail = self._trail
        trail_lim = self._trail_lim
        arena = self._arena
        heap = self._order_heap
        activity = self._activity
        polarity = self._polarity
        stats = self.stats
        num_vars = self._num_vars
        n_assumptions = len(assumptions)
        conflicts = 0
        props = 0
        decisions = 0
        qhead = self._qhead
        # Budget polling cadence: every poll_every conflicts, plus every
        # prop_poll propagations so conflict-light decision stretches
        # still reach a poll.  charged_c/charged_p track what has been
        # handed to the budget so the finally block can settle the rest.
        poll_every = 0 if budget is None else budget.conflict_poll_interval
        prop_poll = 0 if budget is None else budget.propagation_poll_interval
        charged_c = 0
        charged_p = 0
        try:
            while True:
                # ---- inlined BCP -----------------------------------
                confl = 0
                dlevel = len(trail_lim)
                while qhead < len(trail):
                    p = trail[qhead]
                    qhead += 1
                    props += 1
                    false_lit = p ^ 1
                    # Binary adjacency first: two list reads and an
                    # assignment per clause — no blockers, no arena.
                    bws = bin_watches[false_lit]
                    bi = 0
                    bn = len(bws)
                    while bi < bn:
                        other = bws[bi]
                        val = assigns[other >> 1] ^ (other & 1)
                        if val == 1:
                            bi += 2
                            continue
                        cref = bws[bi + 1]
                        bi += 2
                        if val == 0:
                            confl = cref
                            qhead = len(trail)
                            break
                        # keep the implied literal at arena index 0 (the
                        # invariant conflict analysis relies on)
                        if arena[cref] != other:
                            arena[cref] = other
                            arena[cref + 1] = false_lit
                        var = other >> 1
                        assigns[var] = 1 ^ (other & 1)
                        levels[var] = dlevel
                        reason[var] = cref
                        trail.append(other)
                    if confl:
                        break
                    ws = watches[false_lit]
                    i = j = 0
                    n = len(ws)
                    while i < n:
                        cref = ws[i]
                        blocker = ws[i + 1]
                        i += 2
                        if assigns[blocker >> 1] ^ (blocker & 1) == 1:
                            ws[j] = cref
                            ws[j + 1] = blocker
                            j += 2
                            continue
                        l0 = arena[cref]
                        if l0 == false_lit:
                            first = arena[cref + 1]
                            arena[cref] = first
                            arena[cref + 1] = false_lit
                        else:
                            first = l0
                        fval = assigns[first >> 1] ^ (first & 1)
                        if fval == 1:
                            ws[j] = cref
                            ws[j + 1] = first
                            j += 2
                            continue
                        end = cref + arena[cref - 2]
                        moved = False
                        for k in range(cref + 2, end):
                            lk = arena[k]
                            if assigns[lk >> 1] ^ (lk & 1) != 0:
                                arena[cref + 1] = lk
                                arena[k] = false_lit
                                wlk = watches[lk]
                                wlk.append(cref)
                                wlk.append(first)
                                moved = True
                                break
                        if moved:
                            continue
                        ws[j] = cref
                        ws[j + 1] = first
                        j += 2
                        if fval == 0:
                            while i < n:  # keep remaining watchers
                                ws[j] = ws[i]
                                ws[j + 1] = ws[i + 1]
                                j += 2
                                i += 2
                            confl = cref
                            qhead = len(trail)
                        else:
                            var = first >> 1
                            assigns[var] = 1 ^ (first & 1)
                            levels[var] = dlevel
                            reason[var] = cref
                            trail.append(first)
                    del ws[j:]
                    if confl:
                        break
                # ---- conflict handling -----------------------------
                if confl:
                    conflicts += 1
                    stats["conflicts"] += 1
                    if not trail_lim:
                        self._ok = False
                        if self._proof is not None:
                            self._proof.add([])
                        self._qhead = qhead
                        return False
                    self._qhead = qhead
                    learnt, back_level = self._analyze(confl)
                    # Chronological backtracking (Nadel/Ryvchin style)
                    # for long backjumps: undo a single level and imply
                    # the asserting literal there (its recorded level
                    # over-approximates the assertion level; reason
                    # levels stay below it).  On the enumeration
                    # workloads this keeps the ~10k-assignment implied
                    # trail of a diagnosis instance alive instead of
                    # redescending it after every blocking conflict.
                    cur_level = len(trail_lim)
                    if len(learnt) > 1 and cur_level - back_level > 16:
                        back_level = cur_level - 1
                    self._cancel_until(back_level)
                    self._record_learnt(learnt)
                    self._decay_activities()
                    qhead = self._qhead
                    # learnt compaction / activity rescaling may have
                    # replaced these containers
                    arena = self._arena
                    heap = self._order_heap
                    if poll_every and conflicts - charged_c >= poll_every:
                        stop = budget.charge(
                            conflicts - charged_c, props - charged_p
                        )
                        charged_c = conflicts
                        charged_p = props
                        if stop:
                            self.interrupted = True
                            self._qhead = qhead
                            self._cancel_until(0)
                            qhead = self._qhead
                            return None
                    continue
                if conflicts >= conflict_budget:
                    self._qhead = qhead
                    self._cancel_until(0)
                    qhead = self._qhead
                    return None
                if prop_poll and props - charged_p >= prop_poll:
                    stop = budget.charge(
                        conflicts - charged_c, props - charged_p
                    )
                    charged_c = conflicts
                    charged_p = props
                    if stop:
                        self.interrupted = True
                        self._qhead = qhead
                        self._cancel_until(0)
                        qhead = self._qhead
                        return None
                # ---- decision --------------------------------------
                decision = 0
                if dlevel < n_assumptions:
                    lit = assumptions[dlevel]
                    val = assigns[lit >> 1] ^ (lit & 1)
                    if val == 1:
                        trail_lim.append(len(trail))
                        continue
                    if val == 0:
                        self._qhead = qhead
                        self._analyze_final(lit, assumptions)
                        return False
                    decision = lit
                if not decision:
                    # inlined _pick_branch: VSIDS heap first, then the
                    # zero-activity scan cursor
                    while heap:
                        neg_act, var = heappop(heap)
                        if assigns[var] < 2:
                            continue
                        if -neg_act != activity[var]:
                            heappush(heap, (-activity[var], var))
                            continue
                        decision = (var << 1) | polarity[var]
                        break
                    if not decision:
                        var = self._scan_cursor
                        while var <= num_vars and assigns[var] < 2:
                            var += 1
                        self._scan_cursor = var
                        if var <= num_vars:
                            decision = (var << 1) | polarity[var]
                    if not decision:
                        self._model = list(assigns)
                        self._qhead = qhead
                        return True
                    decisions += 1
                trail_lim.append(len(trail))
                # inlined decision enqueue (variable known unassigned)
                var = decision >> 1
                assigns[var] = 1 ^ (decision & 1)
                levels[var] = dlevel + 1
                reason[var] = 0
                trail.append(decision)
        finally:
            stats["propagations"] += props
            stats["decisions"] += decisions
            if budget is not None:
                budget.note(conflicts - charged_c, props - charged_p)

    def _propagate(self) -> int:
        """Two-watched-literal BCP over the arena; returns the conflicting
        clause ref (0 = no conflict)."""
        watches = self._watches
        bin_watches = self._bin_watches
        assigns = self._assigns
        level = self._level
        reason = self._reason
        trail = self._trail
        arena = self._arena
        props = 0
        confl = 0
        qhead = self._qhead
        while qhead < len(trail):
            p = trail[qhead]
            qhead += 1
            props += 1
            false_lit = p ^ 1
            bws = bin_watches[false_lit]
            bi = 0
            bn = len(bws)
            while bi < bn:
                other = bws[bi]
                val = assigns[other >> 1] ^ (other & 1)
                if val == 1:
                    bi += 2
                    continue
                cref = bws[bi + 1]
                bi += 2
                if val == 0:
                    confl = cref
                    qhead = len(trail)
                    break
                if arena[cref] != other:
                    arena[cref] = other
                    arena[cref + 1] = false_lit
                var = other >> 1
                assigns[var] = 1 ^ (other & 1)
                level[var] = len(self._trail_lim)
                reason[var] = cref
                trail.append(other)
            if confl != 0:
                break
            ws = watches[false_lit]
            i = j = 0
            n = len(ws)
            while i < n:
                cref = ws[i]
                blocker = ws[i + 1]
                i += 2
                if assigns[blocker >> 1] ^ (blocker & 1) == 1:
                    ws[j] = cref
                    ws[j + 1] = blocker
                    j += 2
                    continue
                l0 = arena[cref]
                if l0 == false_lit:
                    first = arena[cref + 1]
                    arena[cref] = first
                    arena[cref + 1] = false_lit
                else:
                    first = l0
                fval = assigns[first >> 1] ^ (first & 1)
                if fval == 1:
                    ws[j] = cref
                    ws[j + 1] = first
                    j += 2
                    continue
                end = cref + arena[cref - 2]
                moved = False
                for k in range(cref + 2, end):
                    lk = arena[k]
                    if assigns[lk >> 1] ^ (lk & 1) != 0:
                        arena[cref + 1] = lk
                        arena[k] = false_lit
                        wlk = watches[lk]
                        wlk.append(cref)
                        wlk.append(first)
                        moved = True
                        break
                if moved:
                    continue
                ws[j] = cref
                ws[j + 1] = first
                j += 2
                if fval == 0:
                    while i < n:  # keep remaining watchers before bailing
                        ws[j] = ws[i]
                        ws[j + 1] = ws[i + 1]
                        j += 2
                        i += 2
                    confl = cref
                    qhead = len(trail)
                else:
                    var = first >> 1
                    assigns[var] = 1 ^ (first & 1)
                    level[var] = len(self._trail_lim)
                    reason[var] = cref
                    trail.append(first)
            del ws[j:]
            if confl != 0:
                break
        self._qhead = qhead
        self.stats["propagations"] += props
        return confl

    def _enqueue(self, lit: int, reason_ref: int) -> bool:
        var = lit >> 1
        current = self._assigns[var] ^ (lit & 1)
        if current < 2:
            return current == 1
        self._assigns[var] = 1 ^ (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason_ref
        self._trail.append(lit)
        return True

    def _analyze(self, confl: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis; returns (learnt clause, backjump level).

        Relies on the invariant that a reason clause always carries its
        implied literal at index 0 (maintained by ``_propagate`` and
        ``_record_learnt``).
        """
        seen = self._seen
        level = self._level
        trail = self._trail
        arena = self._arena
        learnt: list[int] = [0]
        counter = 0
        p = -1
        index = len(trail) - 1
        cur_level = len(self._trail_lim)
        while True:
            if arena[confl - 1]:  # learnt flag
                self._bump_clause(confl)
            # skip the implied literal of reason clauses
            start = confl if p == -1 else confl + 1
            for q in arena[start : confl + arena[confl - 2]]:
                v = q >> 1
                if not seen[v] and level[v] > 0:
                    seen[v] = 1
                    self._bump_var(v)
                    if level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            v = p >> 1
            next_reason = self._reason[v]
            seen[v] = 0
            counter -= 1
            index -= 1
            if counter == 0:
                break
            assert next_reason != 0, "UIP walk hit a decision too early"
            confl = next_reason
        learnt[0] = p ^ 1
        # Local minimization: drop a literal when its reason is covered by
        # the other marked literals (self-subsumption with the reason).
        keep = [learnt[0]]
        for q in learnt[1:]:
            reason = self._reason[q >> 1]
            if reason == 0:
                keep.append(q)
                continue
            redundant = True
            for r in arena[reason + 1 : reason + arena[reason - 2]]:
                if seen[r >> 1] != 1 and level[r >> 1] != 0:
                    redundant = False
                    break
            if not redundant:
                keep.append(q)
        for q in learnt[1:]:
            seen[q >> 1] = 0
        learnt = keep
        if len(learnt) == 1:
            return learnt, 0
        max_i = 1
        for i in range(2, len(learnt)):
            if level[learnt[i] >> 1] > level[learnt[max_i] >> 1]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, level[learnt[1] >> 1]

    def _analyze_final(self, assumption_lit: int, assumptions: list[int]) -> None:
        """Build the failed-assumption core after ``assumption_lit`` came up
        false during assumption application."""
        core = [to_dimacs(assumption_lit)]
        var0 = assumption_lit >> 1
        if self._level[var0] == 0:
            self._conflict_core = core
            return
        seen = self._seen
        arena = self._arena
        seen[var0] = 1
        pending = 1  # outstanding marks below the walk position
        for lit in reversed(self._trail):
            v = lit >> 1
            if not seen[v]:
                continue
            seen[v] = 0
            pending -= 1
            reason = self._reason[v]
            if reason == 0:
                if self._level[v] > 0:
                    core.append(to_dimacs(lit))
            else:
                for q in arena[reason + 1 : reason + arena[reason - 2]]:
                    qv = q >> 1
                    if self._level[qv] > 0 and not seen[qv]:
                        seen[qv] = 1
                        pending += 1
            if not pending:
                break  # nothing marked further down the trail
        self._conflict_core = core

    def _record_learnt(self, learnt: list[int]) -> None:
        self.stats["learned"] += 1
        if self._proof is not None:
            self._log_learnt(learnt)
        if len(learnt) == 1:
            self._enqueue(learnt[0], 0)
            return
        ref = self._alloc_clause(learnt, learnt=True)
        self._cla_activity[ref] = self._cla_inc
        self._learnts.append(ref)
        w0, w1 = learnt[0], learnt[1]
        if len(learnt) == 2:
            # Learnt binaries join the implicit adjacency (they are
            # never deleted — _reduce_learnts keeps size <= 2).
            bws = self._bin_watches[w0]
            bws.append(w1)
            bws.append(ref)
            bws = self._bin_watches[w1]
            bws.append(w0)
            bws.append(ref)
        else:
            ws = self._watches[w0]
            ws.append(ref)
            ws.append(w1)
            ws = self._watches[w1]
            ws.append(ref)
            ws.append(w0)
        self._enqueue(learnt[0], ref)
        if len(self._learnts) > max(2000, 2 * len(self._clauses)):
            self._reduce_learnts()

    def _reduce_learnts(self) -> None:
        """Drop the less active half of the learnt clauses (keep locked and
        binary ones) and compact the arena in place."""
        arena = self._arena
        locked = {
            self._reason[lit >> 1]
            for lit in self._trail
            if self._reason[lit >> 1] != 0
        }
        activity = self._cla_activity
        self._learnts.sort(key=lambda ref: activity[ref])
        cut = len(self._learnts) // 2
        keep: list[int] = []
        dropped: set[int] = set()
        for idx, ref in enumerate(self._learnts):
            if idx >= cut or ref in locked or arena[ref - 2] <= 2:
                keep.append(ref)
            else:
                dropped.add(ref)
        if not dropped:
            self._learnts = keep
            return
        self.stats["deleted"] += len(dropped)
        if self._proof is not None:
            for ref in self._learnts:
                if ref in dropped:
                    self._log_deleted(
                        arena[ref : ref + arena[ref - 2]]
                    )
        for ref in dropped:
            del activity[ref]
        self._learnts = keep
        self._compact(dropped)

    def _compact(self, dropped: set[int]) -> None:
        """Rebuild the arena without ``dropped`` clauses, remapping every
        clause ref (watch lists, reasons, clause indexes, activities)."""
        arena = self._arena
        new_arena: list[int] = []
        remap: dict[int, int] = {}
        pos = _HEADER
        end = len(arena)
        while pos < end:
            size = arena[pos - 2]
            if pos not in dropped:
                new_arena.append(size)
                new_arena.append(arena[pos - 1])
                remap[pos] = len(new_arena)
                new_arena.extend(arena[pos : pos + size])
            pos += size + _HEADER
        self._arena = new_arena
        self._clauses = [remap[r] for r in self._clauses]
        self._learnts = [remap[r] for r in self._learnts]
        self._cla_activity = {
            remap[r]: a for r, a in self._cla_activity.items()
        }
        reason = self._reason
        for lit in self._trail:
            var = lit >> 1
            r = reason[var]
            if r != 0:
                reason[var] = remap[r]
        for ws in self._watches:
            j = 0
            for i in range(0, len(ws), 2):
                ref = ws[i]
                if ref in dropped:
                    continue
                ws[j] = remap[ref]
                ws[j + 1] = ws[i + 1]
                j += 2
            del ws[j:]
        # Binary clauses are never dropped — their refs only move.
        for bws in self._bin_watches:
            for i in range(1, len(bws), 2):
                bws[i] = remap[bws[i]]

    def _pick_branch(self) -> int:
        heap = self._order_heap
        activity = self._activity
        assigns = self._assigns
        while heap:
            neg_act, var = heapq.heappop(heap)
            if assigns[var] < 2:
                continue
            if -neg_act != activity[var]:
                heapq.heappush(heap, (-activity[var], var))
                continue
            return (var << 1) | self._polarity[var]
        var = self._scan_cursor
        n = self._num_vars
        while var <= n and assigns[var] < 2:
            var += 1
        self._scan_cursor = var
        if var <= n:
            return (var << 1) | self._polarity[var]
        return 0

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            self._rescale_activity()
        heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _rescale_activity(self) -> None:
        for v in range(1, self._num_vars + 1):
            self._activity[v] *= 1e-100
        self._var_inc *= 1e-100
        self._order_heap = [
            (-self._activity[v], v)
            for v in range(1, self._num_vars + 1)
            if self._assigns[v] >= 2
        ]
        heapq.heapify(self._order_heap)

    def _bump_clause(self, ref: int) -> None:
        activity = self._cla_activity
        activity[ref] += self._cla_inc
        if activity[ref] > 1e20:
            for c in self._learnts:
                activity[c] *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc *= self._var_decay
        self._cla_inc *= self._cla_decay

    def _cancel_until(self, target_level: int) -> None:
        if len(self._trail_lim) <= target_level:
            return
        boundary = self._trail_lim[target_level]
        heap = self._order_heap
        activity = self._activity
        assigns = self._assigns
        reason = self._reason
        polarity = self._polarity
        cursor = self._scan_cursor
        for lit in reversed(self._trail[boundary:]):
            var = lit >> 1
            assigns[var] = 2
            reason[var] = 0
            polarity[var] = lit & 1  # phase saving
            if activity[var] > 0.0:
                heapq.heappush(heap, (-activity[var], var))
            elif var < cursor:
                cursor = var
        self._scan_cursor = cursor
        del self._trail[boundary:]
        del self._trail_lim[target_level:]
        self._qhead = len(self._trail)


def _luby(i: int) -> int:
    """The Luby restart sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    >>> [_luby(i) for i in range(1, 9)]
    [1, 1, 2, 1, 1, 2, 4, 1]
    """
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1
