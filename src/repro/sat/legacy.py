"""The legacy object-graph CDCL solver, kept as a differential oracle.

This is the original from-scratch solver (pre arena rewrite): clauses are
``_Clause`` objects carrying a Python list of literals, watch lists hold
clause object references.  :class:`~repro.sat.solver.Solver` replaced it
as the default with a flat int-arena representation of the *same* search
(same decisions, same models, same cores, same stats on identical input),
so this implementation now serves as the reference the differential suite
(``tests/sat/test_backends.py``) and the backend registry
(:mod:`repro.sat.backends`, name ``"legacy"``) check the fast solver
against.

The public literal convention is DIMACS (positive/negative ints).  The
heuristic hooks (:meth:`LegacySolver.bump_activity`,
:meth:`LegacySolver.set_phase`) match the arena solver's.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from .types import to_dimacs, to_internal

__all__ = ["LegacySolver"]

#: Solve outcome: True = SAT, False = UNSAT, None = conflict limit hit.
SolveResult = bool | None


class _Clause:
    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: list[int], learnt: bool) -> None:
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


class LegacySolver:
    """Incremental CDCL SAT solver (object-graph clause representation).

    Example
    -------
    >>> s = LegacySolver()
    >>> a, b = s.new_var(), s.new_var()
    >>> _ = s.add_clause([a, b]); _ = s.add_clause([-a, b])
    >>> s.solve()
    True
    >>> s.value(b)
    True
    >>> s.solve(assumptions=[-b])
    False
    >>> s.core() == [-b]
    True
    """

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: list[_Clause] = []
        self._learnts: list[_Clause] = []
        self._watches: list[list[_Clause]] = [[], []]
        self._assigns: list[int] = [2]  # index 0 unused; 0/1 assigned, >=2 free
        self._level: list[int] = [0]
        self._reason: list[_Clause | None] = [None]
        self._activity: list[float] = [0.0]
        self._polarity: list[int] = [1]  # 1 = try the negative phase first
        self._seen: list[int] = [0]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._ok = True
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._order_heap: list[tuple[float, int]] = []
        # Cursor for zero-activity variables: the heap only tracks variables
        # that conflicts ever touched; the long tail of never-bumped
        # variables (e.g. the free c_g^i values of diagnosis instances) is
        # scanned linearly, which avoids millions of heap operations on
        # instances whose search is decision-heavy but conflict-light.
        self._scan_cursor = 1
        self._conflict_core: list[int] = []
        self._model: list[int] = []
        self._proof = None  # ProofLog when DRAT logging is active
        self.stats: dict[str, int] = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "deleted": 0,
        }

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) DIMACS index."""
        self._num_vars += 1
        self._assigns.append(2)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(1)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        return self._num_vars

    def ensure_vars(self, n: int) -> None:
        """Grow the variable table so that variables ``1..n`` exist."""
        while self._num_vars < n:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause of DIMACS literals.

        Returns False when the solver becomes trivially UNSAT (empty clause,
        or a unit contradicting the root trail).  Clauses may be added
        between :meth:`solve` calls; the solver backtracks to level 0 first.
        Duplicate literals are merged; tautologies are dropped.
        """
        if not self._ok:
            return False
        self._cancel_until(0)
        internal: list[int] = []
        seen_lits: set[int] = set()
        max_var = 0
        for lit in lits:
            max_var = max(max_var, abs(lit))
        if max_var > self._num_vars:
            self.ensure_vars(max_var)
        for lit in lits:
            il = to_internal(lit)
            if il ^ 1 in seen_lits:
                return True  # tautology: trivially satisfied
            if il not in seen_lits:
                seen_lits.add(il)
                internal.append(il)
        simplified: list[int] = []
        for il in internal:
            val = self._assigns[il >> 1] ^ (il & 1)
            if val == 1:  # root-satisfied (trail is at level 0 here)
                return True
            if val == 0:
                continue  # root-false literal: drop
            simplified.append(il)
        if not simplified:
            self._ok = False
            self._log_learnt([])
            return False
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None):
                self._ok = False
                self._log_learnt([])
                return False
            self._ok = self._propagate() is None
            if not self._ok:
                self._log_learnt([])
            return self._ok
        clause = _Clause(simplified, learnt=False)
        self._clauses.append(clause)
        # watches[l] holds the clauses in which l is watched; propagation
        # visits watches[l] when l becomes false.
        self._watches[simplified[0]].append(clause)
        self._watches[simplified[1]].append(clause)
        return True

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    # ------------------------------------------------------------------
    # proof logging (DRAT, see repro.sat.proof)
    # ------------------------------------------------------------------
    def start_proof(self):
        """Begin DRAT proof logging; returns the live ProofLog.

        Every learnt clause, learnt-clause deletion and the final empty
        clause are recorded.  Start logging *before* solving; the checker
        needs the full original formula separately
        (:func:`repro.sat.proof.check_drat`).  Assumption-based UNSAT
        answers are not certified — only formula-level UNSAT ends in the
        empty clause.
        """
        from .proof import ProofLog  # local import to avoid a cycle

        self._proof = ProofLog()
        return self._proof

    def _log_learnt(self, internal_lits: list[int]) -> None:
        if self._proof is not None:
            self._proof.add([to_dimacs(l) for l in internal_lits])

    def _log_deleted(self, internal_lits: list[int]) -> None:
        if self._proof is not None:
            self._proof.delete([to_dimacs(l) for l in internal_lits])

    # ------------------------------------------------------------------
    # heuristic hooks (used by the hybrid diagnosis approaches, paper §6)
    # ------------------------------------------------------------------
    def bump_activity(self, var: int, amount: float = 1.0) -> None:
        """Externally increase the VSIDS score of ``var``.

        The hybrid approach seeds these scores with path-tracing mark counts
        so the solver branches on likely error sites first.
        """
        self._activity[var] += amount * self._var_inc
        if self._activity[var] > 1e100:
            self._rescale_activity()
        heapq.heappush(self._order_heap, (-self._activity[var], var))

    def set_phase(self, var: int, value: bool) -> None:
        """Preset the polarity first tried when deciding ``var``."""
        self._polarity[var] = 0 if value else 1

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        budget=None,
    ) -> SolveResult:
        """Run the CDCL search.

        Returns True (SAT; model available via :meth:`value`/:meth:`model`),
        False (UNSAT; :meth:`core` returns the failed assumptions), or None
        if ``conflict_limit`` conflicts were exceeded.  ``budget``
        (:class:`repro.sat.budget.Budget`) is polled at restart
        boundaries only — the oracle solver keeps its loop simple; use
        the arena backends where bounded overrun matters.
        """
        self.interrupted = False
        if not self._ok:
            self._conflict_core = []
            return False
        if budget is not None and budget.poll():
            self.interrupted = True
            return None
        self._cancel_until(0)
        if self._propagate() is not None:
            self._ok = False
            self._log_learnt([])
            return False
        internal_assumptions = [to_internal(a) for a in assumptions]
        for a in assumptions:
            self.ensure_vars(abs(a))
        self._conflict_core = []
        self._model = []
        start_conflicts = self.stats["conflicts"]
        charged_conflicts = start_conflicts
        restart_idx = 0
        while True:
            restart_idx += 1
            limit = 100 * _luby(restart_idx)
            status = self._search(limit, internal_assumptions)
            if status is not None:
                self._cancel_until(0)
                return status
            self.stats["restarts"] += 1
            if budget is not None:
                stop = budget.charge(
                    conflicts=self.stats["conflicts"] - charged_conflicts
                )
                charged_conflicts = self.stats["conflicts"]
                if stop:
                    self.interrupted = True
                    self._cancel_until(0)
                    return None
            if (
                conflict_limit is not None
                and self.stats["conflicts"] - start_conflicts >= conflict_limit
            ):
                self._cancel_until(0)
                return None

    def value(self, var: int) -> bool | None:
        """Truth value of ``var`` in the last model (None if unassigned)."""
        if not self._model:
            raise RuntimeError("no model: last solve() did not return True")
        v = self._model[var]
        return None if v >= 2 else bool(v)

    def model(self) -> list[int]:
        """The last model as DIMACS literals (assigned variables only)."""
        if not self._model:
            raise RuntimeError("no model: last solve() did not return True")
        return [
            (v if self._model[v] == 1 else -v)
            for v in range(1, self._num_vars + 1)
            if self._model[v] < 2
        ]

    def core(self) -> list[int]:
        """Subset of the assumptions responsible for the last UNSAT answer."""
        return list(self._conflict_core)

    # ------------------------------------------------------------------
    # CDCL machinery
    # ------------------------------------------------------------------
    def _search(
        self, conflict_budget: int, assumptions: list[int]
    ) -> SolveResult:
        conflicts = 0
        while True:
            confl = self._propagate()
            if confl is not None:
                conflicts += 1
                self.stats["conflicts"] += 1
                if not self._trail_lim:
                    self._ok = False
                    self._log_learnt([])
                    return False
                learnt, back_level = self._analyze(confl)
                self._cancel_until(back_level)
                self._record_learnt(learnt)
                self._decay_activities()
                continue
            if conflicts >= conflict_budget:
                self._cancel_until(0)
                return None
            decision = 0
            level = len(self._trail_lim)
            if level < len(assumptions):
                lit = assumptions[level]
                val = self._assigns[lit >> 1] ^ (lit & 1)
                if val == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                if val == 0:
                    self._analyze_final(lit, assumptions)
                    return False
                decision = lit
            if not decision:
                decision = self._pick_branch()
                if not decision:
                    self._model = list(self._assigns)
                    return True
                self.stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)

    def _propagate(self) -> _Clause | None:
        watches = self._watches
        assigns = self._assigns
        level = self._level
        reason = self._reason
        trail = self._trail
        props = 0
        confl: _Clause | None = None
        while self._qhead < len(trail):
            p = trail[self._qhead]
            self._qhead += 1
            props += 1
            false_lit = p ^ 1
            ws = watches[false_lit]
            i = j = 0
            n = len(ws)
            while i < n:
                clause = ws[i]
                i += 1
                lits = clause.lits
                if lits[0] == false_lit:
                    lits[0] = lits[1]
                    lits[1] = false_lit
                first = lits[0]
                if assigns[first >> 1] ^ (first & 1) == 1:
                    ws[j] = clause
                    j += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    if assigns[lk >> 1] ^ (lk & 1) != 0:
                        lits[1] = lk
                        lits[k] = false_lit
                        watches[lk].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                ws[j] = clause
                j += 1
                if assigns[first >> 1] ^ (first & 1) == 0:
                    while i < n:  # keep remaining watchers before bailing
                        ws[j] = ws[i]
                        j += 1
                        i += 1
                    confl = clause
                    self._qhead = len(trail)
                else:
                    var = first >> 1
                    assigns[var] = 1 ^ (first & 1)
                    level[var] = len(self._trail_lim)
                    reason[var] = clause
                    trail.append(first)
            del ws[j:]
            if confl is not None:
                break
        self.stats["propagations"] += props
        return confl

    def _enqueue(self, lit: int, reason: _Clause | None) -> bool:
        var = lit >> 1
        current = self._assigns[var] ^ (lit & 1)
        if current < 2:
            return current == 1
        self._assigns[var] = 1 ^ (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _analyze(self, confl: _Clause) -> tuple[list[int], int]:
        """First-UIP conflict analysis; returns (learnt clause, backjump level).

        Relies on the invariant that a reason clause always carries its
        implied literal at index 0 (maintained by ``_propagate`` and
        ``_record_learnt``).
        """
        seen = self._seen
        level = self._level
        trail = self._trail
        learnt: list[int] = [0]
        counter = 0
        p = -1
        index = len(trail) - 1
        cur_level = len(self._trail_lim)
        while True:
            if confl.learnt:
                self._bump_clause(confl)
            start = 0 if p == -1 else 1  # skip the implied literal of reasons
            for q in confl.lits[start:]:
                v = q >> 1
                if not seen[v] and level[v] > 0:
                    seen[v] = 1
                    self._bump_var(v)
                    if level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            v = p >> 1
            next_reason = self._reason[v]
            seen[v] = 0
            counter -= 1
            index -= 1
            if counter == 0:
                break
            assert next_reason is not None, "UIP walk hit a decision too early"
            confl = next_reason
        learnt[0] = p ^ 1
        # Local minimization: drop a literal when its reason is covered by
        # the other marked literals (self-subsumption with the reason).
        keep = [learnt[0]]
        for q in learnt[1:]:
            reason = self._reason[q >> 1]
            if reason is None:
                keep.append(q)
                continue
            redundant = all(
                seen[r >> 1] == 1 or level[r >> 1] == 0
                for r in reason.lits[1:]
            )
            if not redundant:
                keep.append(q)
        for q in learnt[1:]:
            seen[q >> 1] = 0
        learnt = keep
        if len(learnt) == 1:
            return learnt, 0
        max_i = 1
        for i in range(2, len(learnt)):
            if level[learnt[i] >> 1] > level[learnt[max_i] >> 1]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, level[learnt[1] >> 1]

    def _analyze_final(self, assumption_lit: int, assumptions: list[int]) -> None:
        """Build the failed-assumption core after ``assumption_lit`` came up
        false during assumption application."""
        core = [to_dimacs(assumption_lit)]
        var0 = assumption_lit >> 1
        if self._level[var0] == 0:
            self._conflict_core = core
            return
        seen = self._seen
        seen[var0] = 1
        for lit in reversed(self._trail):
            v = lit >> 1
            if not seen[v]:
                continue
            seen[v] = 0
            reason = self._reason[v]
            if reason is None:
                if self._level[v] > 0:
                    core.append(to_dimacs(lit))
            else:
                for q in reason.lits[1:]:
                    if self._level[q >> 1] > 0:
                        seen[q >> 1] = 1
        self._conflict_core = core

    def _record_learnt(self, learnt: list[int]) -> None:
        self.stats["learned"] += 1
        self._log_learnt(learnt)
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        clause = _Clause(learnt, learnt=True)
        clause.activity = self._cla_inc
        self._learnts.append(clause)
        self._watches[learnt[0]].append(clause)
        self._watches[learnt[1]].append(clause)
        self._enqueue(learnt[0], clause)
        if len(self._learnts) > max(2000, 2 * len(self._clauses)):
            self._reduce_learnts()

    def _reduce_learnts(self) -> None:
        """Drop the less active half of the learnt clauses (keep locked and
        binary ones)."""
        locked = {
            id(self._reason[lit >> 1])
            for lit in self._trail
            if self._reason[lit >> 1] is not None
        }
        self._learnts.sort(key=lambda c: c.activity)
        cut = len(self._learnts) // 2
        keep: list[_Clause] = []
        dropped: set[int] = set()
        for idx, clause in enumerate(self._learnts):
            if idx >= cut or id(clause) in locked or len(clause.lits) <= 2:
                keep.append(clause)
            else:
                dropped.add(id(clause))
        if not dropped:
            self._learnts = keep
            return
        self.stats["deleted"] += len(dropped)
        if self._proof is not None:
            for clause in self._learnts:
                if id(clause) in dropped:
                    self._log_deleted(clause.lits)
        for ws in self._watches:
            ws[:] = [c for c in ws if id(c) not in dropped]
        self._learnts = keep

    def _pick_branch(self) -> int:
        heap = self._order_heap
        activity = self._activity
        assigns = self._assigns
        while heap:
            neg_act, var = heapq.heappop(heap)
            if assigns[var] < 2:
                continue
            if -neg_act != activity[var]:
                heapq.heappush(heap, (-activity[var], var))
                continue
            return (var << 1) | self._polarity[var]
        var = self._scan_cursor
        n = self._num_vars
        while var <= n and assigns[var] < 2:
            var += 1
        self._scan_cursor = var
        if var <= n:
            return (var << 1) | self._polarity[var]
        return 0

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            self._rescale_activity()
        heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _rescale_activity(self) -> None:
        for v in range(1, self._num_vars + 1):
            self._activity[v] *= 1e-100
        self._var_inc *= 1e-100
        self._order_heap = [
            (-self._activity[v], v)
            for v in range(1, self._num_vars + 1)
            if self._assigns[v] >= 2
        ]
        heapq.heapify(self._order_heap)

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc *= self._var_decay
        self._cla_inc *= self._cla_decay

    def _cancel_until(self, target_level: int) -> None:
        if len(self._trail_lim) <= target_level:
            return
        boundary = self._trail_lim[target_level]
        heap = self._order_heap
        activity = self._activity
        assigns = self._assigns
        reason = self._reason
        polarity = self._polarity
        cursor = self._scan_cursor
        for lit in reversed(self._trail[boundary:]):
            var = lit >> 1
            assigns[var] = 2
            reason[var] = None
            polarity[var] = lit & 1  # phase saving
            if activity[var] > 0.0:
                heapq.heappush(heap, (-activity[var], var))
            elif var < cursor:
                cursor = var
        self._scan_cursor = cursor
        del self._trail[boundary:]
        del self._trail_lim[target_level:]
        self._qhead = len(self._trail)


def _luby(i: int) -> int:
    """The Luby restart sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    >>> [_luby(i) for i in range(1, 9)]
    [1, 1, 2, 1, 1, 2, 4, 1]
    """
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1
