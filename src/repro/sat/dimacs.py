"""DIMACS CNF reading and writing.

Round-tripping through the standard exchange format keeps the solver
interoperable: instances built here can be cross-checked with any external
solver, and standard benchmark files exercise the solver in the test-suite.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

from .cnf import CNF

__all__ = ["parse_dimacs", "load_dimacs", "write_dimacs", "dump_dimacs"]


class DimacsFormatError(ValueError):
    """Raised on malformed DIMACS input."""


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF text into a :class:`CNF`.

    Tolerates clauses spanning several lines and missing/underspecified
    ``p cnf`` headers (the variable count grows as needed).
    """
    cnf = CNF()
    declared_vars = 0
    pending: list[int] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("c", "%")):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsFormatError(f"line {lineno}: bad header {line!r}")
            try:
                declared_vars = int(parts[2])
            except ValueError as exc:
                raise DimacsFormatError(f"line {lineno}: {exc}") from exc
            while cnf.num_vars < declared_vars:
                cnf.new_var()
            continue
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsFormatError(
                    f"line {lineno}: bad literal {token!r}"
                ) from exc
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                while cnf.num_vars < abs(lit):
                    cnf.new_var()
                pending.append(lit)
    if pending:
        cnf.add_clause(pending)
    return cnf


def load_dimacs(path: str | Path) -> CNF:
    return parse_dimacs(Path(path).read_text())


def write_dimacs(cnf: CNF, stream: TextIO, comments: bool = True) -> None:
    """Write ``cnf`` in DIMACS format, with named variables as comments."""
    if comments:
        for var in range(1, cnf.num_vars + 1):
            name = cnf.name_of(var)
            if name is not None:
                stream.write(f"c var {var} = {name}\n")
    stream.write(f"p cnf {cnf.num_vars} {cnf.num_clauses}\n")
    for clause in cnf:
        stream.write(" ".join(str(l) for l in clause) + " 0\n")


def dump_dimacs(cnf: CNF, path: str | Path | None = None) -> str:
    import io

    buf = io.StringIO()
    write_dimacs(cnf, buf)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
