"""DIMACS CNF and group-oriented GCNF reading and writing.

Round-tripping through the standard exchange formats keeps the solver
interoperable: instances built here can be cross-checked with any external
solver, and standard benchmark files exercise the solver in the test-suite.

Two formats are supported:

* plain ``p cnf`` DIMACS (:func:`parse_dimacs` / :func:`write_dimacs`);
* group-oriented ``p gcnf`` DIMACS (:func:`parse_gcnf` /
  :func:`write_gcnf`), the standard exchange format for group-MUS and
  weak-fault-model diagnosis instances: every clause carries a ``{g}``
  group prefix, group ``0`` is the hard *background*, and groups
  ``1..k`` are the assumable (retractable) clause groups that
  :class:`repro.diagnosis.GroupedCNFSystem` treats as components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, TextIO

from .cnf import CNF

__all__ = [
    "parse_dimacs",
    "load_dimacs",
    "write_dimacs",
    "dump_dimacs",
    "GroupedCNF",
    "parse_gcnf",
    "load_gcnf",
    "write_gcnf",
    "dump_gcnf",
]


class DimacsFormatError(ValueError):
    """Raised on malformed DIMACS input."""


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF text into a :class:`CNF`.

    Tolerates clauses spanning several lines and missing/underspecified
    ``p cnf`` headers (the variable count grows as needed).
    """
    cnf = CNF()
    declared_vars = 0
    pending: list[int] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("c", "%")):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsFormatError(f"line {lineno}: bad header {line!r}")
            try:
                declared_vars = int(parts[2])
            except ValueError as exc:
                raise DimacsFormatError(f"line {lineno}: {exc}") from exc
            while cnf.num_vars < declared_vars:
                cnf.new_var()
            continue
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsFormatError(
                    f"line {lineno}: bad literal {token!r}"
                ) from exc
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                while cnf.num_vars < abs(lit):
                    cnf.new_var()
                pending.append(lit)
    if pending:
        cnf.add_clause(pending)
    return cnf


def load_dimacs(path: str | Path) -> CNF:
    return parse_dimacs(Path(path).read_text())


def write_dimacs(cnf: CNF, stream: TextIO, comments: bool = True) -> None:
    """Write ``cnf`` in DIMACS format, with named variables as comments."""
    if comments:
        for var in range(1, cnf.num_vars + 1):
            name = cnf.name_of(var)
            if name is not None:
                stream.write(f"c var {var} = {name}\n")
    stream.write(f"p cnf {cnf.num_vars} {cnf.num_clauses}\n")
    for clause in cnf:
        stream.write(" ".join(str(l) for l in clause) + " 0\n")


def dump_dimacs(cnf: CNF, path: str | Path | None = None) -> str:
    import io

    buf = io.StringIO()
    write_dimacs(cnf, buf)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


# ----------------------------------------------------------------------
# group-oriented DIMACS (GCNF)
# ----------------------------------------------------------------------


@dataclass
class GroupedCNF:
    """A group-oriented CNF: hard background plus assumable clause groups.

    ``background`` holds the group-0 (hard) clauses; ``groups[i]`` holds
    the clauses of assumable group ``i + 1`` (GCNF numbers groups from 1;
    a declared group with no clauses is kept as an empty list so group
    indices round-trip).
    """

    num_vars: int = 0
    background: list[tuple[int, ...]] = field(default_factory=list)
    groups: list[list[tuple[int, ...]]] = field(default_factory=list)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def num_clauses(self) -> int:
        return len(self.background) + sum(len(g) for g in self.groups)

    def add_clause(self, group: int, lits: Iterable[int]) -> None:
        """Append a clause to ``group`` (0 = background), growing the
        variable and group counts as needed."""
        if group < 0:
            raise ValueError("group must be non-negative")
        clause = tuple(int(l) for l in lits)
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is reserved")
            self.num_vars = max(self.num_vars, abs(lit))
        while len(self.groups) < group:
            self.groups.append([])
        if group == 0:
            self.background.append(clause)
        else:
            self.groups[group - 1].append(clause)


def parse_gcnf(text: str) -> GroupedCNF:
    """Parse group-oriented DIMACS (``p gcnf n_vars n_clauses n_groups``).

    Every clause must start with a ``{g}`` group prefix; group 0 is the
    hard background.  Raises :class:`DimacsFormatError` on a malformed
    header, a missing/invalid group prefix, or a group id above the
    declared count.
    """
    gcnf = GroupedCNF()
    declared_groups: int | None = None
    saw_header = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("c", "%")):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 5 or parts[1] != "gcnf":
                raise DimacsFormatError(
                    f"line {lineno}: bad GCNF header {line!r} "
                    "(expected 'p gcnf <vars> <clauses> <groups>')"
                )
            try:
                declared_vars = int(parts[2])
                int(parts[3])
                declared_groups = int(parts[4])
            except ValueError as exc:
                raise DimacsFormatError(f"line {lineno}: {exc}") from exc
            if declared_vars < 0 or declared_groups < 0:
                raise DimacsFormatError(
                    f"line {lineno}: negative counts in header {line!r}"
                )
            gcnf.num_vars = max(gcnf.num_vars, declared_vars)
            while len(gcnf.groups) < declared_groups:
                gcnf.groups.append([])
            saw_header = True
            continue
        if not line.startswith("{"):
            raise DimacsFormatError(
                f"line {lineno}: clause without a {{group}} prefix: {line!r}"
            )
        end = line.find("}")
        if end < 0:
            raise DimacsFormatError(
                f"line {lineno}: unterminated group prefix: {line!r}"
            )
        try:
            group = int(line[1:end])
        except ValueError as exc:
            raise DimacsFormatError(
                f"line {lineno}: bad group id {line[1:end]!r}"
            ) from exc
        if group < 0:
            raise DimacsFormatError(f"line {lineno}: negative group id")
        if declared_groups is not None and group > declared_groups:
            raise DimacsFormatError(
                f"line {lineno}: group {group} above declared count "
                f"{declared_groups}"
            )
        lits: list[int] = []
        for token in line[end + 1 :].split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsFormatError(
                    f"line {lineno}: bad literal {token!r}"
                ) from exc
            if lit == 0:
                break
            lits.append(lit)
        else:
            raise DimacsFormatError(
                f"line {lineno}: clause not terminated with 0"
            )
        gcnf.add_clause(group, lits)
    if not saw_header:
        raise DimacsFormatError("missing 'p gcnf' header")
    return gcnf


def load_gcnf(path: str | Path) -> GroupedCNF:
    return parse_gcnf(Path(path).read_text())


def write_gcnf(gcnf: GroupedCNF, stream: TextIO) -> None:
    """Write ``gcnf`` in group-oriented DIMACS format."""
    stream.write(
        f"p gcnf {gcnf.num_vars} {gcnf.num_clauses} {gcnf.num_groups}\n"
    )
    for clause in gcnf.background:
        stream.write("{0} " + " ".join(str(l) for l in clause) + " 0\n")
    for i, clauses in enumerate(gcnf.groups, start=1):
        for clause in clauses:
            stream.write(
                "{%d} " % i + " ".join(str(l) for l in clause) + " 0\n"
            )


def dump_gcnf(gcnf: GroupedCNF, path: str | Path | None = None) -> str:
    import io

    buf = io.StringIO()
    write_gcnf(gcnf, buf)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
