"""CNF formula container with named variables.

:class:`CNF` accumulates clauses before they are loaded into a
:class:`~repro.sat.solver.Solver`.  It tracks an optional name per variable
(signal names, select lines, ...) which the diagnosis code uses to map
models back to gates, and which makes DIMACS dumps debuggable via comment
lines.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .solver import Solver

__all__ = ["CNF"]


class CNF:
    """A growable CNF formula.

    >>> f = CNF()
    >>> a = f.new_var("a"); b = f.new_var("b")
    >>> f.add_clause([a, -b])
    >>> f.num_clauses
    1
    """

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: list[tuple[int, ...]] = []
        self._names: dict[int, str] = {}
        self._by_name: dict[str, int] = {}

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def new_var(self, name: str | None = None) -> int:
        """Allocate a variable, optionally registering a unique name."""
        self._num_vars += 1
        var = self._num_vars
        if name is not None:
            if name in self._by_name:
                raise ValueError(f"duplicate variable name {name!r}")
            self._names[var] = name
            self._by_name[name] = var
        return var

    def new_vars(self, count: int, prefix: str | None = None) -> list[int]:
        """Allocate ``count`` variables (named ``prefix0..`` if given)."""
        return [
            self.new_var(None if prefix is None else f"{prefix}{i}")
            for i in range(count)
        ]

    def var(self, name: str) -> int:
        """Variable index registered under ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no variable named {name!r}") from None

    def name_of(self, var: int) -> str | None:
        """Registered name of ``var`` (None if anonymous)."""
        return self._names.get(var)

    @property
    def num_vars(self) -> int:
        return self._num_vars

    # ------------------------------------------------------------------
    # clauses
    # ------------------------------------------------------------------
    def add_clause(self, lits: Iterable[int]) -> None:
        clause = tuple(lits)
        for lit in clause:
            if lit == 0 or abs(lit) > self._num_vars:
                raise ValueError(f"literal {lit} out of range")
        self._clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def clauses(self) -> Sequence[tuple[int, ...]]:
        return self._clauses

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._clauses)

    # ------------------------------------------------------------------
    # hand-off
    # ------------------------------------------------------------------
    def to_solver(
        self, solver: Solver | None = None, backend: str | None = None
    ) -> Solver:
        """Load the formula into a solver (creating one if needed).

        ``backend`` names a registered solver backend
        (:data:`repro.sat.backends.SAT_BACKENDS`); the default is the
        arena solver.  Mutually exclusive with passing ``solver``.
        """
        if solver is None:
            from .backends import create_solver  # local: avoid a cycle

            solver = create_solver(backend)
        elif backend is not None:
            raise ValueError("pass either a solver or a backend name")
        solver.ensure_vars(self._num_vars)
        loader = getattr(solver, "load_clauses", None)
        if loader is not None:
            loader(self._clauses)
        else:
            for clause in self._clauses:
                solver.add_clause(clause)
        return solver

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CNF(vars={self._num_vars}, clauses={len(self._clauses)})"
